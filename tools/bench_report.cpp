// bench_report — perf-trajectory front end over obs/benchdata.
//
//   bench_report aggregate <experiment> [-o out.json] [file...]
//     Scan bench output (stdin when no files) for BENCH_META/BENCH_ROW
//     lines and write the aggregated trajectory JSON (medians over reps,
//     build provenance) to `-o`, default `BENCH_<experiment>.json`.
//
//   bench_report diff <baseline.json> <current.json> [--threshold 0.10]
//                     [--min-ms 1] [--geomean]
//     Compare two trajectory files row by row; exit 1 when any shared row's
//     median wall time regressed by more than the threshold. Rows whose
//     baseline median is at or below --min-ms are timer noise and never
//     regress (tight-threshold overhead checks raise the floor to gate
//     only rows big enough to resolve the band). With --geomean the gate
//     moves from per-row to the geometric mean of the gated rows' ratios:
//     per-row noise is symmetric and cancels across rows while a uniform
//     overhead does not, so a mean gate resolves bands far tighter than
//     any single row can.
//
// The `bench-check` CMake target chains the two against the committed
// baseline in bench/baselines/.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/benchdata.h"
#include "util/error.h"

namespace cipnet {
namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_report aggregate <experiment> [-o out.json] [file...]\n"
      "       bench_report diff <baseline.json> <current.json>"
      " [--threshold 0.10] [--min-ms 1] [--geomean]\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int cmd_aggregate(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string experiment = args[0];
  std::string out_path;
  std::vector<std::string> inputs;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (out_path.empty()) out_path = "BENCH_" + experiment + ".json";

  obs::BenchAggregate agg;
  if (inputs.empty()) {
    agg = obs::aggregate_bench_output(std::cin, experiment);
  } else {
    // Concatenate all inputs into one stream so reps may span files.
    std::stringstream merged;
    for (const std::string& path : inputs) merged << read_file(path);
    agg = obs::aggregate_bench_output(merged, experiment);
  }
  if (agg.rows.empty()) {
    std::fprintf(stderr, "bench_report: no BENCH_ROW lines in input\n");
    return 1;
  }
  std::ofstream out(out_path);
  if (!out) throw Error("cannot open " + out_path);
  out << obs::bench_to_json(agg);
  std::printf("wrote %s: %zu rows\n", out_path.c_str(), agg.rows.size());
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  double threshold = 0.10;
  double min_ms = 1.0;
  bool geomean = false;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threshold" && i + 1 < args.size()) {
      threshold = std::strtod(args[++i].c_str(), nullptr);
    } else if (args[i] == "--min-ms" && i + 1 < args.size()) {
      min_ms = std::strtod(args[++i].c_str(), nullptr);
    } else if (args[i] == "--geomean") {
      geomean = true;
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 2) return usage();
  const obs::BenchAggregate base = obs::bench_from_json(read_file(files[0]));
  const obs::BenchAggregate current =
      obs::bench_from_json(read_file(files[1]));
  const obs::BenchDiff diff =
      obs::bench_diff(base, current, min_ms / 1000.0);
  std::printf("%s vs %s (threshold +%.0f%%%s):\n", files[0].c_str(),
              files[1].c_str(), threshold * 100.0,
              geomean ? ", geomean gate" : "");
  std::printf("%s", obs::bench_diff_report(diff, threshold).c_str());
  if (geomean) {
    // Mean log-ratio over the rows above the noise floor; sub-floor rows
    // have their ratio pinned to 1.0 by bench_diff and would dilute it.
    double log_sum = 0.0;
    std::size_t gated = 0;
    for (const obs::BenchRowDiff& row : diff.rows) {
      if (!row.in_base || !row.in_current) continue;
      if (row.base_wall_s <= min_ms / 1000.0) continue;
      log_sum += std::log(row.ratio);
      ++gated;
    }
    const double mean = gated == 0 ? 1.0 : std::exp(log_sum / double(gated));
    std::printf("  geomean over %zu row(s): %+.2f%%\n", gated,
                (mean - 1.0) * 100.0);
    if (mean > 1.0 + threshold) {
      std::fprintf(stderr,
                   "bench_report: geomean wall-time regression detected\n");
      return 1;
    }
    return 0;
  }
  if (diff.regressed(threshold)) {
    std::fprintf(stderr, "bench_report: wall-time regression detected\n");
    return 1;
  }
  return 0;
}

int run(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string command = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (command == "aggregate") return cmd_aggregate(rest);
  if (command == "diff") return cmd_diff(rest);
  return usage();
}

}  // namespace
}  // namespace cipnet

int main(int argc, char** argv) {
  try {
    return cipnet::run(argc, argv);
  } catch (const cipnet::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
