// Regenerates the shipped data/*.g artifacts from the programmatic paper
// models (run from the repo root: `build/tools/export_models data`).

#include <cstdio>
#include <string>

#include "io/files.h"
#include "models/translator.h"

using namespace cipnet;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "data";
  const std::pair<const char*, Circuit> blocks[] = {
      {"sender", models::sender()},
      {"translator", models::translator()},
      {"receiver", models::receiver()},
      {"sender_restricted", models::sender_restricted()},
      {"sender_inconsistent", models::sender_inconsistent()},
  };
  for (const auto& [name, circuit] : blocks) {
    std::string path = dir + "/" + name + ".g";
    save_stg(path, circuit.to_stg(), name);
    std::printf("wrote %s (%s)\n", path.c_str(),
                circuit.net().summary().c_str());
  }
  return 0;
}
