// Validates an NDJSON response stream from `cipnet serve`: every line must
// parse under the strict JSON grammar, carry a boolean "ok" member, and
// carry a "timings" object whose members are all numbers (the per-phase
// latency breakdown of docs/SERVICE.md — ok and error responses alike);
// every error response must additionally carry a structured error object
// (non-empty string "code" and "message"); and the line count must match
// argv[1]. An optional argv[2]
// lists comma-separated error codes that must each appear at least once —
// the smoke test uses it to prove the malformed/oversized frames actually
// exercised the rejection paths. Used by the ServeSmoke ctest
// (tests/serve_smoke.sh).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "util/json.h"

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr,
                 "usage: ndjson_check <expected-line-count> "
                 "[required-error-codes,comma,separated]\n");
    return 2;
  }
  const long expected = std::strtol(argv[1], nullptr, 10);
  std::map<std::string, long> required;  // code -> times seen
  if (argc == 3) {
    std::istringstream codes(argv[2]);
    std::string code;
    while (std::getline(codes, code, ',')) {
      if (!code.empty()) required[code] = 0;
    }
  }
  long lines = 0;
  long ok = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    ++lines;
    try {
      const cipnet::json::Value doc = cipnet::json::parse(line);
      const cipnet::json::Value* flag = doc.find("ok");
      if (flag == nullptr || flag->type() != cipnet::json::Value::Type::kBool) {
        std::fprintf(stderr, "line %ld: missing boolean \"ok\": %s\n", lines,
                     line.c_str());
        return 1;
      }
      const cipnet::json::Value* timings = doc.find("timings");
      if (timings == nullptr || !timings->is_object()) {
        std::fprintf(stderr, "line %ld: response without timings object: %s\n",
                     lines, line.c_str());
        return 1;
      }
      if (timings->members().empty()) {
        std::fprintf(stderr, "line %ld: empty timings object: %s\n", lines,
                     line.c_str());
        return 1;
      }
      for (const auto& [name, value] : timings->members()) {
        if (value.type() != cipnet::json::Value::Type::kNumber) {
          std::fprintf(stderr,
                       "line %ld: timings.%s is not a number: %s\n", lines,
                       name.c_str(), line.c_str());
          return 1;
        }
      }
      if (flag->as_bool()) {
        ++ok;
      } else {
        const cipnet::json::Value* error = doc.find("error");
        if (error == nullptr || !error->is_object()) {
          std::fprintf(stderr, "line %ld: error response without error "
                               "object: %s\n", lines, line.c_str());
          return 1;
        }
        const std::string code = error->get_string("code");
        if (code.empty() || error->get_string("message").empty()) {
          std::fprintf(stderr, "line %ld: error without code/message: %s\n",
                       lines, line.c_str());
          return 1;
        }
        auto it = required.find(code);
        if (it != required.end()) ++it->second;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "line %ld: %s\n  %s\n", lines, e.what(),
                   line.c_str());
      return 1;
    }
  }
  if (lines != expected) {
    std::fprintf(stderr, "expected %ld response lines, got %ld\n", expected,
                 lines);
    return 1;
  }
  for (const auto& [code, seen] : required) {
    if (seen == 0) {
      std::fprintf(stderr, "required error code never appeared: %s\n",
                   code.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "ndjson_check: %ld lines, %ld ok\n", lines, ok);
  return 0;
}
