// Validates an NDJSON response stream from `cipnet serve`: every line must
// parse under the strict JSON grammar and carry a boolean "ok" member, and
// the line count must match the expected count given as argv[1]. Used by
// the ServeSmoke ctest (tests/serve_smoke.sh).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "util/json.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: ndjson_check <expected-line-count>\n");
    return 2;
  }
  const long expected = std::strtol(argv[1], nullptr, 10);
  long lines = 0;
  long ok = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    ++lines;
    try {
      const cipnet::json::Value doc = cipnet::json::parse(line);
      const cipnet::json::Value* flag = doc.find("ok");
      if (flag == nullptr || flag->type() != cipnet::json::Value::Type::kBool) {
        std::fprintf(stderr, "line %ld: missing boolean \"ok\": %s\n", lines,
                     line.c_str());
        return 1;
      }
      if (flag->as_bool()) ++ok;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "line %ld: %s\n  %s\n", lines, e.what(),
                   line.c_str());
      return 1;
    }
  }
  if (lines != expected) {
    std::fprintf(stderr, "expected %ld response lines, got %ld\n", expected,
                 lines);
    return 1;
  }
  std::fprintf(stderr, "ndjson_check: %ld lines, %ld ok\n", lines, ok);
  return 0;
}
