// Validates an NDJSON response stream from `cipnet serve`: every line must
// parse under the strict JSON grammar, carry a boolean "ok" member, and
// carry a "timings" object whose members are all numbers (the per-phase
// latency breakdown of docs/SERVICE.md — ok and error responses alike);
// every error response must additionally carry a structured error object
// (non-empty string "code" and "message"); and the line count must match
// the expected count argument. An optional codes argument lists
// comma-separated error codes that must each appear at least once — the
// smoke test uses it to prove the malformed/oversized frames actually
// exercised the rejection paths.
//
// Two transports:
//   ndjson_check <count> [codes]                  validate stdin (a pipe
//                                                 from the stdio server)
//   ndjson_check --connect HOST:PORT [--timeout-ms N] <count> [codes]
//     act as one TCP client: send every stdin line to the server, half-close
//     the write side, and validate the response stream read back until the
//     server's orderly EOF. The TCP smoke runs many of these concurrently.
//     `--timeout-ms` (default 60000) bounds the connect attempt and every
//     individual response read, so a wedged or crashed server fails the
//     harness promptly instead of hanging it.
//
// Used by the ServeSmoke and NetSmoke ctests (tests/serve_smoke.sh).

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ndjson_check [--connect HOST:PORT] [--timeout-ms N] "
               "<expected-line-count> [required-error-codes,comma,separated]\n");
  return 2;
}

/// Connect with a deadline: non-blocking connect, poll for writability,
/// then check SO_ERROR. Returns 0 on success, -1 (with a diagnostic) on
/// refusal or timeout.
int connect_with_timeout(int fd, const sockaddr_in& addr, long timeout_ms,
                         const std::string& hostport) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready == 0) {
      std::fprintf(stderr, "connect %s: timed out after %ld ms\n",
                   hostport.c_str(), timeout_ms);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (ready < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      std::fprintf(stderr, "connect %s: %s\n", hostport.c_str(),
                   std::strerror(err != 0 ? err : errno));
      return -1;
    }
    rc = 0;
  }
  if (rc != 0) {
    std::fprintf(stderr, "connect %s: %s\n", hostport.c_str(),
                 std::strerror(errno));
    return -1;
  }
  ::fcntl(fd, F_SETFL, flags);
  return 0;
}

/// Validates one response line; returns false (after diagnosing to stderr)
/// on the first violation.
class Validator {
 public:
  explicit Validator(std::map<std::string, long>* required)
      : required_(required) {}

  bool check(const std::string& line) {
    ++lines_;
    try {
      const cipnet::json::Value doc = cipnet::json::parse(line);
      const cipnet::json::Value* flag = doc.find("ok");
      if (flag == nullptr ||
          flag->type() != cipnet::json::Value::Type::kBool) {
        std::fprintf(stderr, "line %ld: missing boolean \"ok\": %s\n", lines_,
                     line.c_str());
        return false;
      }
      const cipnet::json::Value* timings = doc.find("timings");
      if (timings == nullptr || !timings->is_object()) {
        std::fprintf(stderr, "line %ld: response without timings object: %s\n",
                     lines_, line.c_str());
        return false;
      }
      if (timings->members().empty()) {
        std::fprintf(stderr, "line %ld: empty timings object: %s\n", lines_,
                     line.c_str());
        return false;
      }
      for (const auto& [name, value] : timings->members()) {
        if (value.type() != cipnet::json::Value::Type::kNumber) {
          std::fprintf(stderr, "line %ld: timings.%s is not a number: %s\n",
                       lines_, name.c_str(), line.c_str());
          return false;
        }
      }
      if (flag->as_bool()) {
        ++ok_;
      } else {
        const cipnet::json::Value* error = doc.find("error");
        if (error == nullptr || !error->is_object()) {
          std::fprintf(stderr,
                       "line %ld: error response without error object: %s\n",
                       lines_, line.c_str());
          return false;
        }
        const std::string code = error->get_string("code");
        if (code.empty() || error->get_string("message").empty()) {
          std::fprintf(stderr, "line %ld: error without code/message: %s\n",
                       lines_, line.c_str());
          return false;
        }
        auto it = required_->find(code);
        if (it != required_->end()) ++it->second;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "line %ld: %s\n  %s\n", lines_, e.what(),
                   line.c_str());
      return false;
    }
    return true;
  }

  [[nodiscard]] long lines() const { return lines_; }
  [[nodiscard]] long ok() const { return ok_; }

 private:
  std::map<std::string, long>* required_;
  long lines_ = 0;
  long ok_ = 0;
};

/// One TCP exchange: write every stdin line to HOST:PORT, shutdown the
/// write side, then validate responses until the server's EOF.
int run_connect(const std::string& hostport, long timeout_ms, long expected,
                std::map<std::string, long>& required) {
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect expects HOST:PORT, got '%s'\n",
                 hostport.c_str());
    return 2;
  }
  std::string host = hostport.substr(0, colon);
  if (host.empty() || host == "localhost" || host == "0.0.0.0") {
    host = "127.0.0.1";
  }
  const int port = std::atoi(hostport.c_str() + colon + 1);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "bad host: %s\n", host.c_str());
    return 2;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  if (connect_with_timeout(fd, addr, timeout_ms, hostport) != 0) {
    ::close(fd);
    return 1;
  }
  // A hung server must fail the harness, not wedge it: the deadline also
  // bounds every individual response read.
  timeval timeout{timeout_ms / 1000, (timeout_ms % 1000) * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  {
    std::ostringstream all;
    all << std::cin.rdbuf();
    request = all.str();
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "send: %s\n", std::strerror(errno));
      ::close(fd);
      return 1;
    }
    off += static_cast<std::size_t>(n);
  }
  // Half-close: the server reads EOF, finishes everything in flight, and
  // closes once every response is flushed (per-connection graceful drain).
  ::shutdown(fd, SHUT_WR);

  Validator validator(&required);
  std::string buffer;
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        std::fprintf(stderr, "recv: no response within %ld ms\n", timeout_ms);
      } else {
        std::fprintf(stderr, "recv: %s\n", std::strerror(errno));
      }
      ::close(fd);
      return 1;
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && !validator.check(line)) {
        ::close(fd);
        return 1;
      }
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  if (!buffer.empty()) {
    std::fprintf(stderr, "stream ended inside an unterminated line: %s\n",
                 buffer.c_str());
    return 1;
  }
  if (validator.lines() != expected) {
    std::fprintf(stderr, "expected %ld response lines, got %ld\n", expected,
                 validator.lines());
    return 1;
  }
  for (const auto& [code, seen] : required) {
    if (seen == 0) {
      std::fprintf(stderr, "required error code never appeared: %s\n",
                   code.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "ndjson_check: %ld lines, %ld ok (tcp)\n",
               validator.lines(), validator.ok());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string connect_to;
  long timeout_ms = 60000;
  while (!args.empty() && args[0].rfind("--", 0) == 0) {
    if (args[0] == "--connect" && args.size() >= 2) {
      connect_to = args[1];
    } else if (args[0] == "--timeout-ms" && args.size() >= 2) {
      timeout_ms = std::strtol(args[1].c_str(), nullptr, 10);
      if (timeout_ms <= 0) return usage();
    } else {
      return usage();
    }
    args.erase(args.begin(), args.begin() + 2);
  }
  if (args.empty() || args.size() > 2) return usage();
  const long expected = std::strtol(args[0].c_str(), nullptr, 10);
  std::map<std::string, long> required;  // code -> times seen
  if (args.size() == 2) {
    std::istringstream codes(args[1]);
    std::string code;
    while (std::getline(codes, code, ',')) {
      if (!code.empty()) required[code] = 0;
    }
  }
  if (!connect_to.empty()) {
    return run_connect(connect_to, timeout_ms, expected, required);
  }

  Validator validator(&required);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (!validator.check(line)) return 1;
  }
  if (validator.lines() != expected) {
    std::fprintf(stderr, "expected %ld response lines, got %ld\n", expected,
                 validator.lines());
    return 1;
  }
  for (const auto& [code, seen] : required) {
    if (seen == 0) {
      std::fprintf(stderr, "required error code never appeared: %s\n",
                   code.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "ndjson_check: %ld lines, %ld ok\n", validator.lines(),
               validator.ok());
  return 0;
}
