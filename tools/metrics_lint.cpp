// Doc/source parity check for the metric catalogue. The table in
// docs/OBSERVABILITY.md is the public name surface of the obs registry;
// this linter cross-checks it against the Counter/Gauge/Histogram
// constructor literals in the source tree, in both directions:
//
//   * every metric constructed in src/ or tools/ must appear in the doc
//     table (no silently-added metrics);
//   * every metric the doc lists must exist in the source (no stale rows
//     surviving a rename).
//
// Doc rows may pack alternatives into one cell two ways — separate
// backticked names (`fault.hits` / `fault.injected`) and last-segment
// alternation inside one name (`svc.cache.hit/miss/eviction/expired`);
// both are expanded. Rows whose name contains `<` are templates
// (`span.<name>`) and are skipped. Runs as the MetricsLint ctest:
//
//   metrics_lint <docs/OBSERVABILITY.md> <source-dir>...
//
// A second mode does the same parity check for the fault-site catalogue —
// the `kCatalogue` array in src/util/fault.cpp against the site table in
// docs/RESILIENCE.md (the one headed `| site | surface | fires as |`).
// Runs as the FaultSiteLint ctest:
//
//   metrics_lint --fault-sites <docs/RESILIENCE.md> <src/util/fault.cpp>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

bool is_name_byte(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' ||
         c == '_';
}

bool is_ident_byte(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Collect metric names from one source line: the string literal opening a
/// Counter/Gauge/Histogram construction, in either form —
///   const obs::Counter c_hits("fault.hits");
///   obs::Gauge("mem.peak_rss_bytes").set(...)
void scan_source_line(const std::string& line, std::set<std::string>& out) {
  for (const char* ctor : {"Counter", "Gauge", "Histogram"}) {
    const std::size_t ctor_len = std::string(ctor).size();
    std::size_t pos = 0;
    while ((pos = line.find(ctor, pos)) != std::string::npos) {
      const std::size_t token = pos;
      pos += ctor_len;
      // Whole-token match only (rejects e.g. "HistogramSnapshot").
      if (token > 0 && is_ident_byte(line[token - 1])) continue;
      if (pos < line.size() && is_ident_byte(line[pos])) continue;
      // Optional variable name between the type and the argument list.
      std::size_t i = pos;
      while (i < line.size() && line[i] == ' ') ++i;
      while (i < line.size() && is_ident_byte(line[i])) ++i;
      while (i < line.size() && line[i] == ' ') ++i;
      if (i + 1 >= line.size() || line[i] != '(' || line[i + 1] != '"') {
        continue;
      }
      i += 2;
      const std::size_t end = line.find('"', i);
      if (end == std::string::npos) continue;
      const std::string name = line.substr(i, end - i);
      bool clean = !name.empty();
      for (char c : name) clean = clean && is_name_byte(c);
      if (clean) out.insert(name);
    }
  }
}

std::set<std::string> scan_sources(const std::vector<fs::path>& roots) {
  std::set<std::string> names;
  for (const fs::path& root : roots) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".h") continue;
      std::ifstream in(entry.path());
      std::string line;
      while (std::getline(in, line)) scan_source_line(line, names);
    }
  }
  return names;
}

/// Expand `svc.cache.hit/miss/eviction/expired` into four names: the first
/// alternative is the full name, later ones replace its last segment.
void expand_alternation(const std::string& name, std::set<std::string>& out) {
  std::istringstream alts(name);
  std::string alt;
  std::string first;
  while (std::getline(alts, alt, '/')) {
    if (alt.empty()) continue;
    if (first.empty()) {
      first = alt;
      out.insert(alt);
      continue;
    }
    const std::size_t dot = first.rfind('.');
    out.insert(dot == std::string::npos ? alt
                                        : first.substr(0, dot + 1) + alt);
  }
}

std::set<std::string> scan_doc(const fs::path& doc) {
  std::set<std::string> names;
  std::ifstream in(doc);
  std::string line;
  while (std::getline(in, line)) {
    // Metric rows look like: | `name` [/ `name`] | counter|gauge|histogram | ...
    if (line.empty() || line[0] != '|') continue;
    const std::size_t second = line.find('|', 1);
    const std::size_t third =
        second == std::string::npos ? second : line.find('|', second + 1);
    if (third == std::string::npos) continue;
    const std::string kind = line.substr(second + 1, third - second - 1);
    if (kind.find("counter") == std::string::npos &&
        kind.find("gauge") == std::string::npos &&
        kind.find("histogram") == std::string::npos) {
      continue;
    }
    const std::string cell = line.substr(0, second);
    std::size_t pos = 0;
    while ((pos = cell.find('`', pos)) != std::string::npos) {
      const std::size_t end = cell.find('`', pos + 1);
      if (end == std::string::npos) break;
      const std::string name = cell.substr(pos + 1, end - pos - 1);
      if (name.find('<') == std::string::npos) expand_alternation(name, names);
      pos = end + 1;
    }
  }
  return names;
}

/// Extract the quoted site names from the `kCatalogue[] = { ... };` array
/// in util/fault.cpp. Only string literals between the opening brace and
/// the closing `};` count, so doc-comment examples elsewhere in the file
/// cannot pollute the scan.
std::set<std::string> scan_fault_catalogue(const fs::path& source) {
  std::set<std::string> names;
  std::ifstream in(source);
  std::string line;
  bool inside = false;
  while (std::getline(in, line)) {
    if (!inside) {
      if (line.find("kCatalogue[]") != std::string::npos &&
          line.find('{') != std::string::npos) {
        inside = true;
      }
      continue;
    }
    if (line.find("};") != std::string::npos) break;
    std::size_t pos = 0;
    while ((pos = line.find('"', pos)) != std::string::npos) {
      const std::size_t end = line.find('"', pos + 1);
      if (end == std::string::npos) break;
      const std::string name = line.substr(pos + 1, end - pos - 1);
      bool clean = !name.empty();
      for (char c : name) clean = clean && is_name_byte(c);
      if (clean) names.insert(name);
      pos = end + 1;
    }
  }
  return names;
}

/// Extract the backticked site names from the first cell of the
/// RESILIENCE.md catalogue table — the rows following the header
/// `| site | surface | fires as |`. The table ends at the first
/// non-table line.
std::set<std::string> scan_fault_doc(const fs::path& doc) {
  std::set<std::string> names;
  std::ifstream in(doc);
  std::string line;
  bool inside = false;
  while (std::getline(in, line)) {
    if (!inside) {
      if (line.find("| site ") == 0 && line.find("| surface ") !=
                                           std::string::npos) {
        inside = true;
      }
      continue;
    }
    if (line.empty() || line[0] != '|') break;
    const std::size_t second = line.find('|', 1);
    if (second == std::string::npos) continue;
    const std::string cell = line.substr(0, second);
    const std::size_t tick = cell.find('`');
    if (tick == std::string::npos) continue;  // the |---| separator row
    const std::size_t end = cell.find('`', tick + 1);
    if (end == std::string::npos) continue;
    const std::string name = cell.substr(tick + 1, end - tick - 1);
    bool clean = !name.empty();
    for (char c : name) clean = clean && is_name_byte(c);
    if (clean) names.insert(name);
  }
  return names;
}

/// Both-direction diff shared by the two modes. Returns the process exit
/// code: 0 agree, 1 mismatch, 2 suspiciously empty scan.
int report_diff(const std::set<std::string>& in_source,
                const std::set<std::string>& in_doc, const fs::path& doc,
                const char* what) {
  if (in_source.empty() || in_doc.empty()) {
    std::fprintf(stderr,
                 "metrics_lint: suspiciously empty scan (source=%zu doc=%zu) "
                 "— the extraction patterns no longer match\n",
                 in_source.size(), in_doc.size());
    return 2;
  }
  int failures = 0;
  for (const std::string& name : in_source) {
    if (in_doc.count(name) == 0) {
      std::fprintf(stderr,
                   "metrics_lint: `%s` is declared in the source but "
                   "missing from %s\n",
                   name.c_str(), doc.string().c_str());
      ++failures;
    }
  }
  for (const std::string& name : in_doc) {
    if (in_source.count(name) == 0) {
      std::fprintf(stderr,
                   "metrics_lint: `%s` is documented in %s but no longer "
                   "declared anywhere in the source\n",
                   name.c_str(), doc.string().c_str());
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "metrics_lint: %d mismatch(es)\n", failures);
    return 1;
  }
  std::fprintf(stderr, "metrics_lint: %zu %s, doc and source agree\n",
               in_source.size(), what);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--fault-sites") {
    if (argc != 4) {
      std::fprintf(stderr,
                   "usage: metrics_lint --fault-sites <RESILIENCE.md> "
                   "<fault.cpp>\n");
      return 2;
    }
    const fs::path doc = argv[2];
    const fs::path source = argv[3];
    for (const fs::path& p : {doc, source}) {
      if (!fs::exists(p)) {
        std::fprintf(stderr, "metrics_lint: no such file: %s\n",
                     p.string().c_str());
        return 2;
      }
    }
    return report_diff(scan_fault_catalogue(source), scan_fault_doc(doc), doc,
                       "fault sites");
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: metrics_lint <catalogue.md> <src-dir>...\n"
                 "       metrics_lint --fault-sites <RESILIENCE.md> "
                 "<fault.cpp>\n");
    return 2;
  }
  const fs::path doc = argv[1];
  if (!fs::exists(doc)) {
    std::fprintf(stderr, "metrics_lint: no such catalogue: %s\n", argv[1]);
    return 2;
  }
  std::vector<fs::path> roots;
  for (int i = 2; i < argc; ++i) {
    if (!fs::is_directory(argv[i])) {
      std::fprintf(stderr, "metrics_lint: no such directory: %s\n", argv[i]);
      return 2;
    }
    roots.emplace_back(argv[i]);
  }

  return report_diff(scan_sources(roots), scan_doc(doc), doc, "metrics");
}
