// cipnet — command-line front end to the library. Run `cipnet` with no
// arguments for the command table (generated from `kCommands` below).
//
// Files: `.g`/`.astg` are petrify-style STGs, everything else the native
// `.cpn` format.

#include <csignal>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "algebra/hide.h"
#include "algebra/parallel.h"
#include "circuit/receptive.h"
#include "io/dot.h"
#include "io/files.h"
#include "net/server.h"
#include "obs/benchdata.h"
#include "obs/buildinfo.h"
#include "obs/flight_recorder.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/postmortem.h"
#include "obs/sink_chrome.h"
#include "obs/sink_jsonl.h"
#include "obs/sink_text.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "petri/invariants.h"
#include "petri/siphons.h"
#include "petri/structure.h"
#include "reach/checkpoint.h"
#include "reach/properties.h"
#include "reach/reachability.h"
#include "sim/simulator.h"
#include "stg/coding.h"
#include "stg/persistency.h"
#include "stg/state_graph.h"
#include "svc/service.h"
#include "synth/synthesize.h"
#include "util/error.h"
#include "util/fault.h"

namespace cipnet::cli {
namespace {

int usage();

/// Split `args` at `-o out`: returns positional args, sets `out`.
std::vector<std::string> split_output(const std::vector<std::string>& args,
                                      std::string& out) {
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      out = args[++i];
    } else {
      positional.push_back(args[i]);
    }
  }
  return positional;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  PetriNet net = load_net(args[0]);
  std::printf("net: %s\n", net.summary().c_str());
  StructureClass cls = classify(net);
  std::printf("marked graph: %s, state machine: %s, free choice: %s, "
              "extended free choice: %s\n",
              cls.marked_graph ? "yes" : "no",
              cls.state_machine ? "yes" : "no",
              cls.free_choice ? "yes" : "no",
              cls.extended_free_choice ? "yes" : "no");
  std::printf("strongly connected: %s\n",
              is_strongly_connected(net) ? "yes" : "no");
  try {
    std::printf("bounded: %s\n",
                check_boundedness(net, 200000) == Boundedness::kBounded
                    ? "yes"
                    : "no");
  } catch (const LimitError&) {
    std::printf("bounded: unknown (state limit)\n");
  }
  try {
    auto flows = place_semiflows(net);
    std::printf("place semiflows: %zu, covered: %s\n", flows.size(),
                covered_by_place_semiflows(net) ? "yes" : "no");
  } catch (const LimitError&) {
    std::printf("place semiflows: too many to enumerate\n");
  }
  try {
    auto commoner = check_commoner(net);
    std::printf("Commoner (every min. siphon holds a marked trap): %s\n",
                commoner.holds ? "yes" : "no");
  } catch (const LimitError&) {
    std::printf("Commoner: siphon enumeration too large\n");
  }
  return 0;
}

int cmd_reach(const std::vector<std::string>& args) {
  ReachOptions options;
  options.max_states = 200000;
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto numeric = [&](std::size_t& out) {
      if (i + 1 >= args.size()) return false;
      out = static_cast<std::size_t>(
          std::strtoull(args[++i].c_str(), nullptr, 10));
      return true;
    };
    auto text = [&](std::string& out) {
      if (i + 1 >= args.size()) return false;
      out = args[++i];
      return true;
    };
    if (args[i] == "--max-states" && numeric(options.max_states)) {
    } else if (args[i] == "--threads" && numeric(options.threads)) {
    } else if (args[i] == "--checkpoint" && text(options.checkpoint_path)) {
    } else if (args[i] == "--checkpoint-every" &&
               numeric(options.checkpoint_every_states)) {
    } else if (args[i] == "--resume" && text(options.resume_path)) {
    } else if (args[i] == "--crash-after-ckpts" &&
               numeric(options.crash_after_checkpoints)) {
    } else if (!args[i].empty() && args[i][0] == '-') {
      return usage();
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.empty() || positional.size() > 2) return usage();
  if (!options.checkpoint_path.empty() &&
      options.checkpoint_every_states == 0) {
    options.checkpoint_every_states = 4096;
  }
  PetriNet net = load_net(positional[0]);
  if (positional.size() == 2) {
    const auto engine = parse_reach_engine(positional[1]);
    if (!engine) {
      std::fprintf(stderr, "unknown engine '%s' (auto|dense|packed)\n",
                   positional[1].c_str());
      return 1;
    }
    options.engine = *engine;
  }
  ReachabilityGraph rg = explore(net, options);
  std::printf("engine: %s (structurally safe: %s)\n", to_string(rg.engine()),
              is_structurally_safe(net) ? "yes" : "no");
  std::printf("states: %zu, edges: %zu\n", rg.state_count(), rg.edge_count());
  // Content digest of the full graph (markings + edges): two runs built
  // the same graph iff these lines match — what resume_smoke.sh diffs
  // across kill/resume runs, engines, and thread counts.
  std::printf("digest: %016llx\n",
              static_cast<unsigned long long>(graph_digest(rg)));
  std::printf("safe: %s, max tokens in a place: %u\n",
              is_safe(rg) ? "yes" : "no", max_tokens_in_any_place(rg));
  auto deadlocks = deadlock_states(rg);
  std::printf("deadlock states: %zu\n", deadlocks.size());
  std::printf("live (L4): %s, dead transitions: %zu\n",
              is_live(net, rg) ? "yes" : "no",
              dead_transitions(net, rg).size());
  return 0;
}

int cmd_lang(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return usage();
  PetriNet net = load_net(args[0]);
  TraceEnumOptions options;
  if (args.size() == 2) options.max_length = std::strtoul(args[1].c_str(), nullptr, 10);
  for (const Trace& t : bounded_language(net, options)) {
    std::printf("%s\n", trace_to_string(t).c_str());
  }
  return 0;
}

int cmd_dot(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  std::printf("%s", to_dot(load_net(args[0]), args[0]).c_str());
  return 0;
}

int cmd_compose(const std::vector<std::string>& raw) {
  std::string out;
  auto args = split_output(raw, out);
  if (args.size() != 2 || out.empty()) return usage();
  PetriNet composed = parallel_net(load_net(args[0]), load_net(args[1]));
  save_net(out, composed, "composed");
  std::printf("wrote %s: %s\n", out.c_str(), composed.summary().c_str());
  return 0;
}

int run_hide(const std::vector<std::string>& raw, bool project_mode) {
  std::string out;
  auto args = split_output(raw, out);
  if (args.size() < 2 || out.empty()) return usage();
  PetriNet net = load_net(args[0]);
  std::vector<std::string> labels(args.begin() + 1, args.end());
  HideOptions options;
  options.epsilon_fallback = true;
  options.simplify_places_between_contractions = true;
  PetriNet result = project_mode ? project(net, labels, options)
                                 : hide_actions(net, labels, options);
  save_net(out, result, project_mode ? "projected" : "hidden");
  std::printf("wrote %s: %s\n", out.c_str(), result.summary().c_str());
  return 0;
}

int cmd_hide(const std::vector<std::string>& raw) {
  return run_hide(raw, /*project_mode=*/false);
}

int cmd_project(const std::vector<std::string>& raw) {
  return run_hide(raw, /*project_mode=*/true);
}

int cmd_expr(const std::vector<std::string>& raw) {
  std::string out;
  auto args = split_output(raw, out);
  if (args.size() != 1 || out.empty()) return usage();
  PetriNet net = net_from_expression(args[0]);
  save_net(out, net, "expr");
  std::printf("wrote %s: %s\n", out.c_str(), net.summary().c_str());
  return 0;
}

int cmd_check(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  Circuit c1 = Circuit::from_stg(args[0], load_stg(args[0]));
  Circuit c2 = Circuit::from_stg(args[1], load_stg(args[1]));
  auto report = check_receptiveness(c1, c2, {200000});
  std::printf("sync transitions checked: %zu\n", report.checked_transitions);
  if (report.receptive()) {
    std::printf("receptive: the composition is consistent\n");
    return 0;
  }
  ComposeResult composed = compose(c1, c2);
  for (const auto& f : report.failures) {
    std::printf("FAILURE %s (output of %s)", f.label.c_str(),
                f.output_on_left ? args[0].c_str() : args[1].c_str());
    if (f.firing_sequence) {
      std::printf("  after:");
      for (TransitionId t : *f.firing_sequence) {
        std::printf(" %s", composed.circuit.net().transition_label(t).c_str());
      }
    }
    std::printf("\n");
  }
  return 1;
}

int cmd_synth(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  Stg stg = load_stg(args[0]);
  auto initial = infer_initial_encoding(stg);
  if (!initial) {
    std::printf("no consistent initial encoding\n");
    return 1;
  }
  StateGraph sg = build_state_graph(stg, *initial);
  std::printf("state graph: %zu states, consistent: %s\n", sg.state_count(),
              sg.is_consistent() ? "yes" : "no");
  std::vector<std::string> outputs = stg.signal_names(SignalKind::kOutput);
  for (const auto& s : stg.signal_names(SignalKind::kInternal)) {
    outputs.push_back(s);
  }
  auto coding = check_coding(sg, outputs);
  std::printf("USC conflicts: %zu, CSC conflicts: %zu\n",
              coding.conflicts.size(), coding.csc_count());
  auto persistency = check_output_persistency(sg, outputs);
  std::printf("output persistency violations: %zu\n",
              persistency.violations.size());
  if (coding.has_csc_violation()) {
    std::printf("not synthesizable without state encoding\n");
    return 1;
  }
  auto result = synthesize(sg, outputs);
  std::printf("%s", result.to_string().c_str());
  return 0;
}

int cmd_sim(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 3) return usage();
  PetriNet net = load_net(args[0]);
  std::size_t steps =
      args.size() > 1 ? std::strtoul(args[1].c_str(), nullptr, 10) : 20;
  std::uint64_t seed =
      args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 1;
  Simulator sim(net, seed);
  WalkResult walk = sim.random_walk(steps);
  std::printf("%s\n", trace_to_string(walk.trace).c_str());
  std::printf("final marking: %s%s\n", walk.final_marking.to_string().c_str(),
              walk.deadlocked ? " (deadlock)" : "");
  return 0;
}

int cmd_profile(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  PetriNet net = load_net(args[0]);

  // `profile` always instruments, independent of --stats/--trace-out (those
  // enabled earlier stay enabled; the counters restart for a clean run).
  obs::ScopedEnable enable(/*reset=*/true);
  auto tree_sink = std::make_shared<obs::TextSink>(std::cout);
  obs::Tracer::instance().add_sink(tree_sink);

  std::size_t states = 0, edges = 0, deadlocks = 0;
  {
    obs::Span root("profile");
    {
      // explore() opens the nested `reach.explore` span itself.
      ReachabilityGraph rg = explore(net, {200000});
      states = rg.state_count();
      edges = rg.edge_count();
      deadlocks = deadlock_states(rg).size();
    }
    {
      obs::Span structural("profile.structure");
      {
        obs::Span s("structure.classify");
        classify(net);
      }
      {
        obs::Span s("structure.scc");
        is_strongly_connected(net);
      }
      try {
        obs::Span s("structure.semiflows");
        place_semiflows(net);
      } catch (const LimitError&) {
      }
      try {
        obs::Span s("structure.siphons");
        check_commoner(net);
      } catch (const LimitError&) {
      }
    }
  }
  obs::Tracer::instance().remove_sink(tree_sink);

  std::printf("states: %zu, edges: %zu, deadlock states: %zu\n", states,
              edges, deadlocks);
  std::printf("%s",
              obs::render_text_report(obs::Registry::instance().snapshot())
                  .c_str());
  return 0;
}

int cmd_bench(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return usage();
  PetriNet net = load_net(args[0]);
  const long reps =
      args.size() == 2 ? std::strtol(args[1].c_str(), nullptr, 10) : 5;
  if (reps <= 0) return usage();
  // Same BENCH_META/BENCH_ROW protocol as the bench binaries, so the output
  // pipes straight into `bench_report aggregate`.
  std::printf("BENCH_META %s\n",
              obs::bench_meta_json("cipnet-bench", args[0]).c_str());
  for (long rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    ReachabilityGraph rg = explore(net, {200000});
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("BENCH_ROW %s\n",
                obs::bench_row_json("explore/" + args[0], rg.state_count(),
                                    wall_s)
                    .c_str());
  }
  return 0;
}

int cmd_report(const std::vector<std::string>& raw) {
  std::string out_path;
  std::string format = "text";
  std::vector<std::string> files;
  const auto positional = split_output(raw, out_path);
  for (std::size_t i = 0; i < positional.size(); ++i) {
    if (positional[i] == "--format" && i + 1 < positional.size()) {
      format = positional[++i];
    } else {
      files.push_back(positional[i]);
    }
  }
  if (files.empty()) return usage();
  obs::PostMortemBuilder builder;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::size_t recognized = builder.ingest(path, text.str());
    std::fprintf(stderr, "report: %s: %zu line(s)\n", path.c_str(),
                 recognized);
  }
  const std::string rendered =
      obs::render_postmortem(builder.finish(), format);
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << rendered;
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}

/// The running TCP server, for the SIGTERM/SIGINT graceful-drain handler.
/// `request_drain` is async-signal-safe (atomic store + eventfd write).
std::atomic<net::Server*> g_serve_server{nullptr};

void serve_drain_signal(int) {
  if (net::Server* server = g_serve_server.load(std::memory_order_relaxed)) {
    server->request_drain();
  }
}

int cmd_serve(const std::vector<std::string>& args) {
  net::ServerOptions server_options;
  svc::ServiceOptions& options = server_options.service;
  options.scheduler.workers = 8;
  bool tcp = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto numeric = [&](std::uint64_t& out) {
      if (i + 1 >= args.size()) return false;
      out = std::strtoull(args[++i].c_str(), nullptr, 10);
      return true;
    };
    std::uint64_t v = 0;
    if (args[i] == "--flight-dump" && i + 1 < args.size()) {
      obs::FlightRecorder::instance().set_dump_path(args[++i]);
    } else if (args[i] == "--listen" && i + 1 < args.size()) {
      std::string error;
      if (!net::parse_hostport(args[++i], server_options.host,
                               server_options.port, error)) {
        std::fprintf(stderr, "error: --listen: %s\n", error.c_str());
        return 2;
      }
      tcp = true;
    } else if (args[i] == "--stdio") {
      tcp = false;
    } else if (args[i] == "--workers" && numeric(v)) {
      options.scheduler.workers = static_cast<std::size_t>(v);
    } else if (args[i] == "--queue" && numeric(v)) {
      options.scheduler.max_queue = static_cast<std::size_t>(v);
    } else if (args[i] == "--cache-mb" && numeric(v)) {
      options.cache.max_bytes = static_cast<std::size_t>(v) << 20;
    } else if (args[i] == "--ttl-ms" && numeric(v)) {
      options.cache.ttl = std::chrono::milliseconds(v);
    } else if (args[i] == "--cache-dir" && i + 1 < args.size()) {
      options.cache_dir = args[++i];
    } else if (args[i] == "--checkpoint-dir" && i + 1 < args.size()) {
      options.checkpoint_dir = args[++i];
    } else if (args[i] == "--deadline-ms" && numeric(v)) {
      options.default_deadline_ms = v;
    } else if (args[i] == "--max-states" && numeric(v)) {
      options.max_states = static_cast<std::size_t>(v);
    } else if (args[i] == "--max-graph-mb" && numeric(v)) {
      options.max_graph_bytes = static_cast<std::size_t>(v) << 20;
    } else if (args[i] == "--max-rss-mb" && numeric(v)) {
      options.max_rss_bytes = static_cast<std::size_t>(v) << 20;
    } else if (args[i] == "--stall-ms" && numeric(v)) {
      options.scheduler.stall_timeout_ms = v;
    } else if (args[i] == "--max-line-bytes" && numeric(v)) {
      options.max_line_bytes = static_cast<std::size_t>(v);
    } else if (args[i] == "--max-conn-jobs" && numeric(v)) {
      server_options.quota.max_inflight_jobs = static_cast<std::size_t>(v);
    } else if (args[i] == "--max-conn-bytes" && numeric(v)) {
      server_options.quota.max_pending_bytes = static_cast<std::size_t>(v);
    } else if (args[i] == "--idle-ms" && numeric(v)) {
      server_options.idle_timeout_ms = v;
    } else if (args[i] == "--max-conns" && numeric(v)) {
      server_options.max_connections = static_cast<std::size_t>(v);
    } else {
      return usage();
    }
  }
  if (tcp) {
    net::Server server(std::move(server_options));
    if (!server.start()) {
      std::fprintf(stderr, "error: %s\n", server.error().c_str());
      return 1;
    }
    // Line-buffered and flushed before run(): harnesses block on this line
    // to learn the ephemeral port.
    std::fprintf(stderr, "listening on %s\n", server.address().c_str());
    std::fflush(stderr);
    g_serve_server.store(&server, std::memory_order_relaxed);
    struct sigaction sa {};
    sa.sa_handler = serve_drain_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    server.run();
    g_serve_server.store(nullptr, std::memory_order_relaxed);
    std::fprintf(stderr, "drained: served %llu frames over %llu connections\n",
                 static_cast<unsigned long long>(server.frames_accepted()),
                 static_cast<unsigned long long>(server.conns_accepted()));
  } else {
    const std::size_t served = svc::serve(std::cin, std::cout, options);
    std::fprintf(stderr, "served %zu requests\n", served);
  }
  // With a dump path configured, leave the final timeline behind on clean
  // exit too — post-mortems shouldn't require a crash.
  if (!obs::FlightRecorder::instance().dump_path().empty()) {
    obs::FlightRecorder::instance().auto_dump("serve-exit");
  }
  return 0;
}

/// The single source of truth for commands: dispatch, usage text, and the
/// README table all derive from this.
struct Command {
  const char* name;
  const char* args;
  const char* help;
  int (*fn)(const std::vector<std::string>&);
};

constexpr Command kCommands[] = {
    {"info", "<file>", "net summary + structural analysis", cmd_info},
    {"reach", "<file> [engine] [--checkpoint F] [--resume F]",
     "state space, deadlocks, safety", cmd_reach},
    {"lang", "<file> [maxlen]", "bounded trace language", cmd_lang},
    {"dot", "<file>", "GraphViz export to stdout", cmd_dot},
    {"compose", "<a> <b> -o <out>", "parallel composition (Def 4.7)",
     cmd_compose},
    {"hide", "<file> <label>... -o <out>", "hiding (Def 4.10)", cmd_hide},
    {"project", "<file> <label>... -o <out>", "keep only the given labels",
     cmd_project},
    {"expr", "\"<expression>\" -o <out>", "build a net from a process term",
     cmd_expr},
    {"check", "<a.g> <b.g>", "receptiveness (Props 5.5/5.6)", cmd_check},
    {"synth", "<file.g>", "consistency, CSC, next-state logic", cmd_synth},
    {"sim", "<file> [steps] [seed]", "random token-game walk", cmd_sim},
    {"profile", "<file>", "explore + structural analysis with span tree",
     cmd_profile},
    {"bench", "<file> [reps]", "time explore over reps (BENCH_ROW lines)",
     cmd_bench},
    {"report", "<artifact>... [--format F] [-o out]",
     "post-mortem from trace/flight/sample artifacts", cmd_report},
    {"serve", "[--listen HOST:PORT] [--workers N] [--queue N] ...",
     "NDJSON analysis service, stdio or TCP (docs/SERVICE.md)",
     cmd_serve},
};

int usage() {
  std::fprintf(stderr, "usage: cipnet <command> [args...] [flags]\n\n");
  std::fprintf(stderr, "commands:\n");
  for (const Command& c : kCommands) {
    std::fprintf(stderr, "  %-8s %-28s %s\n", c.name, c.args, c.help);
  }
  std::fprintf(stderr,
               "\nglobal flags (any command):\n"
               "  --version           print build provenance (git SHA, "
               "compiler, build type)\n"
               "  --stats             print the metrics report to stderr on "
               "exit\n"
               "  --trace-out <file>  write the span trace: .jsonl = JSON "
               "lines, anything\n"
               "                      else = Chrome trace JSON (load in "
               "ui.perfetto.dev)\n"
               "  --progress          heartbeats on stderr during long "
               "explorations\n"
               "  --sample-ms <n>     sample metrics + RSS every n ms "
               "(CIPNET_SAMPLE_MS)\n"
               "  --samples-out <f>   stream samples as JSON lines "
               "(CIPNET_SAMPLES_OUT)\n"
               "  --flight-dump <f>   route flight-recorder dumps (crash or "
               "serve exit) to f\n"
               "  --fault-spec <s>    seeded fault injection, e.g. "
               "'seed=1;reach.cancel=p0.1'\n"
               "                      (docs/RESILIENCE.md; overrides "
               "CIPNET_FAULT_SPEC)\n");
  return 2;
}

int run(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  // `--version` anywhere wins: print build provenance and exit, so server
  // deployments are identifiable from logs without running a command.
  for (const std::string& arg : args) {
    if (arg == "--version") {
      std::printf("cipnet %s (%s, %s)\n", obs::build_git_sha(),
                  obs::build_compiler(), obs::build_type());
      std::printf("features: %s, sanitizer: %s\n", obs::build_features(),
                  obs::build_sanitizer());
      return 0;
    }
  }

  // Strip the global observability flags wherever they appear.
  bool stats = false;
  bool progress = false;
  std::string trace_out;
  std::string fault_spec;
  bool have_fault_spec = false;
  std::string sample_ms;
  std::string samples_out;
  std::string flight_dump;
  for (std::size_t i = 0; i < args.size();) {
    auto take_value = [&](std::string& out) {
      if (i + 1 >= args.size()) return false;
      out = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return true;
    };
    if (args[i] == "--stats") {
      stats = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (args[i] == "--progress") {
      progress = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (args[i] == "--trace-out" && i + 1 < args.size()) {
      take_value(trace_out);
    } else if (args[i] == "--sample-ms" && i + 1 < args.size()) {
      take_value(sample_ms);
    } else if (args[i] == "--samples-out" && i + 1 < args.size()) {
      take_value(samples_out);
    } else if (args[i] == "--flight-dump" && i + 1 < args.size()) {
      take_value(flight_dump);
    } else if (args[i] == "--fault-spec" && i + 1 < args.size()) {
      take_value(fault_spec);
      have_fault_spec = true;
    } else {
      ++i;
    }
  }
  if (args.empty()) return usage();
  // The CLI flag overrides any CIPNET_FAULT_SPEC loaded from the
  // environment; a bad spec is a hard error (typos must not silently
  // disable injection).
  if (have_fault_spec) fault::configure(fault_spec);

  // Every command gets the fatal-signal flight dump, not just `serve`: a
  // crashed analysis should leave its timeline at --flight-dump (or stderr).
  if (!flight_dump.empty()) {
    obs::FlightRecorder::instance().set_dump_path(flight_dump);
  }
  obs::FlightRecorder::instance().install_crash_handler();

  // Time-series sampling: --sample-ms N (fallback CIPNET_SAMPLE_MS) turns
  // the background sampler on; --samples-out (fallback CIPNET_SAMPLES_OUT)
  // streams each sample as a JSONL line.
  obs::SamplerOptions sampler_options;
  bool sampling = false;
  if (!sample_ms.empty()) {
    sampler_options.interval_ms = std::strtoull(sample_ms.c_str(), nullptr, 10);
    sampling = sampler_options.interval_ms > 0;
  } else if (const char* env = std::getenv("CIPNET_SAMPLE_MS")) {
    sampler_options.interval_ms = std::strtoull(env, nullptr, 10);
    sampling = sampler_options.interval_ms > 0;
  }
  if (!samples_out.empty()) {
    sampler_options.jsonl_path = samples_out;
  } else if (const char* env = std::getenv("CIPNET_SAMPLES_OUT")) {
    sampler_options.jsonl_path = env;
  }

  std::optional<obs::ScopedEnable> enable;
  if (stats || !trace_out.empty() || sampling) enable.emplace();
  if (sampling && !obs::TimeSeriesSampler::instance().start(sampler_options)) {
    std::fprintf(stderr, "error: cannot start sampler (samples-out \"%s\")\n",
                 sampler_options.jsonl_path.c_str());
    return 1;
  }
  // The trace file extension picks the sink: `.jsonl` streams span/counter
  // JSON lines, anything else writes Chrome trace-event JSON for Perfetto.
  std::ofstream trace_file;
  std::shared_ptr<obs::JsonlSink> jsonl;
  std::shared_ptr<obs::ChromeSink> chrome;
  if (!trace_out.empty()) {
    trace_file.open(trace_out);
    if (!trace_file) {
      std::fprintf(stderr, "error: cannot open %s\n", trace_out.c_str());
      return 1;
    }
    if (trace_out.ends_with(".jsonl")) {
      jsonl = std::make_shared<obs::JsonlSink>(trace_file);
      obs::Tracer::instance().add_sink(jsonl);
    } else {
      chrome = std::make_shared<obs::ChromeSink>(trace_file);
      obs::Tracer::instance().add_sink(chrome);
    }
  }

  // Progress listeners: a stderr renderer for --progress, and a mirror into
  // the JSONL trace when one is open. Registering any listener activates
  // the ProgressBus, so the in-loop reporters start publishing.
  std::vector<int> progress_listeners;
  if (progress) {
    progress_listeners.push_back(obs::ProgressBus::instance().add_listener(
        [](const obs::ProgressEvent& ev) {
          std::string eta;
          if (ev.target != 0 && ev.eta_ms != 0 && !ev.final_event) {
            char buf[48];
            std::snprintf(buf, sizeof(buf), ", eta %.1fs",
                          static_cast<double>(ev.eta_ms) / 1000.0);
            eta = buf;
          }
          std::fprintf(
              stderr,
              "[%s] %llu items, frontier %llu, %.0f/s, %.1fs%s, rss %.1f "
              "MiB%s\n",
              ev.phase.c_str(), static_cast<unsigned long long>(ev.items),
              static_cast<unsigned long long>(ev.frontier), ev.items_per_sec,
              static_cast<double>(ev.elapsed_ms) / 1000.0, eta.c_str(),
              static_cast<double>(ev.peak_rss_bytes) / (1024.0 * 1024.0),
              ev.final_event ? " (done)" : "");
        }));
  }
  if (jsonl) {
    progress_listeners.push_back(obs::ProgressBus::instance().add_listener(
        [jsonl](const obs::ProgressEvent& ev) { jsonl->write_progress(ev); }));
  }

  const std::string command = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  const Command* chosen = nullptr;
  for (const Command& c : kCommands) {
    if (command == c.name) chosen = &c;
  }
  if (!chosen) return usage();
  // Errors are reported here (not in main) so the stats/trace epilogue
  // still runs — a LimitError plus its counter report is the whole point.
  int rc;
  try {
    rc = chosen->fn(rest);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }

  for (int id : progress_listeners) {
    obs::ProgressBus::instance().remove_listener(id);
  }
  // Stop sampling before snapshotting so the close-out sample (and the last
  // exported JSONL line) precedes the final counters report.
  if (sampling) obs::TimeSeriesSampler::instance().stop();
  // Stamp real process memory into the registry so the reports carry it.
  if (enable) obs::Gauge("mem.peak_rss_bytes").set(obs::peak_rss_bytes());
  if (jsonl) {
    obs::Tracer::instance().remove_sink(jsonl);
    jsonl->write_counters(obs::Registry::instance().snapshot());
  }
  if (chrome) {
    obs::Tracer::instance().remove_sink(chrome);
    chrome->finish();
  }
  if (stats) {
    std::fputs(
        obs::render_text_report(obs::Registry::instance().snapshot()).c_str(),
        stderr);
  }
  return rc;
}

}  // namespace
}  // namespace cipnet::cli

int main(int argc, char** argv) {
  try {
    return cipnet::cli::run(argc, argv);
  } catch (const cipnet::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
