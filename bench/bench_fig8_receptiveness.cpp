// E6 — Figure 8: detecting the inconsistent sender.
//
// Report: composes the Figure 8 sender (rails return to zero without the
// acknowledge) with the translator and prints every receptiveness failure
// with its witness run — Propositions 5.5/5.6 in action. The consistent
// sender passes the same check.
//
// Benchmarks: the reachability-based check vs the structural
// (Theorem 5.7, difference constraints + Bellman-Ford) check on marked-
// graph pipeline families of growing size — the structural check is
// polynomial in the net, independent of the state count.

#include "bench_util.h"
#include "circuit/receptive.h"
#include "models/translator.h"

namespace cipnet {
namespace {

void report() {
  benchutil::header("E6 bench_fig8_receptiveness",
                    "Figure 8 (inconsistent sender detection)");
  const Circuit bad = models::sender_inconsistent();
  const Circuit good = models::sender();
  const Circuit translator = models::translator();

  auto bad_report = check_receptiveness(bad, translator);
  auto good_report = check_receptiveness(good, translator);
  std::printf("%-22s checks  failures  verdict\n", "sender variant");
  std::printf("%-22s %-7zu %-9zu %s\n", "Figure 5 (consistent)",
              good_report.checked_transitions, good_report.failures.size(),
              good_report.receptive() ? "consistent" : "INCONSISTENT");
  std::printf("%-22s %-7zu %-9zu %s\n", "Figure 8 (inconsistent)",
              bad_report.checked_transitions, bad_report.failures.size(),
              bad_report.receptive() ? "consistent" : "INCONSISTENT");

  ComposeResult composed = compose(bad, translator);
  std::printf("\nfailure witnesses (label: run reaching the bad marking):\n");
  for (const auto& failure : bad_report.failures) {
    std::printf("  %-4s:", failure.label.c_str());
    if (failure.firing_sequence) {
      for (TransitionId t : *failure.firing_sequence) {
        std::printf(" %s",
                    composed.circuit.net().transition_label(t).c_str());
      }
    }
    std::printf("\n");
  }
}

/// A marked-graph pair with a length-`n` private tail in the consumer; with
/// `skewed` the consumer delays its readiness so a failure exists.
std::pair<Circuit, Circuit> mg_pair(std::size_t n, bool skewed) {
  PetriNet left;
  PlaceId p0 = left.add_place("p0", 1);
  PlaceId p1 = left.add_place("p1", 0);
  left.add_transition({p0}, "x+", {p1});
  left.add_transition({p1}, "x-", {p0});
  Circuit producer("producer", {}, {"x"}, std::move(left));

  PetriNet right;
  PlaceId q0 = right.add_place("q0", 1);
  PlaceId prev = q0;
  std::vector<std::string> outputs;
  for (std::size_t i = 0; i < n; ++i) {
    PlaceId qi = right.add_place("qd" + std::to_string(i), 0);
    right.add_transition({prev}, "y" + std::to_string(i) + "+", {qi});
    outputs.push_back("y" + std::to_string(i));
    prev = qi;
  }
  PlaceId q1 = right.add_place("q1", 0);
  right.add_transition({prev}, "x+", {q1});
  if (skewed) {
    PlaceId q2 = right.add_place("q2", 0);
    right.add_transition({q1}, "z+", {q2});
    right.add_transition({q2}, "x-", {q0});
    outputs.push_back("z");
  } else {
    right.add_transition({q1}, "x-", {q0});
  }
  Circuit consumer("consumer", {"x"}, outputs, std::move(right));
  return {std::move(producer), std::move(consumer)};
}

void BM_ReceptivenessReachability(benchmark::State& state) {
  auto [producer, consumer] =
      mg_pair(static_cast<std::size_t>(state.range(0)), /*skewed=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_receptiveness(producer, consumer));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReceptivenessReachability)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

void BM_ReceptivenessStructural(benchmark::State& state) {
  auto [producer, consumer] =
      mg_pair(static_cast<std::size_t>(state.range(0)), /*skewed=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_receptiveness_structural(producer, consumer));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReceptivenessStructural)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

void BM_ReceptivenessReduced(benchmark::State& state) {
  // Section 5.3's hide'-based reduction: private tails collapse to
  // dummies before the composition is explored.
  auto [producer, consumer] =
      mg_pair(static_cast<std::size_t>(state.range(0)), /*skewed=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_receptiveness_reduced(producer, consumer));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReceptivenessReduced)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

void BM_Figure8Detection(benchmark::State& state) {
  const Circuit bad = models::sender_inconsistent();
  const Circuit translator = models::translator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_receptiveness(bad, translator));
  }
}
BENCHMARK(BM_Figure8Detection);

}  // namespace
}  // namespace cipnet

int main(int argc, char** argv) {
  cipnet::report();
  std::printf("\n");
  return cipnet::benchutil::run_benchmarks(argc, argv);
}
