// E4 — Table 1: the sender/receiver command translation tables.
//
// Report: prints both tables and machine-checks them — for every sender
// command, the 4-phase rail pattern of Table 1(a) is a trace of the sender
// STG (and wrong rail pairs are not); dually for the receiver with Table
// 1(b). Also validates the delay-insensitive encodings of Section 3 that
// generalize this fixed 2-wire scheme (one-hot, dual-rail, m-of-n).
//
// Benchmarks: encoding construction/validation and sender/receiver model
// construction + language extraction.

#include "bench_util.h"
#include "cip/encoding.h"
#include "lang/ops.h"
#include "models/translator.h"

namespace cipnet {
namespace {

void report() {
  benchutil::header("E4 bench_table1_translation", "Table 1 (translation tables)");

  const Circuit sender = models::sender();
  Dfa sender_lang = canonical_language(sender.net());
  std::printf("(a) sender:    command  ->  rails     round-trip trace check\n");
  for (const auto& row : models::sender_translation_table()) {
    std::vector<std::string> good{row.command + "~", row.rail_a + "+",
                                  row.rail_b + "+", "n+",  row.rail_a + "-",
                                  row.rail_b + "-", "n-"};
    // Swap in the wrong b-rail: must be rejected.
    std::string wrong_b = row.rail_b == "b0" ? "b1" : "b0";
    std::vector<std::string> bad{row.command + "~", row.rail_a + "+",
                                 wrong_b + "+"};
    bool ok = sender_lang.accepts(good) && !sender_lang.accepts(bad);
    std::printf("    %-6s~  ->  %s+ %s+   %s\n", row.command.c_str(),
                row.rail_a.c_str(), row.rail_b.c_str(),
                ok ? "OK" : "MISMATCH");
  }

  const Circuit receiver = models::receiver();
  Dfa receiver_lang = canonical_language(receiver.net());
  std::printf("(b) receiver:  rails    ->  command   round-trip trace check\n");
  for (const auto& row : models::receiver_translation_table()) {
    std::vector<std::string> good{row.rail_a + "+", row.rail_b + "+",
                                  row.command + "~", "r+", row.rail_a + "-",
                                  row.rail_b + "-", "r-"};
    std::vector<std::string> bad{row.rail_a + "+", row.command + "~"};
    bool ok = receiver_lang.accepts(good) && !receiver_lang.accepts(bad);
    std::printf("    %s+ %s+  ->  %-6s~   %s\n", row.rail_a.c_str(),
                row.rail_b.c_str(), row.command.c_str(),
                ok ? "OK" : "MISMATCH");
  }

  std::printf("\ndelay-insensitive encodings (Section 3, antichain check):\n");
  struct EncRow {
    const char* name;
    DataEncoding enc;
  };
  const std::vector<EncRow> encodings = {
      {"one-hot(4)", DataEncoding::one_hot(4, "oh_")},
      {"dual-rail(2 bits)", DataEncoding::dual_rail(2, "dr_")},
      {"2-of-4", DataEncoding::m_of_n(2, 4, "m24_")},
      {"3-of-6", DataEncoding::m_of_n(3, 6, "m36_")},
  };
  std::printf("    %-18s values  wires  valid\n", "encoding");
  for (const auto& row : encodings) {
    std::printf("    %-18s %-7zu %-6zu %s\n", row.name, row.enc.value_count(),
                row.enc.wire_count(), row.enc.is_valid() ? "yes" : "NO");
  }
}

void BM_BuildSenderModel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::sender());
  }
}
BENCHMARK(BM_BuildSenderModel);

void BM_SenderLanguage(benchmark::State& state) {
  const Circuit sender = models::sender();
  for (auto _ : state) {
    benchmark::DoNotOptimize(canonical_language(sender.net()));
  }
}
BENCHMARK(BM_SenderLanguage);

void BM_MOfNEncoding(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    DataEncoding e = DataEncoding::m_of_n(n / 2, n, "w");
    benchmark::DoNotOptimize(e.is_valid());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MOfNEncoding)->DenseRange(4, 12, 2)->Complexity();

void BM_DualRailEncoding(benchmark::State& state) {
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    DataEncoding e = DataEncoding::dual_rail(bits, "d");
    benchmark::DoNotOptimize(e.is_valid());
  }
}
BENCHMARK(BM_DualRailEncoding)->DenseRange(1, 8);

}  // namespace
}  // namespace cipnet

int main(int argc, char** argv) {
  cipnet::report();
  std::printf("\n");
  return cipnet::benchutil::run_benchmarks(argc, argv);
}
