#pragma once

// Shared helpers for the benchmark harness: scaling net families and the
// report preamble every bench binary prints before running its
// google-benchmark timings. Each binary regenerates one artifact of the
// paper (see DESIGN.md's per-experiment index) — the report section prints
// the paper-shaped rows, the benchmarks measure how the implementation
// scales.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/benchdata.h"
#include "obs/timeseries.h"
#include "petri/net.h"

namespace cipnet::benchutil {

/// A cyclic chain net a0.a1...a(k-1) repeated forever; labels optionally
/// prefixed.
inline PetriNet cycle_chain(std::size_t k, const std::string& prefix) {
  PetriNet net;
  std::vector<PlaceId> places;
  for (std::size_t i = 0; i < k; ++i) {
    places.push_back(
        net.add_place(prefix + "p" + std::to_string(i), i == 0 ? 1 : 0));
  }
  for (std::size_t i = 0; i < k; ++i) {
    net.add_transition({places[i]}, prefix + "a" + std::to_string(i),
                       {places[(i + 1) % k]});
  }
  return net;
}

/// An N-stage synchronized pipeline: stage i is a cycle
/// (s_i . s_{i+1})* sharing label s_{i+1} with the next stage; composing
/// all stages yields one net whose state space grows with N while the net
/// itself grows linearly.
inline PetriNet pipeline_stage(std::size_t i) {
  PetriNet net;
  PlaceId p0 = net.add_place("st" + std::to_string(i) + "_p0", 1);
  PlaceId p1 = net.add_place("st" + std::to_string(i) + "_p1", 0);
  net.add_transition({p0}, "s" + std::to_string(i), {p1});
  net.add_transition({p1}, "s" + std::to_string(i + 1), {p0});
  return net;
}

/// Chain with one hideable internal label per stage:
/// (v_i . h_i)* — hiding all h_i exercises repeated contraction.
inline PetriNet hideable_chain(std::size_t stages) {
  PetriNet net;
  std::vector<PlaceId> places;
  for (std::size_t i = 0; i < 2 * stages; ++i) {
    places.push_back(net.add_place("c" + std::to_string(i), i == 0 ? 1 : 0));
  }
  for (std::size_t i = 0; i < stages; ++i) {
    net.add_transition({places[2 * i]}, "v" + std::to_string(i),
                       {places[2 * i + 1]});
    net.add_transition({places[2 * i + 1]}, "h" + std::to_string(i),
                       {places[(2 * i + 2) % (2 * stages)]});
  }
  return net;
}

inline void header(const char* experiment, const char* artifact) {
  std::printf("================================================================\n");
  std::printf("%s — reproduces %s\n", experiment, artifact);
  std::printf("================================================================\n");
  // Machine-readable preamble: one `BENCH_META {...}` JSON line per binary
  // (experiment/artifact plus git SHA, compiler, and build type from
  // obs/buildinfo), so perf-trajectory tooling can grep bench output
  // without parsing the human report. Per-row results use `machine_row`.
  std::printf("BENCH_META %s\n",
              obs::bench_meta_json(experiment, artifact).c_str());
}

/// One machine-readable result row: `BENCH_ROW {"name":...,"states":N,
/// "wall_s":S}` — JSON after the `BENCH_ROW ` prefix, one line per row.
/// `tools/bench_report aggregate` folds these into the `BENCH_*.json`
/// trajectory format diffable across PRs.
inline void machine_row(const std::string& name, std::size_t states,
                        double wall_seconds) {
  std::printf("BENCH_ROW %s\n",
              obs::bench_row_json(name, states, wall_seconds).c_str());
}

inline int run_benchmarks(int argc, char** argv) {
  // CIPNET_SAMPLE_MS turns the time-series sampler on for the whole run —
  // the toggle `sampler-overhead-check` flips to price a live sampler
  // against the same binary with it off (bench/sampler_overhead.cmake).
  const bool sampling = obs::start_sampler_from_env();
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (sampling) obs::TimeSeriesSampler::instance().stop();
  return 0;
}

}  // namespace cipnet::benchutil
