// E1 — Figure 1: non-deterministic choice with root-unwinding.
//
// Report: rebuilds the paper's example — the choice of two cyclic nets —
// and demonstrates the property the figure illustrates: after a loop
// iteration returns to the (non-root) initial place, the unchosen branch
// stays disabled. Verifies Proposition 4.4 (L(N1+N2) = L(N1) ∪ L(N2))
// against the automata oracle.
//
// Benchmarks: cost of root-unwinding and of k-way choice over cycle nets.

#include "algebra/choice.h"
#include "bench_util.h"
#include "lang/ops.h"
#include "models/figures.h"
#include "reach/reachability.h"

namespace cipnet {
namespace {

using benchutil::cycle_chain;

void report() {
  benchutil::header("E1 bench_fig1_choice", "Figure 1 (choice operator)");
  PetriNet left = models::fig1_left();
  PetriNet right = models::fig1_right();
  PetriNet sum = choice(left, right);
  std::printf("operand (a.b)* : %s\n", left.summary().c_str());
  std::printf("operand (c.d)* : %s\n", right.summary().c_str());
  std::printf("N1 + N2        : %s\n", sum.summary().c_str());

  Dfa dfa = canonical_language(sum);
  struct Row {
    const char* word;
    std::vector<std::string> trace;
    bool expected;
  };
  const std::vector<Row> rows = {
      {"a.b.a (loop in left branch)", {"a", "b", "a"}, true},
      {"c.d.c (loop in right branch)", {"c", "d", "c"}, true},
      {"a.b.c (switch after loop)", {"a", "b", "c"}, false},
      {"a.c   (interleave branches)", {"a", "c"}, false},
  };
  std::printf("\n%-32s expected  got\n", "word");
  for (const Row& row : rows) {
    bool got = dfa.accepts(row.trace);
    std::printf("%-32s %-9s %-9s %s\n", row.word, row.expected ? "in" : "out",
                got ? "in" : "out", got == row.expected ? "OK" : "MISMATCH");
  }

  // Proposition 4.4 against the language-level union.
  Dfa oracle =
      minimize(determinize(union_nfa(nfa_of_net(left), nfa_of_net(right))));
  std::printf("\nProposition 4.4  L(N1+N2) = L(N1) u L(N2): %s\n",
              equivalent(dfa, oracle) ? "verified" : "VIOLATED");
}

void BM_RootUnwinding(benchmark::State& state) {
  PetriNet net = cycle_chain(static_cast<std::size_t>(state.range(0)), "c");
  for (auto _ : state) {
    benchmark::DoNotOptimize(root_unwinding(net));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RootUnwinding)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_BinaryChoice(benchmark::State& state) {
  PetriNet left = cycle_chain(static_cast<std::size_t>(state.range(0)), "l");
  PetriNet right = cycle_chain(static_cast<std::size_t>(state.range(0)), "r");
  for (auto _ : state) {
    benchmark::DoNotOptimize(choice(left, right));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BinaryChoice)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_KWayChoice(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<PetriNet> operands;
  for (std::size_t i = 0; i < k; ++i) {
    operands.push_back(cycle_chain(3, "op" + std::to_string(i)));
  }
  for (auto _ : state) {
    PetriNet sum = operands[0];
    for (std::size_t i = 1; i < k; ++i) sum = choice(sum, operands[i]);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_KWayChoice)->RangeMultiplier(2)->Range(2, 16);

void BM_ChoiceStateSpace(benchmark::State& state) {
  PetriNet left = cycle_chain(static_cast<std::size_t>(state.range(0)), "l");
  PetriNet right = cycle_chain(static_cast<std::size_t>(state.range(0)), "r");
  PetriNet sum = choice(left, right);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explore(sum).state_count());
  }
}
BENCHMARK(BM_ChoiceStateSpace)->RangeMultiplier(2)->Range(4, 64);

}  // namespace
}  // namespace cipnet

int main(int argc, char** argv) {
  cipnet::report();
  std::printf("\n");
  return cipnet::benchutil::run_benchmarks(argc, argv);
}
