// E2 — Figure 2: parallel composition ((a+b).c)* || (a.d.a.e)*.
//
// Report: rebuilds the paper's example, prints the composed net's shape
// (the figure's net has the two operands glued at the two joined `a`
// transitions) and verifies Theorem 4.5 (L(N1||N2) = L(N1)||L(N2)) against
// the synchronized-shuffle oracle.
//
// Benchmarks: composition cost grows linearly with net size while the
// state space of the result grows much faster — the motivation for
// net-level operators (Section 1: "avoids potential state space explosion
// problems encountered by state based techniques").

#include "algebra/parallel.h"
#include "bench_util.h"
#include "lang/ops.h"
#include "models/figures.h"
#include "reach/reachability.h"
#include "util/sorted_set.h"

namespace cipnet {
namespace {

using benchutil::pipeline_stage;

void report() {
  benchutil::header("E2 bench_fig2_parallel", "Figure 2 (parallel composition)");
  PetriNet left = models::fig2_left();
  PetriNet right = models::fig2_right();
  auto composed = parallel(left, right);
  std::printf("((a+b).c)*      : %s\n", left.summary().c_str());
  std::printf("(a.d.a.e)*      : %s\n", right.summary().c_str());
  std::printf("composition     : %s\n", composed.net.summary().c_str());
  std::size_t joined = 0;
  for (const auto& info : composed.transitions) {
    joined += info.origin == ParallelResult::Origin::kJoined ? 1 : 0;
  }
  std::printf("joined `a` transitions: %zu (1 in left x 2 in right)\n",
              joined);
  std::printf("states of composition : %zu\n",
              explore(composed.net).state_count());

  Dfa dfa = canonical_language(composed.net);
  struct Row {
    const char* word;
    std::vector<std::string> trace;
    bool expected;
  };
  const std::vector<Row> rows = {
      {"a.d.c.a.e.c", {"a", "d", "c", "a", "e", "c"}, true},
      {"b.c.a.d", {"b", "c", "a", "d"}, true},
      {"a.a (needs c between)", {"a", "a"}, false},
      {"d (needs a first)", {"d"}, false},
  };
  std::printf("\n%-28s expected  got\n", "word");
  for (const Row& row : rows) {
    bool got = dfa.accepts(row.trace);
    std::printf("%-28s %-9s %-9s %s\n", row.word, row.expected ? "in" : "out",
                got ? "in" : "out", got == row.expected ? "OK" : "MISMATCH");
  }

  auto shared = sorted_set::set_intersection(left.alphabet(), right.alphabet());
  Dfa oracle = minimize(determinize(
      sync_product(nfa_of_net(left), nfa_of_net(right), shared)));
  std::printf("\nTheorem 4.5  L(N1||N2) = L(N1)||L(N2): %s\n",
              equivalent(dfa, oracle) ? "verified" : "VIOLATED");
}

PetriNet compose_pipeline(std::size_t stages) {
  PetriNet net = pipeline_stage(0);
  for (std::size_t i = 1; i < stages; ++i) {
    net = parallel_net(net, pipeline_stage(i));
  }
  return net;
}

void BM_ComposePipeline(benchmark::State& state) {
  const std::size_t stages = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compose_pipeline(stages));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ComposePipeline)->RangeMultiplier(2)->Range(2, 64)->Complexity();

void BM_PipelineStateSpace(benchmark::State& state) {
  const std::size_t stages = static_cast<std::size_t>(state.range(0));
  PetriNet net = compose_pipeline(stages);
  std::size_t states = 0;
  for (auto _ : state) {
    states = explore(net).state_count();
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_PipelineStateSpace)->RangeMultiplier(2)->Range(2, 16);

void BM_AllPairsJoin(benchmark::State& state) {
  // k equally-labeled transitions on each side -> k^2 joins.
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  auto fan = [&](const std::string& prefix) {
    PetriNet net;
    PlaceId p = net.add_place(prefix + "p", 1);
    for (std::size_t i = 0; i < k; ++i) {
      PlaceId q = net.add_place(prefix + "q" + std::to_string(i), 0);
      net.add_transition({p}, "sync", {q});
    }
    return net;
  };
  PetriNet left = fan("l");
  PetriNet right = fan("r");
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel(left, right));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AllPairsJoin)->RangeMultiplier(2)->Range(2, 64)->Complexity();

}  // namespace
}  // namespace cipnet

int main(int argc, char** argv) {
  cipnet::report();
  std::printf("\n");
  return cipnet::benchutil::run_benchmarks(argc, argv);
}
