# Script mode driver behind the `sampler-overhead-check` target: prove a
# live time-series sampler (CIPNET_SAMPLE_MS=100, the documented default
# interval) costs within OVERHEAD of the sampler-off configuration on the
# bench_scalability rows. Same experimental design as flight_overhead.cmake:
# each rep runs the report once with the sampler on and once off,
# **interleaved with alternating order** so slow machine drift (CPU
# frequency, container throttling) lands on both sides equally; medians per
# side are aggregated with bench_report and diffed BOTH directions — a
# two-sided ±OVERHEAD band gated on the GEOMEAN of the rows with medians
# above 50 ms (--min-ms 50 --geomean), because symmetric per-row noise
# cancels across rows while a uniform background-sampler cost does not.
#
# Expected -D inputs: BENCH_BIN, REPORT_BIN, OUT_DIR, REPS, OVERHEAD.

set(outputs_off "")
set(outputs_on "")
foreach(rep RANGE 1 ${REPS})
  # Alternate which side runs first so residual drift within a rep also
  # averages out across reps.
  math(EXPR parity "${rep} % 2")
  if(parity EQUAL 1)
    set(order off on)
  else()
    set(order on off)
  endif()
  foreach(side ${order})
    set(out ${OUT_DIR}/sampler_${side}_run_${rep}.txt)
    if(side STREQUAL "on")
      execute_process(
        COMMAND ${CMAKE_COMMAND} -E env CIPNET_SAMPLE_MS=100
                ${BENCH_BIN} --benchmark_filter=^$
        OUTPUT_FILE ${out}
        RESULT_VARIABLE rc)
    else()
      execute_process(
        COMMAND ${BENCH_BIN} --benchmark_filter=^$
        OUTPUT_FILE ${out}
        RESULT_VARIABLE rc)
    endif()
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "sampler-overhead: ${BENCH_BIN} failed (${side}, rep ${rep}, rc=${rc})")
    endif()
    list(APPEND outputs_${side} ${out})
  endforeach()
endforeach()

foreach(side off on)
  execute_process(
    COMMAND ${REPORT_BIN} aggregate scalability
            -o ${OUT_DIR}/BENCH_sampler_${side}.json ${outputs_${side}}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "sampler-overhead: aggregation failed (${side})")
  endif()
endforeach()

# Two one-sided regression diffs make the two-sided band.
execute_process(
  COMMAND ${REPORT_BIN} diff ${OUT_DIR}/BENCH_sampler_off.json
          ${OUT_DIR}/BENCH_sampler_on.json --threshold ${OVERHEAD}
          --min-ms 50 --geomean
  RESULT_VARIABLE rc_on)
if(NOT rc_on EQUAL 0)
  message(FATAL_ERROR
    "sampler-overhead: a live 100ms sampler costs more than ${OVERHEAD} "
    "over the sampler-off run — shrink the per-sample critical sections")
endif()
execute_process(
  COMMAND ${REPORT_BIN} diff ${OUT_DIR}/BENCH_sampler_on.json
          ${OUT_DIR}/BENCH_sampler_off.json --threshold ${OVERHEAD}
          --min-ms 50 --geomean
  RESULT_VARIABLE rc_off)
if(NOT rc_off EQUAL 0)
  message(FATAL_ERROR
    "sampler-overhead: the sampler-off run is more than ${OVERHEAD} slower "
    "than sampler-on — the measurement is too noisy to trust; rerun on an "
    "idle machine")
endif()
message(STATUS
  "sampler-overhead: sampler on vs off geomean within ±${OVERHEAD}")
