// E3 — Figure 3: hiding as generalized net contraction.
//
// Report: contracts the hidden transition out of the Figure 3 net (general
// variant with conflicts, and the marked-graph variant (c)) and verifies
// Theorem 4.7 (L(hide(N,a)) = hide(L(N),a)) against the language oracle.
//
// Benchmarks: net-level contraction vs state-level hiding (build the
// reachability graph, epsilon-eliminate, determinize) — the paper's
// central claim is that the former "involves no unfolding" and avoids the
// state space; plus the ablation of the simple-collapse fast path.

#include "algebra/hide.h"
#include "bench_util.h"
#include "lang/ops.h"
#include "models/figures.h"

namespace cipnet {
namespace {

using benchutil::hideable_chain;

void report_one(const char* title, const PetriNet& net) {
  PetriNet hidden = hide_action(net, "t");
  std::printf("%-28s before %-34s after %s\n", title, net.summary().c_str(),
              hidden.summary().c_str());
  Dfa lhs = canonical_language(hidden);
  Dfa rhs = minimize(determinize(hide_labels(nfa_of_net(net), {"t"})));
  std::printf("%-28s Theorem 4.7: %s\n", "",
              equivalent(lhs, rhs) ? "verified" : "VIOLATED");
}

void report() {
  benchutil::header("E3 bench_fig3_hiding", "Figure 3 (hiding / contraction)");
  report_one("Figure 3(a) general net", models::fig3_net());
  report_one("Figure 3(c) marked graph", models::fig3_marked_graph());

  // Order independence (Proposition 4.6) on a chain of two hidden labels.
  PetriNet chain = hideable_chain(4);
  PetriNet order1 = hide_action(hide_action(chain, "h0"), "h1");
  PetriNet order2 = hide_action(hide_action(chain, "h1"), "h0");
  std::printf("\nProposition 4.6 (order independence on a 4-stage chain): %s\n",
              equivalent(canonical_language(order1, {"h2", "h3"}),
                         canonical_language(order2, {"h2", "h3"}))
                  ? "verified"
                  : "VIOLATED");
}

void hide_all(const PetriNet& net, std::size_t stages,
              const HideOptions& options) {
  PetriNet current = net;
  for (std::size_t i = 0; i < stages; ++i) {
    current = hide_action(current, "h" + std::to_string(i), options);
  }
  benchmark::DoNotOptimize(current);
}

void BM_NetContraction(benchmark::State& state) {
  const std::size_t stages = static_cast<std::size_t>(state.range(0));
  PetriNet net = hideable_chain(stages);
  HideOptions options;
  for (auto _ : state) hide_all(net, stages, options);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NetContraction)->RangeMultiplier(2)->Range(4, 128)->Complexity();

void BM_NetContractionNoSimpleCollapse(benchmark::State& state) {
  const std::size_t stages = static_cast<std::size_t>(state.range(0));
  PetriNet net = hideable_chain(stages);
  HideOptions options;
  options.allow_simple_collapse = false;  // ablation: always general rule
  for (auto _ : state) hide_all(net, stages, options);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NetContractionNoSimpleCollapse)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity();

void BM_StateLevelHiding(benchmark::State& state) {
  // The state-based alternative the paper argues against: build RG(N),
  // erase the hidden labels at the automaton level, determinize.
  const std::size_t stages = static_cast<std::size_t>(state.range(0));
  PetriNet net = hideable_chain(stages);
  std::vector<std::string> hidden;
  for (std::size_t i = 0; i < stages; ++i) {
    hidden.push_back("h" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        determinize(hide_labels(nfa_of_net(net), hidden)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StateLevelHiding)->RangeMultiplier(2)->Range(4, 128)->Complexity();

/// A chain of joins feeding each other: contracting the `h` labels one
/// after another makes the product places of one contraction feed the
/// next, which is where repeated contraction can cascade. Ablation: the
/// duplicate-place reduction keeps the cascade flat.
PetriNet join_chain(std::size_t stages) {
  PetriNet net;
  PlaceId a = net.add_place("a0", 1);
  PlaceId b = net.add_place("b0", 1);
  for (std::size_t i = 0; i < stages; ++i) {
    PlaceId na = net.add_place("a" + std::to_string(i + 1), 0);
    PlaceId nb = net.add_place("b" + std::to_string(i + 1), 0);
    net.add_transition({a, b}, "h" + std::to_string(i), {na, nb});
    a = na;
    b = nb;
  }
  net.add_transition({a, b}, "end", {});
  return net;
}

void BM_CascadeWithPlaceReduction(benchmark::State& state) {
  const std::size_t stages = static_cast<std::size_t>(state.range(0));
  PetriNet net = join_chain(stages);
  HideOptions options;
  options.simplify_places_between_contractions = true;
  for (auto _ : state) hide_all(net, stages, options);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CascadeWithPlaceReduction)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

void BM_CascadeWithoutPlaceReduction(benchmark::State& state) {
  const std::size_t stages = static_cast<std::size_t>(state.range(0));
  PetriNet net = join_chain(stages);
  HideOptions options;  // raw Definition 4.10 construction
  for (auto _ : state) hide_all(net, stages, options);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CascadeWithoutPlaceReduction)
    ->RangeMultiplier(2)
    ->Range(2, 8)  // exponential without the reduction
    ->Complexity();

void BM_HideForkJoin(benchmark::State& state) {
  // Contraction with |p| = |q| = k: product construction of k^2 places.
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  PetriNet net;
  std::vector<PlaceId> pre, post;
  for (std::size_t i = 0; i < k; ++i) {
    PlaceId src = net.add_place("s" + std::to_string(i), 1);
    PlaceId p = net.add_place("p" + std::to_string(i), 0);
    net.add_transition({src}, "in" + std::to_string(i), {p});
    pre.push_back(p);
  }
  for (std::size_t i = 0; i < k; ++i) {
    PlaceId q = net.add_place("q" + std::to_string(i), 0);
    PlaceId sink = net.add_place("z" + std::to_string(i), 0);
    net.add_transition({q}, "out" + std::to_string(i), {sink});
    post.push_back(q);
  }
  net.add_transition(pre, "t", post);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hide_action(net, "t"));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HideForkJoin)->RangeMultiplier(2)->Range(2, 32)->Complexity();

}  // namespace
}  // namespace cipnet

int main(int argc, char** argv) {
  cipnet::report();
  std::printf("\n");
  return cipnet::benchutil::run_benchmarks(argc, argv);
}
