// E5 — Figures 4-7: the protocol translation module (sender, protocol
// translator, receiver) and its composition.
//
// Report: per-block net sizes, structural class, state-space sizes of the
// pairwise and full compositions, and the paper's consistency claim ("If
// each of these STGs is synthesized correctly, then the global composition
// of them also works correctly in this case") checked via receptiveness.
//
// Benchmarks: composition, reachability and receptiveness on the real
// design.

#include "bench_util.h"
#include "circuit/receptive.h"
#include "models/translator.h"
#include "petri/structure.h"
#include "reach/properties.h"
#include "reach/reachability.h"

namespace cipnet {
namespace {

void report() {
  benchutil::header("E5 bench_fig4to7_translator",
                    "Figures 4-7 (protocol translation module)");
  const Circuit sender = models::sender();
  const Circuit translator = models::translator();
  const Circuit receiver = models::receiver();

  std::printf("%-12s %-36s free-choice  states\n", "block", "net");
  for (const Circuit* block : {&sender, &translator, &receiver}) {
    auto rg = explore(block->net());
    std::printf("%-12s %-36s %-12s %zu\n", block->name().c_str(),
                block->net().summary().c_str(),
                is_free_choice(block->net()) ? "yes" : "no",
                rg.state_count());
  }

  auto st = compose(sender, translator);
  auto str = compose(st.circuit, receiver);
  auto rg_st = explore(st.circuit.net());
  auto rg_full = explore(str.circuit.net());
  std::printf("\n%-24s %-40s states  safe\n", "composition", "net");
  std::printf("%-24s %-40s %-7zu %s\n", "sender||translator",
              st.circuit.net().summary().c_str(), rg_st.state_count(),
              is_safe(rg_st) ? "yes" : "no");
  std::printf("%-24s %-40s %-7zu %s\n", "...||receiver",
              str.circuit.net().summary().c_str(), rg_full.state_count(),
              is_safe(rg_full) ? "yes" : "no");

  std::printf("\nconsistency of the specification (Section 6, para. 1):\n");
  auto r1 = check_receptiveness(sender, translator);
  auto r2 = check_receptiveness(translator, receiver);
  std::printf("  sender     -> translator : %zu sync checks, %zu failures %s\n",
              r1.checked_transitions, r1.failures.size(),
              r1.receptive() ? "(consistent)" : "(INCONSISTENT)");
  std::printf("  translator -> receiver   : %zu sync checks, %zu failures %s\n",
              r2.checked_transitions, r2.failures.size(),
              r2.receptive() ? "(consistent)" : "(INCONSISTENT)");
}

void BM_ComposeStack(benchmark::State& state) {
  const Circuit sender = models::sender();
  const Circuit translator = models::translator();
  const Circuit receiver = models::receiver();
  for (auto _ : state) {
    auto st = compose(sender, translator);
    auto full = compose(st.circuit, receiver);
    benchmark::DoNotOptimize(full);
  }
}
BENCHMARK(BM_ComposeStack);

void BM_FullStackReachability(benchmark::State& state) {
  const Circuit sender = models::sender();
  const Circuit translator = models::translator();
  const Circuit receiver = models::receiver();
  auto full = compose(compose(sender, translator).circuit, receiver);
  std::size_t states = 0;
  for (auto _ : state) {
    states = explore(full.circuit.net()).state_count();
    benchmark::DoNotOptimize(states);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_FullStackReachability);

void BM_ReceptivenessSenderTranslator(benchmark::State& state) {
  const Circuit sender = models::sender();
  const Circuit translator = models::translator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_receptiveness(sender, translator));
  }
}
BENCHMARK(BM_ReceptivenessSenderTranslator);

void BM_ReceptivenessTranslatorReceiver(benchmark::State& state) {
  const Circuit translator = models::translator();
  const Circuit receiver = models::receiver();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_receptiveness(translator, receiver));
  }
}
BENCHMARK(BM_ReceptivenessTranslatorReceiver);

}  // namespace
}  // namespace cipnet

int main(int argc, char** argv) {
  cipnet::report();
  std::printf("\n");
  return cipnet::benchutil::run_benchmarks(argc, argv);
}
