// E8 — the paper's complexity claims (Sections 1, 4, 5.3):
//   * "These methods all operate at the Petri net level, which avoids
//     potential state space explosion problems encountered by state based
//     techniques."
//   * "Many properties can be checked structurally for marked graphs and
//     free-choice nets in polynomial time, but which require exponential
//     time for general Petri nets."
//
// Report: a table of N-stage concurrent systems showing net size (linear
// in N) against state count (exponential in N), with wall-clock for the
// net-level composition vs state-space construction; and marked-graph
// liveness/safeness via the structural Murata checks vs via reachability.
//
// Benchmarks: the same comparisons as google-benchmark sweeps.

#include <chrono>

#include "algebra/parallel.h"
#include "bench_util.h"
#include "petri/marked_graph.h"
#include "reach/properties.h"
#include "reach/reachability.h"

namespace cipnet {
namespace {

using benchutil::cycle_chain;

/// N independent 2-state cycles composed in parallel: |states| = 2^N while
/// the net has 2N places.
PetriNet independent_cycles(std::size_t n) {
  PetriNet net = cycle_chain(2, "m0_");
  for (std::size_t i = 1; i < n; ++i) {
    net = parallel_net(net, cycle_chain(2, "m" + std::to_string(i) + "_"));
  }
  return net;
}

double seconds(auto fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void report() {
  benchutil::header("E8 bench_scalability",
                    "complexity claims (net-level vs state-level)");
  std::printf("%-4s %-28s %-10s %-14s %-14s\n", "N", "composed net", "states",
              "compose (s)", "reach (s)");
  for (std::size_t n : {2u, 4u, 8u, 12u, 16u}) {
    PetriNet net;
    double compose_time = seconds([&] { net = independent_cycles(n); });
    std::size_t states = 0;
    double reach_time = seconds([&] { states = explore(net).state_count(); });
    std::printf("%-4zu %-28s %-10zu %-14.6f %-14.6f\n", n,
                net.summary().c_str(), states, compose_time, reach_time);
    benchutil::machine_row("independent_cycles/" + std::to_string(n), states,
                           compose_time + reach_time);
  }
  std::printf(
      "\nnet size and composition time grow linearly in N; the state space\n"
      "and its construction grow exponentially — the shape behind the\n"
      "paper's net-level argument.\n");

  // Explore-core focus: the arena/interner hot loop, single- vs
  // multi-threaded and dense vs packed, on the largest cycle family
  // (2^16 states). states/sec is the number the flat store + single-probe
  // intern are optimizing; the packed rows run the same BFS over
  // one-bit-per-place markings (the family is 1-safe, so auto would pick
  // packed too — both engines are pinned here to keep the rows comparable).
  std::printf("\nexplore core on independent_cycles/16 (2^16 states)\n");
  std::printf("%-8s %-10s %-10s %-12s %-14s\n", "engine", "threads", "states",
              "wall (s)", "states/sec");
  PetriNet big = independent_cycles(16);
  for (ReachEngine engine : {ReachEngine::kDense, ReachEngine::kPacked}) {
    for (std::size_t threads : {1u, 2u, 4u}) {
      ReachOptions options;
      options.threads = threads;
      options.engine = engine;
      std::size_t states = 0;
      double t =
          seconds([&] { states = explore(big, options).state_count(); });
      std::printf("%-8s %-10zu %-10zu %-12.6f %-14.0f\n", to_string(engine),
                  threads, states, t, t > 0 ? states / t : 0.0);
      const std::string row = engine == ReachEngine::kPacked
                                  ? "explore_packed" + std::to_string(threads)
                                  : "explore_mt" + std::to_string(threads);
      benchutil::machine_row(row + "/16", states, t);
    }
  }

  std::printf("\nmarked-graph checks: structural (Murata) vs reachability\n");
  std::printf("%-6s %-16s %-16s %-12s %-12s\n", "k", "structural live",
              "structural safe", "struct (s)", "reach (s)");
  for (std::size_t k : {8u, 64u, 256u}) {
    // A k-stage marked-graph ring with 2 tokens: live, not safe.
    PetriNet ring = cycle_chain(k, "r");
    ring.set_initial_tokens(PlaceId(1), 1);  // second token
    bool live = false, safe = true;
    double struct_time = seconds([&] {
      live = mg_is_live(ring);
      safe = mg_is_safe(ring);
    });
    double reach_time = seconds([&] {
      auto rg = explore(ring);
      benchmark::DoNotOptimize(is_live(ring, rg));
      benchmark::DoNotOptimize(is_safe(rg));
    });
    std::printf("%-6zu %-16s %-16s %-12.6f %-12.6f\n", k,
                live ? "live" : "not live", safe ? "safe" : "unsafe",
                struct_time, reach_time);
    benchutil::machine_row("mg_ring/" + std::to_string(k), k,
                           struct_time + reach_time);
  }
}

void BM_NetLevelCompose(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(independent_cycles(n));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NetLevelCompose)->DenseRange(2, 16, 2)->Complexity();

void BM_StateSpaceConstruction(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  PetriNet net = independent_cycles(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(explore(net).state_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StateSpaceConstruction)->DenseRange(2, 16, 2)->Complexity();

void BM_StateSpaceConstructionMT(benchmark::State& state) {
  PetriNet net = independent_cycles(16);
  ReachOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(explore(net, options).state_count());
  }
}
BENCHMARK(BM_StateSpaceConstructionMT)->Arg(1)->Arg(2)->Arg(4);

void BM_StructuralLiveness(benchmark::State& state) {
  PetriNet ring = cycle_chain(static_cast<std::size_t>(state.range(0)), "r");
  for (auto _ : state) {
    benchmark::DoNotOptimize(mg_is_live(ring));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StructuralLiveness)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

void BM_StructuralSafeness(benchmark::State& state) {
  PetriNet ring = cycle_chain(static_cast<std::size_t>(state.range(0)), "r");
  for (auto _ : state) {
    benchmark::DoNotOptimize(mg_is_safe(ring));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StructuralSafeness)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

void BM_ReachabilityLiveness(benchmark::State& state) {
  PetriNet ring = cycle_chain(static_cast<std::size_t>(state.range(0)), "r");
  for (auto _ : state) {
    auto rg = explore(ring);
    benchmark::DoNotOptimize(is_live(ring, rg));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ReachabilityLiveness)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

void BM_BoundednessCheck(benchmark::State& state) {
  PetriNet net = independent_cycles(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_boundedness(net));
  }
}
BENCHMARK(BM_BoundednessCheck)->DenseRange(2, 10, 2);

}  // namespace
}  // namespace cipnet

int main(int argc, char** argv) {
  cipnet::report();
  std::printf("\n");
  return cipnet::benchutil::run_benchmarks(argc, argv);
}
