// E7 — Figure 9: compositional simplification with the restricted sender.
//
// Report: regenerates the paper's result rows — the restricted sender of
// Figure 9(a) never issues `rec`, so projecting sender||translator onto the
// translator's interface (Theorem 5.1) and removing dead transitions yields
// the simplified translator of Figure 9(b); the simplified receiver of
// Figure 9(c) follows the same way. Prints before/after sizes and checks
// the behavioral facts the figure encodes (no DATA/STROBE sampling, no
// mute command).
//
// Benchmarks: simplification cost, and the dead-transition removal on
// marked graphs (structural, polynomial) vs general nets (reachability).

#include "bench_util.h"
#include "circuit/simplify.h"
#include "lang/ops.h"
#include "models/translator.h"
#include "reach/dead.h"

namespace cipnet {
namespace {

void report() {
  benchutil::header("E7 bench_fig9_simplification",
                    "Figure 9 (compositional simplification)");
  const Circuit translator = models::translator();
  const Circuit receiver = models::receiver();
  const Circuit restricted = models::sender_restricted();

  auto tr = simplify_against(translator, restricted);
  auto env = compose(restricted, translator);
  auto rc = simplify_against(receiver, env.circuit);

  std::printf("%-12s %8s %8s %8s %8s %8s\n", "block", "P before", "T before",
              "P after", "T after", "dead rm");
  auto row = [](const char* name, const SimplifyStats& s) {
    std::printf("%-12s %8zu %8zu %8zu %8zu %8zu\n", name, s.places_before,
                s.transitions_before, s.places_after, s.transitions_after,
                s.dead_transitions_removed);
  };
  row("translator", tr.stats);
  row("receiver", rc.stats);

  Dfa tr_lang = canonical_language(tr.simplified.net(),
                                   {std::string(kEpsilonLabel)});
  Dfa rc_lang = canonical_language(rc.simplified.net(),
                                   {std::string(kEpsilonLabel)});
  std::printf("\nbehavioral facts of Figure 9:\n");
  std::printf("  simplified translator samples DATA/STROBE:   %s\n",
              tr_lang.accepts({"d="}) ? "yes (WRONG)" : "no (as in 9(b))");
  std::printf("  simplified translator can send mute (p0,q1): %s\n",
              tr_lang.accepts({"p0+", "q1+"}) || tr_lang.accepts({"q1+", "p0+"})
                  ? "yes (WRONG)"
                  : "no (as in 9(b))");
  std::printf("  simplified receiver still handles start:     %s\n",
              rc_lang.accepts({"p0+", "q0+", "start~"}) ? "yes" : "NO (wrong)");
  std::printf("  simplified receiver still handles mute:      %s\n",
              rc_lang.accepts({"p0+", "q1+", "mute~"}) ? "yes (WRONG)"
                                                        : "no (as in 9(c))");

  // Theorem 5.1 on the design: the simplified behavior is a subset.
  const Circuit original = models::translator();
  Dfa orig_lang = canonical_language(original.net(),
                                     {std::string(kEpsilonLabel)});
  auto witness = subset_witness(tr_lang, orig_lang);
  std::printf("  Theorem 5.1 L(simplified) subset of L(original): %s\n",
              witness ? "VIOLATED" : "verified");
}

void BM_SimplifyTranslator(benchmark::State& state) {
  const Circuit translator = models::translator();
  const Circuit restricted = models::sender_restricted();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simplify_against(translator, restricted));
  }
}
BENCHMARK(BM_SimplifyTranslator);

void BM_SimplifyReceiver(benchmark::State& state) {
  const Circuit receiver = models::receiver();
  auto env = compose(models::sender_restricted(), models::translator());
  for (auto _ : state) {
    benchmark::DoNotOptimize(simplify_against(receiver, env.circuit));
  }
}
BENCHMARK(BM_SimplifyReceiver);

void BM_DeadRemovalMarkedGraph(benchmark::State& state) {
  // Marked-graph chain with a dead (token-free) tail of length n: the
  // structural fixpoint is polynomial.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  PetriNet net;
  PlaceId p0 = net.add_place("p0", 1);
  PlaceId p1 = net.add_place("p1", 0);
  net.add_transition({p0}, "live0", {p1});
  net.add_transition({p1}, "live1", {p0});
  PlaceId z0 = net.add_place("z0", 0);
  PlaceId prev = z0;
  for (std::size_t i = 0; i < n; ++i) {
    PlaceId zi = net.add_place("z" + std::to_string(i + 1), 0);
    net.add_transition({prev}, "dead" + std::to_string(i), {zi});
    prev = zi;
  }
  net.add_transition({prev}, "deadloop", {z0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(remove_dead_transitions(net));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DeadRemovalMarkedGraph)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity();

void BM_DeadRemovalGeneralNet(benchmark::State& state) {
  // The same chain plus one conflict place: forces the reachability path.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  PetriNet net;
  PlaceId p0 = net.add_place("p0", 1);
  PlaceId p1 = net.add_place("p1", 0);
  PlaceId p2 = net.add_place("p2", 0);
  net.add_transition({p0}, "pick1", {p1});
  net.add_transition({p0}, "pick2", {p2});
  net.add_transition({p1}, "back1", {p0});
  net.add_transition({p2}, "back2", {p0});
  PlaceId prev = net.add_place("z0", 0);
  for (std::size_t i = 0; i < n; ++i) {
    PlaceId zi = net.add_place("z" + std::to_string(i + 1), 0);
    net.add_transition({prev}, "dead" + std::to_string(i), {zi});
    prev = zi;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(remove_dead_transitions(net));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DeadRemovalGeneralNet)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity();

}  // namespace
}  // namespace cipnet

int main(int argc, char** argv) {
  cipnet::report();
  std::printf("\n");
  return cipnet::benchutil::run_benchmarks(argc, argv);
}
