# Script mode driver behind the `bench-check` target: run the
# bench_scalability report REPS times (google-benchmark sweeps filtered
# out — the BENCH_ROW rows come from the report section), aggregate the
# medians with bench_report, and diff against the committed baseline.
# Fails the build on a wall-time regression beyond THRESHOLD.
#
# Expected -D inputs: BENCH_BIN, REPORT_BIN, BASELINE, OUT_DIR, REPS,
# THRESHOLD.

set(outputs "")
foreach(rep RANGE 1 ${REPS})
  set(out ${OUT_DIR}/bench_check_run_${rep}.txt)
  execute_process(
    COMMAND ${BENCH_BIN} --benchmark_filter=^$
    OUTPUT_FILE ${out}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench-check: ${BENCH_BIN} failed (rep ${rep})")
  endif()
  list(APPEND outputs ${out})
endforeach()

execute_process(
  COMMAND ${REPORT_BIN} aggregate scalability
          -o ${OUT_DIR}/BENCH_scalability.json ${outputs}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench-check: aggregation failed")
endif()

# Rows under 10 ms cannot hold even a 20% band through a shared machine's
# throttle episodes; the baseline's big rows are the regression signal.
execute_process(
  COMMAND ${REPORT_BIN} diff ${BASELINE} ${OUT_DIR}/BENCH_scalability.json
          --threshold ${THRESHOLD} --min-ms 10
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "bench-check: regression vs ${BASELINE} (threshold ${THRESHOLD}); "
    "if intended, regenerate the baseline with bench_report aggregate")
endif()
message(STATUS "bench-check: no regression vs ${BASELINE}")
