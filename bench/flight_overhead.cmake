# Script mode driver behind the `flight-overhead-check` target: prove the
# always-on observability added to the hot paths — the flight-recorder ring
# and the thread-local trace-context reads — costs within OVERHEAD of the
# disabled configuration on the bench_scalability rows. Each rep runs the
# report once with CIPNET_FLIGHT_DISABLE=1 (recorder off) and once without
# it, **interleaved with alternating order** so slow machine drift (CPU
# frequency, container throttling) lands on both sides equally instead of
# biasing whichever side ran last. Medians per side are aggregated with
# bench_report and diffed BOTH directions at the threshold — a two-sided
# ±OVERHEAD band. Rows with medians at or below 50 ms cannot resolve a
# few-percent band on a shared machine, so only the big rows gate
# (--min-ms 50); and because per-row noise on a shared machine is ±5-10%
# even on 150-300 ms rows, the gate is the GEOMEAN of the gated rows'
# ratios (--geomean): symmetric noise cancels across rows while a uniform
# always-on overhead does not, so the mean resolves the ±2% band that no
# single row can.
#
# Expected -D inputs: BENCH_BIN, REPORT_BIN, OUT_DIR, REPS, OVERHEAD.

set(outputs_off "")
set(outputs_on "")
foreach(rep RANGE 1 ${REPS})
  # Alternate which side runs first so residual drift within a rep also
  # averages out across reps.
  math(EXPR parity "${rep} % 2")
  if(parity EQUAL 1)
    set(order off on)
  else()
    set(order on off)
  endif()
  foreach(side ${order})
    set(out ${OUT_DIR}/flight_${side}_run_${rep}.txt)
    if(side STREQUAL "off")
      execute_process(
        COMMAND ${CMAKE_COMMAND} -E env CIPNET_FLIGHT_DISABLE=1
                ${BENCH_BIN} --benchmark_filter=^$
        OUTPUT_FILE ${out}
        RESULT_VARIABLE rc)
    else()
      execute_process(
        COMMAND ${BENCH_BIN} --benchmark_filter=^$
        OUTPUT_FILE ${out}
        RESULT_VARIABLE rc)
    endif()
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "flight-overhead: ${BENCH_BIN} failed (${side}, rep ${rep}, rc=${rc})")
    endif()
    list(APPEND outputs_${side} ${out})
  endforeach()
endforeach()

foreach(side off on)
  execute_process(
    COMMAND ${REPORT_BIN} aggregate scalability
            -o ${OUT_DIR}/BENCH_flight_${side}.json ${outputs_${side}}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "flight-overhead: aggregation failed (${side})")
  endif()
endforeach()

# Two one-sided regression diffs make the two-sided band.
execute_process(
  COMMAND ${REPORT_BIN} diff ${OUT_DIR}/BENCH_flight_off.json
          ${OUT_DIR}/BENCH_flight_on.json --threshold ${OVERHEAD}
          --min-ms 50 --geomean
  RESULT_VARIABLE rc_on)
if(NOT rc_on EQUAL 0)
  message(FATAL_ERROR
    "flight-overhead: recorder+trace-context cost more than ${OVERHEAD} "
    "over the disabled run — the 'always-on' budget is blown")
endif()
execute_process(
  COMMAND ${REPORT_BIN} diff ${OUT_DIR}/BENCH_flight_on.json
          ${OUT_DIR}/BENCH_flight_off.json --threshold ${OVERHEAD}
          --min-ms 50 --geomean
  RESULT_VARIABLE rc_off)
if(NOT rc_off EQUAL 0)
  message(FATAL_ERROR
    "flight-overhead: the disabled run is more than ${OVERHEAD} slower "
    "than enabled — the measurement is too noisy to trust; rerun on an "
    "idle machine")
endif()
message(STATUS
  "flight-overhead: enabled vs disabled geomean within ±${OVERHEAD}")
