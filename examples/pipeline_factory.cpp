// A scalable CIP application: an N-stage processing pipeline where
// neighbouring stages communicate over abstract control channels. Shows
// how the communicating-net view composes many modules, how the automatic
// handshake expansion scales, and that the end-to-end behavior (tokens
// flow stage by stage) survives expansion.
//
// Run: ./build/examples/example_pipeline_factory [stages]

#include <cstdio>
#include <cstdlib>

#include "cip/cip.h"
#include "lang/ops.h"
#include "reach/properties.h"
#include "reach/reachability.h"

using namespace cipnet;

namespace {

/// Stage i: receive a job from channel ch(i-1), work, pass it on ch(i).
CipNetwork build_pipeline(std::size_t stages) {
  CipNetwork cip;
  std::vector<ModuleId> modules;
  for (std::size_t i = 0; i < stages; ++i) {
    PetriNet stage;
    PlaceId idle = stage.add_place("m" + std::to_string(i) + "_idle", 1);
    PlaceId busy = stage.add_place("m" + std::to_string(i) + "_busy", 0);
    PlaceId done = stage.add_place("m" + std::to_string(i) + "_done", 0);
    std::string work = "work" + std::to_string(i);
    if (i == 0) {
      // The first stage generates jobs spontaneously.
      stage.add_transition({idle}, work + "~", {busy});
    } else {
      stage.add_transition({idle},
                           receive_label("ch" + std::to_string(i - 1)),
                           {busy});
    }
    stage.add_transition({busy}, work + "+", {done});
    if (i + 1 == stages) {
      stage.add_transition({done}, "ship~", {idle});
      modules.push_back(cip.add_module("stage" + std::to_string(i), stage, {},
                                       {work, "ship"}));
    } else {
      stage.add_transition({done}, send_label("ch" + std::to_string(i)),
                           {idle});
      modules.push_back(
          cip.add_module("stage" + std::to_string(i), stage, {}, {work}));
    }
  }
  for (std::size_t i = 0; i + 1 < stages; ++i) {
    cip.add_channel("ch" + std::to_string(i), modules[i], modules[i + 1]);
  }
  return cip;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t stages = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  if (stages < 2) stages = 2;
  std::printf("building a %zu-stage pipeline over abstract channels...\n\n",
              stages);

  CipNetwork cip = build_pipeline(stages);
  cip.validate();

  PetriNet abstract = cip.abstract_composition();
  std::printf("abstract composition: %s\n", abstract.summary().c_str());

  Stg expanded = cip.expanded_composition();
  std::printf("expanded composition: %s\n", expanded.net().summary().c_str());

  ReachabilityGraph rg = explore(expanded.net());
  std::printf("expanded state space: %zu states, safe: %s, deadlocks: %zu\n",
              rg.state_count(), is_safe(rg) ? "yes" : "no",
              deadlock_states(rg).size());

  // End-to-end property: a job must pass through every stage before
  // shipping. Project onto the work pulses and the ship event.
  std::vector<std::string> observable{"ship~"};
  for (std::size_t i = 0; i < stages; ++i) {
    observable.push_back("work" + std::to_string(i) + "+");
  }
  Dfa lang = minimize(
      determinize(project_labels(nfa_of_net(expanded.net()), observable)));
  std::vector<std::string> in_order;
  for (std::size_t i = 0; i < stages; ++i) {
    in_order.push_back("work" + std::to_string(i) + "+");
  }
  in_order.push_back("ship~");
  std::vector<std::string> skip_stage{"work0+", "ship~"};
  std::printf("\njob passes all stages then ships: %s\n",
              lang.accepts(in_order) ? "yes" : "NO");
  std::printf("shipping after skipping stages:   %s\n",
              stages > 1 && lang.accepts(skip_stage) ? "POSSIBLE (bug)"
                                                      : "impossible");
  return 0;
}
