// Figure 8: an inconsistent sender specification whose rails return to zero
// without waiting for the translator's acknowledge. Composed with the
// translator, the receptiveness check of Section 5.3 produces a concrete
// failure witness: a reachable marking where the sender offers a rail edge
// the translator cannot accept, plus the firing sequence leading there.
//
// Run: ./build/examples/example_inconsistent_sender

#include <cstdio>

#include "circuit/receptive.h"
#include "models/translator.h"

using namespace cipnet;

int main() {
  Circuit bad_sender = models::sender_inconsistent();
  Circuit translator = models::translator();

  std::printf("checking %s || %s ...\n\n", bad_sender.name().c_str(),
              translator.name().c_str());
  auto report = check_receptiveness(bad_sender, translator);
  std::printf("sync transitions checked: %zu\n", report.checked_transitions);
  std::printf("failures found:           %zu\n\n", report.failures.size());

  ComposeResult composed = compose(bad_sender, translator);
  for (const auto& failure : report.failures) {
    std::printf("FAILURE on %-4s (output of the %s)\n", failure.label.c_str(),
                failure.output_on_left ? "sender" : "translator");
    if (failure.firing_sequence) {
      std::printf("  witness run:");
      for (TransitionId t : *failure.firing_sequence) {
        std::printf(" %s",
                    composed.circuit.net().transition_label(t).c_str());
      }
      std::printf("\n");
    }
    if (failure.witness) {
      std::printf("  witness marking: %s\n",
                  failure.witness->to_string().c_str());
    }
  }

  std::printf(
      "\nThe consistent sender of Figure 5 passes the same check:\n");
  auto good = check_receptiveness(models::sender(), translator);
  std::printf("  failures: %zu (receptive: %s)\n", good.failures.size(),
              good.receptive() ? "yes" : "no");
  return report.receptive() ? 1 : 0;  // failing is the expected outcome here
}
