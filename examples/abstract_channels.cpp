// Section 3: Communicating Interface Processes with abstract rendez-vous
// channels. Two modules exchange a value over a dual-rail data channel; the
// abstract events a!v / a?v are expanded automatically into a delay-
// insensitive 4-phase handshake, and the expansion is checked against the
// abstract rendez-vous semantics.
//
// Run: ./build/examples/example_abstract_channels

#include <cstdio>

#include "cip/cip.h"
#include "io/astg.h"
#include "lang/ops.h"
#include "reach/trace_enum.h"

using namespace cipnet;

int main() {
  CipNetwork cip;

  // Producer: alternately sends bit 0 and bit 1 over channel `d`.
  PetriNet producer;
  PlaceId s0 = producer.add_place("s0", 1);
  PlaceId s1 = producer.add_place("s1", 0);
  producer.add_transition({s0}, send_label("d", 0), {s1});
  producer.add_transition({s1}, send_label("d", 1), {s0});
  ModuleId mp = cip.add_module("producer", producer, {}, {});

  // Consumer: receives any value, pulses `odd` or `even`.
  PetriNet consumer;
  PlaceId r0 = consumer.add_place("r0", 1);
  PlaceId r1 = consumer.add_place("r1", 0);
  PlaceId r2 = consumer.add_place("r2", 0);
  consumer.add_transition({r0}, receive_label("d", 0), {r1});
  consumer.add_transition({r0}, receive_label("d", 1), {r2});
  consumer.add_transition({r1}, "even~", {r0});
  consumer.add_transition({r2}, "odd~", {r0});
  ModuleId mc = cip.add_module("consumer", consumer, {}, {"even", "odd"});

  DataEncoding encoding = DataEncoding::dual_rail(1, "d_");
  std::printf("dual-rail encoding valid (antichain): %s\n",
              encoding.is_valid() ? "yes" : "no");
  cip.add_channel("d", mp, mc, encoding);
  cip.validate();

  std::printf("\n== expanded producer (abstract events -> 4-phase) ==\n");
  Stg expanded_producer = cip.expand_module(mp);
  std::printf("%s", write_astg(expanded_producer, "producer").c_str());

  std::printf("\n== expanded composition ==\n");
  Stg composed = cip.expanded_composition();
  std::printf("net: %s\n", composed.net().summary().c_str());

  // The headline guarantee of Section 3: expansion preserves the abstract
  // rendez-vous behavior. Hide the handshake wires and compare with the
  // abstract composition projected onto the observable pulses.
  Dfa concrete = minimize(determinize(
      project_labels(nfa_of_net(composed.net()), {"even~", "odd~"})));
  Dfa abstract = minimize(determinize(
      project_labels(nfa_of_net(cip.abstract_composition()),
                     {"even~", "odd~"})));
  auto diff = distinguishing_word(concrete, abstract);
  std::printf(
      "\nexpansion behaviorally equals the abstract rendez-vous: %s\n",
      diff ? "NO (bug!)" : "yes");
  if (diff) {
    std::printf("  differs on: %s\n", trace_to_string(*diff).c_str());
    return 1;
  }

  std::printf("alternation check: even~ then odd~ then even~ ... : %s\n",
              concrete.accepts({"even~", "odd~", "even~"}) &&
                      !concrete.accepts({"even~", "even~"})
                  ? "holds"
                  : "violated");
  return 0;
}
