// Quickstart: build two labeled Petri nets, apply the algebra of the paper
// (parallel composition with rendez-vous, hiding as net contraction), and
// inspect the results — traces, reachability, DOT export.
//
// Run: ./build/examples/example_quickstart

#include <cstdio>

#include "algebra/hide.h"
#include "algebra/parallel.h"
#include "io/dot.h"
#include "reach/reachability.h"
#include "reach/trace_enum.h"

using namespace cipnet;

int main() {
  // A producer: (make . put)* — `put` is the synchronization action.
  PetriNet producer;
  PlaceId p0 = producer.add_place("idle", 1);
  PlaceId p1 = producer.add_place("made", 0);
  producer.add_transition({p0}, "make", {p1});
  producer.add_transition({p1}, "put", {p0});

  // A consumer: (put . use)*.
  PetriNet consumer;
  PlaceId q0 = consumer.add_place("empty", 1);
  PlaceId q1 = consumer.add_place("full", 0);
  consumer.add_transition({q0}, "put", {q1});
  consumer.add_transition({q1}, "use", {q0});

  // Parallel composition (Definition 4.7): `put` is in both alphabets, so
  // the two `put` transitions are joined into one rendez-vous transition.
  auto composed = parallel(producer, consumer);
  std::printf("composed net: %s\n", composed.net.summary().c_str());
  std::printf("shared labels:");
  for (const auto& label : composed.shared_labels) {
    std::printf(" %s", label.c_str());
  }
  std::printf("\n\n");

  // Its reachability graph (Section 2.1).
  ReachabilityGraph rg = explore(composed.net);
  std::printf("reachable states: %zu\n", rg.state_count());

  // Traces up to length 5 (Definition 4.1).
  TraceEnumOptions opts;
  opts.max_length = 5;
  std::printf("traces (<=5):\n");
  for (const Trace& t : bounded_language(composed.net, opts)) {
    std::printf("  %s\n", trace_to_string(t).c_str());
  }

  // Hide the internal synchronization (Definition 4.10): the `put`
  // transition is contracted out of the net — no unfolding, no state
  // space involved.
  PetriNet hidden = hide_action(composed.net, "put");
  std::printf("\nafter hide(N, put): %s\n", hidden.summary().c_str());
  std::printf("traces (<=4):\n");
  opts.max_length = 4;
  for (const Trace& t : bounded_language(hidden, opts)) {
    std::printf("  %s\n", trace_to_string(t).c_str());
  }

  std::printf("\nDOT of the hidden net:\n%s", to_dot(hidden, "hidden").c_str());
  return 0;
}
