// STG-to-logic synthesis flow on two classic asynchronous components: a
// 4-phase handshake controller and a Muller C-element. Shows the state
// graph with binary encodings (Section 2.2), the consistency and coding
// checks, and the derived next-state functions.
//
// Run: ./build/examples/example_synthesis_flow

#include <cstdio>

#include "stg/coding.h"
#include "stg/state_graph.h"
#include "synth/synthesize.h"

using namespace cipnet;

namespace {

void run_flow(const char* title, const Stg& stg,
              const std::vector<std::string>& outputs) {
  std::printf("== %s ==\n", title);
  auto initial = infer_initial_encoding(stg);
  if (!initial) {
    std::printf("no consistent initial encoding exists\n\n");
    return;
  }
  std::printf("inferred initial levels:");
  for (const auto& [signal, level] : *initial) {
    std::printf(" %s=%c", signal.c_str(), level_char(level));
  }
  std::printf("\n");

  StateGraph sg = build_state_graph(stg, *initial);
  std::printf("state graph: %zu states, consistent: %s\n", sg.state_count(),
              sg.is_consistent() ? "yes" : "no");
  for (StateId s : sg.all_states()) {
    std::printf("  s%-3u code=%s  excited:", s.value(),
                sg.encoding_string(s).c_str());
    for (std::size_t i : sg.excited_signals(s)) {
      std::printf(" %s", sg.signal_order()[i].c_str());
    }
    std::printf("\n");
  }

  auto coding = check_coding(sg, outputs);
  std::printf("USC conflicts: %zu, CSC conflicts: %zu\n",
              coding.conflicts.size(), coding.csc_count());
  if (coding.has_csc_violation()) {
    std::printf("cannot synthesize (CSC violation)\n\n");
    return;
  }
  auto result = synthesize(sg, outputs);
  std::printf("next-state functions:\n%s\n", result.to_string().c_str());
}

Stg handshake() {
  Stg stg;
  stg.add_signal("req", SignalKind::kInput);
  stg.add_signal("ack", SignalKind::kOutput);
  PlaceId p0 = stg.add_place("p0", 1);
  PlaceId p1 = stg.add_place("p1", 0);
  PlaceId p2 = stg.add_place("p2", 0);
  PlaceId p3 = stg.add_place("p3", 0);
  stg.add_edge_transition({p0}, "req", EdgeType::kRise, {p1});
  stg.add_edge_transition({p1}, "ack", EdgeType::kRise, {p2});
  stg.add_edge_transition({p2}, "req", EdgeType::kFall, {p3});
  stg.add_edge_transition({p3}, "ack", EdgeType::kFall, {p0});
  return stg;
}

Stg c_element() {
  Stg stg;
  stg.add_signal("a", SignalKind::kInput);
  stg.add_signal("b", SignalKind::kInput);
  stg.add_signal("c", SignalKind::kOutput);
  PlaceId a0 = stg.add_place("a0", 1);
  PlaceId b0 = stg.add_place("b0", 1);
  PlaceId a1 = stg.add_place("a1", 0);
  PlaceId b1 = stg.add_place("b1", 0);
  PlaceId a2 = stg.add_place("a2", 0);
  PlaceId b2 = stg.add_place("b2", 0);
  PlaceId a3 = stg.add_place("a3", 0);
  PlaceId b3 = stg.add_place("b3", 0);
  stg.add_edge_transition({a0}, "a", EdgeType::kRise, {a1});
  stg.add_edge_transition({b0}, "b", EdgeType::kRise, {b1});
  stg.add_edge_transition({a1, b1}, "c", EdgeType::kRise, {a2, b2});
  stg.add_edge_transition({a2}, "a", EdgeType::kFall, {a3});
  stg.add_edge_transition({b2}, "b", EdgeType::kFall, {b3});
  stg.add_edge_transition({a3, b3}, "c", EdgeType::kFall, {a0, b0});
  return stg;
}

}  // namespace

int main() {
  run_flow("4-phase handshake controller", handshake(), {"ack"});
  run_flow("Muller C-element", c_element(), {"c"});
  return 0;
}
