// The complete Section 6 design example: the I2C-style protocol translation
// module of Figure 4 — sender, protocol translator, receiver — built as
// circuits, composed, verified for receptiveness, and compositionally
// simplified against the restricted sender of Figure 9(a).
//
// Run: ./build/examples/example_protocol_translator

#include <cstdio>

#include "circuit/receptive.h"
#include "circuit/simplify.h"
#include "models/translator.h"
#include "reach/properties.h"
#include "reach/reachability.h"

using namespace cipnet;

namespace {

void print_circuit(const Circuit& c) {
  std::printf("%-20s %s  inputs:", c.name().c_str(),
              c.net().summary().c_str());
  for (const auto& s : c.inputs()) std::printf(" %s", s.c_str());
  std::printf("  outputs:");
  for (const auto& s : c.outputs()) std::printf(" %s", s.c_str());
  std::printf("\n");
}

void print_table(const char* title,
                 const std::vector<models::TranslationRow>& rows) {
  std::printf("%s\n", title);
  for (const auto& row : rows) {
    std::printf("  %-6s~  ->  %s+ %s+\n", row.command.c_str(),
                row.rail_a.c_str(), row.rail_b.c_str());
  }
}

}  // namespace

int main() {
  std::printf("== Table 1: translation tables ==\n");
  print_table("(a) sender", models::sender_translation_table());
  print_table("(b) receiver", models::receiver_translation_table());

  std::printf("\n== Figures 5-7: the three blocks ==\n");
  Circuit sender = models::sender();
  Circuit translator = models::translator();
  Circuit receiver = models::receiver();
  print_circuit(sender);
  print_circuit(translator);
  print_circuit(receiver);

  std::printf("\n== Composition of the full stack ==\n");
  auto st = compose(sender, translator);
  auto full = compose(st.circuit, receiver);
  print_circuit(full.circuit);
  ReachabilityGraph rg = explore(full.circuit.net());
  std::printf("reachable states: %zu, safe: %s\n", rg.state_count(),
              is_safe(rg) ? "yes" : "no");

  std::printf("\n== Receptiveness (Propositions 5.5/5.6) ==\n");
  auto r1 = check_receptiveness(sender, translator);
  std::printf("sender     || translator : %s (%zu sync transitions)\n",
              r1.receptive() ? "consistent" : "FAILS",
              r1.checked_transitions);
  auto r2 = check_receptiveness(translator, receiver);
  std::printf("translator || receiver   : %s (%zu sync transitions)\n",
              r2.receptive() ? "consistent" : "FAILS",
              r2.checked_transitions);

  std::printf("\n== Figure 9: compositional simplification ==\n");
  Circuit restricted = models::sender_restricted();
  print_circuit(restricted);
  auto simplified_tr = simplify_against(translator, restricted);
  std::printf(
      "translator: %zu places / %zu transitions  ->  %zu places / %zu "
      "transitions (%zu dead removed)\n",
      simplified_tr.stats.places_before, simplified_tr.stats.transitions_before,
      simplified_tr.stats.places_after, simplified_tr.stats.transitions_after,
      simplified_tr.stats.dead_transitions_removed);

  auto env = compose(restricted, translator);
  auto simplified_rc = simplify_against(receiver, env.circuit);
  std::printf(
      "receiver:   %zu places / %zu transitions  ->  %zu places / %zu "
      "transitions (%zu dead removed)\n",
      simplified_rc.stats.places_before, simplified_rc.stats.transitions_before,
      simplified_rc.stats.places_after, simplified_rc.stats.transitions_after,
      simplified_rc.stats.dead_transitions_removed);
  std::printf(
      "\nThe rec command and the mute forwarding are gone, exactly as in "
      "Figures 9(b)/(c).\n");
  return 0;
}
