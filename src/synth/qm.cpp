#include "synth/qm.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/sorted_set.h"

namespace cipnet {

namespace {
const obs::Counter c_cubes_merged("qm.cubes_merged");
const obs::Counter c_primes("qm.primes");
const obs::Histogram h_cubes("qm.cubes_per_call");
const obs::Histogram h_primes("qm.primes_per_call");
}  // namespace

std::vector<Cube> minimize_sop(int var_count,
                               const std::vector<std::uint32_t>& on,
                               const std::vector<std::uint32_t>& dc) {
  if (on.empty()) return {};
  obs::Span span("synth.qm");
  const std::uint32_t full_mask =
      var_count >= 32 ? ~0u : ((1u << var_count) - 1);

  // Level 0: all on/dc minterms as full cubes.
  std::set<Cube> current;
  for (std::uint32_t m : on) current.insert(Cube{full_mask, m & full_mask});
  for (std::uint32_t m : dc) current.insert(Cube{full_mask, m & full_mask});

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::set<Cube> next;
    std::set<Cube> merged;
    std::vector<Cube> cubes(current.begin(), current.end());
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      for (std::size_t j = i + 1; j < cubes.size(); ++j) {
        if (auto m = Cube::merge(cubes[i], cubes[j])) {
          next.insert(*m);
          merged.insert(cubes[i]);
          merged.insert(cubes[j]);
          c_cubes_merged.add();
        }
      }
    }
    for (const Cube& c : cubes) {
      if (!merged.contains(c)) primes.push_back(c);
    }
    current = std::move(next);
  }
  sorted_set::normalize(primes);
  c_primes.add(primes.size());
  h_cubes.record(on.size() + dc.size());
  h_primes.record(primes.size());

  // Covering: essential primes first, then exact branch-and-bound on small
  // residuals, greedy otherwise (exact covering is NP-hard; the fallback is
  // the standard engineering compromise).
  std::vector<std::uint32_t> remaining = sorted_set::make(on);
  std::vector<Cube> chosen;
  // Essential: an on-minterm covered by exactly one prime.
  for (std::uint32_t m : remaining) {
    const Cube* only = nullptr;
    int count = 0;
    for (const Cube& p : primes) {
      if (p.covers_minterm(m)) {
        ++count;
        only = &p;
      }
    }
    if (count == 1 && std::find(chosen.begin(), chosen.end(), *only) ==
                          chosen.end()) {
      chosen.push_back(*only);
    }
  }
  auto uncovered = [&](const std::vector<Cube>& picked) {
    std::vector<std::uint32_t> still;
    for (std::uint32_t m : remaining) {
      if (!sop_evaluates(picked, m)) still.push_back(m);
    }
    return still;
  };
  remaining = uncovered(chosen);

  constexpr std::size_t kExactLimit = 28;
  if (!remaining.empty() && primes.size() <= kExactLimit) {
    // Branch and bound: pick an uncovered minterm, branch over the primes
    // covering it.
    std::vector<Cube> best;
    bool have_best = false;
    std::vector<Cube> picked;
    auto recurse = [&](auto&& self, const std::vector<std::uint32_t>& todo)
        -> void {
      if (have_best && picked.size() + (todo.empty() ? 0 : 1) >= best.size()) {
        if (!todo.empty()) return;
      }
      if (todo.empty()) {
        if (!have_best || picked.size() < best.size()) {
          best = picked;
          have_best = true;
        }
        return;
      }
      std::uint32_t m = todo.front();
      for (const Cube& p : primes) {
        if (!p.covers_minterm(m)) continue;
        picked.push_back(p);
        std::vector<std::uint32_t> next;
        for (std::uint32_t x : todo) {
          if (!p.covers_minterm(x)) next.push_back(x);
        }
        self(self, next);
        picked.pop_back();
      }
    };
    recurse(recurse, remaining);
    chosen.insert(chosen.end(), best.begin(), best.end());
  } else {
    while (!remaining.empty()) {
      const Cube* best = nullptr;
      std::size_t best_cover = 0;
      for (const Cube& p : primes) {
        std::size_t cover = 0;
        for (std::uint32_t m : remaining) {
          if (p.covers_minterm(m)) ++cover;
        }
        if (cover > best_cover ||
            (cover == best_cover && best && cover > 0 &&
             p.literal_count() < best->literal_count())) {
          best_cover = cover;
          best = &p;
        }
      }
      chosen.push_back(*best);
      remaining = uncovered(chosen);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
  return chosen;
}

}  // namespace cipnet
