#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cipnet {

/// A product term over up to 32 boolean variables: variable `i` is a
/// literal iff bit `i` of `mask` is set, with polarity bit `i` of `value`.
/// An all-zero mask is the constant 1.
struct Cube {
  std::uint32_t mask = 0;
  std::uint32_t value = 0;

  [[nodiscard]] bool covers_minterm(std::uint32_t minterm) const {
    return (minterm & mask) == (value & mask);
  }

  /// Every point of `other` is a point of this cube.
  [[nodiscard]] bool covers_cube(const Cube& other) const {
    return (mask & other.mask) == mask && (other.value & mask) == (value & mask);
  }

  /// The adjacency merge of Quine-McCluskey: two cubes with the same mask
  /// differing in exactly one literal combine into one with that literal
  /// dropped.
  [[nodiscard]] static std::optional<Cube> merge(const Cube& a, const Cube& b);

  [[nodiscard]] int literal_count() const;

  /// Render as "a & !b" over the given variable names; "1" for the full
  /// cube.
  [[nodiscard]] std::string to_string(
      const std::vector<std::string>& variables) const;

  friend bool operator==(const Cube& a, const Cube& b) = default;
  friend auto operator<=>(const Cube& a, const Cube& b) = default;
};

/// Render a sum-of-products; "0" when empty.
[[nodiscard]] std::string sop_to_string(
    const std::vector<Cube>& sop, const std::vector<std::string>& variables);

/// Evaluate an SOP on a minterm.
[[nodiscard]] bool sop_evaluates(const std::vector<Cube>& sop,
                                 std::uint32_t minterm);

}  // namespace cipnet
