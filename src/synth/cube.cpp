#include "synth/cube.h"

#include <bit>

namespace cipnet {

std::optional<Cube> Cube::merge(const Cube& a, const Cube& b) {
  if (a.mask != b.mask) return std::nullopt;
  std::uint32_t diff = (a.value ^ b.value) & a.mask;
  if (std::popcount(diff) != 1) return std::nullopt;
  return Cube{a.mask & ~diff, a.value & ~diff};
}

int Cube::literal_count() const { return std::popcount(mask); }

std::string Cube::to_string(const std::vector<std::string>& variables) const {
  if (mask == 0) return "1";
  std::string out;
  for (std::size_t i = 0; i < variables.size(); ++i) {
    if (!(mask & (1u << i))) continue;
    if (!out.empty()) out += " & ";
    if (!(value & (1u << i))) out += "!";
    out += variables[i];
  }
  return out;
}

std::string sop_to_string(const std::vector<Cube>& sop,
                          const std::vector<std::string>& variables) {
  if (sop.empty()) return "0";
  std::string out;
  for (std::size_t i = 0; i < sop.size(); ++i) {
    if (i != 0) out += " | ";
    out += sop[i].to_string(variables);
  }
  return out;
}

bool sop_evaluates(const std::vector<Cube>& sop, std::uint32_t minterm) {
  for (const Cube& c : sop) {
    if (c.covers_minterm(minterm)) return true;
  }
  return false;
}

}  // namespace cipnet
