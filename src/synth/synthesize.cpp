#include "synth/synthesize.h"

#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/qm.h"
#include "util/error.h"

namespace cipnet {

namespace {
const obs::Counter c_functions("synth.functions");
const obs::Counter c_minterms("synth.minterms");
}  // namespace

std::string SynthesisResult::to_string() const {
  std::string out;
  for (const auto& f : functions) {
    out += f.signal + "' = " + sop_to_string(f.sop, variables) + "\n";
  }
  return out;
}

std::size_t SynthesisResult::total_literals() const {
  std::size_t n = 0;
  for (const auto& f : functions) {
    for (const Cube& c : f.sop) n += static_cast<std::size_t>(c.literal_count());
  }
  return n;
}

namespace {

/// Expand a ternary encoding into the minterms it covers.
std::vector<std::uint32_t> expand_minterms(const Encoding& e,
                                           std::size_t max_unknown_bits) {
  std::vector<std::size_t> unknowns;
  std::uint32_t base = 0;
  for (std::size_t i = 0; i < e.size(); ++i) {
    if (e[i] == Level::kHigh) base |= (1u << i);
    if (e[i] == Level::kUnknown) unknowns.push_back(i);
  }
  if (unknowns.size() > max_unknown_bits) {
    throw LimitError("too many unknown signal levels to expand");
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t m = 0; m < (1u << unknowns.size()); ++m) {
    std::uint32_t code = base;
    for (std::size_t b = 0; b < unknowns.size(); ++b) {
      if (m & (1u << b)) code |= (1u << unknowns[b]);
    }
    out.push_back(code);
  }
  return out;
}

}  // namespace

SynthesisResult synthesize(const StateGraph& sg,
                           const std::vector<std::string>& outputs,
                           const SynthesizeOptions& options) {
  obs::Span span("synth.synthesize");
  const auto& variables = sg.signal_order();
  if (variables.size() > 31) {
    throw LimitError("synthesize supports at most 31 signals");
  }
  SynthesisResult result;
  result.variables = variables;

  for (const std::string& signal : outputs) {
    const std::size_t idx = sg.signal_index(signal);
    // next value per minterm: -1 unknown, 0, 1; conflicts are CSC errors.
    std::map<std::uint32_t, int> implied;
    for (StateId s : sg.all_states()) {
      options.cancel.check("synth.synthesize");
      const Encoding& e = sg.encoding(s);
      // Implied next value of `signal` in this state.
      int next;
      bool excited_up = false, excited_down = false;
      for (const auto& edge : sg.successors(s)) {
        const auto& se = sg.transition_edge(edge.transition);
        if (!se || se->signal != signal) continue;
        if (se->type == EdgeType::kRise) excited_up = true;
        if (se->type == EdgeType::kFall) excited_down = true;
        if (se->type == EdgeType::kToggle) {
          if (e[idx] == Level::kLow) excited_up = true;
          if (e[idx] == Level::kHigh) excited_down = true;
        }
      }
      if (excited_up && excited_down) {
        throw SemanticError("signal " + signal +
                            " excited both ways in one state");
      }
      if (excited_up) {
        next = 1;
      } else if (excited_down) {
        next = 0;
      } else if (e[idx] == Level::kHigh) {
        next = 1;
      } else if (e[idx] == Level::kLow) {
        next = 0;
      } else {
        continue;  // signal level free and not excited: no constraint
      }
      for (std::uint32_t m :
           expand_minterms(e, options.max_unknown_bits)) {
        auto [it, fresh] = implied.try_emplace(m, next);
        if (!fresh && it->second != next) {
          throw SemanticError(
              "CSC conflict: code " + std::to_string(m) +
              " implies both next values for signal " + signal);
        }
      }
    }
    SignalFunction f;
    f.signal = signal;
    std::vector<std::uint32_t> on, off, dc;
    const std::uint32_t space =
        variables.size() >= 31 ? 0 : (1u << variables.size());
    for (const auto& [m, v] : implied) {
      (v == 1 ? on : off).push_back(m);
    }
    // Unreached codes are don't cares. Enumerate only when the space is
    // small enough; otherwise minimize without don't cares.
    if (space != 0 && space <= (1u << 20)) {
      for (std::uint32_t m = 0; m < space; ++m) {
        if (!implied.contains(m)) dc.push_back(m);
      }
    }
    f.on_count = on.size();
    f.off_count = off.size();
    c_minterms.add(implied.size());
    f.sop = minimize_sop(static_cast<int>(variables.size()), on, dc);
    // Sanity: the minimized SOP must match on-set and reject off-set.
    for (std::uint32_t m : on) {
      if (!sop_evaluates(f.sop, m)) {
        throw SemanticError("internal: SOP misses on-set minterm");
      }
    }
    for (std::uint32_t m : off) {
      if (sop_evaluates(f.sop, m)) {
        throw SemanticError("internal: SOP covers off-set minterm");
      }
    }
    result.functions.push_back(std::move(f));
    c_functions.add();
  }
  return result;
}

}  // namespace cipnet
