#pragma once

#include <string>
#include <vector>

#include "stg/state_graph.h"
#include "synth/cube.h"
#include "util/cancel.h"

namespace cipnet {

/// Minimized next-state function of one non-input signal.
struct SignalFunction {
  std::string signal;
  std::vector<Cube> sop;
  std::size_t on_count = 0;
  std::size_t off_count = 0;
};

/// Speed-independent-style synthesis result: one next-state function per
/// output/internal signal, as functions of all signal values.
struct SynthesisResult {
  std::vector<std::string> variables;
  std::vector<SignalFunction> functions;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t total_literals() const;
};

struct SynthesizeOptions {
  /// States whose encoding still contains unknown levels cover several
  /// minterms; they are expanded up to this many unknown bits (LimitError
  /// beyond).
  std::size_t max_unknown_bits = 12;
  /// Polled once per (signal, state) pair; a tripped token raises
  /// `Cancelled`.
  CancelToken cancel;
};

/// Derives, for every signal in `outputs`, the next-state function implied
/// by the state graph (excited rise -> 1, excited fall -> 0, else hold) and
/// minimizes it with Quine-McCluskey, using unreachable codes as don't
/// cares. Throws SemanticError on a CSC conflict (two states with the same
/// code implying different next values — Section 2.2's consistent state
/// assignment is necessary but not sufficient for synthesis).
[[nodiscard]] SynthesisResult synthesize(
    const StateGraph& sg, const std::vector<std::string>& outputs,
    const SynthesizeOptions& options = {});

}  // namespace cipnet
