#pragma once

#include <cstdint>
#include <vector>

#include "synth/cube.h"

namespace cipnet {

/// Two-level minimization by Quine-McCluskey prime generation followed by
/// an essential-prime + greedy covering step (exact covering is NP-hard;
/// greedy is the standard engineering compromise and is noted as such in
/// the docs). `on` minterms must be covered, `dc` minterms may be used to
/// enlarge primes. Variables are the low `var_count` bits.
[[nodiscard]] std::vector<Cube> minimize_sop(
    int var_count, const std::vector<std::uint32_t>& on,
    const std::vector<std::uint32_t>& dc);

}  // namespace cipnet
