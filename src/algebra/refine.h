#pragma once

#include <string>
#include <vector>

#include "petri/net.h"

namespace cipnet {

/// A refinement fragment: a small acyclic net with a distinguished entry
/// and exit. `refine_transition` replaces a transition `t = (p, a, q)` by
/// the fragment — the entry transition consumes `p` (plus the fragment's
/// internal preset), the exit transition produces `q`. This is the
/// mechanism behind the automatic expansion of abstract communication
/// events into handshake protocols (Section 3): `c!` is one transition at
/// the CIP level and a 4-phase sequence after refinement.
struct Fragment {
  /// Internal places, by name; names are made fresh in the host net.
  struct Place {
    std::string name;
    Token initial = 0;
  };
  struct Transition {
    std::vector<std::size_t> preset;   // indexes into `places`
    std::string label;
    std::vector<std::size_t> postset;  // indexes into `places`
    Guard guard;
    /// Entry transitions additionally consume the refined transition's
    /// preset; exit transitions additionally produce its postset.
    bool entry = false;
    bool exit = false;
  };

  std::vector<Place> places;
  std::vector<Transition> transitions;

  /// A straight-line fragment label0 -> label1 -> ... -> labelN.
  [[nodiscard]] static Fragment sequence(const std::vector<std::string>& labels);
};

/// Replace `t` by `fragment`. At least one entry and one exit transition
/// are required (SemanticError otherwise); the refined transition's guard
/// is conjoined onto the entry transitions.
[[nodiscard]] PetriNet refine_transition(const PetriNet& net, TransitionId t,
                                         const Fragment& fragment);

/// Refine every transition carrying `label` with the same fragment.
[[nodiscard]] PetriNet refine_label(const PetriNet& net,
                                    const std::string& label,
                                    const Fragment& fragment);

}  // namespace cipnet
