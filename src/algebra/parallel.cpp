#include "algebra/parallel.h"

#include "algebra/basic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/sorted_set.h"

namespace cipnet {

namespace {
const obs::Counter c_transitions("parallel.transitions");
const obs::Counter c_sync("parallel.sync_transitions");
}  // namespace

std::vector<PlaceId> ParallelResult::left_preset(TransitionId t,
                                                 const PetriNet& n1) const {
  const auto& info = transitions[t.index()];
  std::vector<PlaceId> out;
  if (info.left) {
    for (PlaceId p : n1.transition(*info.left).preset) {
      out.push_back(place_map1[p.index()]);
    }
  }
  sorted_set::normalize(out);
  return out;
}

std::vector<PlaceId> ParallelResult::right_preset(TransitionId t,
                                                  const PetriNet& n2) const {
  const auto& info = transitions[t.index()];
  std::vector<PlaceId> out;
  if (info.right) {
    for (PlaceId p : n2.transition(*info.right).preset) {
      out.push_back(place_map2[p.index()]);
    }
  }
  sorted_set::normalize(out);
  return out;
}

ParallelResult parallel(const PetriNet& n1, const PetriNet& n2) {
  obs::Span span("algebra.parallel");
  ParallelResult result;
  PetriNet& out = result.net;

  for (PlaceId p : n1.all_places()) {
    result.place_map1.push_back(out.add_place(
        fresh_place_name(out, n1.place(p).name), n1.initial_marking()[p]));
  }
  for (PlaceId p : n2.all_places()) {
    result.place_map2.push_back(out.add_place(
        fresh_place_name(out, n2.place(p).name), n2.initial_marking()[p]));
  }

  // Alphabet: A1 ∪ A2; shared labels are synchronized.
  result.shared_labels =
      sorted_set::set_intersection(n1.alphabet(), n2.alphabet());
  for (const std::string& label : n1.alphabet()) out.add_action(label);
  for (const std::string& label : n2.alphabet()) out.add_action(label);

  auto is_shared = [&](const std::string& label) {
    return sorted_set::contains(result.shared_labels, label);
  };
  auto mapped = [](const std::vector<PlaceId>& places,
                   const std::vector<PlaceId>& map) {
    std::vector<PlaceId> out_places;
    out_places.reserve(places.size());
    for (PlaceId p : places) out_places.push_back(map[p.index()]);
    return out_places;
  };

  // Unshared transitions are copied as-is.
  for (TransitionId t : n1.all_transitions()) {
    const auto& tr = n1.transition(t);
    if (is_shared(n1.label(tr.action))) continue;
    out.add_transition(mapped(tr.preset, result.place_map1),
                       out.add_action(n1.label(tr.action)),
                       mapped(tr.postset, result.place_map1), tr.guard);
    result.transitions.push_back(
        {ParallelResult::Origin::kLeft, t, std::nullopt});
  }
  for (TransitionId t : n2.all_transitions()) {
    const auto& tr = n2.transition(t);
    if (is_shared(n2.label(tr.action))) continue;
    out.add_transition(mapped(tr.preset, result.place_map2),
                       out.add_action(n2.label(tr.action)),
                       mapped(tr.postset, result.place_map2), tr.guard);
    result.transitions.push_back(
        {ParallelResult::Origin::kRight, std::nullopt, t});
  }

  // Shared labels: join every pair of equally-labeled transitions.
  for (const std::string& label : result.shared_labels) {
    auto a1 = n1.find_action(label);
    auto a2 = n2.find_action(label);
    if (!a1 || !a2) continue;  // both exist by construction of shared set
    for (TransitionId t1 : n1.transitions_with_action(*a1)) {
      for (TransitionId t2 : n2.transitions_with_action(*a2)) {
        const auto& tr1 = n1.transition(t1);
        const auto& tr2 = n2.transition(t2);
        auto preset =
            sorted_set::set_union(mapped(tr1.preset, result.place_map1),
                                  mapped(tr2.preset, result.place_map2));
        auto postset =
            sorted_set::set_union(mapped(tr1.postset, result.place_map1),
                                  mapped(tr2.postset, result.place_map2));
        out.add_transition(std::move(preset), out.add_action(label),
                           std::move(postset), tr1.guard.conjoin(tr2.guard));
        result.transitions.push_back(
            {ParallelResult::Origin::kJoined, t1, t2});
        c_sync.add();
      }
    }
  }
  c_transitions.add(result.transitions.size());
  return result;
}

PetriNet parallel_net(const PetriNet& n1, const PetriNet& n2) {
  return parallel(n1, n2).net;
}

}  // namespace cipnet
