#include "algebra/hide.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "algebra/basic.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "petri/rebuild.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/sorted_set.h"

namespace cipnet {

namespace {

CIPNET_FAULT_SITE(f_cancel, "algebra.hide.cancel");
const obs::Counter c_contractions("hide.contractions");
const obs::Counter c_epsilon_fallbacks("hide.epsilon_fallbacks");

/// Simple-case applicability: single conflict-free input place, single
/// choice-free output place, an unguarded transition, and no transition
/// adjacent to both places (which a two-place collapse would turn into a
/// semantically different self-loop).
bool simple_collapse_applies(const PetriNet& net, TransitionId t) {
  const auto& tr = net.transition(t);
  if (!tr.guard.is_true()) return false;
  if (tr.preset.size() != 1 || tr.postset.size() != 1) return false;
  PlaceId p = tr.preset[0];
  PlaceId q = tr.postset[0];
  if (p == q) return false;
  if (net.consumers_of(p).size() != 1) return false;  // conflict-free input
  if (net.producers_of(q).size() != 1) return false;  // choice-free output
  for (TransitionId u : net.all_transitions()) {
    if (u == t) continue;
    const auto& ur = net.transition(u);
    const bool touches_p = sorted_set::contains(ur.preset, p) ||
                           sorted_set::contains(ur.postset, p);
    const bool touches_q = sorted_set::contains(ur.preset, q) ||
                           sorted_set::contains(ur.postset, q);
    if (touches_p && touches_q) return false;
  }
  return true;
}

PetriNet hide_transition_simple(const PetriNet& net, TransitionId t) {
  const auto& tr = net.transition(t);
  PlaceId p = tr.preset[0];
  PlaceId q = tr.postset[0];

  PetriNet out;
  std::vector<PlaceId> place_map(net.place_count(), PlaceId(0));
  for (PlaceId x : net.all_places()) {
    if (x == q) continue;  // merged into p's slot
    Token tokens = net.initial_marking()[x];
    if (x == p) tokens += net.initial_marking()[q];
    std::string name = net.place(x).name;
    if (x == p) name = "(" + name + "." + net.place(q).name + ")";
    place_map[x.index()] = out.add_place(fresh_place_name(out, name), tokens);
  }
  place_map[q.index()] = place_map[p.index()];

  for (std::size_t a = 0; a < net.action_count(); ++a) {
    out.add_action(net.label(ActionId(static_cast<std::uint32_t>(a))));
  }
  for (TransitionId u : net.all_transitions()) {
    if (u == t) continue;
    const auto& ur = net.transition(u);
    std::vector<PlaceId> preset, postset;
    for (PlaceId x : ur.preset) preset.push_back(place_map[x.index()]);
    for (PlaceId x : ur.postset) postset.push_back(place_map[x.index()]);
    out.add_transition(std::move(preset),
                       out.add_action(net.label(ur.action)),
                       std::move(postset), ur.guard);
  }
  return out;
}

PetriNet hide_transition_general(const PetriNet& net, TransitionId t) {
  const auto& tr = net.transition(t);
  const std::vector<PlaceId>& p = tr.preset;
  const std::vector<PlaceId>& q = tr.postset;

  if (sorted_set::intersects(p, q)) {
    throw SemanticError(
        "hide: transition has a self-loop (unobservable divergence)");
  }
  if (q.empty()) {
    throw SemanticError(
        "hide: transition with empty postset cannot be contracted (token "
        "deletion is not expressible)");
  }

  PetriNet out;
  // Places: (P \ p) kept, plus product places p × q. product[i][j] pairs
  // p[i] with q[j]; the product place inherits p[i]'s tokens (a token in
  // p_i is represented as one token in each (p_i, q_j)).
  std::vector<PlaceId> keep_map(net.place_count(), PlaceId(0));
  for (PlaceId x : net.all_places()) {
    if (sorted_set::contains(p, x)) continue;
    keep_map[x.index()] = out.add_place(
        fresh_place_name(out, net.place(x).name), net.initial_marking()[x]);
  }
  std::vector<std::vector<PlaceId>> product(p.size());
  std::vector<PlaceId> all_product;
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < q.size(); ++j) {
      PlaceId pp = out.add_place(
          fresh_place_name(out, "(" + net.place(p[i]).name + "," +
                                    net.place(q[j]).name + ")"),
          net.initial_marking()[p[i]]);
      product[i].push_back(pp);
      all_product.push_back(pp);
    }
  }
  sorted_set::normalize(all_product);

  auto row_of = [&](PlaceId x) -> const std::vector<PlaceId>& {
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i] == x) return product[i];
    }
    throw SemanticError("internal: place not in hidden preset");
  };

  // H: places outside p map to themselves, places in p map to their product
  // row.
  auto map_H = [&](const std::vector<PlaceId>& places) {
    std::vector<PlaceId> mapped;
    for (PlaceId x : places) {
      if (sorted_set::contains(p, x)) {
        const auto& row = row_of(x);
        mapped.insert(mapped.end(), row.begin(), row.end());
      } else {
        mapped.push_back(keep_map[x.index()]);
      }
    }
    sorted_set::normalize(mapped);
    return mapped;
  };

  for (std::size_t a = 0; a < net.action_count(); ++a) {
    out.add_action(net.label(ActionId(static_cast<std::uint32_t>(a))));
  }

  for (TransitionId u : net.all_transitions()) {
    if (u == t) continue;
    const auto& ur = net.transition(u);
    const bool successor = sorted_set::intersects(ur.preset, q);
    const bool conflictive = sorted_set::intersects(ur.preset, p);
    if (successor && conflictive) {
      throw SemanticError(
          "hide: a transition consumes from both the preset and the postset "
          "of the hidden transition; the contraction would need arc weights "
          "> 1 (not an ordinary net)");
    }
    // Base copy: rules 1/4(a) with occurrences of p re-wired through H.
    out.add_transition(map_H(ur.preset),
                       out.add_action(net.label(ur.action)),
                       map_H(ur.postset), ur.guard);
    if (successor) {
      // Combined duplicate (rules 2/3/5): fires the hidden transition and
      // this successor in one step. Consumes all product places plus the
      // successor's non-q inputs; produces the successor's outputs plus the
      // outputs of the hidden transition it did not consume.
      std::vector<PlaceId> preset =
          map_H(sorted_set::set_difference(ur.preset, q));
      preset = sorted_set::set_union(preset, all_product);
      std::vector<PlaceId> leftovers;
      for (PlaceId x : sorted_set::set_difference(q, ur.preset)) {
        leftovers.push_back(keep_map[x.index()]);
      }
      std::vector<PlaceId> postset =
          sorted_set::set_union(map_H(ur.postset), sorted_set::make(leftovers));
      out.add_transition(std::move(preset),
                         out.add_action(net.label(ur.action)),
                         std::move(postset), ur.guard.conjoin(tr.guard));
    }
  }
  return out;
}

}  // namespace

PetriNet hide_transition(const PetriNet& net, TransitionId t,
                         const HideOptions& options) {
  PetriNet out =
      options.allow_simple_collapse && simple_collapse_applies(net, t)
          ? hide_transition_simple(net, t)
          : hide_transition_general(net, t);
  c_contractions.add();
  return out;
}

PetriNet hide_action(const PetriNet& net, const std::string& label,
                     const HideOptions& options) {
  obs::Span span("algebra.hide");
  obs::ProgressReporter progress("algebra.hide");
  PetriNet current = net;
  std::size_t contractions = 0;
  while (true) {
    progress.update(contractions, current.transition_count());
    options.cancel.check("algebra.hide");
    if (CIPNET_FAULT_FIRES(f_cancel)) {
      throw Cancelled("algebra.hide", options.cancel.elapsed_ms(), false);
    }
    auto action = current.find_action(label);
    if (!action) break;
    // Copy: `current` is replaced inside the loop.
    const std::vector<TransitionId> with_label =
        current.transitions_with_action(*action);
    if (with_label.empty()) break;
    if (current.transition_count() > options.max_intermediate_transitions ||
        current.place_count() > options.max_intermediate_places) {
      if (options.epsilon_fallback) {
        c_epsilon_fallbacks.add();
        obs::FlightRecorder::instance().record(
            obs::FlightKind::kTruncated, 0, "hide.eps.size",
            current.transition_count(), current.place_count());
        current = rename(current, {{label, std::string(kEpsilonLabel)}});
        break;
      }
      throw LimitError("hide_action intermediate net exceeded size limit");
    }
    if (++contractions > options.max_contractions) {
      // Contraction can cascade (a hidden transition's successors carrying
      // the same label are duplicated). When the budget runs out, either
      // keep the remainder as dummies or report the blow-up.
      if (options.epsilon_fallback) {
        c_epsilon_fallbacks.add();
        obs::FlightRecorder::instance().record(
            obs::FlightKind::kTruncated, 0, "hide.eps.contractions",
            contractions - 1, options.max_contractions);
        current = rename(current, {{label, std::string(kEpsilonLabel)}});
        break;
      }
      throw LimitError(
          "hide_action exceeded max_contractions",
          LimitContext{contractions - 1, 0, options.max_contractions});
    }
    // Proposition 4.6: the order of contraction does not matter for the
    // result, but expressibility corners differ — try every candidate
    // before giving up on this pass.
    bool progressed = false;
    std::optional<SemanticError> last_error;
    for (TransitionId t : with_label) {
      try {
        current = hide_transition(current, t, options);
        if (options.simplify_places_between_contractions) {
          current = simplify_places(current);
        }
        progressed = true;
        break;
      } catch (const SemanticError& e) {
        last_error = e;
      }
    }
    if (!progressed) {
      if (!options.epsilon_fallback) throw *last_error;
      // Keep the remaining transitions as dummies: language preserved
      // modulo eps.
      c_epsilon_fallbacks.add();
      obs::FlightRecorder::instance().record(
          obs::FlightKind::kTruncated, 0, "hide.eps.inexpressible",
          contractions, 0);
      current = rename(current, {{label, std::string(kEpsilonLabel)}});
      break;
    }
  }
  // Remove the label from the alphabet (Definition 4.10's last step).
  PetriNet out;
  for (PlaceId x : current.all_places()) {
    out.add_place(current.place(x).name, current.initial_marking()[x]);
  }
  for (std::size_t a = 0; a < current.action_count(); ++a) {
    const std::string& l = current.label(ActionId(static_cast<std::uint32_t>(a)));
    if (l != label) out.add_action(l);
  }
  for (TransitionId u : current.all_transitions()) {
    const auto& ur = current.transition(u);
    out.add_transition(ur.preset, out.add_action(current.label(ur.action)),
                       ur.postset, ur.guard);
  }
  return out;
}

PetriNet hide_actions(const PetriNet& net,
                      const std::vector<std::string>& labels,
                      const HideOptions& options) {
  PetriNet current = net;
  for (const std::string& label : labels) {
    current = hide_action(current, label, options);
  }
  return current;
}

PetriNet project(const PetriNet& net, const std::vector<std::string>& kept,
                 const HideOptions& options) {
  auto kept_set = sorted_set::make(kept);
  std::vector<std::string> hidden;
  for (const std::string& label : net.alphabet()) {
    if (!sorted_set::contains(kept_set, label)) hidden.push_back(label);
  }
  return hide_actions(net, hidden, options);
}

PetriNet hide_keep_epsilon(const PetriNet& net,
                           const std::vector<std::string>& labels,
                           const HideOptions& options) {
  // Step 1: relabel the hidden transitions to eps.
  std::map<std::string, std::string> renames;
  for (const std::string& label : labels) {
    if (label != kEpsilonLabel) renames.emplace(label, std::string(kEpsilonLabel));
  }
  PetriNet current = rename(net, renames);

  // Step 2: contract eps transitions whose successors are all eps — so the
  // *last* dummy before any visible transition survives, preserving the
  // "reached via internal transitions" information (Section 5.3).
  std::size_t contractions = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    options.cancel.check("algebra.hide_keep_epsilon");
    auto eps = current.find_action(kEpsilonLabel);
    if (!eps) break;
    for (TransitionId t : current.transitions_with_action(*eps)) {
      const auto& tr = current.transition(t);
      if (sorted_set::intersects(tr.preset, tr.postset)) continue;
      if (tr.postset.empty()) continue;
      bool all_eps_successors = true;
      for (PlaceId qj : tr.postset) {
        for (TransitionId u : current.consumers_of(qj)) {
          if (current.transition_label(u) != kEpsilonLabel) {
            all_eps_successors = false;
          }
        }
      }
      if (!all_eps_successors) continue;
      bool inexpressible = false;
      for (TransitionId u : current.all_transitions()) {
        if (u == t) continue;
        const auto& ur = current.transition(u);
        if (sorted_set::intersects(ur.preset, tr.preset) &&
            sorted_set::intersects(ur.preset, tr.postset)) {
          inexpressible = true;
          break;
        }
      }
      if (inexpressible) continue;
      if (++contractions > options.max_contractions) {
        throw LimitError("hide_keep_epsilon exceeded max_contractions");
      }
      current = hide_transition(current, t, options);
      changed = true;
      break;  // ids are stale after the rebuild
    }
  }
  return current;
}

}  // namespace cipnet
