#pragma once

#include <string>

#include "petri/net.h"

namespace cipnet {

/// Build a net from a CCS/CSP-style process expression using exactly the
/// paper's operators (Section 4):
///
///   expr   := term ('+' term)*            non-deterministic choice
///   term   := factor ('||' factor)*       parallel composition
///   factor := action '.' factor           action prefix
///           | action                      sugar for action.0
///           | '0'                         nil (deadlock)
///           | '(' expr ')'
///
/// Actions are `[A-Za-z_][A-Za-z0-9_+~#*=!?-]*`. Note the algebra has no
/// general sequential composition: only an *action* can prefix (the paper
/// defines `a.N`, not `N1;N2`), so `(a||b).c` is rejected.
///
/// Example: `coin.(tea + coffee) || coin.slot`
[[nodiscard]] PetriNet net_from_expression(const std::string& text);

}  // namespace cipnet
