#include "algebra/choice.h"

#include "algebra/basic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/sorted_set.h"

namespace cipnet {

namespace {

const obs::Counter c_root_variants("choice.root_variants");

void require_safe_initial(const PetriNet& net, const char* op) {
  if (!net.initial_marking().is_safe()) {
    throw SemanticError(std::string(op) +
                        " requires a safe initial marking");
  }
}

std::vector<PlaceId> initial_places(const PetriNet& net) {
  return net.initial_marking().marked_places();
}

/// Enumerate the non-empty subsets of `items` (|items| is bounded by the
/// preset size, so this stays tiny).
std::vector<std::vector<PlaceId>> nonempty_subsets(
    const std::vector<PlaceId>& items) {
  std::vector<std::vector<PlaceId>> out;
  const std::size_t n = items.size();
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    std::vector<PlaceId> subset;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) subset.push_back(items[i]);
    }
    out.push_back(std::move(subset));
  }
  return out;
}

}  // namespace

PetriNet root_unwinding(const PetriNet& net) {
  require_safe_initial(net, "root_unwinding");
  const auto init = initial_places(net);

  PetriNet out;
  std::vector<PlaceId> place_map;
  for (PlaceId p : net.all_places()) {
    place_map.push_back(out.add_place(net.place(p).name, 0));
  }
  // P0: one fresh copy per initial place, carrying the initial tokens.
  std::vector<PlaceId> root_map(net.place_count(), PlaceId(0));
  for (PlaceId p : init) {
    root_map[p.index()] = out.add_place(
        fresh_place_name(out, net.place(p).name + "0"),
        net.initial_marking()[p]);
  }
  for (std::size_t a = 0; a < net.action_count(); ++a) {
    out.add_action(net.label(ActionId(static_cast<std::uint32_t>(a))));
  }
  for (TransitionId t : net.all_transitions()) {
    const auto& tr = net.transition(t);
    std::vector<PlaceId> preset, postset;
    for (PlaceId p : tr.preset) preset.push_back(place_map[p.index()]);
    for (PlaceId p : tr.postset) postset.push_back(place_map[p.index()]);
    out.add_transition(preset, out.add_action(net.label(tr.action)), postset,
                       tr.guard);
    // Definition 4.5 duplicates transitions whose whole preset lies in the
    // initial places. We generalize: for every non-empty subset S of
    // (preset ∩ initial places), add a variant consuming the root copies for
    // S and the originals elsewhere. This also covers presets that mix
    // initial and later-produced places (e.g. a loop refills one initial
    // input while the root token of another is still unspent), which the
    // literal definition silently deadlocks on. For presets fully inside the
    // initial places, the S = full-set variant is exactly the paper's copy.
    auto on_roots = sorted_set::set_intersection(tr.preset, init);
    for (const auto& subset : nonempty_subsets(on_roots)) {
      std::vector<PlaceId> variant;
      for (PlaceId p : tr.preset) {
        variant.push_back(sorted_set::contains(subset, p)
                              ? root_map[p.index()]
                              : place_map[p.index()]);
      }
      out.add_transition(std::move(variant),
                         out.add_action(net.label(tr.action)), postset,
                         tr.guard);
    }
  }
  return out;
}

PetriNet choice(const PetriNet& n1, const PetriNet& n2) {
  obs::Span span("algebra.choice");
  require_safe_initial(n1, "choice");
  require_safe_initial(n2, "choice");
  const auto init1 = initial_places(n1);
  const auto init2 = initial_places(n2);
  if (init1.empty() || init2.empty()) {
    // With an empty root, the product P0_1 × P0_2 would be empty and the
    // other branch's initial transitions would get empty presets (always
    // enabled) — Definition 4.6 implicitly assumes marked roots.
    throw SemanticError("choice requires non-empty initial markings");
  }

  PetriNet out;
  // Copy P1 and P2, zeroed.
  std::vector<PlaceId> map1, map2;
  for (PlaceId p : n1.all_places()) {
    map1.push_back(out.add_place(fresh_place_name(out, n1.place(p).name), 0));
  }
  for (PlaceId p : n2.all_places()) {
    map2.push_back(out.add_place(fresh_place_name(out, n2.place(p).name), 0));
  }
  // Product root places P0_1 × P0_2, each initially marked:
  // product[i][j] pairs init1[i] with init2[j].
  std::vector<std::vector<PlaceId>> product(init1.size());
  for (std::size_t i = 0; i < init1.size(); ++i) {
    for (std::size_t j = 0; j < init2.size(); ++j) {
      product[i].push_back(out.add_place(
          fresh_place_name(out, "(" + n1.place(init1[i]).name + "," +
                                    n2.place(init2[j]).name + ")"),
          1));
    }
  }

  for (std::size_t a = 0; a < n1.action_count(); ++a) {
    out.add_action(n1.label(ActionId(static_cast<std::uint32_t>(a))));
  }
  for (std::size_t a = 0; a < n2.action_count(); ++a) {
    out.add_action(n2.label(ActionId(static_cast<std::uint32_t>(a))));
  }

  auto emit = [&](const PetriNet& src, const std::vector<PlaceId>& map,
                  const std::vector<PlaceId>& init, bool left) {
    auto row_index = [&](PlaceId p) {
      for (std::size_t i = 0; i < init.size(); ++i) {
        if (init[i] == p) return i;
      }
      throw SemanticError("internal: place not initial");
    };
    // Root token of init[i]: the full row (left) / column (right) of the
    // product — p × P0_2 resp. P0_1 × p in Definition 4.6.
    auto root_cells = [&](PlaceId p) {
      std::vector<PlaceId> cells;
      if (left) {
        std::size_t i = row_index(p);
        for (std::size_t j = 0; j < init2.size(); ++j) {
          cells.push_back(product[i][j]);
        }
      } else {
        std::size_t j = row_index(p);
        for (std::size_t i = 0; i < init1.size(); ++i) {
          cells.push_back(product[i][j]);
        }
      }
      return cells;
    };

    for (TransitionId t : src.all_transitions()) {
      const auto& tr = src.transition(t);
      std::vector<PlaceId> preset, postset;
      for (PlaceId p : tr.preset) preset.push_back(map[p.index()]);
      for (PlaceId p : tr.postset) postset.push_back(map[p.index()]);
      // Original transition on the (initially un-marked) original places.
      out.add_transition(preset, out.add_action(src.label(tr.action)), postset,
                         tr.guard);
      // Root variants, generalized exactly as in root_unwinding: each
      // initial preset place consumed from the root is consumed as its full
      // product row/column, committing the choice to this branch.
      auto on_roots = sorted_set::set_intersection(tr.preset, init);
      for (const auto& subset : nonempty_subsets(on_roots)) {
        std::vector<PlaceId> variant;
        for (PlaceId p : tr.preset) {
          if (sorted_set::contains(subset, p)) {
            auto cells = root_cells(p);
            variant.insert(variant.end(), cells.begin(), cells.end());
          } else {
            variant.push_back(map[p.index()]);
          }
        }
        out.add_transition(std::move(variant),
                           out.add_action(src.label(tr.action)), postset,
                           tr.guard);
        c_root_variants.add();
      }
    }
  };
  emit(n1, map1, init1, /*left=*/true);
  emit(n2, map2, init2, /*left=*/false);
  return out;
}

}  // namespace cipnet
