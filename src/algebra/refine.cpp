#include "algebra/refine.h"

#include "algebra/basic.h"
#include "util/error.h"

namespace cipnet {

Fragment Fragment::sequence(const std::vector<std::string>& labels) {
  Fragment fragment;
  if (labels.empty()) {
    throw SemanticError("Fragment::sequence needs at least one label");
  }
  for (std::size_t i = 0; i + 1 < labels.size(); ++i) {
    fragment.places.push_back(Place{"seq" + std::to_string(i), 0});
  }
  for (std::size_t i = 0; i < labels.size(); ++i) {
    Transition tr;
    tr.label = labels[i];
    tr.entry = (i == 0);
    tr.exit = (i + 1 == labels.size());
    if (i > 0) tr.preset.push_back(i - 1);
    if (i + 1 < labels.size()) tr.postset.push_back(i);
    fragment.transitions.push_back(std::move(tr));
  }
  return fragment;
}

PetriNet refine_transition(const PetriNet& net, TransitionId t,
                           const Fragment& fragment) {
  bool has_entry = false, has_exit = false;
  for (const auto& tr : fragment.transitions) {
    has_entry = has_entry || tr.entry;
    has_exit = has_exit || tr.exit;
  }
  if (!has_entry || !has_exit) {
    throw SemanticError("fragment needs at least one entry and one exit");
  }

  PetriNet out;
  std::vector<PlaceId> place_map;
  for (PlaceId p : net.all_places()) {
    place_map.push_back(
        out.add_place(net.place(p).name, net.initial_marking()[p]));
  }
  for (std::size_t a = 0; a < net.action_count(); ++a) {
    out.add_action(net.label(ActionId(static_cast<std::uint32_t>(a))));
  }
  const auto& refined = net.transition(t);

  // Copy all other transitions unchanged.
  for (TransitionId u : net.all_transitions()) {
    if (u == t) continue;
    const auto& ur = net.transition(u);
    std::vector<PlaceId> preset, postset;
    for (PlaceId p : ur.preset) preset.push_back(place_map[p.index()]);
    for (PlaceId p : ur.postset) postset.push_back(place_map[p.index()]);
    out.add_transition(std::move(preset),
                       out.add_action(net.label(ur.action)),
                       std::move(postset), ur.guard);
  }

  // Fragment places, freshly named.
  std::vector<PlaceId> frag_places;
  for (const auto& place : fragment.places) {
    frag_places.push_back(
        out.add_place(fresh_place_name(out, place.name), place.initial));
  }
  for (const auto& tr : fragment.transitions) {
    std::vector<PlaceId> preset, postset;
    for (std::size_t i : tr.preset) preset.push_back(frag_places[i]);
    for (std::size_t i : tr.postset) postset.push_back(frag_places[i]);
    if (tr.entry) {
      for (PlaceId p : refined.preset) preset.push_back(place_map[p.index()]);
    }
    if (tr.exit) {
      for (PlaceId p : refined.postset) {
        postset.push_back(place_map[p.index()]);
      }
    }
    Guard guard = tr.entry ? tr.guard.conjoin(refined.guard) : tr.guard;
    out.add_transition(std::move(preset), out.add_action(tr.label),
                       std::move(postset), std::move(guard));
  }
  return out;
}

PetriNet refine_label(const PetriNet& net, const std::string& label,
                      const Fragment& fragment) {
  // Transition ids shift after each refinement; re-search each round. The
  // fragment must not reuse `label` or this would not terminate.
  for (const auto& tr : fragment.transitions) {
    if (tr.label == label) {
      throw SemanticError("fragment reuses the refined label: " + label);
    }
  }
  PetriNet current = net;
  while (true) {
    auto action = current.find_action(label);
    if (!action || current.transitions_with_action(*action).empty()) break;
    current = refine_transition(
        current, current.transitions_with_action(*action).front(), fragment);
  }
  return current;
}

}  // namespace cipnet
