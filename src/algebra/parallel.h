#pragma once

#include <optional>
#include <string>
#include <vector>

#include "petri/net.h"

namespace cipnet {

/// Result of parallel composition `N1 || N2` (Definition 4.7), with full
/// provenance: the receptiveness check of Section 5.3 needs to know, for
/// every joined synchronization transition, which preset places came from
/// which operand.
struct ParallelResult {
  enum class Origin { kLeft, kRight, kJoined };

  struct TransitionInfo {
    Origin origin = Origin::kLeft;
    /// Source transition in N1 / N2 (set according to `origin`).
    std::optional<TransitionId> left;
    std::optional<TransitionId> right;
  };

  PetriNet net;
  /// Old place id -> new place id.
  std::vector<PlaceId> place_map1;
  std::vector<PlaceId> place_map2;
  /// Indexed by new transition id.
  std::vector<TransitionInfo> transitions;
  /// A1 ∩ A2 — the synchronized labels.
  std::vector<std::string> shared_labels;

  /// Preset of the N1 (resp. N2) part of transition `t`, in new place ids.
  [[nodiscard]] std::vector<PlaceId> left_preset(TransitionId t,
                                                 const PetriNet& n1) const;
  [[nodiscard]] std::vector<PlaceId> right_preset(TransitionId t,
                                                  const PetriNet& n2) const;
};

/// Parallel composition with rendez-vous on the common alphabet
/// (Definition 4.7): transitions whose label is not shared are copied;
/// for each shared label every pair of equally-labeled transitions is joined
/// into one transition with the union of presets/postsets (guards conjoined).
/// A shared label with transitions in only one operand yields *no*
/// transition for it — the other side blocks it, exactly as the definition
/// prescribes. `L(N1||N2) = L(N1) || L(N2)` (Theorem 4.5).
[[nodiscard]] ParallelResult parallel(const PetriNet& n1, const PetriNet& n2);

/// Convenience returning only the net.
[[nodiscard]] PetriNet parallel_net(const PetriNet& n1, const PetriNet& n2);

}  // namespace cipnet
