#pragma once

#include <map>
#include <string>

#include "petri/net.h"

namespace cipnet {

/// Basic action operators of the Petri net algebra (Section 4.1).

/// The deadlock action `nil` (Definition 4.2): a single marked place, no
/// transitions, empty alphabet. `L(nil) = {<>}` — only the empty trace
/// (Proposition 4.1 writes ∅ for the language of *non-empty* traces).
[[nodiscard]] PetriNet nil();

/// Action prefix `a.N` (Definition 4.3): a fresh initial place `m0` and a
/// fresh transition `(m0, a, M)` targeting the originally marked places.
/// Requires a safe initial marking (the paper's precondition); throws
/// `SemanticError` otherwise. `L(a.N) = {<>, a} ∪ a·L(N)` (Proposition 4.2).
[[nodiscard]] PetriNet action_prefix(const std::string& action,
                                     const PetriNet& net);

/// General-net action prefix (the remark after Proposition 4.2): keeps the
/// original initial marking in place and adds, per original initial
/// transition, a sentinel place in a self-loop so nothing can fire before
/// the prefix action. Works for non-safe initial markings.
[[nodiscard]] PetriNet action_prefix_general(const std::string& action,
                                             const PetriNet& net);

/// Renaming (Definition 4.4), extended to sets of names: every transition
/// labeled `b` is relabeled `renames[b]`; the alphabet drops the renamed
/// labels and gains the targets. Renaming onto an existing label merges the
/// two actions. `L(rename(N, r)) = rename(L(N), r)` (Proposition 4.3).
[[nodiscard]] PetriNet rename(const PetriNet& net,
                              const std::map<std::string, std::string>& renames);

/// A place name not yet used in `net`: `base`, else `base'`, `base''`, ...
[[nodiscard]] std::string fresh_place_name(const PetriNet& net,
                                           std::string base);

}  // namespace cipnet
