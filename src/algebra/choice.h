#pragma once

#include "petri/net.h"

namespace cipnet {

/// Root-unwinding (Definition 4.5): duplicates the initial places into fresh
/// copies `P0`, duplicates every transition whose whole preset lies in the
/// initial places so that it can also consume the copies, and moves the
/// initial tokens onto `P0`. Needed so that in a choice, a loop back to the
/// initial places of the chosen branch cannot re-enable the other branch
/// (Figure 1). Requires a safe initial marking.
[[nodiscard]] PetriNet root_unwinding(const PetriNet& net);

/// Non-deterministic choice `N1 + N2` (Definition 4.6): the union of both
/// nets with the root places of the two unwindings replaced by product
/// places `P0_1 × P0_2`; each initial transition of either branch consumes
/// a full "row"/"column" of the product, thereby disabling the other branch
/// forever. `L(N1 + N2) = L(N1) ∪ L(N2)` (Proposition 4.4). Requires safe
/// initial markings.
[[nodiscard]] PetriNet choice(const PetriNet& n1, const PetriNet& n2);

}  // namespace cipnet
