#pragma once

#include <string>
#include <vector>

#include "petri/net.h"
#include "util/cancel.h"

namespace cipnet {

struct HideOptions {
  /// Use the fast path of Section 4.4's last paragraph (collapse the two
  /// places) when the hidden transition has a single conflict-free input
  /// place and a single choice-free output place. Turning this off forces
  /// the general product construction everywhere (ablation benchmarks).
  bool allow_simple_collapse = true;
  /// Successive transition hiding can duplicate other hidden-label
  /// transitions; this bounds the total number of single-transition
  /// contractions per `hide` call (LimitError beyond).
  std::size_t max_contractions = 10000;
  /// Abort (or fall back to eps) when the intermediate net grows beyond
  /// this many transitions — contraction can grow nets multiplicatively, so
  /// a contraction budget alone does not bound the work.
  std::size_t max_intermediate_transitions = 100000;
  /// Same guard for places — the |p|·|q| product construction can grow the
  /// place count much faster than the transition count.
  std::size_t max_intermediate_places = 100000;
  /// When a transition cannot be contracted in an ordinary net (self-loop,
  /// empty postset, or a neighbor consuming from both its preset and
  /// postset), relabel it to the dummy `eps` instead of throwing. The trace
  /// language is preserved modulo eps, which callers hide at the language
  /// level; used by `project` in compositional synthesis where a few
  /// residual dummies are harmless (STGs allow them). Off by default so the
  /// algebraic laws are exercised strictly.
  bool epsilon_fallback = false;
  /// Run the trace-preserving place reduction (`simplify_places`) after
  /// every contraction. Repeated contraction creates rows of structurally
  /// duplicate product places whose merge keeps the cascade linear instead
  /// of exponential; off by default so the algebraic laws are exercised on
  /// the raw construction.
  bool simplify_places_between_contractions = false;
  /// Polled once per contraction; a tripped token raises `Cancelled`.
  CancelToken cancel;
};

/// Contract a single transition `t = (p, a, q)` out of the net
/// (Definition 4.10): the input places `p` are replaced by product places
/// `p × q`, producers/consumers of `p` are re-wired through the renaming
/// `H` (a token in `p_i` is represented as one token in every `(p_i, q_j)`),
/// and every successor of `t` gains a *combined* duplicate that consumes all
/// product places — firing `t` silently and the successor in one step — and
/// regenerates the unconsumed outputs `q \ p'` as real tokens. The label of
/// `t` remains in the alphabet (only `hide_action` drops it).
///
/// Preconditions (SemanticError): `t` has no self-loop (`p ∩ q = ∅`,
/// divergence/livelock per the paper); `q` is non-empty; no other transition
/// consumes from both `p` and `q` (that re-wiring needs arc weights > 1,
/// which ordinary nets cannot express).
[[nodiscard]] PetriNet hide_transition(const PetriNet& net, TransitionId t,
                                       const HideOptions& options = {});

/// Hide an action label (Section 4.4): successively contract every
/// transition carrying it — Proposition 4.6: the order does not matter —
/// then remove the label from the alphabet.
/// `L(hide(N, a)) = hide(L(N), a)` (Theorem 4.7).
[[nodiscard]] PetriNet hide_action(const PetriNet& net,
                                   const std::string& label,
                                   const HideOptions& options = {});

/// Hide a set of labels.
[[nodiscard]] PetriNet hide_actions(const PetriNet& net,
                                    const std::vector<std::string>& labels,
                                    const HideOptions& options = {});

/// Projection: hide everything *not* in `kept` ("Hiding is opposite to
/// projection", Section 4.4). Used for compositional synthesis
/// (Section 5.2 / 6: project(N_send || N_tr, A_tr)).
[[nodiscard]] PetriNet project(const PetriNet& net,
                               const std::vector<std::string>& kept,
                               const HideOptions& options = {});

/// The refined hiding `hide'` of Section 5.3: instead of contracting,
/// relabel the hidden transitions to the dummy `eps` and contract only
/// epsilon transitions all of whose successors are themselves epsilon —
/// leaving (at least) one dummy transition on every internal path into a
/// visible transition, which is exactly the information the receptiveness
/// check needs to keep.
[[nodiscard]] PetriNet hide_keep_epsilon(const PetriNet& net,
                                         const std::vector<std::string>& labels,
                                         const HideOptions& options = {});

}  // namespace cipnet
