#include "algebra/basic.h"

#include "util/error.h"

namespace cipnet {

PetriNet nil() {
  PetriNet net;
  net.add_place("nil", 1);
  return net;
}

std::string fresh_place_name(const PetriNet& net, std::string base) {
  while (net.find_place(base)) base += "'";
  return base;
}

namespace {

/// Copy places (with the given initial tokens), alphabet and transitions of
/// `src` into `dst`; returns the place map.
std::vector<PlaceId> copy_net_into(const PetriNet& src, PetriNet& dst,
                                   bool keep_initial_tokens) {
  std::vector<PlaceId> place_map;
  place_map.reserve(src.place_count());
  for (PlaceId p : src.all_places()) {
    Token tokens = keep_initial_tokens ? src.initial_marking()[p] : 0;
    place_map.push_back(
        dst.add_place(fresh_place_name(dst, src.place(p).name), tokens));
  }
  for (std::size_t a = 0; a < src.action_count(); ++a) {
    dst.add_action(src.label(ActionId(static_cast<std::uint32_t>(a))));
  }
  for (TransitionId t : src.all_transitions()) {
    const auto& tr = src.transition(t);
    std::vector<PlaceId> preset, postset;
    for (PlaceId p : tr.preset) preset.push_back(place_map[p.index()]);
    for (PlaceId p : tr.postset) postset.push_back(place_map[p.index()]);
    dst.add_transition(std::move(preset), dst.add_action(src.label(tr.action)),
                       std::move(postset), tr.guard);
  }
  return place_map;
}

}  // namespace

PetriNet action_prefix(const std::string& action, const PetriNet& net) {
  if (!net.initial_marking().is_safe()) {
    throw SemanticError(
        "action_prefix requires a safe initial marking (use "
        "action_prefix_general)");
  }
  PetriNet out;
  auto place_map = copy_net_into(net, out, /*keep_initial_tokens=*/false);
  PlaceId m0 = out.add_place(fresh_place_name(out, "m0"), 1);
  std::vector<PlaceId> targets;
  for (PlaceId p : net.all_places()) {
    if (net.initial_marking()[p] > 0) targets.push_back(place_map[p.index()]);
  }
  out.add_transition({m0}, action, std::move(targets));
  return out;
}

PetriNet action_prefix_general(const std::string& action,
                               const PetriNet& net) {
  // Keep the original initial marking; gate every initially enabled
  // transition behind an unmarked sentinel place in a self-loop. The prefix
  // transition consumes a fresh marked gate place and fills the sentinels,
  // so nothing can fire before `action` (the remark after Proposition 4.2).
  PetriNet out;
  std::vector<PlaceId> place_map;
  for (PlaceId p : net.all_places()) {
    place_map.push_back(
        out.add_place(net.place(p).name, net.initial_marking()[p]));
  }
  for (std::size_t a = 0; a < net.action_count(); ++a) {
    out.add_action(net.label(ActionId(static_cast<std::uint32_t>(a))));
  }
  PlaceId gate = out.add_place(fresh_place_name(out, "m0"), 1);
  std::vector<PlaceId> sentinels;
  for (TransitionId t : net.all_transitions()) {
    const auto& tr = net.transition(t);
    std::vector<PlaceId> preset, postset;
    for (PlaceId p : tr.preset) preset.push_back(place_map[p.index()]);
    for (PlaceId p : tr.postset) postset.push_back(place_map[p.index()]);
    if (net.is_enabled(net.initial_marking(), t)) {
      PlaceId sentinel = out.add_place(
          fresh_place_name(out, "sent" + std::to_string(sentinels.size())), 0);
      sentinels.push_back(sentinel);
      preset.push_back(sentinel);
      postset.push_back(sentinel);
    }
    out.add_transition(std::move(preset),
                       out.add_action(net.label(tr.action)),
                       std::move(postset), tr.guard);
  }
  out.add_transition({gate}, action, std::move(sentinels));
  return out;
}

PetriNet rename(const PetriNet& net,
                const std::map<std::string, std::string>& renames) {
  PetriNet out;
  std::vector<PlaceId> place_map;
  for (PlaceId p : net.all_places()) {
    place_map.push_back(
        out.add_place(net.place(p).name, net.initial_marking()[p]));
  }
  for (std::size_t a = 0; a < net.action_count(); ++a) {
    const std::string& label = net.label(ActionId(static_cast<std::uint32_t>(a)));
    auto it = renames.find(label);
    out.add_action(it == renames.end() ? label : it->second);
  }
  for (TransitionId t : net.all_transitions()) {
    const auto& tr = net.transition(t);
    const std::string& label = net.label(tr.action);
    auto it = renames.find(label);
    std::vector<PlaceId> preset, postset;
    for (PlaceId p : tr.preset) preset.push_back(place_map[p.index()]);
    for (PlaceId p : tr.postset) postset.push_back(place_map[p.index()]);
    out.add_transition(std::move(preset),
                       it == renames.end() ? label : it->second,
                       std::move(postset), tr.guard);
  }
  return out;
}

}  // namespace cipnet
