#include "algebra/expr.h"

#include <cctype>

#include "algebra/basic.h"
#include "algebra/choice.h"
#include "algebra/parallel.h"
#include "util/error.h"

namespace cipnet {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  PetriNet parse() {
    PetriNet net = expr();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing input");
    return net;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("expression, offset " + std::to_string(pos_) + ": " +
                     message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool eat_parallel() {
    skip_ws();
    if (pos_ + 1 < text_.size() && text_[pos_] == '|' &&
        text_[pos_ + 1] == '|') {
      pos_ += 2;
      return true;
    }
    return false;
  }

  std::string action() {
    skip_ws();
    std::size_t start = pos_;
    auto is_head = [](char c) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto is_tail = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) ||
             std::string_view("_+~#*=!?-").find(c) != std::string_view::npos;
    };
    if (pos_ >= text_.size() || !is_head(text_[pos_])) return "";
    ++pos_;
    while (pos_ < text_.size() && is_tail(text_[pos_])) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  PetriNet expr() {
    PetriNet net = term();
    while (eat('+')) {
      net = choice(net, term());
    }
    return net;
  }

  PetriNet term() {
    PetriNet net = factor();
    while (eat_parallel()) {
      net = parallel_net(net, factor());
    }
    return net;
  }

  PetriNet factor() {
    skip_ws();
    if (eat('0')) return nil();
    if (eat('(')) {
      PetriNet inner = expr();
      if (!eat(')')) fail("expected )");
      if (eat('.')) {
        fail("sequential composition is not in the algebra: only an action "
             "can prefix (Definition 4.3)");
      }
      return inner;
    }
    std::string name = action();
    if (name.empty()) fail("expected action, 0 or (");
    if (eat('.')) {
      return action_prefix(name, factor());
    }
    return action_prefix(name, nil());
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

PetriNet net_from_expression(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace cipnet
