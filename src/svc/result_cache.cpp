#include "svc/result_cache.h"

#include <utility>

#include "obs/metrics.h"
#include "util/fault.h"

namespace cipnet::svc {

namespace {
CIPNET_FAULT_SITE(f_insert, "svc.cache.insert");
const obs::Counter c_hits("svc.cache.hit");
const obs::Counter c_misses("svc.cache.miss");
const obs::Counter c_evictions("svc.cache.eviction");
const obs::Counter c_expired("svc.cache.expired");
const obs::Gauge g_bytes("svc.cache.bytes");
const obs::Gauge g_entries("svc.cache.entries");

/// Hash-map node + LRU-list node overhead, same spirit as the estimates in
/// reach/reachability.cpp.
constexpr std::size_t kNodeOverhead = 6 * sizeof(void*);
}  // namespace

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {}

std::size_t ResultCache::entry_bytes(const CacheKey& key,
                                     const std::string& payload) {
  return sizeof(CacheKey) + key.op.size() + key.params.size() +
         sizeof(Entry) + payload.size() + kNodeOverhead;
}

void ResultCache::update_gauges_locked() const {
  g_bytes.set(bytes_);
  g_entries.set(map_.size());
}

void ResultCache::erase_locked(const CacheKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

std::optional<std::string> ResultCache::lookup(const CacheKey& key,
                                               Clock::time_point now) {
  bool expired = false;
  std::uint64_t seq = 0;
  std::optional<std::string> hit;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      c_misses.add();
      return std::nullopt;
    }
    if (options_.ttl.count() > 0 &&
        now - it->second.inserted >= options_.ttl) {
      erase_locked(key);
      seq = ++seq_;
      c_expired.add();
      c_misses.add();
      update_gauges_locked();
      expired = true;
    } else {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      c_hits.add();
      hit = it->second.payload;
    }
  }
  // Outside the lock: an expired entry's on-disk twin is stale too.
  if (expired && listener_.on_erase) listener_.on_erase(key, seq);
  return hit;
}

void ResultCache::insert(const CacheKey& key, std::string payload,
                         Clock::time_point now) {
  // Fault point sits before any mutation: an injected insert failure
  // leaves the cache exactly as it was (strong exception guarantee).
  if (CIPNET_FAULT_FIRES(f_insert)) {
    throw FaultInjected("svc.cache.insert");
  }
  const std::size_t cost = entry_bytes(key, payload);
  // Snapshot for the write-through hook before the move below; victims are
  // collected under the lock and notified after it.
  std::string persisted;
  if (listener_.on_insert) persisted = payload;
  std::vector<CacheKey> evicted;
  bool inserted = false;
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cost <= options_.max_bytes) {  // else: would evict everything else
      erase_locked(key);
      lru_.push_front(key);
      Entry entry;
      entry.payload = std::move(payload);
      entry.bytes = cost;
      entry.inserted = now;
      entry.lru_it = lru_.begin();
      map_.emplace(key, std::move(entry));
      bytes_ += cost;
      inserted = true;
      // The new entry alone fits the budget (checked above), so eviction
      // never claws back the key just inserted.
      while (bytes_ > options_.max_bytes && !lru_.empty()) {
        evicted.push_back(lru_.back());
        erase_locked(lru_.back());
        c_evictions.add();
      }
      update_gauges_locked();
      // One seq for the whole batch is enough: a key appears at most once
      // per batch (the fresh insert is never among its own victims).
      seq = ++seq_;
    }
  }
  if (inserted && listener_.on_insert) {
    listener_.on_insert(key, persisted, seq);
  }
  if (listener_.on_erase) {
    for (const CacheKey& victim : evicted) listener_.on_erase(victim, seq);
  }
}

void ResultCache::erase(const CacheKey& key) {
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    erase_locked(key);
    // Stamped and notified even when the key was absent: the erase must
    // still outrank a racing insert whose callback has not run yet.
    seq = ++seq_;
    update_gauges_locked();
  }
  if (listener_.on_erase) listener_.on_erase(key, seq);
}

void ResultCache::clear() {
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    lru_.clear();
    bytes_ = 0;
    seq = ++seq_;
    update_gauges_locked();
  }
  if (listener_.on_clear) listener_.on_clear(seq);
}

std::size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

std::size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

}  // namespace cipnet::svc
