#include "svc/scheduler.h"

#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"

namespace cipnet::svc {

namespace {
CIPNET_FAULT_SITE(f_enqueue, "svc.scheduler.enqueue");
CIPNET_FAULT_SITE(f_worker, "svc.scheduler.worker");
const obs::Counter c_submitted("svc.jobs.submitted");
const obs::Counter c_completed("svc.jobs.completed");
const obs::Counter c_rejected("svc.jobs.rejected");
const obs::Counter c_failed("svc.jobs.failed");
const obs::Gauge g_queue_depth("svc.queue_depth");
const obs::Gauge g_queue_peak("svc.queue_peak");
const obs::Histogram h_queue_wait("svc.queue_wait_us");
const obs::Histogram h_job("svc.job_us");
const obs::Counter c_watchdog_scans("svc.watchdog.scans");
const obs::Counter c_watchdog_stalls("svc.watchdog.stalls");

std::uint64_t us_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}
}  // namespace

JobScheduler::JobScheduler(SchedulerOptions options)
    : options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  slots_.reserve(options_.workers);
  threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (std::size_t i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(*slots_[i]); });
  }
  if (options_.stall_timeout_ms != 0) {
    if (options_.watchdog_interval_ms == 0) {
      options_.watchdog_interval_ms = 100;
    }
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

JobScheduler::~JobScheduler() { shutdown(); }

std::size_t JobScheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

std::uint64_t JobScheduler::retry_hint_locked() const {
  // Expected time until a queue slot frees: the backlog spread over the
  // workers, paced by the recent average job duration. Floor of 1ms so a
  // rejected client never spins.
  const double per_worker =
      static_cast<double>(queued_ + active_) /
      static_cast<double>(options_.workers);
  const double us = per_worker * (avg_job_us_ > 0 ? avg_job_us_ : 1000.0);
  return static_cast<std::uint64_t>(us / 1000.0) + 1;
}

std::uint64_t JobScheduler::retry_hint_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retry_hint_locked();
}

SubmitStatus JobScheduler::submit(std::function<void()> job,
                                  Priority priority, CancelToken cancel,
                                  std::string label,
                                  obs::TraceContext ctx) {
  SubmitStatus status;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    status.queue_depth = queued_;
    if (!accepting_ || queued_ >= options_.max_queue ||
        CIPNET_FAULT_FIRES(f_enqueue)) {
      status.retry_after_ms = retry_hint_locked();
      c_rejected.add();
      return status;
    }
    queues_[static_cast<std::size_t>(priority)].push_back(
        Job{std::move(job), std::chrono::steady_clock::now(),
            std::move(cancel), std::move(label), std::move(ctx)});
    ++queued_;
    status.accepted = true;
    status.queue_depth = queued_;
    c_submitted.add();
    g_queue_depth.set(queued_);
    g_queue_peak.set_max(queued_);
  }
  work_cv_.notify_one();
  return status;
}

void JobScheduler::worker_loop(WorkerSlot& slot) {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return queued_ > 0 || stopping_; });
      if (queued_ == 0) return;  // stopping and nothing left
      for (int p = 2; p >= 0; --p) {
        auto& q = queues_[static_cast<std::size_t>(p)];
        if (!q.empty()) {
          job = std::move(q.front());
          q.pop_front();
          break;
        }
      }
      --queued_;
      ++active_;
      g_queue_depth.set(queued_);
    }
    const auto started = std::chrono::steady_clock::now();
    h_queue_wait.record(us_between(job.enqueued, started));
    {
      std::lock_guard<std::mutex> lock(slot.mu);
      slot.busy = true;
      slot.stall_flagged = false;
      slot.started = started;
      slot.cancel = job.cancel;
      slot.job_id = job.ctx.job_id;
      slot.label = job.label;
    }
    {
      // The request's trace context wraps the span AND the job body, so
      // the `svc.job.<op>` span itself — not just the work inside it —
      // carries the owning job id.
      obs::ScopedTraceContext ctx(job.ctx);
      obs::Span span(job.label.empty() ? "svc.job" : job.label);
      try {
        if (CIPNET_FAULT_FIRES(f_worker)) {
          throw FaultInjected("svc.scheduler.worker");
        }
        job.fn();
        c_completed.add();
      } catch (...) {
        // A job owns its error reporting (the service serializes errors
        // into the response); anything that escapes is a defect in the job
        // itself, and must not kill the worker.
        c_failed.add();
      }
    }
    {
      std::lock_guard<std::mutex> lock(slot.mu);
      slot.busy = false;
      slot.cancel = CancelToken{};
      slot.job_id = 0;
      slot.label.clear();
    }
    const std::uint64_t job_us =
        us_between(started, std::chrono::steady_clock::now());
    h_job.record(job_us);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      avg_job_us_ = avg_job_us_ == 0.0
                        ? static_cast<double>(job_us)
                        : 0.875 * avg_job_us_ + 0.125 * static_cast<double>(job_us);
      if (queued_ == 0 && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void JobScheduler::watchdog_loop() {
  const auto interval =
      std::chrono::milliseconds(options_.watchdog_interval_ms);
  const auto timeout = std::chrono::milliseconds(options_.stall_timeout_ms);
  std::unique_lock<std::mutex> lk(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lk, interval, [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    c_watchdog_scans.add();
    const auto now = std::chrono::steady_clock::now();
    for (auto& slot : slots_) {
      std::lock_guard<std::mutex> slot_lock(slot->mu);
      if (!slot->busy || slot->stall_flagged) continue;
      if (now - slot->started < timeout) continue;
      // Cooperative kill: trip the job's token so it unwinds through its
      // next cancellation check and the worker frees up. Flag the slot so
      // one stall is counted (and cancelled) once.
      slot->stall_flagged = true;
      slot->cancel.request_cancel();
      c_watchdog_stalls.add();
      // A stall is exactly what the flight recorder exists for: log the
      // trip and dump the timeline while the evidence is fresh.
      const std::uint64_t ran_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - slot->started)
              .count());
      obs::FlightRecorder::instance().record(obs::FlightKind::kWatchdogTrip,
                                             slot->job_id, slot->label,
                                             ran_ms);
      obs::FlightRecorder::instance().auto_dump("watchdog_stall");
    }
  }
}

std::size_t JobScheduler::active_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

std::vector<JobScheduler::WorkerState> JobScheduler::worker_states() const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<WorkerState> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    WorkerState state;
    state.busy = slot->busy;
    state.stalled = slot->stall_flagged;
    state.job_id = slot->job_id;
    state.label = slot->label;
    if (slot->busy) {
      state.running_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              now - slot->started)
              .count());
    }
    out.push_back(std::move(state));
  }
  return out;
}

void JobScheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queued_ == 0 && active_ == 0; });
}

void JobScheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (joined_) return;
    accepting_ = false;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  joined_ = true;
}

}  // namespace cipnet::svc
