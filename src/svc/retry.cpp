#include "svc/retry.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/json.h"

namespace cipnet::svc {

namespace {

const obs::Counter c_retries("svc.client.retries");
const obs::Counter c_gave_up("svc.client.gave_up");

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Parses `retry_after_ms` out of an `overloaded` error response; nullopt
/// for any other (terminal) response.
std::optional<std::uint64_t> overloaded_hint(const std::string& response) {
  try {
    const json::Value doc = json::parse(response);
    const json::Value* ok = doc.find("ok");
    if (!ok || ok->as_bool()) return std::nullopt;
    const json::Value* error = doc.find("error");
    if (!error || error->get_string("code") != "overloaded") {
      return std::nullopt;
    }
    return static_cast<std::uint64_t>(
        error->get_number("retry_after_ms", 0));
  } catch (const Error&) {
    return std::nullopt;  // unparseable response: treat as terminal
  }
}

}  // namespace

std::uint64_t RetrySchedule::delay_ms(std::size_t attempt,
                                      std::uint64_t server_hint_ms) const {
  double delay = static_cast<double>(policy_.base_ms);
  for (std::size_t i = 0; i < attempt; ++i) {
    delay *= policy_.multiplier;
    if (delay >= static_cast<double>(policy_.max_ms)) break;
  }
  delay = std::min(delay, static_cast<double>(policy_.max_ms));
  // Never return earlier than the server asked; the hint is a floor, the
  // exponential curve is the client's own pessimism on top of it.
  delay = std::max(delay, static_cast<double>(server_hint_ms));
  const double j = std::clamp(policy_.jitter, 0.0, 1.0);
  if (j > 0.0) {
    const std::uint64_t mixed =
        splitmix64(policy_.seed ^ (attempt * 0x9e3779b97f4a7c15ULL));
    const double u =
        static_cast<double>(mixed >> 11) * 0x1.0p-53;  // [0, 1)
    delay *= 1.0 - j + 2.0 * j * u;  // [1-j, 1+j)
    delay = std::max(delay, static_cast<double>(server_hint_ms));
  }
  return static_cast<std::uint64_t>(delay) + 1;
}

RetryResult submit_with_retry(
    AnalysisService& service, const std::string& line,
    const RetryPolicy& policy,
    const std::function<void(std::uint64_t)>& wait_fn) {
  const RetrySchedule schedule(policy);
  const std::size_t attempts = std::max<std::size_t>(policy.max_attempts, 1);
  RetryResult result;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    // submit_line delivers the response on a worker thread (or inline);
    // rendezvous through a tiny latch per attempt.
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    std::string response;
    service.submit_line(line, [&](const std::string& r) {
      std::lock_guard<std::mutex> lock(mu);
      response = r;
      ready = true;
      cv.notify_one();
    });
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return ready; });
    }
    ++result.attempts;
    result.response = std::move(response);
    const auto hint = overloaded_hint(result.response);
    if (!hint) return result;  // terminal answer (ok or non-overloaded error)
    if (attempt + 1 >= attempts) break;
    c_retries.add();
    const std::uint64_t delay = schedule.delay_ms(attempt, *hint);
    result.total_delay_ms += delay;
    if (wait_fn) {
      wait_fn(delay);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  result.gave_up = true;
  c_gave_up.add();
  return result;
}

}  // namespace cipnet::svc
