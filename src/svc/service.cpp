#include "svc/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <utility>
#include <vector>

#include "algebra/hide.h"
#include "io/astg.h"
#include "io/net_format.h"
#include "net/info.h"
#include "obs/buildinfo.h"
#include "obs/flight_recorder.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/sink_prom.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "petri/canonical.h"
#include "petri/structure.h"
#include "reach/coverability.h"
#include "reach/properties.h"
#include "reach/reachability.h"
#include "stg/coding.h"
#include "stg/state_graph.h"
#include "svc/cache_persist.h"
#include "synth/synthesize.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/json_writer.h"

namespace cipnet::svc {

namespace {

CIPNET_FAULT_SITE(f_parse, "svc.parse");
const obs::Counter c_requests("svc.requests");
const obs::Counter c_ok("svc.responses.ok");
const obs::Counter c_errors("svc.responses.error");
const obs::Counter c_cancelled("svc.cancelled");
const obs::Counter c_overloaded("svc.overloaded");
const obs::Counter c_faults("svc.faults");
const obs::Counter c_shed("svc.shed.rss");
const obs::Counter c_truncated("svc.truncated");
const obs::Counter c_oversized("svc.frames.oversized");
const obs::Counter c_dropped("svc.responses.dropped");
const obs::Counter c_introspect("svc.introspect");
const obs::Histogram h_phase_queue_wait("svc.phase.queue_wait_us");
const obs::Histogram h_phase_cache_lookup("svc.phase.cache_lookup_us");
const obs::Histogram h_phase_exec("svc.phase.exec_us");
const obs::Histogram h_phase_serialize("svc.phase.serialize_us");

std::uint64_t now_ms_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

std::uint64_t us_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Per-phase latency breakdown of one request, echoed in the response's
/// `timings` object and mirrored into the `svc.phase.*` histograms. All
/// microseconds; a phase the request never entered stays 0.
struct Timings {
  std::uint64_t queue_wait_us = 0;
  std::uint64_t cache_lookup_us = 0;
  std::uint64_t exec_us = 0;
  std::uint64_t serialize_us = 0;
};

/// Ops answered inline on the submitting thread: introspection must work
/// exactly when the queue is full or the process is shedding load.
bool is_introspection_op(std::string_view op) {
  return op == "metrics" || op == "jobs" || op == "health" ||
         op == "dump" || op == "history";
}

}  // namespace

/// One parsed request. `valid == false` carries a prebuilt error code and
/// message instead of op fields.
struct AnalysisService::Request {
  bool valid = false;
  std::string error_code;
  std::string error_message;

  std::string id_json;  // pre-serialized `id` echo; empty = absent
  std::string op;
  std::string net_text;
  std::string stg_text;
  std::vector<std::string> labels;
  bool has_labels = false;
  std::size_t max_states = 0;       // 0 = service default
  std::string engine;               // `reach` op: auto|dense|packed
  std::string resume;               // `reach` op: checkpoint to continue from
  std::string checkpoint;           // `reach` op: checkpoint file to write
  std::size_t checkpoint_every = 0;  // `reach` op: cadence in states
  std::uint64_t deadline_ms = 0;    // 0 = service default
  bool no_cache = false;
  Priority priority = Priority::kNormal;
  CancelToken cancel;

  std::string client;  // optional client tag, echoed into the TraceContext
  std::string format;  // `metrics` op: "json" (default) or "prom"
  std::uint64_t cursor = 0;       // `history` op: highest seq already seen
  std::size_t max_samples = 0;    // `history` op: page size (0 = all)
  std::uint64_t job_id = 0;  // minted TraceContext id (0 = not yet minted)
  std::chrono::steady_clock::time_point enqueued{};  // set on the async path
};

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(options), cache_(options.cache), scheduler_(options.scheduler) {
  if (!options_.cache_dir.empty()) {
    // Load survivors before attaching the write-through hooks — loading
    // through them would rewrite every file just read.
    persister_ = std::make_unique<CachePersister>(
        options_.cache_dir, options_.cache.ttl);
    persister_->load_into(cache_);
    persister_->attach(cache_);
  }
  if (!options_.checkpoint_dir.empty()) {
    // Best effort, like the cache dir: a missing directory surfaces as
    // counted store.persist.errors on the first checkpoint write.
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
  }
  // Progress heartbeats double as job liveness: any event attributed to a
  // job (via its TraceContext) refreshes that row's heartbeat age in the
  // `jobs` table.
  progress_listener_ = obs::ProgressBus::instance().add_listener(
      [this](const obs::ProgressEvent& event) {
        jobs_.heartbeat(event.job_id);
      });
}

AnalysisService::~AnalysisService() {
  // Workers are still running (scheduler_ is destroyed after this body);
  // they may publish into the bus until the listener is gone, and the
  // table outlives the scheduler by declaration order, so this is the
  // only ordering that needs care.
  obs::ProgressBus::instance().remove_listener(progress_listener_);
}

AnalysisService::Request AnalysisService::parse_request(
    const std::string& line) const {
  Request req;
  if (CIPNET_FAULT_FIRES(f_parse)) {
    req.error_code = "parse";
    req.error_message = "injected fault at svc.parse";
    return req;
  }
  if (line.size() > options_.max_line_bytes) {
    c_oversized.add();
    req.error_code = "bad_request";
    req.error_message = "request line exceeds " +
                        std::to_string(options_.max_line_bytes) + " bytes";
    return req;
  }
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const ParseError& e) {
    req.error_code = "parse";
    req.error_message = e.what();
    return req;
  }
  if (!doc.is_object()) {
    req.error_code = "bad_request";
    req.error_message = "request must be a JSON object";
    return req;
  }
  // Echo `id` (string or number) before anything else can fail, so even a
  // bad_request response stays correlatable.
  if (const json::Value* id = doc.find("id")) {
    if (id->type() == json::Value::Type::kString) {
      req.id_json = "\"" + json::escape(id->as_string()) + "\"";
    } else if (id->type() == json::Value::Type::kNumber) {
      req.id_json = json::number_to_string(id->as_number());
    }
  }
  const json::Value* op = doc.find("op");
  if (!op || op->type() != json::Value::Type::kString) {
    req.error_code = "bad_request";
    req.error_message = "missing string member 'op'";
    return req;
  }
  req.op = op->as_string();
  req.net_text = doc.get_string("net");
  req.stg_text = doc.get_string("stg");
  if (const json::Value* labels = doc.find("labels")) {
    if (!labels->is_array()) {
      req.error_code = "bad_request";
      req.error_message = "'labels' must be an array of strings";
      return req;
    }
    req.has_labels = true;
    for (const json::Value& item : labels->items()) {
      if (item.type() != json::Value::Type::kString) {
        req.error_code = "bad_request";
        req.error_message = "'labels' must be an array of strings";
        return req;
      }
      req.labels.push_back(item.as_string());
    }
  }
  req.client = doc.get_string("client");
  req.format = doc.get_string("format", "json");
  req.cursor = static_cast<std::uint64_t>(doc.get_number("cursor", 0));
  req.max_samples = static_cast<std::size_t>(doc.get_number("max", 0));
  req.max_states = static_cast<std::size_t>(doc.get_number("max_states", 0));
  req.engine = doc.get_string("engine", "auto");
  req.resume = doc.get_string("resume");
  req.checkpoint = doc.get_string("checkpoint");
  req.checkpoint_every =
      static_cast<std::size_t>(doc.get_number("checkpoint_every", 0));
  if (!req.resume.empty() || !req.checkpoint.empty()) {
    // These strings reach rename() and the atomic-write protocol on the
    // server's filesystem, and the TCP frontend feeds this parser — so a
    // verbatim path would hand any remote client arbitrary-file writes
    // (checkpoint) and quarantine renames to `<path>.bad` (resume).
    // Requests name bare files inside the operator-chosen directory.
    if (options_.checkpoint_dir.empty()) {
      req.error_code = "bad_request";
      req.error_message =
          "'checkpoint'/'resume' need the server started with "
          "--checkpoint-dir";
      return req;
    }
    auto confine = [this](std::string& name) {
      if (name.empty()) return true;
      if (name == "." || name == ".." ||
          name.find('/') != std::string::npos ||
          name.find('\\') != std::string::npos) {
        return false;
      }
      name = options_.checkpoint_dir + "/" + name;
      return true;
    };
    if (!confine(req.resume) || !confine(req.checkpoint)) {
      req.error_code = "bad_request";
      req.error_message =
          "'checkpoint'/'resume' must be bare file names (no path "
          "separators or '..'); they resolve inside the server's "
          "--checkpoint-dir";
      return req;
    }
  }
  req.deadline_ms =
      static_cast<std::uint64_t>(doc.get_number("deadline_ms", 0));
  if (const json::Value* no_cache = doc.find("no_cache")) {
    req.no_cache =
        no_cache->type() == json::Value::Type::kBool && no_cache->as_bool();
  }
  // Durable exploration implies no_cache in both directions: a request
  // that writes or resumes a checkpoint must actually run, and its result
  // (reported from a resumed prefix) must not be memoized as the answer
  // for plain requests (docs/SERVICE.md).
  if (!req.resume.empty() || !req.checkpoint.empty()) req.no_cache = true;
  const std::string priority = doc.get_string("priority", "normal");
  if (priority == "high") {
    req.priority = Priority::kHigh;
  } else if (priority == "low") {
    req.priority = Priority::kLow;
  } else if (priority != "normal") {
    req.error_code = "bad_request";
    req.error_message = "unknown priority: " + priority;
    return req;
  }
  req.valid = true;
  return req;
}

namespace {

/// Append the `timings` member. Called last so `serialize_us` — measured
/// by the response builders over envelope assembly — is already final.
void write_timings(json::Writer& w, const Timings& timings) {
  w.key("timings").begin_object();
  w.member("queue_wait_us", timings.queue_wait_us);
  w.member("cache_lookup_us", timings.cache_lookup_us);
  w.member("exec_us", timings.exec_us);
  w.member("serialize_us", timings.serialize_us);
  w.end_object();
}

/// `{"id":...,"op":...,"ok":false,"error":{...},"timings":{...}}`
/// Callers that never touched the queue or cache (parse rejections, shed
/// and queue-full turnaways, the ResponseGuard rescue) pass no Timings;
/// the zero-phase fallback keeps the every-response contract: the object
/// is always present and serialize_us is always measured.
std::string error_response(const std::string& id_json, const std::string& op,
                           std::string_view code, std::string_view message,
                           std::uint64_t retry_after_ms = 0,
                           std::uint64_t elapsed_ms = 0,
                           Timings* timings = nullptr) {
  const auto serialize_start = std::chrono::steady_clock::now();
  Timings inline_timings;
  if (timings == nullptr) timings = &inline_timings;
  json::Writer w;
  w.begin_object();
  if (!id_json.empty()) w.key("id").raw(id_json);
  if (!op.empty()) w.member("op", op);
  w.member("ok", false);
  w.key("error").begin_object();
  w.member("code", code);
  w.member("message", message);
  if (retry_after_ms != 0) w.member("retry_after_ms", retry_after_ms);
  if (elapsed_ms != 0) w.member("elapsed_ms", elapsed_ms);
  w.end_object();
  timings->serialize_us = us_since(serialize_start);
  h_phase_serialize.record(timings->serialize_us);
  write_timings(w, *timings);
  w.end_object();
  c_errors.add();
  return w.take();
}

/// `{"id":...,"op":...,"ok":true,"cached":...,"elapsed_ms":...,
///   "result":{...},"timings":{...}}`
std::string ok_response(const std::string& id_json, const std::string& op,
                        const std::string& payload, bool cached,
                        std::uint64_t elapsed_ms,
                        Timings* timings = nullptr) {
  const auto serialize_start = std::chrono::steady_clock::now();
  json::Writer w;
  w.begin_object();
  if (!id_json.empty()) w.key("id").raw(id_json);
  w.member("op", op);
  w.member("ok", true);
  w.member("cached", cached);
  w.member("elapsed_ms", elapsed_ms);
  w.key("result").raw(payload);
  if (timings != nullptr) {
    timings->serialize_us = us_since(serialize_start);
    h_phase_serialize.record(timings->serialize_us);
    write_timings(w, *timings);
  }
  w.end_object();
  c_ok.add();
  return w.take();
}

std::string run_ping() { return "{}"; }

std::string run_version() {
  const net::ListenerInfo listener = net::listener_info();
  json::Writer w;
  w.begin_object();
  w.member("git_sha", obs::build_git_sha());
  w.member("compiler", obs::build_compiler());
  w.member("build_type", obs::build_type());
  w.member("features", obs::build_features());
  w.member("sanitizer", obs::build_sanitizer());
  w.member("flight_active", obs::FlightRecorder::instance().active());
  w.key("net").begin_object();
  w.member("listening", listener.listening);
  if (!listener.address.empty()) w.member("address", listener.address);
  w.member("active_connections", listener.conns_active);
  w.end_object();
  w.end_object();
  return w.take();
}

/// `history` op payload: the sampler ring windowed by `cursor` (highest
/// `seq` the client has already seen; 0 = from the oldest surviving
/// sample) and `max` (page size, 0 = the rest). `next_cursor` echoes the
/// last returned seq — feed it back to poll incrementally; `dropped`
/// rising between polls means the ring evicted samples the client never
/// saw (poll faster or enlarge the interval).
std::string run_history(std::uint64_t cursor, std::size_t max) {
  auto& sampler = obs::TimeSeriesSampler::instance();
  const std::vector<obs::TimeSample> samples = sampler.since(cursor, max);
  json::Writer w;
  w.begin_object();
  w.member("running", sampler.running());
  w.member("interval_ms", sampler.interval_ms());
  w.member("dropped", sampler.dropped());
  w.member("next_cursor", samples.empty() ? cursor : samples.back().seq);
  w.key("samples").begin_array();
  for (const obs::TimeSample& sample : samples) {
    obs::write_sample_json(w, sample);
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string run_reach(const PetriNet& net, std::size_t max_states,
                      std::size_t max_graph_bytes, ReachEngine engine,
                      const std::string& checkpoint,
                      std::size_t checkpoint_every, const std::string& resume,
                      const CancelToken& cancel, bool& truncated) {
  ReachOptions options;
  options.max_states = max_states;
  options.max_graph_bytes = max_graph_bytes;
  options.engine = engine;
  options.checkpoint_path = checkpoint;
  options.checkpoint_every_states = checkpoint_every;
  options.resume_path = resume;
  // Graceful degradation: a limit/memory trip yields the statistics of the
  // explored prefix, marked `"truncated": true`, instead of a bare error.
  options.truncate_on_limit = true;
  options.cancel = cancel;
  ReachabilityGraph rg = explore(net, options);
  truncated = rg.truncated();
  json::Writer w;
  w.begin_object();
  if (truncated) w.member("truncated", true);
  // The representation that actually built the graph ("dense"/"packed") and
  // the structural 1-safety verdict that drives auto-selection.
  w.member("engine", to_string(rg.engine()));
  w.member("structurally_safe", is_structurally_safe(net));
  w.member("states", rg.state_count());
  w.member("edges", rg.edge_count());
  w.member("deadlock_states", deadlock_states(rg).size());
  w.member("safe", is_safe(rg));
  w.member("max_tokens", static_cast<std::uint64_t>(
                             max_tokens_in_any_place(rg)));
  w.member("dead_transitions", dead_transitions(net, rg).size());
  w.member("live", is_live(net, rg));
  w.end_object();
  return w.take();
}

std::string run_cover(const PetriNet& net, std::size_t max_nodes,
                      const CancelToken& cancel, bool& truncated) {
  CoverabilityOptions options;
  options.max_nodes = max_nodes;
  options.truncate_on_limit = true;
  options.cancel = cancel;
  CoverabilityResult result = coverability(net, options);
  truncated = result.truncated;
  json::Writer w;
  w.begin_object();
  if (truncated) w.member("truncated", true);
  w.member("structurally_safe", is_structurally_safe(net));
  w.member("bounded", result.bounded());
  w.member("tree_nodes", result.tree_nodes);
  w.key("bounds").begin_array();
  for (PlaceId p : net.all_places()) {
    w.begin_object();
    w.member("place", net.place(p).name);
    const auto& bound = result.bounds[p.index()];
    w.key("bound");
    if (bound) {
      w.value(static_cast<std::uint64_t>(*bound));
    } else {
      w.null();  // ω: unbounded place
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string run_hide(const PetriNet& net,
                     const std::vector<std::string>& labels,
                     const CancelToken& cancel) {
  HideOptions options;
  options.epsilon_fallback = true;
  options.simplify_places_between_contractions = true;
  options.cancel = cancel;
  PetriNet result = hide_actions(net, labels, options);
  json::Writer w;
  w.begin_object();
  w.member("places", result.place_count());
  w.member("transitions", result.transition_count());
  w.member("net", write_net(result, "hidden"));
  w.end_object();
  return w.take();
}

std::string run_synth(const Stg& stg, std::size_t max_states,
                      const CancelToken& cancel) {
  StateGraphOptions sg_options;
  sg_options.max_states = max_states;
  sg_options.cancel = cancel;
  json::Writer w;
  w.begin_object();
  auto initial = infer_initial_encoding(stg, sg_options);
  if (!initial) {
    w.member("initial_encoding", false);
    w.member("synthesizable", false);
    w.end_object();
    return w.take();
  }
  StateGraph sg = build_state_graph(stg, *initial, sg_options);
  std::vector<std::string> outputs = stg.signal_names(SignalKind::kOutput);
  for (const auto& s : stg.signal_names(SignalKind::kInternal)) {
    outputs.push_back(s);
  }
  auto coding = check_coding(sg, outputs);
  w.member("initial_encoding", true);
  w.member("states", sg.state_count());
  w.member("consistent", sg.is_consistent());
  w.member("usc_conflicts", coding.conflicts.size());
  w.member("csc_conflicts", coding.csc_count());
  if (coding.has_csc_violation()) {
    w.member("synthesizable", false);
    w.end_object();
    return w.take();
  }
  SynthesizeOptions synth_options;
  synth_options.cancel = cancel;
  SynthesisResult result = synthesize(sg, outputs, synth_options);
  w.member("synthesizable", true);
  w.member("literals", result.total_literals());
  w.key("functions").begin_array();
  for (const SignalFunction& f : result.functions) {
    w.begin_object();
    w.member("signal", f.signal);
    w.member("expr", sop_to_string(f.sop, result.variables));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string joined_sorted(std::vector<std::string> items) {
  std::sort(items.begin(), items.end());
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ',';
    out += item;
  }
  return out;
}

/// `metrics` op payload. format=json inlines the registry snapshot plus
/// the per-site fault breakdown and flight-recorder state; format=prom
/// wraps the Prometheus text exposition (obs/sink_prom.h) in `body`, with
/// the fault sites appended as labeled `cipnet_fault_site_*` series.
std::string run_metrics(const std::string& format) {
  const obs::Snapshot snapshot = obs::Registry::instance().snapshot();
  const std::vector<fault::SiteStats> sites = fault::stats();
  auto& recorder = obs::FlightRecorder::instance();
  if (format == "prom") {
    std::string body = obs::render_prometheus(snapshot);
    if (!sites.empty()) {
      body += "# TYPE cipnet_fault_site_hits_total counter\n";
      for (const auto& site : sites) {
        body += obs::prom_labeled_line("cipnet_fault_site_hits_total",
                                       "site", site.name, site.hits);
        body += '\n';
      }
      body += "# TYPE cipnet_fault_site_fired_total counter\n";
      for (const auto& site : sites) {
        body += obs::prom_labeled_line("cipnet_fault_site_fired_total",
                                       "site", site.name, site.fired);
        body += '\n';
      }
    }
    json::Writer w;
    w.begin_object();
    w.member("format", "prom");
    w.member("body", body);
    w.end_object();
    return w.take();
  }
  json::Writer w;
  w.begin_object();
  w.member("format", "json");
  w.member("enabled", obs::enabled());
  w.key("counters").begin_object();
  for (const auto& [name, value] : snapshot.counters) w.member(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : snapshot.gauges) w.member(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : snapshot.histograms) {
    w.key(h.name).begin_object();
    w.member("count", h.count);
    w.member("sum", h.sum);
    w.member("max", h.max);
    w.member("p50", h.percentile(50));
    w.member("p90", h.percentile(90));
    w.member("p99", h.percentile(99));
    w.end_object();
  }
  w.end_object();
  w.key("fault_sites").begin_array();
  for (const auto& site : sites) {
    w.begin_object();
    w.member("site", site.name);
    w.member("hits", site.hits);
    w.member("fired", site.fired);
    w.end_object();
  }
  w.end_array();
  w.key("flight").begin_object();
  w.member("active", recorder.active());
  w.member("recorded", recorder.recorded());
  w.member("capacity", static_cast<std::uint64_t>(obs::kFlightCapacity));
  w.end_object();
  w.end_object();
  return w.take();
}

void write_job_rows(json::Writer& w, const std::vector<JobInfo>& rows,
                    std::chrono::steady_clock::time_point now) {
  w.begin_array();
  for (const JobInfo& job : rows) {
    w.begin_object();
    w.member("job", job.job_id);
    if (!job.id_json.empty()) w.key("id").raw(job.id_json);
    w.member("op", job.op);
    if (!job.client.empty()) w.member("client", job.client);
    w.member("state", job_state_name(job.state));
    w.member("phase", job.phase);
    if (!job.outcome.empty()) w.member("outcome", job.outcome);
    if (job.cached) w.member("cached", true);
    w.member("elapsed_ms", job.elapsed_ms(now));
    w.member("heartbeat_age_ms", job.heartbeat_age_ms(now));
    w.end_object();
  }
  w.end_array();
}

/// `jobs` op payload: the in-flight table plus the recently-completed ring.
std::string run_jobs(const JobTable& table) {
  const auto now = std::chrono::steady_clock::now();
  json::Writer w;
  w.begin_object();
  w.key("in_flight");
  write_job_rows(w, table.in_flight(), now);
  w.key("recent");
  write_job_rows(w, table.recent(), now);
  w.end_object();
  return w.take();
}

/// `dump` op payload: the decoded flight-recorder ring, oldest surviving
/// event first. The dump itself is recorded (kind `dump`), so repeated
/// dumps are visible in each other's timelines.
std::string run_dump() {
  auto& recorder = obs::FlightRecorder::instance();
  recorder.record(obs::FlightKind::kDump, 0, "op");
  const std::vector<obs::FlightEvent> events = recorder.snapshot();
  const std::uint64_t recorded = recorder.recorded();
  json::Writer w;
  w.begin_object();
  w.member("active", recorder.active());
  w.member("recorded", recorded);
  w.member("returned", events.size());
  w.member("discarded",
           recorded > events.size() ? recorded - events.size() : 0);
  w.key("events").begin_array();
  for (const obs::FlightEvent& event : events) {
    w.begin_object();
    w.member("t", event.ticket);
    w.member("ns", event.ns);
    if (event.job_id != 0) w.member("job", event.job_id);
    w.member("kind", flight_kind_name(event.kind));
    if (!event.detail.empty()) w.member("detail", event.detail);
    if (event.a != 0) w.member("a", event.a);
    if (event.b != 0) w.member("b", event.b);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

/// Exactly-once response delivery for the asynchronous path. The shared
/// handle travels inside the job closure; whoever responds first wins, and
/// if nobody does — the worker threw before running the job, or the
/// scheduler dropped the closure at shutdown — the destructor still owes
/// the client a well-formed `internal` error instead of silence.
class ResponseGuard {
 public:
  ResponseGuard(std::string id_json, std::string op,
                std::function<void(const std::string&)> done)
      : id_json_(std::move(id_json)),
        op_(std::move(op)),
        done_(std::move(done)) {}

  ResponseGuard(const ResponseGuard&) = delete;
  ResponseGuard& operator=(const ResponseGuard&) = delete;

  ~ResponseGuard() {
    if (responded_.load(std::memory_order_relaxed)) return;
    c_dropped.add();
    try {
      done_(error_response(id_json_, op_, "internal",
                           "job dropped before producing a response"));
    } catch (...) {
      // Destructors must not throw; a sink that fails here loses only
      // this one response.
    }
  }

  void respond(const std::string& response) {
    bool expected = false;
    if (!responded_.compare_exchange_strong(expected, true)) return;
    done_(response);
  }

 private:
  std::string id_json_;
  std::string op_;
  std::function<void(const std::string&)> done_;
  std::atomic<bool> responded_{false};
};

}  // namespace

/// `health` op payload: one glance at everything that decides whether the
/// next request gets in — RSS vs the shed watermark, queue depth vs
/// capacity, and each worker's current job.
std::string AnalysisService::run_health() const {
  const std::uint64_t rss = obs::current_rss_bytes();
  json::Writer w;
  w.begin_object();
  w.member("rss_bytes", rss);
  w.member("max_rss_bytes",
           static_cast<std::uint64_t>(options_.max_rss_bytes));
  w.member("shedding",
           options_.max_rss_bytes != 0 && rss > options_.max_rss_bytes);
  w.key("queue").begin_object();
  w.member("depth", scheduler_.queue_depth());
  w.member("max", scheduler_.max_queue());
  w.member("active", scheduler_.active_count());
  w.member("retry_hint_ms", scheduler_.retry_hint_ms());
  w.end_object();
  w.key("workers").begin_array();
  for (const JobScheduler::WorkerState& worker :
       scheduler_.worker_states()) {
    w.begin_object();
    w.member("busy", worker.busy);
    if (worker.stalled) w.member("stalled", true);
    if (worker.job_id != 0) w.member("job", worker.job_id);
    if (!worker.label.empty()) w.member("label", worker.label);
    if (worker.busy) w.member("running_ms", worker.running_ms);
    w.end_object();
  }
  w.end_array();
  w.key("cache").begin_object();
  w.member("entries", cache_.entries());
  w.member("bytes", cache_.bytes());
  w.end_object();
  w.member("jobs_in_flight", jobs_.in_flight_count());
  auto& recorder = obs::FlightRecorder::instance();
  w.key("flight").begin_object();
  w.member("active", recorder.active());
  w.member("recorded", recorder.recorded());
  w.end_object();
  const net::ListenerInfo listener = net::listener_info();
  w.key("net").begin_object();
  w.member("listening", listener.listening);
  w.member("draining", listener.draining);
  if (!listener.address.empty()) w.member("address", listener.address);
  w.member("active_connections", listener.conns_active);
  w.member("accepted_connections", listener.conns_accepted);
  w.member("frames", listener.frames);
  w.member("bytes_in", listener.bytes_in);
  w.member("bytes_out", listener.bytes_out);
  w.end_object();
  w.end_object();
  return w.take();
}

std::string AnalysisService::execute(const Request& req) {
  c_requests.add();
  if (!req.valid) {
    return error_response(req.id_json, req.op, req.error_code,
                          req.error_message);
  }
  const auto started = std::chrono::steady_clock::now();
  Timings timings;
  if (req.enqueued != std::chrono::steady_clock::time_point{}) {
    timings.queue_wait_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            started - req.enqueued)
            .count());
    h_phase_queue_wait.record(timings.queue_wait_us);
  }
  // Install (or, on the async path where the worker already installed it,
  // re-install) the request's trace context: the spans, heartbeats, and
  // flight events below all stamp this job id.
  obs::ScopedTraceContext trace_scope(
      obs::TraceContext{req.job_id, req.op, 0, req.client});
  const bool tracked = req.job_id != 0 && !is_introspection_op(req.op);
  auto& recorder = obs::FlightRecorder::instance();
  if (tracked) {
    recorder.record(obs::FlightKind::kJobStarted, req.job_id, req.op);
    jobs_.on_started(req.job_id);
  }
  // Terminal bookkeeping shared by every return path: the flight recorder
  // and the job table both see exactly one completion per tracked job.
  auto succeed = [&](const std::string& payload, bool cached) {
    std::string response = ok_response(req.id_json, req.op, payload, cached,
                                       now_ms_since(started), &timings);
    if (tracked) {
      recorder.record(obs::FlightKind::kJobCompleted, req.job_id, req.op,
                      cached ? 1 : 0, trace_scope.context().net_hash);
      jobs_.on_finished(req.job_id, JobState::kDone, "ok", cached,
                        req.id_json, req.op, req.client);
    }
    return response;
  };
  auto fail = [&](std::string_view code, std::string_view message,
                  std::uint64_t elapsed_ms = 0) {
    std::string response = error_response(req.id_json, req.op, code, message,
                                          0, elapsed_ms, &timings);
    if (tracked) {
      recorder.record(code == "cancelled" ? obs::FlightKind::kJobCancelled
                                          : obs::FlightKind::kJobErrored,
                      req.job_id, code);
      jobs_.on_finished(req.job_id, JobState::kErrored, code, false,
                        req.id_json, req.op, req.client);
    }
    return response;
  };
  const std::size_t max_states =
      req.max_states != 0 ? req.max_states : options_.max_states;
  obs::Span span("svc." + req.op);
  // Declared outside the try so the failure paths can quarantine the key:
  // a job that ends in Cancelled/LimitError/fault must leave nothing (and
  // conservatively, no stale prior entry) cached under it.
  CacheKey key;
  key.op = req.op;
  try {
    // Introspection — answered from live state, never cached.
    if (req.op == "metrics") {
      c_introspect.add();
      if (req.format != "json" && req.format != "prom") {
        return fail("bad_request", "unknown format: " + req.format);
      }
      return succeed(run_metrics(req.format), false);
    }
    if (req.op == "jobs") {
      c_introspect.add();
      return succeed(run_jobs(jobs_), false);
    }
    if (req.op == "health") {
      c_introspect.add();
      return succeed(run_health(), false);
    }
    if (req.op == "dump") {
      c_introspect.add();
      return succeed(run_dump(), false);
    }
    if (req.op == "history") {
      c_introspect.add();
      return succeed(run_history(req.cursor, req.max_samples), false);
    }
    // Uncached, netless ops.
    if (req.op == "ping") {
      return succeed(run_ping(), false);
    }
    if (req.op == "version") {
      return succeed(run_version(), false);
    }

    std::string payload;
    bool truncated = false;
    if (req.op == "reach" || req.op == "cover" || req.op == "hide") {
      if (req.net_text.empty()) {
        return fail("bad_request",
                    "op '" + req.op + "' needs a 'net' member (.cpn text)");
      }
      PetriNet net = read_net(req.net_text);
      key.net_hash = canonical_hash(net);
      trace_scope.context().net_hash = key.net_hash;
      if (req.op == "reach") {
        if (!parse_reach_engine(req.engine)) {
          return fail("bad_request", "unknown engine: " + req.engine);
        }
        // Part of the key: engine choice changes the response's `engine`
        // member, so a forced-dense result must not answer an auto request.
        key.params = "max_states=" + std::to_string(max_states) +
                     ";engine=" + req.engine;
      } else if (req.op == "cover") {
        key.params = "max_nodes=" + std::to_string(max_states);
      } else {
        if (!req.has_labels) {
          return fail("bad_request", "op 'hide' needs a 'labels' array");
        }
        key.params = "labels=" + joined_sorted(req.labels);
      }
      if (!req.no_cache) {
        if (tracked) jobs_.on_phase(req.job_id, "cache_lookup");
        const auto lookup_start = std::chrono::steady_clock::now();
        auto hit = cache_.lookup(key);
        timings.cache_lookup_us = us_since(lookup_start);
        h_phase_cache_lookup.record(timings.cache_lookup_us);
        if (hit) {
          return succeed(*hit, true);
        }
      }
      if (tracked) jobs_.on_phase(req.job_id, "exec");
      const auto exec_start = std::chrono::steady_clock::now();
      if (req.op == "reach") {
        payload = run_reach(net, max_states, options_.max_graph_bytes,
                            *parse_reach_engine(req.engine), req.checkpoint,
                            req.checkpoint_every, req.resume, req.cancel,
                            truncated);
      } else if (req.op == "cover") {
        payload = run_cover(net, max_states, req.cancel, truncated);
      } else {
        payload = run_hide(net, req.labels, req.cancel);
      }
      timings.exec_us = us_since(exec_start);
      h_phase_exec.record(timings.exec_us);
    } else if (req.op == "synth") {
      if (req.stg_text.empty()) {
        return fail("bad_request",
                    "op 'synth' needs an 'stg' member (.g text)");
      }
      Stg stg = read_astg(req.stg_text);
      key.net_hash = canonical_hash(stg.net());
      trace_scope.context().net_hash = key.net_hash;
      key.params =
          "outputs=" + joined_sorted(stg.signal_names(SignalKind::kOutput)) +
          ";internal=" +
          joined_sorted(stg.signal_names(SignalKind::kInternal)) +
          ";max_states=" + std::to_string(max_states);
      if (!req.no_cache) {
        if (tracked) jobs_.on_phase(req.job_id, "cache_lookup");
        const auto lookup_start = std::chrono::steady_clock::now();
        auto hit = cache_.lookup(key);
        timings.cache_lookup_us = us_since(lookup_start);
        h_phase_cache_lookup.record(timings.cache_lookup_us);
        if (hit) {
          return succeed(*hit, true);
        }
      }
      if (tracked) jobs_.on_phase(req.job_id, "exec");
      const auto exec_start = std::chrono::steady_clock::now();
      payload = run_synth(stg, max_states, req.cancel);
      timings.exec_us = us_since(exec_start);
      h_phase_exec.record(timings.exec_us);
    } else {
      return fail("bad_request", "unknown op: " + req.op);
    }
    // Truncated results are never memoized — they describe how far *this*
    // run got, not a property of the net.
    if (tracked) jobs_.on_phase(req.job_id, "serialize");
    if (!req.no_cache && !truncated) cache_.insert(key, payload);
    if (truncated) c_truncated.add();
    return succeed(payload, false);
  } catch (const FaultInjected& e) {
    c_faults.add();
    cache_.erase(key);
    recorder.record(obs::FlightKind::kFaultFired, req.job_id, e.site());
    return fail("fault", e.what());
  } catch (const Cancelled& e) {
    c_cancelled.add();
    cache_.erase(key);
    return fail("cancelled", e.what(), e.elapsed_ms());
  } catch (const LimitError& e) {
    cache_.erase(key);
    return fail("limit", e.what(), now_ms_since(started));
  } catch (const ParseError& e) {
    return fail("parse", e.what());
  } catch (const SemanticError& e) {
    return fail("semantic", e.what());
  } catch (const Error& e) {
    cache_.erase(key);
    return fail("internal", e.what());
  } catch (const std::exception& e) {
    cache_.erase(key);
    return fail("internal", e.what());
  }
}

std::string AnalysisService::error_line(const std::string& line,
                                        std::string_view code,
                                        std::string_view message,
                                        std::uint64_t retry_after_ms) const {
  std::string id_json;
  std::string op;
  if (!line.empty() && line.size() <= options_.max_line_bytes) {
    try {
      const json::Value doc = json::parse(line);
      if (doc.is_object()) {
        if (const json::Value* id = doc.find("id")) {
          if (id->type() == json::Value::Type::kString) {
            id_json = "\"" + json::escape(id->as_string()) + "\"";
          } else if (id->type() == json::Value::Type::kNumber) {
            id_json = json::number_to_string(id->as_number());
          }
        }
        op = doc.get_string("op");
      }
    } catch (const ParseError&) {
      // Best-effort echo only: an unparseable line is still rejected with
      // the caller's code, just without id/op correlation.
    }
  }
  return error_response(id_json, op, code, message, retry_after_ms);
}

std::string AnalysisService::handle_line(const std::string& line) {
  Request req = parse_request(line);
  if (req.valid) {
    req.job_id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t deadline =
      req.deadline_ms != 0 ? req.deadline_ms : options_.default_deadline_ms;
  if (deadline != 0) {
    req.cancel = CancelToken::with_deadline(std::chrono::milliseconds(deadline));
  }
  return execute(req);
}

SubmitStatus AnalysisService::submit_line(
    const std::string& line, std::function<void(const std::string&)> done,
    const std::string& default_client) {
  Request req = parse_request(line);
  if (req.client.empty()) req.client = default_client;
  if (!req.valid) {
    done(execute(req));
    return SubmitStatus{};
  }
  req.job_id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  // Introspection bypasses shedding and the queue: `metrics`, `jobs`,
  // `health`, and `dump` exist precisely to diagnose an overloaded
  // service, so they must answer while everything else is rejected.
  if (is_introspection_op(req.op)) {
    req.enqueued = std::chrono::steady_clock::now();
    done(execute(req));
    SubmitStatus status;
    status.accepted = true;
    status.queue_depth = scheduler_.queue_depth();
    return status;
  }
  // Load shedding: above the RSS high watermark, reject before queuing —
  // finishing the jobs already in flight is the only way back under it,
  // and accepting more work just marches the process toward the OOM
  // killer. The retry hint tells clients when to come back.
  if (options_.max_rss_bytes != 0) {
    const std::uint64_t rss = obs::current_rss_bytes();
    if (rss > options_.max_rss_bytes) {
      c_shed.add();
      c_overloaded.add();
      SubmitStatus status;
      status.queue_depth = scheduler_.queue_depth();
      status.retry_after_ms = scheduler_.retry_hint_ms();
      obs::FlightRecorder::instance().record(
          obs::FlightKind::kJobShed, req.job_id, req.op, rss,
          options_.max_rss_bytes);
      jobs_.on_finished(req.job_id, JobState::kShed, "overloaded", false,
                        req.id_json, req.op, req.client);
      done(error_response(req.id_json, req.op, "overloaded",
                          "resident set " + std::to_string(rss) +
                              " bytes over the high watermark; shedding load",
                          status.retry_after_ms));
      return status;
    }
  }
  // The deadline clock starts now, before the queue: a request that waits
  // out its whole budget in a full queue is cancelled, not run late.
  const std::uint64_t deadline =
      req.deadline_ms != 0 ? req.deadline_ms : options_.default_deadline_ms;
  if (deadline != 0) {
    req.cancel = CancelToken::with_deadline(std::chrono::milliseconds(deadline));
  } else if (options_.scheduler.stall_timeout_ms != 0) {
    // No client deadline, but a watchdog: the job still needs a trippable
    // token or a stalled worker could never be recovered.
    req.cancel = CancelToken::manual();
  }
  req.enqueued = std::chrono::steady_clock::now();
  const Priority priority = req.priority;
  const CancelToken cancel = req.cancel;
  const std::string id_json = req.id_json;  // survive the move below
  const std::string op = req.op;
  const std::uint64_t job_id = req.job_id;
  obs::TraceContext ctx;
  ctx.job_id = job_id;
  ctx.op = op;
  ctx.client = req.client;
  obs::FlightRecorder::instance().record(obs::FlightKind::kJobSubmitted,
                                         job_id, op);
  jobs_.on_submitted(job_id, id_json, op, req.client);
  auto guard = std::make_shared<ResponseGuard>(id_json, op, std::move(done));
  SubmitStatus status = scheduler_.submit(
      [this, req = std::move(req), guard]() { guard->respond(execute(req)); },
      priority, cancel, "svc.job." + op, std::move(ctx));
  if (!status.accepted) {
    c_overloaded.add();
    obs::FlightRecorder::instance().record(obs::FlightKind::kJobRejected,
                                           job_id, op, status.queue_depth);
    jobs_.on_finished(job_id, JobState::kRejected, "overloaded", false);
    guard->respond(error_response(
        id_json, op, "overloaded",
        "queue full (" + std::to_string(status.queue_depth) +
            " pending); retry later",
        status.retry_after_ms));
  }
  return status;
}

namespace {

/// Reads one newline-terminated frame without ever buffering more than
/// `max_bytes`: the over-limit remainder of the line is consumed and
/// discarded, reported through `overflow`. Returns false only at EOF with
/// nothing read.
bool bounded_getline(std::istream& in, std::string& line,
                     std::size_t max_bytes, bool& overflow) {
  line.clear();
  overflow = false;
  std::streambuf* sb = in.rdbuf();
  bool any = false;
  for (;;) {
    const int ch = sb->sbumpc();
    if (ch == std::char_traits<char>::eof()) {
      in.setstate(std::ios::eofbit);
      return any;
    }
    any = true;
    if (ch == '\n') return true;
    if (line.size() < max_bytes) {
      line.push_back(static_cast<char>(ch));
    } else {
      overflow = true;
    }
  }
}

}  // namespace

std::size_t serve(std::istream& in, std::ostream& out,
                  const ServiceOptions& options) {
  // The `metrics` op reports the live registry, so serving implies
  // instrumentation — enabled without resetting (the CLI may have turned
  // it on already), restored when the loop exits.
  obs::ScopedEnable metrics_on(/*reset=*/false);
  AnalysisService service(options);
  obs::ProgressReporter progress("svc.serve");
  std::mutex out_mutex;
  std::atomic<std::uint64_t> served{0};
  auto emit = [&](const std::string& response) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << response << '\n';
    out.flush();
    served.fetch_add(1, std::memory_order_relaxed);
  };

  std::size_t accepted = 0;
  std::string line;
  bool overflow = false;
  while (bounded_getline(in, line, options.max_line_bytes, overflow)) {
    if (overflow) {
      // The frame was discarded unread, so there is no `id` to echo — but
      // the client still gets a structured rejection, not silence or an
      // unbounded buffer.
      ++accepted;
      c_oversized.add();
      emit(error_response("", "", "bad_request",
                          "request line exceeds " +
                              std::to_string(options.max_line_bytes) +
                              " bytes"));
      continue;
    }
    if (line.empty()) continue;
    ++accepted;
    service.submit_line(line, emit);
    progress.update(served.load(std::memory_order_relaxed),
                    service.scheduler().queue_depth());
  }
  service.drain();
  progress.update(served.load(std::memory_order_relaxed), 0);
  return accepted;
}

}  // namespace cipnet::svc
