#include "svc/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <istream>
#include <mutex>
#include <ostream>
#include <utility>
#include <vector>

#include "algebra/hide.h"
#include "io/astg.h"
#include "io/net_format.h"
#include "obs/buildinfo.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "petri/canonical.h"
#include "reach/coverability.h"
#include "reach/properties.h"
#include "reach/reachability.h"
#include "stg/coding.h"
#include "stg/state_graph.h"
#include "synth/synthesize.h"
#include "util/error.h"
#include "util/json.h"
#include "util/json_writer.h"

namespace cipnet::svc {

namespace {

const obs::Counter c_requests("svc.requests");
const obs::Counter c_ok("svc.responses.ok");
const obs::Counter c_errors("svc.responses.error");
const obs::Counter c_cancelled("svc.cancelled");
const obs::Counter c_overloaded("svc.overloaded");

std::uint64_t now_ms_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

/// One parsed request. `valid == false` carries a prebuilt error code and
/// message instead of op fields.
struct AnalysisService::Request {
  bool valid = false;
  std::string error_code;
  std::string error_message;

  std::string id_json;  // pre-serialized `id` echo; empty = absent
  std::string op;
  std::string net_text;
  std::string stg_text;
  std::vector<std::string> labels;
  bool has_labels = false;
  std::size_t max_states = 0;       // 0 = service default
  std::uint64_t deadline_ms = 0;    // 0 = service default
  bool no_cache = false;
  Priority priority = Priority::kNormal;
  CancelToken cancel;
};

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(options), cache_(options.cache), scheduler_(options.scheduler) {}

AnalysisService::Request AnalysisService::parse_request(
    const std::string& line) const {
  Request req;
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const ParseError& e) {
    req.error_code = "parse";
    req.error_message = e.what();
    return req;
  }
  if (!doc.is_object()) {
    req.error_code = "bad_request";
    req.error_message = "request must be a JSON object";
    return req;
  }
  // Echo `id` (string or number) before anything else can fail, so even a
  // bad_request response stays correlatable.
  if (const json::Value* id = doc.find("id")) {
    if (id->type() == json::Value::Type::kString) {
      req.id_json = "\"" + json::escape(id->as_string()) + "\"";
    } else if (id->type() == json::Value::Type::kNumber) {
      req.id_json = json::number_to_string(id->as_number());
    }
  }
  const json::Value* op = doc.find("op");
  if (!op || op->type() != json::Value::Type::kString) {
    req.error_code = "bad_request";
    req.error_message = "missing string member 'op'";
    return req;
  }
  req.op = op->as_string();
  req.net_text = doc.get_string("net");
  req.stg_text = doc.get_string("stg");
  if (const json::Value* labels = doc.find("labels")) {
    if (!labels->is_array()) {
      req.error_code = "bad_request";
      req.error_message = "'labels' must be an array of strings";
      return req;
    }
    req.has_labels = true;
    for (const json::Value& item : labels->items()) {
      if (item.type() != json::Value::Type::kString) {
        req.error_code = "bad_request";
        req.error_message = "'labels' must be an array of strings";
        return req;
      }
      req.labels.push_back(item.as_string());
    }
  }
  req.max_states = static_cast<std::size_t>(doc.get_number("max_states", 0));
  req.deadline_ms =
      static_cast<std::uint64_t>(doc.get_number("deadline_ms", 0));
  if (const json::Value* no_cache = doc.find("no_cache")) {
    req.no_cache =
        no_cache->type() == json::Value::Type::kBool && no_cache->as_bool();
  }
  const std::string priority = doc.get_string("priority", "normal");
  if (priority == "high") {
    req.priority = Priority::kHigh;
  } else if (priority == "low") {
    req.priority = Priority::kLow;
  } else if (priority != "normal") {
    req.error_code = "bad_request";
    req.error_message = "unknown priority: " + priority;
    return req;
  }
  req.valid = true;
  return req;
}

namespace {

/// `{"id":...,"op":...,"ok":false,"error":{...}}`
std::string error_response(const std::string& id_json, const std::string& op,
                           std::string_view code, std::string_view message,
                           std::uint64_t retry_after_ms = 0,
                           std::uint64_t elapsed_ms = 0) {
  json::Writer w;
  w.begin_object();
  if (!id_json.empty()) w.key("id").raw(id_json);
  if (!op.empty()) w.member("op", op);
  w.member("ok", false);
  w.key("error").begin_object();
  w.member("code", code);
  w.member("message", message);
  if (retry_after_ms != 0) w.member("retry_after_ms", retry_after_ms);
  if (elapsed_ms != 0) w.member("elapsed_ms", elapsed_ms);
  w.end_object();
  w.end_object();
  c_errors.add();
  return w.take();
}

/// `{"id":...,"op":...,"ok":true,"cached":...,"elapsed_ms":...,"result":{...}}`
std::string ok_response(const std::string& id_json, const std::string& op,
                        const std::string& payload, bool cached,
                        std::uint64_t elapsed_ms) {
  json::Writer w;
  w.begin_object();
  if (!id_json.empty()) w.key("id").raw(id_json);
  w.member("op", op);
  w.member("ok", true);
  w.member("cached", cached);
  w.member("elapsed_ms", elapsed_ms);
  w.key("result").raw(payload);
  w.end_object();
  c_ok.add();
  return w.take();
}

std::string run_ping() { return "{}"; }

std::string run_version() {
  json::Writer w;
  w.begin_object();
  w.member("git_sha", obs::build_git_sha());
  w.member("compiler", obs::build_compiler());
  w.member("build_type", obs::build_type());
  w.end_object();
  return w.take();
}

std::string run_reach(const PetriNet& net, std::size_t max_states,
                      const CancelToken& cancel) {
  ReachOptions options;
  options.max_states = max_states;
  options.cancel = cancel;
  ReachabilityGraph rg = explore(net, options);
  json::Writer w;
  w.begin_object();
  w.member("states", rg.state_count());
  w.member("edges", rg.edge_count());
  w.member("deadlock_states", deadlock_states(rg).size());
  w.member("safe", is_safe(rg));
  w.member("max_tokens", static_cast<std::uint64_t>(
                             max_tokens_in_any_place(rg)));
  w.member("dead_transitions", dead_transitions(net, rg).size());
  w.member("live", is_live(net, rg));
  w.end_object();
  return w.take();
}

std::string run_cover(const PetriNet& net, std::size_t max_nodes,
                      const CancelToken& cancel) {
  CoverabilityOptions options;
  options.max_nodes = max_nodes;
  options.cancel = cancel;
  CoverabilityResult result = coverability(net, options);
  json::Writer w;
  w.begin_object();
  w.member("bounded", result.bounded());
  w.member("tree_nodes", result.tree_nodes);
  w.key("bounds").begin_array();
  for (PlaceId p : net.all_places()) {
    w.begin_object();
    w.member("place", net.place(p).name);
    const auto& bound = result.bounds[p.index()];
    w.key("bound");
    if (bound) {
      w.value(static_cast<std::uint64_t>(*bound));
    } else {
      w.null();  // ω: unbounded place
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string run_hide(const PetriNet& net,
                     const std::vector<std::string>& labels,
                     const CancelToken& cancel) {
  HideOptions options;
  options.epsilon_fallback = true;
  options.simplify_places_between_contractions = true;
  options.cancel = cancel;
  PetriNet result = hide_actions(net, labels, options);
  json::Writer w;
  w.begin_object();
  w.member("places", result.place_count());
  w.member("transitions", result.transition_count());
  w.member("net", write_net(result, "hidden"));
  w.end_object();
  return w.take();
}

std::string run_synth(const Stg& stg, std::size_t max_states,
                      const CancelToken& cancel) {
  StateGraphOptions sg_options;
  sg_options.max_states = max_states;
  sg_options.cancel = cancel;
  json::Writer w;
  w.begin_object();
  auto initial = infer_initial_encoding(stg, sg_options);
  if (!initial) {
    w.member("initial_encoding", false);
    w.member("synthesizable", false);
    w.end_object();
    return w.take();
  }
  StateGraph sg = build_state_graph(stg, *initial, sg_options);
  std::vector<std::string> outputs = stg.signal_names(SignalKind::kOutput);
  for (const auto& s : stg.signal_names(SignalKind::kInternal)) {
    outputs.push_back(s);
  }
  auto coding = check_coding(sg, outputs);
  w.member("initial_encoding", true);
  w.member("states", sg.state_count());
  w.member("consistent", sg.is_consistent());
  w.member("usc_conflicts", coding.conflicts.size());
  w.member("csc_conflicts", coding.csc_count());
  if (coding.has_csc_violation()) {
    w.member("synthesizable", false);
    w.end_object();
    return w.take();
  }
  SynthesizeOptions synth_options;
  synth_options.cancel = cancel;
  SynthesisResult result = synthesize(sg, outputs, synth_options);
  w.member("synthesizable", true);
  w.member("literals", result.total_literals());
  w.key("functions").begin_array();
  for (const SignalFunction& f : result.functions) {
    w.begin_object();
    w.member("signal", f.signal);
    w.member("expr", sop_to_string(f.sop, result.variables));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string joined_sorted(std::vector<std::string> items) {
  std::sort(items.begin(), items.end());
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ',';
    out += item;
  }
  return out;
}

}  // namespace

std::string AnalysisService::execute(const Request& req) {
  c_requests.add();
  if (!req.valid) {
    return error_response(req.id_json, req.op, req.error_code,
                          req.error_message);
  }
  const auto started = std::chrono::steady_clock::now();
  const std::size_t max_states =
      req.max_states != 0 ? req.max_states : options_.max_states;
  obs::Span span("svc." + req.op);
  try {
    // Uncached, netless ops first.
    if (req.op == "ping") {
      return ok_response(req.id_json, req.op, run_ping(), false,
                         now_ms_since(started));
    }
    if (req.op == "version") {
      return ok_response(req.id_json, req.op, run_version(), false,
                         now_ms_since(started));
    }

    CacheKey key;
    key.op = req.op;
    std::string payload;
    if (req.op == "reach" || req.op == "cover" || req.op == "hide") {
      if (req.net_text.empty()) {
        return error_response(req.id_json, req.op, "bad_request",
                              "op '" + req.op +
                                  "' needs a 'net' member (.cpn text)");
      }
      PetriNet net = read_net(req.net_text);
      key.net_hash = canonical_hash(net);
      if (req.op == "reach") {
        key.params = "max_states=" + std::to_string(max_states);
      } else if (req.op == "cover") {
        key.params = "max_nodes=" + std::to_string(max_states);
      } else {
        if (!req.has_labels) {
          return error_response(req.id_json, req.op, "bad_request",
                                "op 'hide' needs a 'labels' array");
        }
        key.params = "labels=" + joined_sorted(req.labels);
      }
      if (!req.no_cache) {
        if (auto hit = cache_.lookup(key)) {
          return ok_response(req.id_json, req.op, *hit, true,
                             now_ms_since(started));
        }
      }
      if (req.op == "reach") {
        payload = run_reach(net, max_states, req.cancel);
      } else if (req.op == "cover") {
        payload = run_cover(net, max_states, req.cancel);
      } else {
        payload = run_hide(net, req.labels, req.cancel);
      }
    } else if (req.op == "synth") {
      if (req.stg_text.empty()) {
        return error_response(req.id_json, req.op, "bad_request",
                              "op 'synth' needs an 'stg' member (.g text)");
      }
      Stg stg = read_astg(req.stg_text);
      key.net_hash = canonical_hash(stg.net());
      key.params =
          "outputs=" + joined_sorted(stg.signal_names(SignalKind::kOutput)) +
          ";internal=" +
          joined_sorted(stg.signal_names(SignalKind::kInternal)) +
          ";max_states=" + std::to_string(max_states);
      if (!req.no_cache) {
        if (auto hit = cache_.lookup(key)) {
          return ok_response(req.id_json, req.op, *hit, true,
                             now_ms_since(started));
        }
      }
      payload = run_synth(stg, max_states, req.cancel);
    } else {
      return error_response(req.id_json, req.op, "bad_request",
                            "unknown op: " + req.op);
    }
    if (!req.no_cache) cache_.insert(key, payload);
    return ok_response(req.id_json, req.op, payload, false,
                       now_ms_since(started));
  } catch (const Cancelled& e) {
    c_cancelled.add();
    return error_response(req.id_json, req.op, "cancelled", e.what(), 0,
                          e.elapsed_ms());
  } catch (const LimitError& e) {
    return error_response(req.id_json, req.op, "limit", e.what(), 0,
                          now_ms_since(started));
  } catch (const ParseError& e) {
    return error_response(req.id_json, req.op, "parse", e.what());
  } catch (const SemanticError& e) {
    return error_response(req.id_json, req.op, "semantic", e.what());
  } catch (const Error& e) {
    return error_response(req.id_json, req.op, "internal", e.what());
  } catch (const std::exception& e) {
    return error_response(req.id_json, req.op, "internal", e.what());
  }
}

std::string AnalysisService::handle_line(const std::string& line) {
  Request req = parse_request(line);
  const std::uint64_t deadline =
      req.deadline_ms != 0 ? req.deadline_ms : options_.default_deadline_ms;
  if (deadline != 0) {
    req.cancel = CancelToken::with_deadline(std::chrono::milliseconds(deadline));
  }
  return execute(req);
}

SubmitStatus AnalysisService::submit_line(
    const std::string& line, std::function<void(const std::string&)> done) {
  Request req = parse_request(line);
  if (!req.valid) {
    done(execute(req));
    return SubmitStatus{};
  }
  // The deadline clock starts now, before the queue: a request that waits
  // out its whole budget in a full queue is cancelled, not run late.
  const std::uint64_t deadline =
      req.deadline_ms != 0 ? req.deadline_ms : options_.default_deadline_ms;
  if (deadline != 0) {
    req.cancel = CancelToken::with_deadline(std::chrono::milliseconds(deadline));
  }
  const Priority priority = req.priority;
  const std::string id_json = req.id_json;  // survives the move below
  const std::string op = req.op;
  SubmitStatus status = scheduler_.submit(
      [this, req = std::move(req), done]() { done(execute(req)); }, priority);
  if (!status.accepted) {
    c_overloaded.add();
    done(error_response(id_json, op, "overloaded",
                        "queue full (" + std::to_string(status.queue_depth) +
                            " pending); retry later",
                        status.retry_after_ms));
  }
  return status;
}

std::size_t serve(std::istream& in, std::ostream& out,
                  const ServiceOptions& options) {
  AnalysisService service(options);
  obs::ProgressReporter progress("svc.serve");
  std::mutex out_mutex;
  std::atomic<std::uint64_t> served{0};
  auto emit = [&](const std::string& response) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << response << '\n';
    out.flush();
    served.fetch_add(1, std::memory_order_relaxed);
  };

  std::size_t accepted = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++accepted;
    service.submit_line(line, emit);
    progress.update(served.load(std::memory_order_relaxed),
                    service.scheduler().queue_depth());
  }
  service.drain();
  progress.update(served.load(std::memory_order_relaxed), 0);
  return accepted;
}

}  // namespace cipnet::svc
