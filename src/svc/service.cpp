#include "svc/service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <utility>
#include <vector>

#include "algebra/hide.h"
#include "io/astg.h"
#include "io/net_format.h"
#include "obs/buildinfo.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "petri/canonical.h"
#include "reach/coverability.h"
#include "reach/properties.h"
#include "reach/reachability.h"
#include "stg/coding.h"
#include "stg/state_graph.h"
#include "synth/synthesize.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/json.h"
#include "util/json_writer.h"

namespace cipnet::svc {

namespace {

CIPNET_FAULT_SITE(f_parse, "svc.parse");
const obs::Counter c_requests("svc.requests");
const obs::Counter c_ok("svc.responses.ok");
const obs::Counter c_errors("svc.responses.error");
const obs::Counter c_cancelled("svc.cancelled");
const obs::Counter c_overloaded("svc.overloaded");
const obs::Counter c_faults("svc.faults");
const obs::Counter c_shed("svc.shed.rss");
const obs::Counter c_truncated("svc.truncated");
const obs::Counter c_oversized("svc.frames.oversized");
const obs::Counter c_dropped("svc.responses.dropped");

std::uint64_t now_ms_since(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

/// One parsed request. `valid == false` carries a prebuilt error code and
/// message instead of op fields.
struct AnalysisService::Request {
  bool valid = false;
  std::string error_code;
  std::string error_message;

  std::string id_json;  // pre-serialized `id` echo; empty = absent
  std::string op;
  std::string net_text;
  std::string stg_text;
  std::vector<std::string> labels;
  bool has_labels = false;
  std::size_t max_states = 0;       // 0 = service default
  std::uint64_t deadline_ms = 0;    // 0 = service default
  bool no_cache = false;
  Priority priority = Priority::kNormal;
  CancelToken cancel;
};

AnalysisService::AnalysisService(ServiceOptions options)
    : options_(options), cache_(options.cache), scheduler_(options.scheduler) {}

AnalysisService::Request AnalysisService::parse_request(
    const std::string& line) const {
  Request req;
  if (CIPNET_FAULT_FIRES(f_parse)) {
    req.error_code = "parse";
    req.error_message = "injected fault at svc.parse";
    return req;
  }
  if (line.size() > options_.max_line_bytes) {
    c_oversized.add();
    req.error_code = "bad_request";
    req.error_message = "request line exceeds " +
                        std::to_string(options_.max_line_bytes) + " bytes";
    return req;
  }
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const ParseError& e) {
    req.error_code = "parse";
    req.error_message = e.what();
    return req;
  }
  if (!doc.is_object()) {
    req.error_code = "bad_request";
    req.error_message = "request must be a JSON object";
    return req;
  }
  // Echo `id` (string or number) before anything else can fail, so even a
  // bad_request response stays correlatable.
  if (const json::Value* id = doc.find("id")) {
    if (id->type() == json::Value::Type::kString) {
      req.id_json = "\"" + json::escape(id->as_string()) + "\"";
    } else if (id->type() == json::Value::Type::kNumber) {
      req.id_json = json::number_to_string(id->as_number());
    }
  }
  const json::Value* op = doc.find("op");
  if (!op || op->type() != json::Value::Type::kString) {
    req.error_code = "bad_request";
    req.error_message = "missing string member 'op'";
    return req;
  }
  req.op = op->as_string();
  req.net_text = doc.get_string("net");
  req.stg_text = doc.get_string("stg");
  if (const json::Value* labels = doc.find("labels")) {
    if (!labels->is_array()) {
      req.error_code = "bad_request";
      req.error_message = "'labels' must be an array of strings";
      return req;
    }
    req.has_labels = true;
    for (const json::Value& item : labels->items()) {
      if (item.type() != json::Value::Type::kString) {
        req.error_code = "bad_request";
        req.error_message = "'labels' must be an array of strings";
        return req;
      }
      req.labels.push_back(item.as_string());
    }
  }
  req.max_states = static_cast<std::size_t>(doc.get_number("max_states", 0));
  req.deadline_ms =
      static_cast<std::uint64_t>(doc.get_number("deadline_ms", 0));
  if (const json::Value* no_cache = doc.find("no_cache")) {
    req.no_cache =
        no_cache->type() == json::Value::Type::kBool && no_cache->as_bool();
  }
  const std::string priority = doc.get_string("priority", "normal");
  if (priority == "high") {
    req.priority = Priority::kHigh;
  } else if (priority == "low") {
    req.priority = Priority::kLow;
  } else if (priority != "normal") {
    req.error_code = "bad_request";
    req.error_message = "unknown priority: " + priority;
    return req;
  }
  req.valid = true;
  return req;
}

namespace {

/// `{"id":...,"op":...,"ok":false,"error":{...}}`
std::string error_response(const std::string& id_json, const std::string& op,
                           std::string_view code, std::string_view message,
                           std::uint64_t retry_after_ms = 0,
                           std::uint64_t elapsed_ms = 0) {
  json::Writer w;
  w.begin_object();
  if (!id_json.empty()) w.key("id").raw(id_json);
  if (!op.empty()) w.member("op", op);
  w.member("ok", false);
  w.key("error").begin_object();
  w.member("code", code);
  w.member("message", message);
  if (retry_after_ms != 0) w.member("retry_after_ms", retry_after_ms);
  if (elapsed_ms != 0) w.member("elapsed_ms", elapsed_ms);
  w.end_object();
  w.end_object();
  c_errors.add();
  return w.take();
}

/// `{"id":...,"op":...,"ok":true,"cached":...,"elapsed_ms":...,"result":{...}}`
std::string ok_response(const std::string& id_json, const std::string& op,
                        const std::string& payload, bool cached,
                        std::uint64_t elapsed_ms) {
  json::Writer w;
  w.begin_object();
  if (!id_json.empty()) w.key("id").raw(id_json);
  w.member("op", op);
  w.member("ok", true);
  w.member("cached", cached);
  w.member("elapsed_ms", elapsed_ms);
  w.key("result").raw(payload);
  w.end_object();
  c_ok.add();
  return w.take();
}

std::string run_ping() { return "{}"; }

std::string run_version() {
  json::Writer w;
  w.begin_object();
  w.member("git_sha", obs::build_git_sha());
  w.member("compiler", obs::build_compiler());
  w.member("build_type", obs::build_type());
  w.end_object();
  return w.take();
}

std::string run_reach(const PetriNet& net, std::size_t max_states,
                      std::size_t max_graph_bytes, const CancelToken& cancel,
                      bool& truncated) {
  ReachOptions options;
  options.max_states = max_states;
  options.max_graph_bytes = max_graph_bytes;
  // Graceful degradation: a limit/memory trip yields the statistics of the
  // explored prefix, marked `"truncated": true`, instead of a bare error.
  options.truncate_on_limit = true;
  options.cancel = cancel;
  ReachabilityGraph rg = explore(net, options);
  truncated = rg.truncated();
  json::Writer w;
  w.begin_object();
  if (truncated) w.member("truncated", true);
  w.member("states", rg.state_count());
  w.member("edges", rg.edge_count());
  w.member("deadlock_states", deadlock_states(rg).size());
  w.member("safe", is_safe(rg));
  w.member("max_tokens", static_cast<std::uint64_t>(
                             max_tokens_in_any_place(rg)));
  w.member("dead_transitions", dead_transitions(net, rg).size());
  w.member("live", is_live(net, rg));
  w.end_object();
  return w.take();
}

std::string run_cover(const PetriNet& net, std::size_t max_nodes,
                      const CancelToken& cancel, bool& truncated) {
  CoverabilityOptions options;
  options.max_nodes = max_nodes;
  options.truncate_on_limit = true;
  options.cancel = cancel;
  CoverabilityResult result = coverability(net, options);
  truncated = result.truncated;
  json::Writer w;
  w.begin_object();
  if (truncated) w.member("truncated", true);
  w.member("bounded", result.bounded());
  w.member("tree_nodes", result.tree_nodes);
  w.key("bounds").begin_array();
  for (PlaceId p : net.all_places()) {
    w.begin_object();
    w.member("place", net.place(p).name);
    const auto& bound = result.bounds[p.index()];
    w.key("bound");
    if (bound) {
      w.value(static_cast<std::uint64_t>(*bound));
    } else {
      w.null();  // ω: unbounded place
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string run_hide(const PetriNet& net,
                     const std::vector<std::string>& labels,
                     const CancelToken& cancel) {
  HideOptions options;
  options.epsilon_fallback = true;
  options.simplify_places_between_contractions = true;
  options.cancel = cancel;
  PetriNet result = hide_actions(net, labels, options);
  json::Writer w;
  w.begin_object();
  w.member("places", result.place_count());
  w.member("transitions", result.transition_count());
  w.member("net", write_net(result, "hidden"));
  w.end_object();
  return w.take();
}

std::string run_synth(const Stg& stg, std::size_t max_states,
                      const CancelToken& cancel) {
  StateGraphOptions sg_options;
  sg_options.max_states = max_states;
  sg_options.cancel = cancel;
  json::Writer w;
  w.begin_object();
  auto initial = infer_initial_encoding(stg, sg_options);
  if (!initial) {
    w.member("initial_encoding", false);
    w.member("synthesizable", false);
    w.end_object();
    return w.take();
  }
  StateGraph sg = build_state_graph(stg, *initial, sg_options);
  std::vector<std::string> outputs = stg.signal_names(SignalKind::kOutput);
  for (const auto& s : stg.signal_names(SignalKind::kInternal)) {
    outputs.push_back(s);
  }
  auto coding = check_coding(sg, outputs);
  w.member("initial_encoding", true);
  w.member("states", sg.state_count());
  w.member("consistent", sg.is_consistent());
  w.member("usc_conflicts", coding.conflicts.size());
  w.member("csc_conflicts", coding.csc_count());
  if (coding.has_csc_violation()) {
    w.member("synthesizable", false);
    w.end_object();
    return w.take();
  }
  SynthesizeOptions synth_options;
  synth_options.cancel = cancel;
  SynthesisResult result = synthesize(sg, outputs, synth_options);
  w.member("synthesizable", true);
  w.member("literals", result.total_literals());
  w.key("functions").begin_array();
  for (const SignalFunction& f : result.functions) {
    w.begin_object();
    w.member("signal", f.signal);
    w.member("expr", sop_to_string(f.sop, result.variables));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string joined_sorted(std::vector<std::string> items) {
  std::sort(items.begin(), items.end());
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ',';
    out += item;
  }
  return out;
}

/// Exactly-once response delivery for the asynchronous path. The shared
/// handle travels inside the job closure; whoever responds first wins, and
/// if nobody does — the worker threw before running the job, or the
/// scheduler dropped the closure at shutdown — the destructor still owes
/// the client a well-formed `internal` error instead of silence.
class ResponseGuard {
 public:
  ResponseGuard(std::string id_json, std::string op,
                std::function<void(const std::string&)> done)
      : id_json_(std::move(id_json)),
        op_(std::move(op)),
        done_(std::move(done)) {}

  ResponseGuard(const ResponseGuard&) = delete;
  ResponseGuard& operator=(const ResponseGuard&) = delete;

  ~ResponseGuard() {
    if (responded_.load(std::memory_order_relaxed)) return;
    c_dropped.add();
    try {
      done_(error_response(id_json_, op_, "internal",
                           "job dropped before producing a response"));
    } catch (...) {
      // Destructors must not throw; a sink that fails here loses only
      // this one response.
    }
  }

  void respond(const std::string& response) {
    bool expected = false;
    if (!responded_.compare_exchange_strong(expected, true)) return;
    done_(response);
  }

 private:
  std::string id_json_;
  std::string op_;
  std::function<void(const std::string&)> done_;
  std::atomic<bool> responded_{false};
};

}  // namespace

std::string AnalysisService::execute(const Request& req) {
  c_requests.add();
  if (!req.valid) {
    return error_response(req.id_json, req.op, req.error_code,
                          req.error_message);
  }
  const auto started = std::chrono::steady_clock::now();
  const std::size_t max_states =
      req.max_states != 0 ? req.max_states : options_.max_states;
  obs::Span span("svc." + req.op);
  // Declared outside the try so the failure paths can quarantine the key:
  // a job that ends in Cancelled/LimitError/fault must leave nothing (and
  // conservatively, no stale prior entry) cached under it.
  CacheKey key;
  key.op = req.op;
  try {
    // Uncached, netless ops first.
    if (req.op == "ping") {
      return ok_response(req.id_json, req.op, run_ping(), false,
                         now_ms_since(started));
    }
    if (req.op == "version") {
      return ok_response(req.id_json, req.op, run_version(), false,
                         now_ms_since(started));
    }

    std::string payload;
    bool truncated = false;
    if (req.op == "reach" || req.op == "cover" || req.op == "hide") {
      if (req.net_text.empty()) {
        return error_response(req.id_json, req.op, "bad_request",
                              "op '" + req.op +
                                  "' needs a 'net' member (.cpn text)");
      }
      PetriNet net = read_net(req.net_text);
      key.net_hash = canonical_hash(net);
      if (req.op == "reach") {
        key.params = "max_states=" + std::to_string(max_states);
      } else if (req.op == "cover") {
        key.params = "max_nodes=" + std::to_string(max_states);
      } else {
        if (!req.has_labels) {
          return error_response(req.id_json, req.op, "bad_request",
                                "op 'hide' needs a 'labels' array");
        }
        key.params = "labels=" + joined_sorted(req.labels);
      }
      if (!req.no_cache) {
        if (auto hit = cache_.lookup(key)) {
          return ok_response(req.id_json, req.op, *hit, true,
                             now_ms_since(started));
        }
      }
      if (req.op == "reach") {
        payload = run_reach(net, max_states, options_.max_graph_bytes,
                            req.cancel, truncated);
      } else if (req.op == "cover") {
        payload = run_cover(net, max_states, req.cancel, truncated);
      } else {
        payload = run_hide(net, req.labels, req.cancel);
      }
    } else if (req.op == "synth") {
      if (req.stg_text.empty()) {
        return error_response(req.id_json, req.op, "bad_request",
                              "op 'synth' needs an 'stg' member (.g text)");
      }
      Stg stg = read_astg(req.stg_text);
      key.net_hash = canonical_hash(stg.net());
      key.params =
          "outputs=" + joined_sorted(stg.signal_names(SignalKind::kOutput)) +
          ";internal=" +
          joined_sorted(stg.signal_names(SignalKind::kInternal)) +
          ";max_states=" + std::to_string(max_states);
      if (!req.no_cache) {
        if (auto hit = cache_.lookup(key)) {
          return ok_response(req.id_json, req.op, *hit, true,
                             now_ms_since(started));
        }
      }
      payload = run_synth(stg, max_states, req.cancel);
    } else {
      return error_response(req.id_json, req.op, "bad_request",
                            "unknown op: " + req.op);
    }
    // Truncated results are never memoized — they describe how far *this*
    // run got, not a property of the net.
    if (!req.no_cache && !truncated) cache_.insert(key, payload);
    if (truncated) c_truncated.add();
    return ok_response(req.id_json, req.op, payload, false,
                       now_ms_since(started));
  } catch (const FaultInjected& e) {
    c_faults.add();
    cache_.erase(key);
    return error_response(req.id_json, req.op, "fault", e.what());
  } catch (const Cancelled& e) {
    c_cancelled.add();
    cache_.erase(key);
    return error_response(req.id_json, req.op, "cancelled", e.what(), 0,
                          e.elapsed_ms());
  } catch (const LimitError& e) {
    cache_.erase(key);
    return error_response(req.id_json, req.op, "limit", e.what(), 0,
                          now_ms_since(started));
  } catch (const ParseError& e) {
    return error_response(req.id_json, req.op, "parse", e.what());
  } catch (const SemanticError& e) {
    return error_response(req.id_json, req.op, "semantic", e.what());
  } catch (const Error& e) {
    cache_.erase(key);
    return error_response(req.id_json, req.op, "internal", e.what());
  } catch (const std::exception& e) {
    cache_.erase(key);
    return error_response(req.id_json, req.op, "internal", e.what());
  }
}

std::string AnalysisService::handle_line(const std::string& line) {
  Request req = parse_request(line);
  const std::uint64_t deadline =
      req.deadline_ms != 0 ? req.deadline_ms : options_.default_deadline_ms;
  if (deadline != 0) {
    req.cancel = CancelToken::with_deadline(std::chrono::milliseconds(deadline));
  }
  return execute(req);
}

SubmitStatus AnalysisService::submit_line(
    const std::string& line, std::function<void(const std::string&)> done) {
  Request req = parse_request(line);
  if (!req.valid) {
    done(execute(req));
    return SubmitStatus{};
  }
  // Load shedding: above the RSS high watermark, reject before queuing —
  // finishing the jobs already in flight is the only way back under it,
  // and accepting more work just marches the process toward the OOM
  // killer. The retry hint tells clients when to come back.
  if (options_.max_rss_bytes != 0) {
    const std::uint64_t rss = obs::current_rss_bytes();
    if (rss > options_.max_rss_bytes) {
      c_shed.add();
      c_overloaded.add();
      SubmitStatus status;
      status.queue_depth = scheduler_.queue_depth();
      status.retry_after_ms = scheduler_.retry_hint_ms();
      done(error_response(req.id_json, req.op, "overloaded",
                          "resident set " + std::to_string(rss) +
                              " bytes over the high watermark; shedding load",
                          status.retry_after_ms));
      return status;
    }
  }
  // The deadline clock starts now, before the queue: a request that waits
  // out its whole budget in a full queue is cancelled, not run late.
  const std::uint64_t deadline =
      req.deadline_ms != 0 ? req.deadline_ms : options_.default_deadline_ms;
  if (deadline != 0) {
    req.cancel = CancelToken::with_deadline(std::chrono::milliseconds(deadline));
  } else if (options_.scheduler.stall_timeout_ms != 0) {
    // No client deadline, but a watchdog: the job still needs a trippable
    // token or a stalled worker could never be recovered.
    req.cancel = CancelToken::manual();
  }
  const Priority priority = req.priority;
  const CancelToken cancel = req.cancel;
  const std::string id_json = req.id_json;  // survive the move below
  const std::string op = req.op;
  auto guard = std::make_shared<ResponseGuard>(id_json, op, std::move(done));
  SubmitStatus status = scheduler_.submit(
      [this, req = std::move(req), guard]() { guard->respond(execute(req)); },
      priority, cancel);
  if (!status.accepted) {
    c_overloaded.add();
    guard->respond(error_response(
        id_json, op, "overloaded",
        "queue full (" + std::to_string(status.queue_depth) +
            " pending); retry later",
        status.retry_after_ms));
  }
  return status;
}

namespace {

/// Reads one newline-terminated frame without ever buffering more than
/// `max_bytes`: the over-limit remainder of the line is consumed and
/// discarded, reported through `overflow`. Returns false only at EOF with
/// nothing read.
bool bounded_getline(std::istream& in, std::string& line,
                     std::size_t max_bytes, bool& overflow) {
  line.clear();
  overflow = false;
  std::streambuf* sb = in.rdbuf();
  bool any = false;
  for (;;) {
    const int ch = sb->sbumpc();
    if (ch == std::char_traits<char>::eof()) {
      in.setstate(std::ios::eofbit);
      return any;
    }
    any = true;
    if (ch == '\n') return true;
    if (line.size() < max_bytes) {
      line.push_back(static_cast<char>(ch));
    } else {
      overflow = true;
    }
  }
}

}  // namespace

std::size_t serve(std::istream& in, std::ostream& out,
                  const ServiceOptions& options) {
  AnalysisService service(options);
  obs::ProgressReporter progress("svc.serve");
  std::mutex out_mutex;
  std::atomic<std::uint64_t> served{0};
  auto emit = [&](const std::string& response) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << response << '\n';
    out.flush();
    served.fetch_add(1, std::memory_order_relaxed);
  };

  std::size_t accepted = 0;
  std::string line;
  bool overflow = false;
  while (bounded_getline(in, line, options.max_line_bytes, overflow)) {
    if (overflow) {
      // The frame was discarded unread, so there is no `id` to echo — but
      // the client still gets a structured rejection, not silence or an
      // unbounded buffer.
      ++accepted;
      c_oversized.add();
      emit(error_response("", "", "bad_request",
                          "request line exceeds " +
                              std::to_string(options.max_line_bytes) +
                              " bytes"));
      continue;
    }
    if (line.empty()) continue;
    ++accepted;
    service.submit_line(line, emit);
    progress.update(served.load(std::memory_order_relaxed),
                    service.scheduler().queue_depth());
  }
  service.drain();
  progress.update(served.load(std::memory_order_relaxed), 0);
  return accepted;
}

}  // namespace cipnet::svc
