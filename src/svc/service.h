#pragma once

// The concurrent analysis service behind `cipnet serve`: line-delimited
// JSON requests in, one JSON response line per request out. Each request
// names an operation over a net shipped inline (`.cpn` text, `.g` text for
// STG ops); execution runs on a `JobScheduler` worker under a per-request
// deadline (`CancelToken`), and successful results are memoized in a
// content-addressed `ResultCache` keyed by the canonical net hash. The
// protocol — ops, schemas, error codes, backpressure semantics — is
// specified in docs/SERVICE.md.
//
// Observability: every request is minted a `TraceContext` (obs/
// trace_context.h) at parse, so spans, progress heartbeats, and flight-
// recorder events downstream carry the owning job id; every response
// carries a `timings` object (queue_wait/cache_lookup/exec/serialize, in
// microseconds, mirrored into the `svc.phase.*` histograms); and the
// introspection ops `metrics` / `jobs` / `health` / `dump` answer inline —
// bypassing load shedding and the queue — so the service can be inspected
// precisely when it is overloaded.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "svc/job_table.h"
#include "svc/result_cache.h"
#include "svc/scheduler.h"

namespace cipnet::svc {

struct ServiceOptions {
  SchedulerOptions scheduler;
  ResultCacheOptions cache;
  /// Deadline applied to requests that do not carry `deadline_ms`;
  /// 0 = unlimited.
  std::uint64_t default_deadline_ms = 0;
  /// Default state/node budget for explorations (requests may override via
  /// `max_states`).
  std::size_t max_states = 200000;
  /// Per-request approximate graph memory budget for `reach` (bytes,
  /// 0 = unlimited). Trips degrade gracefully: the response carries partial
  /// statistics with `"truncated": true`.
  std::size_t max_graph_bytes = 0;
  /// Load shedding: when the process RSS exceeds this many bytes, new
  /// requests are rejected with `overloaded` + a retry hint before they
  /// reach the queue (0 = disabled).
  std::size_t max_rss_bytes = 0;
  /// Maximum accepted NDJSON frame length; `serve` discards longer lines
  /// and answers `bad_request` instead of buffering without bound.
  std::size_t max_line_bytes = 4u << 20;
  /// Persistent ResultCache (svc/cache_persist.h): non-empty = load
  /// surviving entries from this directory at startup (checksum- and
  /// TTL-validated; corrupt files quarantined) and write entries through
  /// on insert, so a restarted server answers warm.
  std::string cache_dir;
  /// Directory the `checkpoint`/`resume` request members resolve in
  /// (created at startup if missing). Requests name bare files — no path
  /// separators, no ".." — and both members are rejected with
  /// `bad_request` while this is empty: the strings end up at rename()
  /// and the atomic-write protocol on the server's filesystem, and the
  /// TCP frontend must not let remote clients aim them at arbitrary
  /// paths (docs/SERVICE.md).
  std::string checkpoint_dir;
};

class CachePersister;

class AnalysisService {
 public:
  explicit AnalysisService(ServiceOptions options = {});
  ~AnalysisService();

  AnalysisService(const AnalysisService&) = delete;
  AnalysisService& operator=(const AnalysisService&) = delete;

  /// Parse and execute one request synchronously on the calling thread.
  /// Always returns exactly one response document (no trailing newline);
  /// every failure mode — malformed JSON included — becomes a structured
  /// error response, never an exception.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Asynchronous path: parse `line`, start its deadline clock (queue wait
  /// counts against it), and enqueue execution. `done` is invoked exactly
  /// once with the response — on a worker thread normally, or inline on the
  /// calling thread when the request is malformed or the queue is full
  /// (`overloaded` response carrying the scheduler's retry hint).
  /// `default_client` tags the job (TraceContext, `jobs` table) when the
  /// request carries no `client` member — the TCP frontend passes the
  /// peer's "ip:port" so every job is attributable to its socket.
  SubmitStatus submit_line(const std::string& line,
                           std::function<void(const std::string&)> done,
                           const std::string& default_client = {});

  /// Build one schema-correct error response for `line` without executing
  /// it: `id`/`op` are echoed best-effort (unparseable lines get neither)
  /// and the response carries the mandatory `timings` object. This is how
  /// transport layers reject frames they never submit — the TCP frontend's
  /// per-connection quota uses it for `overloaded` turnaways.
  [[nodiscard]] std::string error_line(const std::string& line,
                                       std::string_view code,
                                       std::string_view message,
                                       std::uint64_t retry_after_ms = 0) const;

  /// Wait until every accepted request has produced its response.
  void drain() { scheduler_.drain(); }

  [[nodiscard]] JobScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] ResultCache& cache() { return cache_; }
  [[nodiscard]] JobTable& jobs() { return jobs_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  struct Request;

  [[nodiscard]] Request parse_request(const std::string& line) const;
  [[nodiscard]] std::string execute(const Request& request);
  [[nodiscard]] std::string run_health() const;

  ServiceOptions options_;
  /// Monotonic TraceContext ids; 0 is reserved for "no request".
  std::atomic<std::uint64_t> next_job_id_{1};
  /// ProgressBus listener mapping heartbeat events onto the job table.
  int progress_listener_ = 0;
  /// Declared before cache_: the cache's write-through hooks point here,
  /// and members destroy in reverse order (workers are long gone by then —
  /// scheduler_ dies first — but the hooks must not dangle even so).
  std::unique_ptr<CachePersister> persister_;
  ResultCache cache_;
  JobTable jobs_;
  JobScheduler scheduler_;  // declared last: workers die before the cache
};

/// The `cipnet serve` loop: read NDJSON requests from `in` until EOF,
/// write one response line per request to `out` (completion order, which
/// under concurrency is not request order — match by `id`). Returns the
/// number of non-empty request lines read.
std::size_t serve(std::istream& in, std::ostream& out,
                  const ServiceOptions& options = {});

}  // namespace cipnet::svc
