#pragma once

// Content-addressed result cache for analysis operations. Keys combine the
// canonical 64-bit net hash (petri/canonical.h) with the operation name and
// a canonical parameter string, so "the same analysis of the same net"
// resolves to the same entry no matter which client sent it or how the net
// text was formatted. Values are the serialized JSON result payloads the
// service would otherwise recompute — exactly the memoization lever of
// Sobociński & Stephens' compositional reachability checkers, applied at
// the service boundary.
//
// Bounded two ways: total estimated bytes (LRU eviction, estimates in the
// spirit of `reach.graph_bytes`) and an optional TTL. Thread-safe; counters
// `svc.cache.{hit,miss,eviction,expired}` and gauges
// `svc.cache.{bytes,entries}` make the hit rate observable via `--stats`.

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace cipnet::svc {

struct CacheKey {
  std::uint64_t net_hash = 0;
  std::string op;
  std::string params;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const {
    Fnv1a64 h;
    h.u64(key.net_hash);
    h.str(key.op);
    h.str(key.params);
    return static_cast<std::size_t>(h.digest());
  }
};

struct ResultCacheOptions {
  /// Estimated-byte budget; least-recently-used entries are evicted beyond
  /// it. A payload larger than the whole budget is not cached at all.
  std::size_t max_bytes = 64ull << 20;
  /// Entry lifetime; zero = never expires.
  std::chrono::milliseconds ttl{0};
};

class ResultCache {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ResultCache(ResultCacheOptions options = {});

  /// The cached payload for `key`, refreshing its recency — or nullopt on
  /// miss (also when the entry had expired; expiry counts as a miss).
  /// `now` is injectable for TTL tests.
  [[nodiscard]] std::optional<std::string> lookup(
      const CacheKey& key, Clock::time_point now = Clock::now());

  /// Insert or overwrite, then evict LRU entries until under budget.
  void insert(const CacheKey& key, std::string payload,
              Clock::time_point now = Clock::now());

  /// Drop `key` if present — the negative-result quarantine hook: the
  /// service calls this when a job for `key` ends in `Cancelled`,
  /// `LimitError`, or an injected fault, so a failure conservatively
  /// invalidates whatever was cached under that key.
  void erase(const CacheKey& key);

  void clear();

  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::size_t bytes() const;

  /// Write-through persistence hooks (svc/cache_persist.h). All callbacks
  /// are invoked *outside* the cache lock — an insert first mutates the
  /// map, then notifies `on_insert` for the new entry and `on_erase` for
  /// every LRU victim it displaced — so a hook may call back into the
  /// cache without deadlocking. Because they run unlocked, callbacks for
  /// the same key can reach the hook in a different order than the cache
  /// applied them; `seq` is a monotonic mutation counter assigned under
  /// the cache lock so a hook can re-establish that order (apply an op
  /// only when its seq exceeds the last one applied for the key — the
  /// persister does exactly this). Attach before the cache is shared
  /// across threads (the service constructor does); hooks themselves must
  /// be thread-safe.
  struct Listener {
    std::function<void(const CacheKey&, const std::string& payload,
                       std::uint64_t seq)>
        on_insert;
    std::function<void(const CacheKey&, std::uint64_t seq)> on_erase;
    std::function<void(std::uint64_t seq)> on_clear;
  };
  void set_listener(Listener listener) { listener_ = std::move(listener); }

 private:
  struct Entry {
    std::string payload;
    std::size_t bytes = 0;
    Clock::time_point inserted;
    std::list<CacheKey>::iterator lru_it;
  };

  [[nodiscard]] static std::size_t entry_bytes(const CacheKey& key,
                                               const std::string& payload);
  void erase_locked(const CacheKey& key);
  void update_gauges_locked() const;

  ResultCacheOptions options_;
  Listener listener_;

  mutable std::mutex mutex_;
  std::list<CacheKey> lru_;  // front = most recently used
  std::unordered_map<CacheKey, Entry, CacheKeyHash> map_;
  std::size_t bytes_ = 0;
  /// Mutation sequence for listener ordering; advanced under mutex_.
  std::uint64_t seq_ = 0;
};

}  // namespace cipnet::svc
