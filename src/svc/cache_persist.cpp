#include "svc/cache_persist.h"

#include <cstdio>
#include <filesystem>
#include <unordered_set>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/error.h"

namespace cipnet::svc {

namespace {

const obs::Counter c_loaded("store.cache.loaded");
const obs::Counter c_persisted("store.cache.persisted");
const obs::Counter c_dropped("store.cache.dropped");
const obs::Counter c_corrupt("store.corrupt.skipped");
const obs::Counter c_persist_errors("store.persist.errors");

std::uint64_t wall_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::string encode_cache_entry(const CacheEntryImage& image) {
  std::string body;
  body.reserve(image.payload.size() + 64);
  store::put_u64(body, image.key.net_hash);
  store::put_str(body, image.key.op);
  store::put_str(body, image.key.params);
  store::put_u64(body, image.wall_ms);
  store::put_str(body, image.payload);
  return body;
}

bool decode_cache_entry(const std::string& body, CacheEntryImage& image,
                        std::string& why) {
  std::size_t pos = 0;
  if (!store::get_u64(body, pos, image.key.net_hash) ||
      !store::get_str(body, pos, image.key.op) ||
      !store::get_str(body, pos, image.key.params) ||
      !store::get_u64(body, pos, image.wall_ms) ||
      !store::get_str(body, pos, image.payload)) {
    why = "truncated entry";
    return false;
  }
  if (pos != body.size()) {
    why = "trailing bytes";
    return false;
  }
  return true;
}

CachePersister::CachePersister(std::string dir, std::chrono::milliseconds ttl)
    : dir_(std::move(dir)), ttl_(ttl) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort; writes
  // into a missing directory surface as counted persist errors below.
}

std::string CachePersister::path_for(const CacheKey& key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.rc",
                static_cast<unsigned long long>(CacheKeyHash{}(key)));
  return dir_ + "/" + name;
}

std::size_t CachePersister::load_into(ResultCache& cache) {
  std::error_code ec;
  const std::uint64_t now_ms = wall_now_ms();
  std::size_t loaded = 0;
  std::filesystem::directory_iterator it(dir_, ec);
  // increment(ec), not the range-for operator++: that overload throws out
  // of the scan (and of the AnalysisService constructor), and a wholly
  // unreadable directory must cost only warmth, never the boot.
  for (; !ec && it != std::filesystem::directory_iterator();
       it.increment(ec)) {
    if (it->path().extension() != ".rc") continue;
    const std::string path = it->path().string();
    std::optional<std::string> bytes;
    try {
      bytes = store::read_file(path);
    } catch (const Error&) {
      // Unreadable (real I/O trouble or the injected store.load fault):
      // skip it this boot; the file may well read fine next time, so it
      // is not quarantined.
      c_corrupt.add();
      continue;
    }
    if (!bytes.has_value()) continue;  // raced away underneath the scan
    std::string body;
    std::string why;
    CacheEntryImage image;
    if (!store::open_blob(*bytes, kCacheEntryMagic, kCacheEntryVersion, body,
                          why) ||
        !decode_cache_entry(body, image, why)) {
      c_corrupt.add();
      store::quarantine_file(path);
      obs::FlightRecorder::instance().record(
          obs::FlightKind::kCustom, 0, "store.corrupt.skipped: " + why, 0, 0);
      continue;
    }
    const std::uint64_t age_ms =
        image.wall_ms < now_ms ? now_ms - image.wall_ms : 0;
    if (ttl_.count() > 0 &&
        age_ms >= static_cast<std::uint64_t>(ttl_.count())) {
      c_dropped.add();
      std::error_code rm;  // not `ec`: a failed drop must not end the scan
      std::filesystem::remove(path, rm);
      continue;
    }
    // Backdate the in-memory entry by its wall-clock age so the TTL keeps
    // counting across the restart.
    try {
      cache.insert(image.key, std::move(image.payload),
                   ResultCache::Clock::now() -
                       std::chrono::milliseconds(age_ms));
      c_loaded.add();
      ++loaded;
    } catch (const Error&) {
      // Injected svc.cache.insert fault: the entry stays on disk for the
      // next boot; this one simply starts colder.
    }
  }
  return loaded;
}

void CachePersister::attach(ResultCache& cache) {
  ResultCache::Listener listener;
  listener.on_insert = [this](const CacheKey& key,
                              const std::string& payload,
                              std::uint64_t seq) {
    persist(key, payload, seq);
  };
  listener.on_erase = [this](const CacheKey& key, std::uint64_t seq) {
    remove(key, seq);
  };
  listener.on_clear = [this](std::uint64_t seq) { remove_all(seq); };
  cache.set_listener(std::move(listener));
}

void CachePersister::persist(const CacheKey& key, const std::string& payload,
                             std::uint64_t seq) {
  CacheEntryImage image;
  image.key = key;
  image.wall_ms = wall_now_ms();
  image.payload = payload;
  const std::string sealed = store::seal_blob(
      kCacheEntryMagic, kCacheEntryVersion, encode_cache_entry(image));
  std::lock_guard<std::mutex> lock(io_mutex_);
  std::uint64_t& last = applied_[key];
  if (seq <= last || seq <= clear_seq_) return;  // a newer op already won
  last = seq;
  try {
    store::write_file_atomic(path_for(key), sealed);
    c_persisted.add();
  } catch (const Error&) {
    // Write-through is best effort (counted): a failed persist (real or
    // injected store.write / store.fsync) costs warmth after the next
    // restart, never the in-memory entry or the response.
    c_persist_errors.add();
    obs::FlightRecorder::instance().record(obs::FlightKind::kCustom, 0,
                                           "store.persist.error", 0, 0);
  }
}

void CachePersister::remove(const CacheKey& key, std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(io_mutex_);
  std::uint64_t& last = applied_[key];
  if (seq <= last || seq <= clear_seq_) return;
  last = seq;
  std::error_code ec;
  std::filesystem::remove(path_for(key), ec);
}

void CachePersister::remove_all(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(io_mutex_);
  if (seq <= clear_seq_) return;
  clear_seq_ = seq;
  // A key whose last applied op outranks this clear was re-inserted
  // after the cache cleared — its twin survives. Everything older is
  // pruned; those per-key floors are subsumed by clear_seq_.
  std::unordered_set<std::string> keep;
  for (auto entry = applied_.begin(); entry != applied_.end();) {
    if (entry->second > seq) {
      keep.insert(
          std::filesystem::path(path_for(entry->first)).filename().string());
      ++entry;
    } else {
      entry = applied_.erase(entry);
    }
  }
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  // increment(ec), not the range-for operator++: that overload throws,
  // and a scan failure mid-directory may cost files, never the process.
  for (; !ec && it != std::filesystem::directory_iterator();
       it.increment(ec)) {
    if (it->path().extension() != ".rc") continue;
    if (keep.count(it->path().filename().string()) != 0) continue;
    std::error_code rm;
    std::filesystem::remove(it->path(), rm);
  }
}

}  // namespace cipnet::svc
