#pragma once

// Client-side backoff for the serve protocol. An `overloaded` response is
// an invitation to come back, not a failure — the server attaches
// `retry_after_ms` (its EWMA-based estimate of when a queue slot frees up),
// and a well-behaved client waits at least that long, growing its own
// exponential delay with deterministic jitter so a herd of rejected clients
// does not return in lockstep. `submit_with_retry` packages the loop for
// in-process callers and the test harness; docs/SERVICE.md carries the
// retry guidance for external clients.

#include <cstdint>
#include <functional>
#include <string>

#include "svc/service.h"

namespace cipnet::svc {

struct RetryPolicy {
  /// First-retry delay; subsequent delays multiply by `multiplier`.
  std::uint64_t base_ms = 10;
  /// Ceiling on any single delay (applied before jitter).
  std::uint64_t max_ms = 5000;
  double multiplier = 2.0;
  /// Jitter fraction: each delay is scaled by a deterministic factor in
  /// [1 - jitter, 1 + jitter] derived from (seed, attempt).
  double jitter = 0.2;
  /// Total tries, including the first submission.
  std::size_t max_attempts = 8;
  /// Seed for the jitter sequence — same seed, same delays.
  std::uint64_t seed = 0;
};

/// The pure delay schedule behind `submit_with_retry`, exposed so tests
/// can verify backoff shape and server-hint handling without sleeping.
class RetrySchedule {
 public:
  explicit RetrySchedule(RetryPolicy policy) : policy_(policy) {}

  /// Delay before retry number `attempt` (0 = first retry), never earlier
  /// than the server's `retry_after_ms` hint. Exponential in `attempt`,
  /// capped at `max_ms`, then jittered deterministically.
  [[nodiscard]] std::uint64_t delay_ms(std::size_t attempt,
                                       std::uint64_t server_hint_ms) const;

  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

 private:
  RetryPolicy policy_;
};

/// Outcome of a retried submission.
struct RetryResult {
  std::string response;          ///< the final response line
  std::size_t attempts = 0;      ///< submissions made (>= 1)
  std::uint64_t total_delay_ms = 0;  ///< sum of backoff waits requested
  bool gave_up = false;  ///< still `overloaded` after `max_attempts`
};

/// Submit `line`, retrying while the service answers `overloaded`, honoring
/// its `retry_after_ms` hints under the policy's backoff. Blocks until a
/// non-overloaded response arrives or attempts run out. `wait_fn` receives
/// each delay; pass a custom one in tests to count instead of sleep
/// (defaults to `std::this_thread::sleep_for`).
RetryResult submit_with_retry(
    AnalysisService& service, const std::string& line,
    const RetryPolicy& policy = {},
    const std::function<void(std::uint64_t)>& wait_fn = {});

}  // namespace cipnet::svc
