#pragma once

// Write-through persistence for the ResultCache: `serve --cache-dir DIR`
// keeps one sealed file per cache entry (`<keyhash>.rc`, written with the
// atomic protocol of util/atomic_file.h), so a restarted server answers
// previously-computed requests warm. Loading is corruption-tolerant: a
// file that fails the envelope checks is quarantined to `.bad` and counted
// (`store.corrupt.skipped`), an expired one is dropped
// (`store.cache.dropped`) — a damaged cache directory can cost hits, never
// the process.
//
// Quarantine rules of the in-memory cache carry over by construction: the
// persister only ever sees entries the service decided to memoize
// (truncated results never reach `insert`), and the `on_erase` hook —
// fired when a job for a key fails or the entry is evicted/expired —
// deletes the on-disk twin, so faulted results are never resurrected
// after a restart.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "svc/result_cache.h"

namespace cipnet::svc {

/// "CIPNRC01" little-endian.
inline constexpr std::uint64_t kCacheEntryMagic = 0x313043524e504943ULL;
inline constexpr std::uint32_t kCacheEntryVersion = 1;

/// Entry body inside the sealed envelope. `wall_ms` is the wall-clock
/// insert time (system_clock, ms since epoch): the in-memory cache runs on
/// steady_clock, which does not survive a restart, so reload re-derives
/// the entry's age from wall time and re-inserts it backdated — TTL keeps
/// counting across the restart instead of resetting.
struct CacheEntryImage {
  CacheKey key;
  std::uint64_t wall_ms = 0;
  std::string payload;
};

[[nodiscard]] std::string encode_cache_entry(const CacheEntryImage& image);
[[nodiscard]] bool decode_cache_entry(const std::string& body,
                                      CacheEntryImage& image,
                                      std::string& why);

class CachePersister {
 public:
  /// `dir` is created if missing; `ttl` mirrors the cache's own TTL
  /// (zero = entries never expire on reload).
  CachePersister(std::string dir, std::chrono::milliseconds ttl);

  /// Scan `dir` for `*.rc` files and re-insert every survivor into
  /// `cache`, backdated by its wall-clock age. Returns the number loaded.
  /// Call before `attach` — loading through the write-back hook would
  /// rewrite every file it just read.
  std::size_t load_into(ResultCache& cache);

  /// Install the write-through hooks on `cache`.
  void attach(ResultCache& cache);

  [[nodiscard]] std::string path_for(const CacheKey& key) const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// The listener entry points `attach` wires up. The cache invokes its
  /// hooks outside its lock, so ops for one key can arrive here in either
  /// order; `seq` (the cache's mutation counter) restores it — an op
  /// applies only when its seq exceeds both the key's last applied seq
  /// and the latest clear. Without this a racing erase could delete the
  /// twin *before* the stale insert writes it, resurrecting on restart an
  /// entry memory gave up on.
  void persist(const CacheKey& key, const std::string& payload,
               std::uint64_t seq);
  void remove(const CacheKey& key, std::uint64_t seq);
  void remove_all(std::uint64_t seq);

 private:
  std::string dir_;
  std::chrono::milliseconds ttl_;
  /// Serializes the seq check with the file operation it gates; one
  /// coarse lock is fine at cache-insert rates (entries are whole
  /// analysis results, not hot-path writes).
  std::mutex io_mutex_;
  std::unordered_map<CacheKey, std::uint64_t, CacheKeyHash> applied_;
  std::uint64_t clear_seq_ = 0;
};

}  // namespace cipnet::svc
