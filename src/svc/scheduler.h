#pragma once

// Fixed-size worker pool with a bounded, prioritized work queue and
// backpressure. The scheduler is the concurrency core of the `cipnet serve`
// service (svc/service.h): requests become jobs, jobs carry a priority, and
// a full queue *rejects* the submission with a retry hint instead of
// blocking the submitter — the NDJSON protocol surfaces that as an
// `overloaded` error so well-behaved clients back off.
//
// Instrumented with the obs stack: `svc.queue_wait_us` / `svc.job_us`
// histograms, `svc.jobs.*` counters, and `svc.queue_depth` /
// `svc.queue_peak` gauges (catalogue in docs/OBSERVABILITY.md). A job that
// throws is swallowed after counting `svc.jobs.failed` — one poisonous
// request must not take a worker down.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace_context.h"
#include "util/cancel.h"

namespace cipnet::svc {

/// Job priority; higher runs first, FIFO within a level.
enum class Priority : std::uint8_t { kLow = 0, kNormal = 1, kHigh = 2 };

struct SchedulerOptions {
  std::size_t workers = 4;
  /// Maximum queued (not yet running) jobs; submissions beyond are rejected.
  std::size_t max_queue = 256;
  /// Watchdog: a job still running after this many milliseconds has its
  /// `CancelToken` tripped (cooperative kill — the job unwinds through its
  /// next cancellation check and reports `cancelled`). 0 disables the
  /// watchdog; jobs submitted without a cancellable token cannot be killed.
  std::uint64_t stall_timeout_ms = 0;
  /// How often the watchdog scans the workers.
  std::uint64_t watchdog_interval_ms = 100;
};

/// Outcome of a `submit` call. When `accepted` is false the job was *not*
/// enqueued; `retry_after_ms` estimates when a slot should free up, based
/// on the queue depth and an exponential moving average of job duration.
struct SubmitStatus {
  bool accepted = false;
  std::size_t queue_depth = 0;
  std::uint64_t retry_after_ms = 0;
};

class JobScheduler {
 public:
  explicit JobScheduler(SchedulerOptions options = {});

  /// Drains the queue (runs everything already accepted), then joins.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueue `job`. Never blocks: a full queue or a stopped scheduler
  /// rejects (accepted=false) and `job` is destroyed unrun. `cancel` is the
  /// job's cancellation token; the watchdog trips it when the job stalls
  /// past `stall_timeout_ms`. `label` names the worker span wrapping the
  /// job (`svc.job.<op>` from the service; empty = the generic
  /// `svc.job`), so per-op duration histograms stay separable. `ctx` is
  /// the request's TraceContext; the worker installs it around the span
  /// and the job body, so every span/heartbeat/flight event the job emits
  /// carries its job id.
  SubmitStatus submit(std::function<void()> job,
                      Priority priority = Priority::kNormal,
                      CancelToken cancel = {}, std::string label = {},
                      obs::TraceContext ctx = {});

  /// The current backoff estimate (same number a rejection would carry),
  /// for callers that shed load before reaching the queue.
  [[nodiscard]] std::uint64_t retry_hint_ms() const;

  /// Block until every accepted job has finished and the queue is empty.
  void drain();

  /// Stop accepting, finish everything accepted, join the workers.
  /// Idempotent; called by the destructor.
  void shutdown();

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }
  [[nodiscard]] std::size_t queue_depth() const;
  /// Jobs currently executing on a worker.
  [[nodiscard]] std::size_t active_count() const;
  [[nodiscard]] std::size_t max_queue() const { return options_.max_queue; }

  /// Point-in-time view of one worker for the `health` op.
  struct WorkerState {
    bool busy = false;
    bool stalled = false;          ///< flagged by the watchdog
    std::uint64_t job_id = 0;      ///< TraceContext id of the running job
    std::string label;             ///< span label of the running job
    std::uint64_t running_ms = 0;  ///< how long the current job has run
  };
  [[nodiscard]] std::vector<WorkerState> worker_states() const;

 private:
  struct Job {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    CancelToken cancel;
    std::string label;
    obs::TraceContext ctx;
  };

  /// Per-worker heartbeat slot the watchdog scans. Own mutex (not the
  /// queue mutex): the watchdog must never contend with submission.
  struct WorkerSlot {
    std::mutex mu;
    bool busy = false;
    bool stall_flagged = false;
    std::chrono::steady_clock::time_point started;
    CancelToken cancel;
    std::uint64_t job_id = 0;
    std::string label;
  };

  void worker_loop(WorkerSlot& slot);
  void watchdog_loop();
  [[nodiscard]] std::uint64_t retry_hint_locked() const;

  SchedulerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // workers wait for jobs / shutdown
  std::condition_variable idle_cv_;   // drain()/shutdown() wait for quiesce
  std::deque<Job> queues_[3];         // one FIFO per priority level
  std::size_t queued_ = 0;
  std::size_t active_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;
  bool joined_ = false;
  /// EWMA of job wall time in microseconds (guarded by mutex_), feeding the
  /// retry hint.
  double avg_job_us_ = 0.0;

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> threads_;

  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;  // wakes the watchdog for shutdown
  bool watchdog_stop_ = false;
  std::thread watchdog_;
};

}  // namespace cipnet::svc
