#include "svc/job_table.h"

#include <algorithm>
#include <utility>

namespace cipnet::svc {

namespace {

std::uint64_t ms_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  if (b <= a) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count());
}

}  // namespace

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kErrored: return "errored";
    case JobState::kShed: return "shed";
    case JobState::kRejected: return "rejected";
  }
  return "unknown";
}

std::uint64_t JobInfo::elapsed_ms(
    std::chrono::steady_clock::time_point now) const {
  const bool finished_set =
      finished != std::chrono::steady_clock::time_point{};
  return ms_between(submitted, finished_set ? finished : now);
}

std::uint64_t JobInfo::heartbeat_age_ms(
    std::chrono::steady_clock::time_point now) const {
  if (last_beat == std::chrono::steady_clock::time_point{}) return 0;
  return ms_between(last_beat, now);
}

void JobTable::on_submitted(std::uint64_t job_id, std::string id_json,
                            std::string op, std::string client) {
  JobInfo info;
  info.job_id = job_id;
  info.id_json = std::move(id_json);
  info.op = std::move(op);
  info.client = std::move(client);
  info.state = JobState::kQueued;
  info.phase = "queued";
  info.submitted = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  live_.push_back(std::move(info));
}

void JobTable::on_started(std::uint64_t job_id) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  for (JobInfo& info : live_) {
    if (info.job_id != job_id) continue;
    info.state = JobState::kRunning;
    info.phase = "running";
    info.started = now;
    info.last_beat = now;
    return;
  }
}

void JobTable::on_phase(std::uint64_t job_id, std::string_view phase) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  for (JobInfo& info : live_) {
    if (info.job_id != job_id) continue;
    info.phase.assign(phase);
    info.last_beat = now;
    return;
  }
}

void JobTable::heartbeat(std::uint64_t job_id) {
  if (job_id == 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  for (JobInfo& info : live_) {
    if (info.job_id != job_id) continue;
    info.last_beat = now;
    return;
  }
}

void JobTable::on_finished(std::uint64_t job_id, JobState state,
                           std::string_view outcome, bool cached,
                           std::string id_json, std::string op,
                           std::string client) {
  const auto now = std::chrono::steady_clock::now();
  JobInfo finished;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find_if(
        live_.begin(), live_.end(),
        [job_id](const JobInfo& info) { return info.job_id == job_id; });
    if (it != live_.end()) {
      finished = std::move(*it);
      live_.erase(it);
      found = true;
    }
  }
  if (!found) {
    // Shed/rejected before ever reaching the table: synthesize the row so
    // the rejection is still visible in `recent`.
    finished.job_id = job_id;
    finished.id_json = std::move(id_json);
    finished.op = std::move(op);
    finished.client = std::move(client);
    finished.submitted = now;
  }
  finished.state = state;
  finished.phase = "done";
  finished.outcome.assign(outcome);
  finished.cached = cached;
  finished.finished = now;
  std::lock_guard<std::mutex> lock(mutex_);
  recent_.push_front(std::move(finished));
  while (recent_.size() > recent_capacity_) recent_.pop_back();
}

std::vector<JobInfo> JobTable::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobInfo> out = live_;
  std::sort(out.begin(), out.end(),
            [](const JobInfo& a, const JobInfo& b) {
              return a.job_id < b.job_id;
            });
  return out;
}

std::vector<JobInfo> JobTable::recent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {recent_.begin(), recent_.end()};
}

std::size_t JobTable::in_flight_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_.size();
}

}  // namespace cipnet::svc
