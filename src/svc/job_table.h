#pragma once

// Live job introspection for the analysis service: one row per request,
// from acceptance to a bounded ring of recently-completed jobs. The `jobs`
// op of the NDJSON protocol renders this table, which is what makes a
// stalled or shed request distinguishable from a healthy one *while it is
// happening* — phase, elapsed time, and heartbeat age per job, not just
// process-global counters.
//
// The table is updated from the service's request path (submit / start /
// phase transitions / finish) and from progress heartbeats (the service
// installs a ProgressBus listener that maps each event's TraceContext job
// id onto `heartbeat()`). All methods take one mutex; updates are per-job
// state transitions — a handful per request — never per explored state.

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace cipnet::svc {

enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning,
  kDone,       ///< produced an ok response
  kErrored,    ///< produced an error response (outcome = error code)
  kShed,       ///< rejected at the door (RSS watermark)
  kRejected,   ///< rejected by queue backpressure
};

[[nodiscard]] std::string_view job_state_name(JobState state);

struct JobInfo {
  std::uint64_t job_id = 0;
  std::string id_json;  ///< client-provided id echo (pre-serialized)
  std::string op;
  std::string client;
  JobState state = JobState::kQueued;
  std::string phase;    ///< parse / cache_lookup / exec / serialize / done
  std::string outcome;  ///< "ok" or the error code, once finished
  bool cached = false;
  std::chrono::steady_clock::time_point submitted{};
  std::chrono::steady_clock::time_point started{};
  std::chrono::steady_clock::time_point finished{};
  std::chrono::steady_clock::time_point last_beat{};

  /// Milliseconds from submission until now (in-flight) or until the job
  /// finished.
  [[nodiscard]] std::uint64_t elapsed_ms(
      std::chrono::steady_clock::time_point now) const;
  /// Milliseconds since the job last showed a sign of life (start, phase
  /// change, or progress heartbeat). 0 when it never started.
  [[nodiscard]] std::uint64_t heartbeat_age_ms(
      std::chrono::steady_clock::time_point now) const;
};

class JobTable {
 public:
  /// How many completed jobs the `recent` ring keeps.
  explicit JobTable(std::size_t recent_capacity = 64)
      : recent_capacity_(recent_capacity) {}

  /// Register an accepted job (state kQueued).
  void on_submitted(std::uint64_t job_id, std::string id_json,
                    std::string op, std::string client);
  /// A worker picked the job up.
  void on_started(std::uint64_t job_id);
  /// The job entered a new execution phase; also refreshes the heartbeat.
  void on_phase(std::uint64_t job_id, std::string_view phase);
  /// A progress heartbeat attributed to the job arrived.
  void heartbeat(std::uint64_t job_id);
  /// Terminal transition; moves the row into the recent ring. For rows
  /// never registered (e.g. shed before submit), records a fresh row so
  /// rejections are visible in `recent` too.
  void on_finished(std::uint64_t job_id, JobState state,
                   std::string_view outcome, bool cached,
                   std::string id_json = {}, std::string op = {},
                   std::string client = {});

  [[nodiscard]] std::vector<JobInfo> in_flight() const;
  [[nodiscard]] std::vector<JobInfo> recent() const;
  [[nodiscard]] std::size_t in_flight_count() const;

 private:
  std::size_t recent_capacity_;
  mutable std::mutex mutex_;
  std::vector<JobInfo> live_;   // small: bounded by queue + workers
  std::deque<JobInfo> recent_;  // front = most recently finished
};

}  // namespace cipnet::svc
