#pragma once

#include <string>
#include <vector>

#include "circuit/receptive.h"

namespace cipnet {

/// One-call verification of a composed pair of interface modules — the
/// checklist Section 5.3 prescribes before trusting a composition:
///  * receptiveness (Propositions 5.5/5.6), with witnesses;
///  * safety of the composed state space;
///  * deadlock-freedom;
///  * which synchronization labels went dead (Section 5.2 expects dead
///    duplicates after composition — they are reported, not failed).
struct CompositionVerdict {
  bool receptive = true;
  bool safe = true;
  bool deadlock_free = true;
  std::vector<ReceptivenessFailure> receptiveness_failures;
  std::vector<std::string> dead_labels;
  std::size_t states = 0;

  [[nodiscard]] bool ok() const {
    return receptive && safe && deadlock_free;
  }
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] CompositionVerdict verify_composition(
    const Circuit& c1, const Circuit& c2, const ReachOptions& options = {});

}  // namespace cipnet
