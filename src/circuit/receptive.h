#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "reach/reachability.h"

namespace cipnet {

/// One receptiveness failure (Propositions 5.5 / 5.6): a reachable marking
/// of the composed net in which the output side of a synchronization
/// transition is fully enabled but the input side is not — the producer can
/// emit a signal edge its consumer is not ready to accept.
struct ReceptivenessFailure {
  std::string label;
  /// True when the output half belongs to the first operand.
  bool output_on_left = false;
  /// The offending transition in the *output-side operand's* net: the one
  /// that is enabled while no equally-labeled input-side transition is.
  TransitionId output_transition;
  /// Witness marking (of the composed net) and a firing sequence reaching
  /// it (reachability-based check only; the structural check proves
  /// existence without producing a path).
  std::optional<Marking> witness;
  std::optional<std::vector<TransitionId>> firing_sequence;
};

struct ReceptivenessReport {
  std::vector<ReceptivenessFailure> failures;
  /// Synchronization transitions that were checked.
  std::size_t checked_transitions = 0;

  [[nodiscard]] bool receptive() const { return failures.empty(); }
};

/// Reachability-based check (Proposition 5.5): exact for any bounded
/// composition, exponential in the worst case. Composition must not share
/// output signals (compose() enforces it).
[[nodiscard]] ReceptivenessReport check_receptiveness(
    const Circuit& c1, const Circuit& c2, const ReachOptions& options = {});

/// Section 5.3's reduced check: instead of the full composition, check
/// `hide'(N1, A1\A2) || hide'(N2, A2\A1)` — each side's private signals are
/// contracted except that (at least) one `eps` dummy remains on every
/// internal path into a synchronization transition, which is exactly the
/// information the check needs ("we may not do it on hide(...) since then
/// information is lost whether the synchronization transitions are reached
/// via internal transitions or not"). Same verdicts as
/// `check_receptiveness` on smaller nets; witnesses refer to the reduced
/// composition.
[[nodiscard]] ReceptivenessReport check_receptiveness_reduced(
    const Circuit& c1, const Circuit& c2, const HideOptions& hide = {},
    const ReachOptions& options = {});

/// Structural polynomial check (Theorem 5.7) for compositions that are
/// strongly-connected live-safe marked graphs: for a live marked graph the
/// reachable markings are exactly the solutions of the state equation, so
/// "all of p1 marked while some place of p2 is empty" reduces to a
/// difference-constraint system solved by Bellman-Ford negative-cycle
/// detection — polynomial time and space, no state enumeration. Throws
/// SemanticError when the composition is not a live marked graph.
[[nodiscard]] ReceptivenessReport check_receptiveness_structural(
    const Circuit& c1, const Circuit& c2);

}  // namespace cipnet
