#include "circuit/simplify.h"

#include "util/error.h"
#include "util/sorted_set.h"

namespace cipnet {

SimplifyResult simplify_against(const Circuit& target,
                                const Circuit& environment,
                                const SimplifyOptions& options) {
  SimplifyResult result;
  result.stats.places_before = target.net().place_count();
  result.stats.transitions_before = target.net().transition_count();

  ComposeResult composed = compose(target, environment);

  PetriNet net = composed.circuit.net();
  auto prune = [&](PetriNet& n) {
    if (!options.remove_dead) return;
    try {
      DeadRemovalResult dead = remove_dead_transitions(
          n, /*drop_isolated_places=*/true, options.reach);
      result.stats.dead_transitions_removed += dead.removed;
      result.stats.dead_method = dead.method;
      n = std::move(dead.slice.net);
    } catch (const LimitError&) {
      // state space too large to prune right now; keep going
    }
  };
  prune(net);

  // Keep exactly the target's interface labels; contract everything else
  // (project(N_target || N_env, A_target), Section 6). Pruning is
  // interleaved with the per-label hiding: the contraction duplicates
  // transitions and "many of them will be dead and can be eliminated"
  // (Section 5.2) — eliminating them early keeps the cascade small.
  auto keep = sorted_set::make([&] {
    Circuit composite("tmp", composed.circuit.inputs(),
                      composed.circuit.outputs(), net);
    auto labels = composite.labels_of_signals(target.signals());
    labels.push_back(std::string(kEpsilonLabel));
    return labels;
  }());
  PetriNet projected = net;
  for (const std::string& label : net.alphabet()) {
    if (sorted_set::contains(keep, label)) continue;
    projected = hide_action(projected, label, options.hide);
    prune(projected);
  }
  // Residual eps dummies are left in place: contracting them duplicates
  // their successors faster than it removes places, and STGs allow dummies.
  // (The paper makes the matching caveat in Section 5.2: the behavior
  // shrinks, "the STG itself is not necessarily smaller".)

  result.stats.places_after = projected.place_count();
  result.stats.transitions_after = projected.transition_count();
  // The simplified module keeps the target's interface: signals of the
  // environment that were inputs of the target remain inputs.
  result.simplified = Circuit(target.name() + "_simplified", target.inputs(),
                              target.outputs(), std::move(projected));
  return result;
}

}  // namespace cipnet
