#include "circuit/receptive.h"

#include "algebra/hide.h"
#include "graph/digraph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "petri/marked_graph.h"
#include "petri/structure.h"
#include "reach/properties.h"
#include "stg/signal.h"
#include "util/error.h"
#include "util/sorted_set.h"

namespace cipnet {

namespace {

const obs::Counter c_checks("receptive.checks");
const obs::Counter c_failures("receptive.failures");

/// One check unit: an output-side transition versus all equally-labeled
/// input-side alternatives, with presets mapped into composed-net place
/// ids. A failure for this unit is a reachable marking enabling the output
/// preset while enabling *none* of the input presets — then the producer
/// would emit the edge and the consumer is not ready (Proposition 5.5,
/// generalized to several equally-labeled transitions).
struct SyncCheck {
  std::string label;
  bool output_on_left = false;
  TransitionId output_transition;  // id in the output-side operand's net
  std::vector<PlaceId> output_preset;
  std::vector<std::vector<PlaceId>> input_presets;
};

std::vector<PlaceId> mapped_preset(const PetriNet& net, TransitionId t,
                                   const std::vector<PlaceId>& place_map) {
  std::vector<PlaceId> out;
  for (PlaceId p : net.transition(t).preset) {
    out.push_back(place_map[p.index()]);
  }
  sorted_set::normalize(out);
  return out;
}

std::vector<SyncCheck> collect_sync_checks(const ComposeResult& composed,
                                           const Circuit& c1,
                                           const Circuit& c2) {
  std::vector<SyncCheck> checks;
  for (const std::string& label : composed.parallel.shared_labels) {
    auto edge = parse_edge(label);
    if (!edge) continue;  // eps or non-signal label: no direction semantics
    const bool out1 = sorted_set::contains(c1.outputs(), edge->signal);
    const bool out2 = sorted_set::contains(c2.outputs(), edge->signal);
    if (!out1 && !out2) continue;  // input/input synchronization: no check
    const Circuit& out_side = out1 ? c1 : c2;
    const Circuit& in_side = out1 ? c2 : c1;
    const auto& out_map =
        out1 ? composed.parallel.place_map1 : composed.parallel.place_map2;
    const auto& in_map =
        out1 ? composed.parallel.place_map2 : composed.parallel.place_map1;

    auto out_action = out_side.net().find_action(label);
    auto in_action = in_side.net().find_action(label);
    std::vector<std::vector<PlaceId>> input_presets;
    if (in_action) {
      for (TransitionId t : in_side.net().transitions_with_action(*in_action)) {
        input_presets.push_back(mapped_preset(in_side.net(), t, in_map));
      }
    }
    if (!out_action) continue;
    for (TransitionId t :
         out_side.net().transitions_with_action(*out_action)) {
      SyncCheck check;
      check.label = label;
      check.output_on_left = out1;
      check.output_transition = t;
      check.output_preset = mapped_preset(out_side.net(), t, out_map);
      check.input_presets = input_presets;
      checks.push_back(std::move(check));
    }
  }
  return checks;
}

bool all_marked(MarkingView m, const std::vector<PlaceId>& places) {
  for (PlaceId p : places) {
    if (m[p] == 0) return false;
  }
  return true;
}

bool is_failure_marking(MarkingView m, const SyncCheck& check) {
  if (!all_marked(m, check.output_preset)) return false;
  for (const auto& preset : check.input_presets) {
    if (all_marked(m, preset)) return false;
  }
  return true;
}

}  // namespace

ReceptivenessReport check_receptiveness(const Circuit& c1, const Circuit& c2,
                                        const ReachOptions& options) {
  obs::Span span("circuit.receptiveness");
  ComposeResult composed = compose(c1, c2);
  auto checks = collect_sync_checks(composed, c1, c2);

  ReceptivenessReport report;
  report.checked_transitions = checks.size();
  c_checks.add(checks.size());
  if (checks.empty()) return report;

  ReachabilityGraph rg = explore(composed.circuit.net(), options);
  for (const SyncCheck& check : checks) {
    for (StateId s : rg.all_states()) {
      const MarkingView m = rg.marking(s);
      if (is_failure_marking(m, check)) {
        ReceptivenessFailure failure;
        failure.label = check.label;
        failure.output_on_left = check.output_on_left;
        failure.output_transition = check.output_transition;
        failure.witness = m.to_marking();
        failure.firing_sequence = firing_sequence_to(rg, s);
        report.failures.push_back(std::move(failure));
        c_failures.add();
        break;  // one witness per output transition (Proposition 5.6)
      }
    }
  }
  return report;
}

ReceptivenessReport check_receptiveness_reduced(const Circuit& c1,
                                                const Circuit& c2,
                                                const HideOptions& hide,
                                                const ReachOptions& options) {
  auto shared = sorted_set::set_intersection(c1.signals(), c2.signals());
  auto reduce = [&](const Circuit& c) {
    auto internal = sorted_set::set_difference(c.signals(), shared);
    PetriNet net = hide_keep_epsilon(c.net(), c.labels_of_signals(internal),
                                     hide);
    // The reduced module's interface keeps only the shared signals.
    return Circuit(c.name() + "'",
                   sorted_set::set_intersection(c.inputs(), shared),
                   sorted_set::set_intersection(c.outputs(), shared),
                   std::move(net));
  };
  return check_receptiveness(reduce(c1), reduce(c2), options);
}

ReceptivenessReport check_receptiveness_structural(const Circuit& c1,
                                                   const Circuit& c2) {
  ComposeResult composed = compose(c1, c2);
  const PetriNet& net = composed.circuit.net();

  auto tg = transition_graph(net);
  if (!tg) {
    throw SemanticError(
        "structural receptiveness check requires a marked-graph composition "
        "(every place with exactly one producer and consumer)");
  }
  if (!mg_is_live(net)) {
    throw SemanticError(
        "structural receptiveness check requires a live composition (the "
        "state-equation characterization needs liveness)");
  }

  auto checks = collect_sync_checks(composed, c1, c2);
  ReceptivenessReport report;
  report.checked_transitions = checks.size();

  for (const SyncCheck& check : checks) {
    if (check.input_presets.size() != 1) {
      // A marked-graph composition cannot have several equally-labeled
      // consumers of a shared place set (transition_graph would have
      // failed); with zero input transitions the output is blocked forever
      // and reported directly.
      if (check.input_presets.empty()) {
        ReceptivenessFailure failure;
        failure.label = check.label;
        failure.output_on_left = check.output_on_left;
        failure.output_transition = check.output_transition;
        report.failures.push_back(std::move(failure));
      }
      continue;
    }
    const auto& input_preset = check.input_presets.front();
    for (PlaceId x : input_preset) {
      if (sorted_set::contains(check.output_preset, x)) continue;
      // Difference constraints over transition potentials sigma (state
      // equation of a live marked graph):
      //   M(e) = M0(e) + sigma(producer) - sigma(consumer)
      //   M(e) >= 1 for e in output_preset -> sig(v)-sig(u) <= M0(e)-1
      //   M(e) >= 0 elsewhere              -> sig(v)-sig(u) <= M0(e)
      //   M(x) <= 0                        -> sig(u)-sig(v) <= -M0(x)
      // Feasible (= failure marking reachable) iff no negative cycle.
      Digraph constraints(tg->graph.node_count());
      for (int e = 0; e < tg->graph.edge_count(); ++e) {
        const auto& edge = tg->graph.edge(e);
        PlaceId place = tg->edge_place[e];
        std::int64_t lower =
            sorted_set::contains(check.output_preset, place) ? 1 : 0;
        constraints.add_edge(edge.from, edge.to, edge.weight - lower);
        if (place == x) {
          constraints.add_edge(edge.to, edge.from, -edge.weight);
        }
      }
      if (!has_negative_cycle(constraints)) {
        ReceptivenessFailure failure;
        failure.label = check.label;
        failure.output_on_left = check.output_on_left;
        failure.output_transition = check.output_transition;
        report.failures.push_back(std::move(failure));
        break;  // one failing input place suffices for this transition
      }
    }
  }
  return report;
}

}  // namespace cipnet
