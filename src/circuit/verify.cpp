#include "circuit/verify.h"

#include "reach/properties.h"
#include "util/sorted_set.h"

namespace cipnet {

std::string CompositionVerdict::to_string() const {
  std::string out;
  out += "receptive: " + std::string(receptive ? "yes" : "NO") + "\n";
  out += "safe: " + std::string(safe ? "yes" : "NO") + "\n";
  out += "deadlock-free: " + std::string(deadlock_free ? "yes" : "NO") + "\n";
  out += "states: " + std::to_string(states) + "\n";
  if (!dead_labels.empty()) {
    out += "dead labels (expected duplicates):";
    for (const auto& label : dead_labels) out += " " + label;
    out += "\n";
  }
  return out;
}

CompositionVerdict verify_composition(const Circuit& c1, const Circuit& c2,
                                      const ReachOptions& options) {
  CompositionVerdict verdict;

  auto report = check_receptiveness(c1, c2, options);
  verdict.receptive = report.receptive();
  verdict.receptiveness_failures = report.failures;

  ComposeResult composed = compose(c1, c2);
  ReachabilityGraph rg = explore(composed.circuit.net(), options);
  verdict.states = rg.state_count();
  verdict.safe = is_safe(rg);
  verdict.deadlock_free = deadlock_states(rg).empty();

  std::vector<std::string> dead;
  for (TransitionId t : dead_transitions(composed.circuit.net(), rg)) {
    dead.push_back(composed.circuit.net().transition_label(t));
  }
  verdict.dead_labels = sorted_set::make(std::move(dead));
  return verdict;
}

}  // namespace cipnet
