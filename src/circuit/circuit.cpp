#include "circuit/circuit.h"

#include "stg/signal.h"
#include "util/error.h"
#include "util/sorted_set.h"

namespace cipnet {

Circuit::Circuit(std::string name, std::vector<std::string> inputs,
                 std::vector<std::string> outputs, PetriNet net)
    : name_(std::move(name)),
      inputs_(sorted_set::make(std::move(inputs))),
      outputs_(sorted_set::make(std::move(outputs))),
      net_(std::move(net)) {
  if (sorted_set::intersects(inputs_, outputs_)) {
    throw SemanticError("circuit " + name_ +
                        ": a signal cannot be both input and output");
  }
  for (const std::string& label : net_.alphabet()) {
    if (is_epsilon_label(label)) continue;
    auto edge = parse_edge(label);
    if (!edge) {
      throw SemanticError("circuit " + name_ +
                          ": label is not a signal edge: " + label);
    }
    if (!sorted_set::contains(inputs_, edge->signal) &&
        !sorted_set::contains(outputs_, edge->signal)) {
      throw SemanticError("circuit " + name_ +
                          ": label uses undeclared signal: " + label);
    }
  }
}

Circuit Circuit::from_stg(std::string name, const Stg& stg) {
  std::vector<std::string> inputs = stg.signal_names(SignalKind::kInput);
  std::vector<std::string> outputs = stg.signal_names(SignalKind::kOutput);
  for (const std::string& s : stg.signal_names(SignalKind::kInternal)) {
    outputs.push_back(s);
  }
  return Circuit(std::move(name), std::move(inputs), std::move(outputs),
                 stg.net());
}

std::vector<std::string> Circuit::signals() const {
  return sorted_set::set_union(inputs_, outputs_);
}

std::vector<std::string> Circuit::labels_of_signal(
    const std::string& signal) const {
  std::vector<std::string> out;
  for (const std::string& label : net_.alphabet()) {
    auto edge = parse_edge(label);
    if (edge && edge->signal == signal) out.push_back(label);
  }
  return out;
}

std::vector<std::string> Circuit::labels_of_signals(
    const std::vector<std::string>& signals) const {
  std::vector<std::string> out;
  for (const std::string& s : signals) {
    auto labels = labels_of_signal(s);
    out.insert(out.end(), labels.begin(), labels.end());
  }
  sorted_set::normalize(out);
  return out;
}

Stg Circuit::to_stg() const {
  return Stg::from_net(net_, inputs_, outputs_);
}

ComposeResult compose(const Circuit& c1, const Circuit& c2) {
  auto common_outputs =
      sorted_set::set_intersection(c1.outputs(), c2.outputs());
  if (!common_outputs.empty()) {
    throw SemanticError("compose(" + c1.name() + ", " + c2.name() +
                        "): common output signal " + common_outputs.front());
  }
  ComposeResult result;
  result.parallel = parallel(c1.net(), c2.net());
  result.shared_signals =
      sorted_set::set_intersection(c1.signals(), c2.signals());
  auto outputs = sorted_set::set_union(c1.outputs(), c2.outputs());
  auto inputs = sorted_set::set_difference(
      sorted_set::set_union(c1.inputs(), c2.inputs()), outputs);
  result.circuit = Circuit(c1.name() + "||" + c2.name(), std::move(inputs),
                           std::move(outputs), result.parallel.net);
  return result;
}

Circuit hide_signals(const Circuit& c, const std::vector<std::string>& signals,
                     const HideOptions& options) {
  auto to_hide = sorted_set::make(signals);
  if (!sorted_set::is_subset(to_hide, c.outputs())) {
    throw SemanticError("hide_signals: only output signals may be hidden");
  }
  PetriNet net = hide_actions(c.net(), c.labels_of_signals(to_hide), options);
  return Circuit(c.name(), c.inputs(),
                 sorted_set::set_difference(c.outputs(), to_hide),
                 std::move(net));
}

}  // namespace cipnet
