#pragma once

#include "algebra/hide.h"
#include "circuit/circuit.h"
#include "reach/dead.h"

namespace cipnet {

/// Size bookkeeping for the compositional-synthesis story of Sections 5.2
/// and 6 (Figure 9): how much smaller did the module get.
struct SimplifyStats {
  std::size_t places_before = 0;
  std::size_t transitions_before = 0;
  std::size_t places_after = 0;
  std::size_t transitions_after = 0;
  std::size_t dead_transitions_removed = 0;
  DeadCheckMethod dead_method = DeadCheckMethod::kReachability;
};

struct SimplifyResult {
  Circuit simplified;
  SimplifyStats stats;
};

struct SimplifyOptions {
  SimplifyOptions() {
    hide.epsilon_fallback = true;
    // Keep the projection cheap: a label whose contraction cascades beyond
    // this budget stays behind as dummies instead (language-equivalent),
    // and duplicate product places are merged after every contraction.
    hide.max_contractions = 64;
    hide.simplify_places_between_contractions = true;
  }

  HideOptions hide;
  ReachOptions reach;
  /// Remove transitions that can never fire in the composition ("due to the
  /// cross-product and the duplication of the synchronizing transitions,
  /// many of them will be dead and can be eliminated", Section 5.2).
  bool remove_dead = true;
};

/// Compositional synthesis (Theorem 5.1): instead of synthesizing `target`
/// against its declared environment assumptions, synthesize
/// `project(target || environment, A_target)` — same interface signals,
/// smaller behavior (more don't-care freedom), with the dead transitions of
/// the composition removed. This is exactly the derivation of the
/// simplified protocol translator of Figure 9(b).
[[nodiscard]] SimplifyResult simplify_against(const Circuit& target,
                                              const Circuit& environment,
                                              const SimplifyOptions& options = {});

}  // namespace cipnet
