#pragma once

#include <string>
#include <vector>

#include "algebra/hide.h"
#include "algebra/parallel.h"
#include "petri/net.h"
#include "stg/stg.h"

namespace cipnet {

/// The circuit algebra of Section 5.1: `C = (I, O, N)` — input and output
/// *signal* names plus a labeled Petri net describing the behavior. Net
/// labels are signal edges of those signals (or eps). Composition
/// synchronizes on common signals; hiding removes output signals (all their
/// edge transitions are contracted, Section 5.1: "To hide a signal s means
/// to hide all signal transitions for this signal").
class Circuit {
 public:
  Circuit() = default;
  Circuit(std::string name, std::vector<std::string> inputs,
          std::vector<std::string> outputs, PetriNet net);

  /// From an STG: inputs/outputs taken from the signal table (internals
  /// count as outputs, per Section 5.1 "Internal signals are considered as
  /// outputs, which may be hidden").
  [[nodiscard]] static Circuit from_stg(std::string name, const Stg& stg);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::string>& inputs() const {
    return inputs_;
  }
  [[nodiscard]] const std::vector<std::string>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] const PetriNet& net() const { return net_; }
  [[nodiscard]] std::vector<std::string> signals() const;

  /// All edge labels of `signal` occurring in the net alphabet.
  [[nodiscard]] std::vector<std::string> labels_of_signal(
      const std::string& signal) const;
  /// Edge labels of a set of signals.
  [[nodiscard]] std::vector<std::string> labels_of_signals(
      const std::vector<std::string>& signals) const;

  [[nodiscard]] Stg to_stg() const;

 private:
  std::string name_;
  std::vector<std::string> inputs_;   // sorted
  std::vector<std::string> outputs_;  // sorted
  PetriNet net_;
};

/// Composition result with the provenance needed for the receptiveness
/// check of Section 5.3.
struct ComposeResult {
  Circuit circuit;
  ParallelResult parallel;
  /// Signals on which the two operands synchronized.
  std::vector<std::string> shared_signals;
};

/// `C1 || C2 = (I1 ∪ I2 \ (O1 ∪ O2), O1 ∪ O2, N1 || N2)` (Section 5.1).
/// Common *output* signals are rejected (SemanticError): at most one module
/// drives a wire.
[[nodiscard]] ComposeResult compose(const Circuit& c1, const Circuit& c2);

/// `hide(C, A) = (I, O \ A, hide(N, A))` with `A ⊆ O` (SemanticError
/// otherwise): contracts every edge transition of the hidden signals.
[[nodiscard]] Circuit hide_signals(const Circuit& c,
                                   const std::vector<std::string>& signals,
                                   const HideOptions& options = {});

}  // namespace cipnet
