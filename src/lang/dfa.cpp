#include "lang/dfa.h"

namespace cipnet {

int Dfa::add_state(bool accepting) {
  edges_.emplace_back();
  accepting_.push_back(accepting);
  return state_count() - 1;
}

void Dfa::set_edge(int from, const std::string& label, int to) {
  edges_[from][label] = to;
}

int Dfa::next(int state, const std::string& label) const {
  auto it = edges_[state].find(label);
  return it == edges_[state].end() ? -1 : it->second;
}

bool Dfa::accepts(const std::vector<std::string>& word) const {
  int s = initial_;
  for (const auto& label : word) {
    s = next(s, label);
    if (s < 0) return false;
  }
  return accepting_[s];
}

unsigned long long Dfa::count_words(std::size_t up_to_length) const {
  constexpr unsigned long long kCap = 1'000'000'000'000'000'000ULL;
  std::vector<unsigned long long> counts(state_count(), 0);
  counts[initial_] = 1;
  unsigned long long total = accepting_[initial_] ? 1 : 0;
  for (std::size_t len = 1; len <= up_to_length; ++len) {
    std::vector<unsigned long long> next_counts(state_count(), 0);
    for (int s = 0; s < state_count(); ++s) {
      if (counts[s] == 0) continue;
      for (const auto& [label, to] : edges_[s]) {
        next_counts[to] += counts[s];
        if (next_counts[to] > kCap) next_counts[to] = kCap;
      }
    }
    counts = std::move(next_counts);
    for (int s = 0; s < state_count(); ++s) {
      if (accepting_[s]) {
        total += counts[s];
        if (total > kCap) return kCap;
      }
    }
  }
  return total;
}

}  // namespace cipnet
