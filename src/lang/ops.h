#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lang/dfa.h"
#include "lang/nfa.h"
#include "reach/reachability.h"

namespace cipnet {

/// Language-level counterparts of the net algebra (Section 4). These operate
/// on automata built from reachability graphs and serve as the independent
/// oracle for Propositions 4.1-4.4 and Theorems 4.5 / 4.7 / 5.1.

/// The trace language L(N) of Definition 4.1 as an NFA: states are the
/// reachable markings, every state accepts (prefix closure). Transitions
/// labeled `eps` stay visible — the algebra treats labels uniformly; use
/// `hide_labels` to silence them.
[[nodiscard]] Nfa nfa_from_reachability(const PetriNet& net,
                                        const ReachabilityGraph& rg);

/// Convenience: explore + convert.
[[nodiscard]] Nfa nfa_of_net(const PetriNet& net,
                             const ReachOptions& options = {});

/// rename(L, {b -> c}) (Proposition 4.3). Labels not in the map are kept.
[[nodiscard]] Nfa rename_labels(const Nfa& nfa,
                                const std::map<std::string, std::string>& map);

/// hide(L, A): labels in `hidden` become epsilon moves (projection away).
[[nodiscard]] Nfa hide_labels(const Nfa& nfa,
                              const std::vector<std::string>& hidden);

/// project(L, A): keep only labels in `kept`; everything else becomes
/// epsilon (hide is "opposite to projection", Section 4.4).
[[nodiscard]] Nfa project_labels(const Nfa& nfa,
                                 const std::vector<std::string>& kept);

/// Language union (Proposition 4.4's right-hand side): fresh initial state
/// with epsilon moves into both operands.
[[nodiscard]] Nfa union_nfa(const Nfa& a, const Nfa& b);

/// Synchronized shuffle (Definitions 4.8 / 4.9): words must agree on the
/// `shared` labels and interleave freely elsewhere. `shared` must be
/// A1 ∩ A2 of the *net alphabets*, which can be larger than the edge labels
/// present.
[[nodiscard]] Nfa sync_product(const Nfa& a, const Nfa& b,
                               const std::vector<std::string>& shared);

/// Subset construction with epsilon closure. Only accepting NFA states make
/// a subset accepting; subsets with no accepting member are dropped when
/// `prune_nonaccepting` (valid for prefix-closed languages where acceptance
/// is upward-absorbing — keeps DFAs small).
[[nodiscard]] Dfa determinize(const Nfa& nfa);

/// Moore partition refinement to the canonical minimal DFA (reachable,
/// completed implicitly over the given alphabet).
[[nodiscard]] Dfa minimize(const Dfa& dfa);

/// Language equality; returns a shortest distinguishing word if different.
[[nodiscard]] std::optional<std::vector<std::string>> distinguishing_word(
    const Dfa& a, const Dfa& b);

[[nodiscard]] bool equivalent(const Dfa& a, const Dfa& b);

/// L(a) ⊆ L(b); returns a witness word in L(a) \ L(b) if not.
[[nodiscard]] std::optional<std::vector<std::string>> subset_witness(
    const Dfa& a, const Dfa& b);

/// Full pipeline used by tests: L(net) with the given silent labels hidden,
/// determinized and minimized.
[[nodiscard]] Dfa canonical_language(const PetriNet& net,
                                     const std::vector<std::string>& hidden =
                                         {},
                                     const ReachOptions& options = {});

}  // namespace cipnet
