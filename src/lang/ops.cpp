#include "lang/ops.h"

#include <algorithm>
#include <functional>
#include <deque>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hash.h"
#include "util/sorted_set.h"

namespace cipnet {

namespace {
const obs::Counter c_subset_states("lang.subset_states");
const obs::Counter c_refinement_passes("lang.refinement_passes");
}  // namespace

Nfa nfa_from_reachability(const PetriNet& net, const ReachabilityGraph& rg) {
  Nfa nfa;
  for (std::size_t i = 0; i < rg.state_count(); ++i) nfa.add_state(true);
  for (StateId s : rg.all_states()) {
    for (const auto& e : rg.successors(s)) {
      nfa.add_edge(static_cast<int>(s.index()),
                   net.transition_label(e.transition),
                   static_cast<int>(e.to.index()));
    }
  }
  nfa.set_initial(0);
  return nfa;
}

Nfa nfa_of_net(const PetriNet& net, const ReachOptions& options) {
  ReachabilityGraph rg = explore(net, options);
  return nfa_from_reachability(net, rg);
}

namespace {

Nfa map_labels(const Nfa& nfa,
               const std::function<std::optional<std::string>(
                   const std::string&)>& f) {
  Nfa out;
  for (int s = 0; s < nfa.state_count(); ++s) {
    out.add_state(nfa.is_accepting(s));
  }
  out.set_initial(nfa.initial());
  for (int s = 0; s < nfa.state_count(); ++s) {
    for (const auto& e : nfa.edges_from(s)) {
      if (!e.label) {
        out.add_edge(s, std::nullopt, e.to);
      } else {
        out.add_edge(s, f(*e.label), e.to);
      }
    }
  }
  return out;
}

}  // namespace

Nfa rename_labels(const Nfa& nfa,
                  const std::map<std::string, std::string>& map) {
  return map_labels(nfa, [&](const std::string& l) -> std::optional<std::string> {
    auto it = map.find(l);
    return it == map.end() ? l : it->second;
  });
}

Nfa hide_labels(const Nfa& nfa, const std::vector<std::string>& hidden) {
  auto set = sorted_set::make(hidden);
  return map_labels(nfa, [&](const std::string& l) -> std::optional<std::string> {
    if (sorted_set::contains(set, l)) return std::nullopt;
    return l;
  });
}

Nfa project_labels(const Nfa& nfa, const std::vector<std::string>& kept) {
  auto set = sorted_set::make(kept);
  return map_labels(nfa, [&](const std::string& l) -> std::optional<std::string> {
    if (sorted_set::contains(set, l)) return l;
    return std::nullopt;
  });
}

Nfa union_nfa(const Nfa& a, const Nfa& b) {
  Nfa out;
  // Fresh initial state; accepting because both operand languages are
  // prefix-closed and contain the empty word iff their initial accepts —
  // take the disjunction.
  int init = out.add_state(a.is_accepting(a.initial()) ||
                           b.is_accepting(b.initial()));
  int offset_a = out.state_count();
  for (int s = 0; s < a.state_count(); ++s) out.add_state(a.is_accepting(s));
  int offset_b = out.state_count();
  for (int s = 0; s < b.state_count(); ++s) out.add_state(b.is_accepting(s));
  for (int s = 0; s < a.state_count(); ++s) {
    for (const auto& e : a.edges_from(s)) {
      out.add_edge(offset_a + s, e.label, offset_a + e.to);
    }
  }
  for (int s = 0; s < b.state_count(); ++s) {
    for (const auto& e : b.edges_from(s)) {
      out.add_edge(offset_b + s, e.label, offset_b + e.to);
    }
  }
  out.add_edge(init, std::nullopt, offset_a + a.initial());
  out.add_edge(init, std::nullopt, offset_b + b.initial());
  out.set_initial(init);
  return out;
}

Nfa sync_product(const Nfa& a, const Nfa& b,
                 const std::vector<std::string>& shared) {
  auto shared_set = sorted_set::make(shared);
  Nfa out;
  std::unordered_map<std::uint64_t, int> index;
  auto key = [&](int sa, int sb) {
    return (static_cast<std::uint64_t>(sa) << 32) |
           static_cast<std::uint32_t>(sb);
  };
  std::deque<std::pair<int, int>> frontier;
  auto intern = [&](int sa, int sb) {
    auto [it, fresh] = index.try_emplace(key(sa, sb), out.state_count());
    if (fresh) {
      out.add_state(a.is_accepting(sa) && b.is_accepting(sb));
      frontier.emplace_back(sa, sb);
    }
    return it->second;
  };
  int init = intern(a.initial(), b.initial());
  out.set_initial(init);

  while (!frontier.empty()) {
    auto [sa, sb] = frontier.front();
    frontier.pop_front();
    int from = index[key(sa, sb)];
    for (const auto& ea : a.edges_from(sa)) {
      const bool is_shared =
          ea.label && sorted_set::contains(shared_set, *ea.label);
      if (!is_shared) {
        out.add_edge(from, ea.label, intern(ea.to, sb));
      } else {
        for (const auto& eb : b.edges_from(sb)) {
          if (eb.label && *eb.label == *ea.label) {
            out.add_edge(from, ea.label, intern(ea.to, eb.to));
          }
        }
      }
    }
    for (const auto& eb : b.edges_from(sb)) {
      const bool is_shared =
          eb.label && sorted_set::contains(shared_set, *eb.label);
      if (!is_shared) {
        out.add_edge(from, eb.label, intern(sa, eb.to));
      }
    }
  }
  return out;
}

namespace {

std::vector<int> epsilon_closure(const Nfa& nfa, std::vector<int> seed) {
  std::vector<bool> seen(nfa.state_count(), false);
  std::deque<int> frontier;
  for (int s : seed) {
    if (!seen[s]) {
      seen[s] = true;
      frontier.push_back(s);
    }
  }
  std::vector<int> closure;
  while (!frontier.empty()) {
    int s = frontier.front();
    frontier.pop_front();
    closure.push_back(s);
    for (const auto& e : nfa.edges_from(s)) {
      if (!e.label && !seen[e.to]) {
        seen[e.to] = true;
        frontier.push_back(e.to);
      }
    }
  }
  std::sort(closure.begin(), closure.end());
  return closure;
}

}  // namespace

Dfa determinize(const Nfa& nfa) {
  obs::Span span("lang.determinize");
  Dfa dfa;
  std::unordered_map<std::vector<int>, int, VectorHash> index;
  std::deque<std::vector<int>> frontier;

  auto intern = [&](std::vector<int> subset) {
    auto it = index.find(subset);
    if (it != index.end()) return it->second;
    bool accepting = false;
    for (int s : subset) accepting = accepting || nfa.is_accepting(s);
    int id = dfa.add_state(accepting);
    index.emplace(subset, id);
    frontier.push_back(std::move(subset));
    c_subset_states.add();
    return id;
  };

  int init = intern(epsilon_closure(nfa, {nfa.initial()}));
  dfa.set_initial(init);

  while (!frontier.empty()) {
    std::vector<int> subset = frontier.front();
    frontier.pop_front();
    int from = index[subset];
    std::map<std::string, std::vector<int>> moves;
    for (int s : subset) {
      for (const auto& e : nfa.edges_from(s)) {
        if (e.label) moves[*e.label].push_back(e.to);
      }
    }
    for (auto& [label, targets] : moves) {
      auto closure = epsilon_closure(nfa, std::move(targets));
      dfa.set_edge(from, label, intern(std::move(closure)));
    }
  }
  return dfa;
}

Dfa minimize(const Dfa& dfa) {
  obs::Span span("lang.minimize");
  const int n = dfa.state_count();
  // Alphabet of the DFA.
  std::vector<std::string> alphabet;
  for (int s = 0; s < n; ++s) {
    for (const auto& [label, to] : dfa.edges_from(s)) alphabet.push_back(label);
  }
  sorted_set::normalize(alphabet);

  // Moore refinement with an implicit sink block (-1) for missing edges.
  std::vector<int> block(n);
  for (int s = 0; s < n; ++s) block[s] = dfa.is_accepting(s) ? 1 : 0;
  int block_count = 2;

  while (true) {
    c_refinement_passes.add();
    // Signature = (current block, successor block per alphabet symbol).
    std::map<std::vector<int>, int> sig_index;
    std::vector<int> next_block(n);
    for (int s = 0; s < n; ++s) {
      std::vector<int> sig{block[s]};
      for (const auto& label : alphabet) {
        int t = dfa.next(s, label);
        sig.push_back(t < 0 ? -1 : block[t]);
      }
      auto [it, fresh] =
          sig_index.try_emplace(std::move(sig), static_cast<int>(sig_index.size()));
      (void)fresh;
      next_block[s] = it->second;
    }
    bool stable = static_cast<int>(sig_index.size()) == block_count;
    block = std::move(next_block);
    block_count = static_cast<int>(sig_index.size());
    if (stable) break;
  }

  // Identify blocks with an empty future language (can never accept again):
  // those behave like the sink and their edges can be dropped.
  std::vector<bool> block_accepting(block_count, false);
  for (int s = 0; s < n; ++s) {
    if (dfa.is_accepting(s)) block_accepting[block[s]] = true;
  }
  // A block is "productive" if some accepting block is reachable from it.
  std::vector<std::vector<int>> block_succ(block_count);
  for (int s = 0; s < n; ++s) {
    for (const auto& [label, to] : dfa.edges_from(s)) {
      block_succ[block[s]].push_back(block[to]);
    }
  }
  std::vector<bool> productive(block_count, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 0; b < block_count; ++b) {
      if (productive[b]) continue;
      bool now = block_accepting[b];
      for (int succ : block_succ[b]) now = now || productive[succ];
      if (now) {
        productive[b] = true;
        changed = true;
      }
    }
  }

  // Rebuild: only blocks reachable from the initial block and productive.
  std::vector<int> block_state(block_count, -1);
  Dfa out;
  std::deque<int> frontier;
  auto intern = [&](int b) {
    if (block_state[b] < 0) {
      block_state[b] = out.add_state(block_accepting[b]);
      frontier.push_back(b);
    }
    return block_state[b];
  };
  int initial_block = block[dfa.initial()];
  out.set_initial(intern(initial_block));
  // Representative state per block for edge lookup.
  std::vector<int> representative(block_count, -1);
  for (int s = 0; s < n; ++s) {
    if (representative[block[s]] < 0) representative[block[s]] = s;
  }
  while (!frontier.empty()) {
    int b = frontier.front();
    frontier.pop_front();
    int rep = representative[b];
    for (const auto& [label, to] : dfa.edges_from(rep)) {
      int tb = block[to];
      if (!productive[tb]) continue;
      out.set_edge(block_state[b], label, intern(tb));
    }
  }
  return out;
}

std::optional<std::vector<std::string>> distinguishing_word(const Dfa& a,
                                                            const Dfa& b) {
  // BFS over the product with implicit sinks (-1). Stop at the first pair
  // whose acceptance disagrees (sink = non-accepting).
  std::vector<std::string> alphabet;
  for (int s = 0; s < a.state_count(); ++s) {
    for (const auto& [label, to] : a.edges_from(s)) alphabet.push_back(label);
  }
  for (int s = 0; s < b.state_count(); ++s) {
    for (const auto& [label, to] : b.edges_from(s)) alphabet.push_back(label);
  }
  sorted_set::normalize(alphabet);

  auto accepting = [](const Dfa& d, int s) {
    return s >= 0 && d.is_accepting(s);
  };

  struct Node {
    int sa;
    int sb;
  };
  auto key = [&](int sa, int sb) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sa)) << 32) |
           static_cast<std::uint32_t>(sb);
  };
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::string>>
      parent;  // node -> (parent node, label)
  std::deque<Node> frontier{{a.initial(), b.initial()}};
  parent.emplace(key(a.initial(), b.initial()),
                 std::make_pair(key(a.initial(), b.initial()), std::string()));

  while (!frontier.empty()) {
    Node node = frontier.front();
    frontier.pop_front();
    if (accepting(a, node.sa) != accepting(b, node.sb)) {
      // Reconstruct the word.
      std::vector<std::string> word;
      std::uint64_t cur = key(node.sa, node.sb);
      while (true) {
        const auto& [prev, label] = parent.at(cur);
        if (prev == cur) break;
        word.push_back(label);
        cur = prev;
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (const auto& label : alphabet) {
      int na = node.sa < 0 ? -1 : a.next(node.sa, label);
      int nb = node.sb < 0 ? -1 : b.next(node.sb, label);
      if (na < 0 && nb < 0) continue;  // both dead: equal forever
      std::uint64_t k = key(na, nb);
      if (!parent.contains(k)) {
        parent.emplace(k, std::make_pair(key(node.sa, node.sb), label));
        frontier.push_back({na, nb});
      }
    }
  }
  return std::nullopt;
}

bool equivalent(const Dfa& a, const Dfa& b) {
  return !distinguishing_word(a, b).has_value();
}

std::optional<std::vector<std::string>> subset_witness(const Dfa& a,
                                                       const Dfa& b) {
  // Word accepted by a but not by b: product BFS looking for
  // (accepting-in-a, dead-or-rejecting-in-b).
  std::vector<std::string> alphabet;
  for (int s = 0; s < a.state_count(); ++s) {
    for (const auto& [label, to] : a.edges_from(s)) alphabet.push_back(label);
  }
  sorted_set::normalize(alphabet);

  auto key = [&](int sa, int sb) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sa)) << 32) |
           static_cast<std::uint32_t>(sb);
  };
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::string>>
      parent;
  std::deque<std::pair<int, int>> frontier{{a.initial(), b.initial()}};
  parent.emplace(key(a.initial(), b.initial()),
                 std::make_pair(key(a.initial(), b.initial()), std::string()));

  while (!frontier.empty()) {
    auto [sa, sb] = frontier.front();
    frontier.pop_front();
    bool in_a = sa >= 0 && a.is_accepting(sa);
    bool in_b = sb >= 0 && b.is_accepting(sb);
    if (in_a && !in_b) {
      std::vector<std::string> word;
      std::uint64_t cur = key(sa, sb);
      while (true) {
        const auto& [prev, label] = parent.at(cur);
        if (prev == cur) break;
        word.push_back(label);
        cur = prev;
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    if (sa < 0) continue;  // a is dead: no more words from a.
    for (const auto& label : alphabet) {
      int na = a.next(sa, label);
      if (na < 0) continue;
      int nb = sb < 0 ? -1 : b.next(sb, label);
      std::uint64_t k = key(na, nb);
      if (!parent.contains(k)) {
        parent.emplace(k, std::make_pair(key(sa, sb), label));
        frontier.push_back({na, nb});
      }
    }
  }
  return std::nullopt;
}

Dfa canonical_language(const PetriNet& net,
                       const std::vector<std::string>& hidden,
                       const ReachOptions& options) {
  Nfa nfa = nfa_of_net(net, options);
  if (!hidden.empty()) nfa = hide_labels(nfa, hidden);
  return minimize(determinize(nfa));
}

}  // namespace cipnet
