#pragma once

#include <map>
#include <string>
#include <vector>

namespace cipnet {

/// A deterministic finite automaton. Transitions are partial: a missing
/// label means the word leaves the language (and all its extensions too —
/// prefix-closed languages need no explicit sink).
class Dfa {
 public:
  int add_state(bool accepting);

  void set_edge(int from, const std::string& label, int to);

  [[nodiscard]] int state_count() const {
    return static_cast<int>(edges_.size());
  }
  [[nodiscard]] const std::map<std::string, int>& edges_from(int state) const {
    return edges_[state];
  }
  /// -1 if no edge.
  [[nodiscard]] int next(int state, const std::string& label) const;

  [[nodiscard]] bool is_accepting(int state) const {
    return accepting_[state];
  }
  [[nodiscard]] int initial() const { return initial_; }
  void set_initial(int state) { initial_ = state; }

  /// True iff `word` is in the language.
  [[nodiscard]] bool accepts(const std::vector<std::string>& word) const;

  /// Number of accepted words of length exactly `k` / at most `k`
  /// (saturating at ~1e18).
  [[nodiscard]] unsigned long long count_words(std::size_t up_to_length) const;

 private:
  std::vector<std::map<std::string, int>> edges_;
  std::vector<bool> accepting_;
  int initial_ = 0;
};

}  // namespace cipnet
