#pragma once

#include <optional>
#include <string>
#include <vector>

namespace cipnet {

/// A nondeterministic finite automaton over string labels, with epsilon
/// moves. Used as the *independent* semantic layer: reachability graphs of
/// nets become NFAs, language-level operators (rename / hide / union /
/// synchronized shuffle) are applied here, and the results are compared with
/// the net-level algebra — this is how the paper's trace-equivalence
/// theorems are machine-checked.
///
/// Trace languages of nets (Definition 4.1) are prefix-closed, so states are
/// accepting by default; non-accepting states only appear internally (sink
/// completion during equivalence checking).
class Nfa {
 public:
  struct Edge {
    /// nullopt = epsilon move.
    std::optional<std::string> label;
    int to = 0;
  };

  int add_state(bool accepting = true);

  void add_edge(int from, std::optional<std::string> label, int to);

  [[nodiscard]] int state_count() const {
    return static_cast<int>(edges_.size());
  }
  [[nodiscard]] const std::vector<Edge>& edges_from(int state) const {
    return edges_[state];
  }
  [[nodiscard]] bool is_accepting(int state) const {
    return accepting_[state];
  }

  [[nodiscard]] int initial() const { return initial_; }
  void set_initial(int state) { initial_ = state; }

  /// Sorted set of labels that occur on edges (epsilon excluded).
  [[nodiscard]] std::vector<std::string> edge_alphabet() const;

 private:
  std::vector<std::vector<Edge>> edges_;
  std::vector<bool> accepting_;
  int initial_ = 0;
};

}  // namespace cipnet
