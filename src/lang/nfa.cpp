#include "lang/nfa.h"

#include "util/sorted_set.h"

namespace cipnet {

int Nfa::add_state(bool accepting) {
  edges_.emplace_back();
  accepting_.push_back(accepting);
  return state_count() - 1;
}

void Nfa::add_edge(int from, std::optional<std::string> label, int to) {
  edges_[from].push_back(Edge{std::move(label), to});
}

std::vector<std::string> Nfa::edge_alphabet() const {
  std::vector<std::string> out;
  for (const auto& from : edges_) {
    for (const auto& e : from) {
      if (e.label) out.push_back(*e.label);
    }
  }
  sorted_set::normalize(out);
  return out;
}

}  // namespace cipnet
