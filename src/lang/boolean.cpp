#include "lang/boolean.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "util/sorted_set.h"

namespace cipnet {

namespace {

std::vector<std::string> dfa_alphabet(const Dfa& d) {
  std::vector<std::string> out;
  for (int s = 0; s < d.state_count(); ++s) {
    for (const auto& [label, to] : d.edges_from(s)) out.push_back(label);
  }
  sorted_set::normalize(out);
  return out;
}

/// Product construction with implicit sinks (-1). `mode` decides the
/// acceptance: 0 = and, 1 = or.
Dfa product(const Dfa& a, const Dfa& b, int mode) {
  auto alphabet =
      sorted_set::set_union(dfa_alphabet(a), dfa_alphabet(b));
  auto key = [](int sa, int sb) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sa)) << 32) |
           static_cast<std::uint32_t>(sb);
  };
  auto accepting = [&](int sa, int sb) {
    bool in_a = sa >= 0 && a.is_accepting(sa);
    bool in_b = sb >= 0 && b.is_accepting(sb);
    return mode == 0 ? (in_a && in_b) : (in_a || in_b);
  };

  Dfa out;
  std::unordered_map<std::uint64_t, int> index;
  std::deque<std::pair<int, int>> frontier;
  auto intern = [&](int sa, int sb) {
    auto [it, fresh] = index.try_emplace(key(sa, sb), out.state_count());
    if (fresh) {
      out.add_state(accepting(sa, sb));
      frontier.emplace_back(sa, sb);
    }
    return it->second;
  };
  out.set_initial(intern(a.initial(), b.initial()));
  while (!frontier.empty()) {
    auto [sa, sb] = frontier.front();
    frontier.pop_front();
    int from = index[key(sa, sb)];
    for (const auto& label : alphabet) {
      int na = sa < 0 ? -1 : a.next(sa, label);
      int nb = sb < 0 ? -1 : b.next(sb, label);
      if (na < 0 && nb < 0) continue;
      out.set_edge(from, label, intern(na, nb));
    }
  }
  return out;
}

}  // namespace

Dfa intersect(const Dfa& a, const Dfa& b) { return product(a, b, 0); }

Dfa union_dfa(const Dfa& a, const Dfa& b) { return product(a, b, 1); }

Dfa complement(const Dfa& a, const std::vector<std::string>& alphabet) {
  // Complete `a` over the alphabet with an explicit sink, then flip.
  Dfa out;
  for (int s = 0; s < a.state_count(); ++s) {
    out.add_state(!a.is_accepting(s));
  }
  int sink = out.add_state(true);
  out.set_initial(a.initial());
  auto all = sorted_set::set_union(alphabet, dfa_alphabet(a));
  for (int s = 0; s < a.state_count(); ++s) {
    for (const auto& label : all) {
      int to = a.next(s, label);
      out.set_edge(s, label, to < 0 ? sink : to);
    }
  }
  for (const auto& label : all) out.set_edge(sink, label, sink);
  return out;
}

bool is_empty(const Dfa& a) { return !shortest_word(a).has_value(); }

std::optional<std::vector<std::string>> shortest_word(const Dfa& a) {
  std::vector<int> parent(a.state_count(), -2);
  std::vector<std::string> via(a.state_count());
  std::deque<int> frontier{a.initial()};
  parent[a.initial()] = -1;
  while (!frontier.empty()) {
    int s = frontier.front();
    frontier.pop_front();
    if (a.is_accepting(s)) {
      std::vector<std::string> word;
      for (int cur = s; parent[cur] >= 0; cur = parent[cur]) {
        word.push_back(via[cur]);
      }
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (const auto& [label, to] : a.edges_from(s)) {
      if (parent[to] == -2) {
        parent[to] = s;
        via[to] = label;
        frontier.push_back(to);
      }
    }
  }
  return std::nullopt;
}

std::optional<std::vector<std::string>> find_violation(const Dfa& language,
                                                       const Dfa& bad) {
  return shortest_word(intersect(language, bad));
}

}  // namespace cipnet
