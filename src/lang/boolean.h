#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lang/dfa.h"

namespace cipnet {

/// Boolean operations on DFAs, enabling property checks over trace
/// languages ("no trace of the composition matches this bad pattern").
/// Missing edges are treated as an implicit rejecting sink; `alphabet`
/// parameters say which symbols the complement ranges over.

/// Words accepted by both.
[[nodiscard]] Dfa intersect(const Dfa& a, const Dfa& b);

/// Words over `alphabet` not accepted by `a`.
[[nodiscard]] Dfa complement(const Dfa& a,
                             const std::vector<std::string>& alphabet);

/// Words accepted by either.
[[nodiscard]] Dfa union_dfa(const Dfa& a, const Dfa& b);

/// True iff no word is accepted.
[[nodiscard]] bool is_empty(const Dfa& a);

/// A shortest accepted word, if any.
[[nodiscard]] std::optional<std::vector<std::string>> shortest_word(
    const Dfa& a);

/// Safety check: does any word of `language` match `bad`? Returns the
/// shortest offending word (the counterexample), or nullopt when the
/// property `L(language) ∩ L(bad) = ∅` holds.
[[nodiscard]] std::optional<std::vector<std::string>> find_violation(
    const Dfa& language, const Dfa& bad);

}  // namespace cipnet
