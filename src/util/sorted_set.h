#pragma once

#include <algorithm>
#include <vector>

namespace cipnet {

/// Operations on sets represented as sorted, duplicate-free vectors. The
/// library stores presets/postsets/alphabets this way: deterministic
/// iteration order, cache-friendly, and set algebra in linear time.
namespace sorted_set {

template <typename T>
void normalize(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

template <typename T>
[[nodiscard]] std::vector<T> make(std::vector<T> v) {
  normalize(v);
  return v;
}

template <typename T>
[[nodiscard]] bool contains(const std::vector<T>& v, const T& x) {
  return std::binary_search(v.begin(), v.end(), x);
}

/// Insert keeping order; no-op if already present. Returns true if inserted.
template <typename T>
bool insert(std::vector<T>& v, const T& x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

/// Remove if present. Returns true if removed.
template <typename T>
bool erase(std::vector<T>& v, const T& x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

template <typename T>
[[nodiscard]] std::vector<T> set_union(const std::vector<T>& a,
                                       const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

template <typename T>
[[nodiscard]] std::vector<T> set_intersection(const std::vector<T>& a,
                                              const std::vector<T>& b) {
  std::vector<T> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

template <typename T>
[[nodiscard]] std::vector<T> set_difference(const std::vector<T>& a,
                                            const std::vector<T>& b) {
  std::vector<T> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

template <typename T>
[[nodiscard]] bool intersects(const std::vector<T>& a,
                              const std::vector<T>& b) {
  auto i = a.begin();
  auto j = b.begin();
  while (i != a.end() && j != b.end()) {
    if (*i < *j) {
      ++i;
    } else if (*j < *i) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

template <typename T>
[[nodiscard]] bool is_subset(const std::vector<T>& sub,
                             const std::vector<T>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace sorted_set
}  // namespace cipnet
