#include "util/fault.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

#include "obs/metrics.h"
#include "util/hash.h"

namespace cipnet::fault {

namespace {

const obs::Counter c_hits("fault.hits");
const obs::Counter c_injected("fault.injected");

/// The compiled-in catalogue. Keep sorted; docs/RESILIENCE.md documents
/// each entry and what failure it simulates.
constexpr const char* kCatalogue[] = {
    "algebra.hide.cancel",   // spurious Cancelled inside hide contraction
    "net.accept",            // accepted TCP connection dropped at accept
    "net.read",              // TCP read treated as a hard socket error
    "reach.cancel",          // spurious Cancelled inside explore/coverability
    "reach.packed.fallback", // packed engine aborts to the dense rerun path
    "reach.store.grow",      // bad_alloc while interning into the arena
    "store.fsync",           // fsync failure while hardening a durable file
    "store.load",            // read failure while loading a durable file
    "store.write",           // write failure before a durable temp file lands
    "svc.cache.insert",      // ResultCache insert failure
    "svc.parse",             // NDJSON frame rejected as unparseable
    "svc.scheduler.enqueue", // queue-full rejection on submit
    "svc.scheduler.worker",  // worker-body throw before the job runs
};

enum class RuleKind : std::uint8_t { kProb, kNth, kEvery };

/// Immutable once published; sites read it through an atomic pointer so a
/// concurrent `configure` never tears a half-written rule.
struct RuleBox {
  RuleKind kind = RuleKind::kNth;
  double p = 0.0;
  std::uint64_t n = 0;
  std::uint64_t seed = 0;
};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

namespace detail {

std::atomic<bool> g_active{false};

struct SiteState {
  std::string name;
  std::uint64_t name_hash = 0;
  std::atomic<const RuleBox*> rule{nullptr};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
};

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<SiteState>, std::less<>> sites;
  /// Every rule ever published, kept alive so a site mid-`should_fire`
  /// never reads a freed box. Specs are tiny and reconfiguration is a
  /// test-time operation, so this "leak" is bounded and deliberate.
  std::vector<std::unique_ptr<RuleBox>> retained_rules;
};

Registry& registry() {
  static Registry* r = new Registry;  // never destroyed: sites outlive exit
  return *r;
}

SiteState* site_locked(Registry& reg, std::string_view name) {
  auto it = reg.sites.find(name);
  if (it != reg.sites.end()) return it->second.get();
  auto state = std::make_unique<SiteState>();
  state->name = std::string(name);
  state->name_hash = site_name_hash(name);
  SiteState* raw = state.get();
  reg.sites.emplace(raw->name, std::move(state));
  return raw;
}

}  // namespace

std::uint64_t site_name_hash(std::string_view name) {
  Fnv1a64 h;
  h.bytes(name.data(), name.size());
  return h.digest();
}

SiteState* site_state(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return site_locked(reg, name);
}

bool prob_decision(std::uint64_t seed, std::uint64_t name_hash,
                   std::uint64_t index, double p) {
  const std::uint64_t mixed =
      splitmix64(seed ^ name_hash ^ (index * 0x9e3779b97f4a7c15ULL));
  // 53 high-quality bits -> [0, 1).
  const double u =
      static_cast<double>(mixed >> 11) * 0x1.0p-53;
  return u < p;
}

bool site_should_fire(SiteState& state) {
  const RuleBox* rule = state.rule.load(std::memory_order_acquire);
  if (rule == nullptr) return false;
  const std::uint64_t index =
      state.hits.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
  c_hits.add();
  bool fire = false;
  switch (rule->kind) {
    case RuleKind::kProb:
      fire = prob_decision(rule->seed, state.name_hash, index, rule->p);
      break;
    case RuleKind::kNth:
      fire = index == rule->n;
      break;
    case RuleKind::kEvery:
      fire = rule->n != 0 && index % rule->n == 0;
      break;
  }
  if (fire) {
    state.fired.fetch_add(1, std::memory_order_relaxed);
    c_injected.add();
  }
  return fire;
}

}  // namespace detail

namespace {

bool known_site(std::string_view name) {
  for (const char* site : kCatalogue) {
    if (name == site) return true;
  }
  return false;
}

[[noreturn]] void spec_error(const std::string& message) {
  throw Error("fault spec: " + message);
}

std::uint64_t parse_uint(const std::string& text, const std::string& what) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    spec_error("bad " + what + ": '" + text + "'");
  }
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), nullptr, 10);
  if (errno != 0) spec_error("bad " + what + ": '" + text + "'");
  return static_cast<std::uint64_t>(v);
}

RuleBox parse_rule(const std::string& text) {
  RuleBox rule;
  if (text.size() >= 2 && text[0] == 'p') {
    rule.kind = RuleKind::kProb;
    char* end = nullptr;
    rule.p = std::strtod(text.c_str() + 1, &end);
    if (end == nullptr || *end != '\0' || rule.p < 0.0 || rule.p > 1.0) {
      spec_error("bad probability: '" + text + "' (want p0.0 .. p1.0)");
    }
  } else if (text.size() >= 2 && text[0] == 'n') {
    rule.kind = RuleKind::kNth;
    rule.n = parse_uint(text.substr(1), "hit number");
    if (rule.n == 0) spec_error("n0 never fires; hit numbers are 1-based");
  } else if (text.size() > 5 && text.rfind("every", 0) == 0) {
    rule.kind = RuleKind::kEvery;
    rule.n = parse_uint(text.substr(5), "period");
    if (rule.n == 0) spec_error("every0 is meaningless");
  } else {
    spec_error("unknown rule: '" + text + "' (want pX, nX, or everyX)");
  }
  return rule;
}

}  // namespace

void configure(const std::string& spec) {
  // Parse fully before touching the registry, so a bad spec changes
  // nothing.
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, RuleBox>> parsed;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace.
    const std::size_t b = clause.find_first_not_of(" \t");
    const std::size_t e = clause.find_last_not_of(" \t");
    if (b == std::string::npos) continue;  // empty clause: ignore
    clause = clause.substr(b, e - b + 1);
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size()) {
      spec_error("clause '" + clause + "' is not site=rule or seed=N");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "seed") {
      seed = parse_uint(value, "seed");
      continue;
    }
    if (!known_site(key)) {
      std::string sites;
      for (const char* site : kCatalogue) {
        if (!sites.empty()) sites += ", ";
        sites += site;
      }
      spec_error("unknown site '" + key + "' (known: " + sites + ")");
    }
    parsed.emplace_back(key, parse_rule(value));
  }

  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  // Deactivate, reset every site, then publish the new rules.
  detail::g_active.store(false, std::memory_order_relaxed);
  for (const char* site : kCatalogue) {
    detail::SiteState* state = detail::site_locked(reg, site);
    state->rule.store(nullptr, std::memory_order_release);
    state->hits.store(0, std::memory_order_relaxed);
    state->fired.store(0, std::memory_order_relaxed);
  }
  for (auto& [site, rule] : parsed) {
    auto box = std::make_unique<RuleBox>(rule);
    box->seed = seed;
    detail::SiteState* state = detail::site_locked(reg, site);
    state->rule.store(box.get(), std::memory_order_release);
    reg.retained_rules.push_back(std::move(box));
  }
  detail::g_active.store(!parsed.empty(), std::memory_order_relaxed);
}

void clear() { configure(""); }

std::vector<std::string> known_sites() {
  return {std::begin(kCatalogue), std::end(kCatalogue)};
}

std::vector<SiteStats> stats() {
  detail::Registry& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<SiteStats> out;
  out.reserve(std::size(kCatalogue));
  for (const char* site : kCatalogue) {
    detail::SiteState* state = detail::site_locked(reg, site);
    SiteStats s;
    s.name = state->name;
    s.hits = state->hits.load(std::memory_order_relaxed);
    s.fired = state->fired.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

/// Loads CIPNET_FAULT_SPEC once at startup. A bad spec must not take the
/// process down before main() — report and continue uninjected.
struct EnvInit {
  EnvInit() {
    const char* spec = std::getenv("CIPNET_FAULT_SPEC");
    if (spec == nullptr || *spec == '\0') return;
    try {
      configure(spec);
    } catch (const Error& e) {
      std::fprintf(stderr, "CIPNET_FAULT_SPEC ignored: %s\n", e.what());
    }
  }
};
const EnvInit g_env_init;

}  // namespace

}  // namespace cipnet::fault
