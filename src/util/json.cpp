#include "util/json.h"

#include <cctype>
#include <cstdlib>

#include "util/error.h"

namespace cipnet::json {

bool Value::as_bool() const {
  if (type_ != Type::kBool) throw ParseError("json: not a boolean");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) throw ParseError("json: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) throw ParseError("json: not a string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::kArray) throw ParseError("json: not an array");
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  if (type_ != Type::kObject) throw ParseError("json: not an object");
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Value::get_string(std::string_view key,
                              std::string fallback) const {
  const Value* v = find(key);
  return v && v->type_ == Type::kString ? v->string_ : std::move(fallback);
}

double Value::get_number(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v && v->type_ == Type::kNumber ? v->number_ : fallback;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.type_ = Value::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.type_ = Value::Type::kBool;
        if (consume_literal("true")) {
          v.bool_ = true;
        } else if (consume_literal("false")) {
          v.bool_ = false;
        } else {
          fail("invalid literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return Value{};
      }
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    Value v;
    v.type_ = Value::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.type_ = Value::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode (surrogate pairs unsupported — the sinks only
          // escape control characters, all below U+0800).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    Value v;
    v.type_ = Value::Type::kNumber;
    v.number_ = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace cipnet::json
