#pragma once

// Escaping-correct JSON serialization, the write-side counterpart of the
// strict parser in util/json.h. Everything the codebase emits as JSON — the
// JSONL/Chrome trace sinks, BENCH_* perf lines, and the `cipnet serve`
// NDJSON responses — goes through this writer, so output always round-trips
// through `json::parse`. The writer is a push API over an append-only
// buffer: containers are opened/closed explicitly, commas and key/value
// colons are inserted automatically. Nesting discipline (a key before every
// object member, matched begin/end) is the caller's responsibility; it is
// asserted in debug builds.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cipnet::json {

/// Escape `text` for inclusion inside a JSON string literal (no quotes
/// added): `"` `\` and control characters; everything else — including
/// UTF-8 multibyte sequences — passes through unchanged.
[[nodiscard]] std::string escape(std::string_view text);

class Writer {
 public:
  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Object member key (quoted + escaped + colon).
  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(const std::string& v) { return value(std::string_view(v)); }
  Writer& value(bool v);
  Writer& value(double v);
  Writer& value(std::uint64_t v);
  Writer& value(std::int64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  Writer& null();

  /// Splice a pre-serialized JSON fragment as one value (e.g. a cached
  /// response payload). The fragment must itself be valid JSON.
  Writer& raw(std::string_view fragment);

  /// `key(k)` followed by `value(v)`.
  template <typename T>
  Writer& member(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The serialized document. Valid once every container is closed.
  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void before_value();

  std::string out_;
  // One entry per open container: whether the next element needs a comma.
  std::vector<bool> need_comma_;
  bool pending_key_ = false;
};

/// Format a double the way `Writer::value(double)` does: shortest form that
/// round-trips through `json::parse`; non-finite values become `null`.
[[nodiscard]] std::string number_to_string(double v);

}  // namespace cipnet::json
