#pragma once

// Cooperative cancellation for long-running analyses. A `CancelToken` is a
// cheap copyable handle to shared cancellation state: it trips either when
// some owner calls `request_cancel()` or when a wall-clock deadline passes.
// Explorers accept a token through their options struct and poll `check()`
// once per outer-loop step, right next to their LimitError budget checks;
// a tripped token surfaces as the structured `Cancelled` error
// (util/error.h). The default-constructed token is inert — `check()` is a
// single null-pointer test — so callers that never cancel pay nothing.

#include <chrono>
#include <cstdint>
#include <memory>

namespace cipnet {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Inert token: never cancels.
  CancelToken() = default;

  /// A token that trips `budget` after construction (the deadline clock
  /// starts now, so queue wait counts against it too).
  [[nodiscard]] static CancelToken with_deadline(
      std::chrono::milliseconds budget);

  /// A token with no deadline that trips only via `request_cancel`.
  [[nodiscard]] static CancelToken manual();

  /// True when this token can ever cancel (non-default-constructed).
  [[nodiscard]] bool cancellable() const { return state_ != nullptr; }

  /// Trip the token; every copy sees it. No-op on an inert token.
  void request_cancel() const;

  /// True when the token has been tripped or its deadline has passed.
  [[nodiscard]] bool expired() const;

  /// Throw `Cancelled` (naming `operation`) when expired, else return.
  void check(const char* operation) const;

  /// Milliseconds since the token was created (0 for an inert token).
  [[nodiscard]] std::uint64_t elapsed_ms() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace cipnet
