#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cipnet {

/// Small string helpers shared by parsers, writers and diagnostics.
namespace text {

/// Strict full-match decimal parse: every character of `s` must be a digit
/// and the value must fit. Parsers use this instead of std::stoul, whose
/// std::invalid_argument / std::out_of_range escape the cipnet::Error
/// hierarchy and would crash the CLI on garbage input.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s);

[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

[[nodiscard]] std::vector<std::string> split_ws(std::string_view line);

[[nodiscard]] std::string_view trim(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Strip a `#` comment. The marker only counts at the start of the line or
/// after whitespace, so signal-edge labels like `d#` (unstable, Section
/// 2.2) survive inside net files.
[[nodiscard]] std::string_view strip_comment(std::string_view line);

}  // namespace text
}  // namespace cipnet
