#pragma once

// Durable file primitives for the store layer (reach/checkpoint.h,
// svc/cache_persist.h). Three guarantees, one protocol:
//
//  * **Atomic replace** — `write_file_atomic` writes a writer-unique
//    temp (`path + ".tmp.<pid>.<n>"`, so concurrent writers to the same
//    destination never share one), fsyncs it, renames it over `path`,
//    then fsyncs the directory. A crash at any point leaves either the
//    old file or the new one, never a torn mixture; readers never
//    observe a partial write.
//  * **Self-verifying envelope** — `seal_blob` frames a body with a
//    format magic, a version, the body length, and an FNV-1a content
//    checksum; `open_blob` re-derives all four and reports exactly why
//    a file is unacceptable (wrong magic, unknown version, short read,
//    checksum mismatch) instead of handing corrupt bytes to a parser.
//  * **Quarantine, not deletion** — `quarantine_file` renames a bad
//    file to `path + ".bad"` so recovery is non-destructive: the
//    evidence survives for a post-mortem while the load path moves on.
//
// Fault sites `store.write`, `store.fsync`, and `store.load` sit on the
// three failure surfaces (docs/RESILIENCE.md); callers treat every
// throw from this layer as a counted, non-fatal event.

#include <cstdint>
#include <optional>
#include <string>

namespace cipnet::store {

/// Little-endian wire helpers shared by the checkpoint and cache-entry
/// encoders. `get_*` return false instead of reading past `end` — decode
/// paths must survive arbitrarily truncated input.
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_str(std::string& out, const std::string& s);
[[nodiscard]] bool get_u32(const std::string& in, std::size_t& pos,
                           std::uint32_t& v);
[[nodiscard]] bool get_u64(const std::string& in, std::size_t& pos,
                           std::uint64_t& v);
[[nodiscard]] bool get_str(const std::string& in, std::size_t& pos,
                           std::string& s);

/// FNV-1a over `bytes` — the content checksum of the blob envelope.
[[nodiscard]] std::uint64_t content_checksum(const std::string& bytes);

/// Frame `body` as `[magic u64][version u32][length u64][body][fnv u64]`.
[[nodiscard]] std::string seal_blob(std::uint64_t magic,
                                    std::uint32_t version, std::string body);

/// Unframe and verify a sealed blob. On success `body` holds the payload
/// and true is returned; on any violation — wrong magic, version above
/// `max_version`, short read, length mismatch, checksum mismatch — false
/// comes back and `why` names the violation.
[[nodiscard]] bool open_blob(const std::string& bytes, std::uint64_t magic,
                             std::uint32_t max_version, std::string& body,
                             std::string& why);

/// Durably replace `path` with `bytes` (temp file + fsync + rename +
/// directory fsync). Throws `Error` on any I/O failure, including the
/// injected `store.write` / `store.fsync` faults.
void write_file_atomic(const std::string& path, const std::string& bytes);

/// Read `path` whole. Returns nullopt if the file does not exist; throws
/// `Error` on a read failure (including the injected `store.load` fault).
[[nodiscard]] std::optional<std::string> read_file(const std::string& path);

/// Rename `path` to `path + ".bad"` (best effort — a failed quarantine is
/// swallowed; the caller has already decided to skip the file). Returns
/// the quarantine path if the rename happened.
std::optional<std::string> quarantine_file(const std::string& path);

}  // namespace cipnet::store
