#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace cipnet {

/// Base class of all errors thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A model violates a semantic precondition of an operation (e.g. applying
/// action prefix to a net whose initial marking is not safe, or hiding a
/// transition with a self-loop).
class SemanticError : public Error {
 public:
  explicit SemanticError(const std::string& what) : Error(what) {}
};

/// A textual input (.cpn / .g file) is malformed. Parsers that track
/// position attach 1-based line (and optionally column) numbers; both stay
/// 0 when unknown. The what() string already embeds the location — the
/// accessors exist for structured consumers (service responses, tooling).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
  ParseError(const std::string& what, std::size_t line, std::size_t column = 0)
      : Error(locate(what, line, column)), line_(line), column_(column) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }

 private:
  static std::string locate(const std::string& what, std::size_t line,
                            std::size_t column) {
    std::string out = "line " + std::to_string(line);
    if (column != 0) out += ", column " + std::to_string(column);
    return out + ": " + what;
  }

  std::size_t line_ = 0;
  std::size_t column_ = 0;
};

/// Progress accounting attached to a LimitError: how far the exploration
/// got before hitting its limit, read off the explorer's live counters.
struct LimitContext {
  std::uint64_t reached = 0;  ///< states / nodes / contractions completed
  std::uint64_t edges = 0;    ///< edges added so far (0 where meaningless)
  std::uint64_t limit = 0;    ///< the configured limit that was hit

  [[nodiscard]] std::string describe() const {
    std::string out = "reached=" + std::to_string(reached);
    if (edges != 0) out += ", edges=" + std::to_string(edges);
    out += ", limit=" + std::to_string(limit);
    return out;
  }
};

/// A bounded exploration exceeded its configured resource limit. State-space
/// walks over general Petri nets can diverge (unbounded nets), so every
/// explorer takes an explicit limit and reports overflow through this type.
/// Explorers attach a `LimitContext` so failures report how far they got.
class LimitError : public Error {
 public:
  explicit LimitError(const std::string& what) : Error(what) {}
  LimitError(const std::string& what, const LimitContext& context)
      : Error(what + " (" + context.describe() + ")"), context_(context) {}

  [[nodiscard]] const std::optional<LimitContext>& context() const {
    return context_;
  }

 private:
  std::optional<LimitContext> context_;
};

/// An operation was cancelled cooperatively — its `CancelToken` tripped,
/// either explicitly or by passing its deadline (util/cancel.h). Distinct
/// from `LimitError`: a limit means the *problem* outgrew its resource
/// budget, a cancellation means the *caller* withdrew the request (client
/// deadline, server shutdown) and the partial work is simply discarded.
class Cancelled : public Error {
 public:
  Cancelled(const std::string& operation, std::uint64_t elapsed_ms,
            bool deadline_exceeded)
      : Error(operation + (deadline_exceeded ? " deadline exceeded after "
                                             : " cancelled after ") +
              std::to_string(elapsed_ms) + "ms"),
        operation_(operation),
        elapsed_ms_(elapsed_ms),
        deadline_exceeded_(deadline_exceeded) {}

  [[nodiscard]] const std::string& operation() const { return operation_; }
  [[nodiscard]] std::uint64_t elapsed_ms() const { return elapsed_ms_; }
  [[nodiscard]] bool deadline_exceeded() const { return deadline_exceeded_; }

 private:
  std::string operation_;
  std::uint64_t elapsed_ms_ = 0;
  bool deadline_exceeded_ = false;
};

}  // namespace cipnet
