#pragma once

#include <stdexcept>
#include <string>

namespace cipnet {

/// Base class of all errors thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A model violates a semantic precondition of an operation (e.g. applying
/// action prefix to a net whose initial marking is not safe, or hiding a
/// transition with a self-loop).
class SemanticError : public Error {
 public:
  explicit SemanticError(const std::string& what) : Error(what) {}
};

/// A textual input (.cpn / .g file) is malformed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A bounded exploration exceeded its configured resource limit. State-space
/// walks over general Petri nets can diverge (unbounded nets), so every
/// explorer takes an explicit limit and reports overflow through this type.
class LimitError : public Error {
 public:
  explicit LimitError(const std::string& what) : Error(what) {}
};

}  // namespace cipnet
