#pragma once

// Deterministic, seeded fault injection. The service's failure behavior —
// watchdog recoveries, load shedding, graceful degradation — is only
// trustworthy if it can be *provoked on demand and reproduced*: a named
// `FaultSite` sits on each hot failure surface (allocation in the marking
// arena, scheduler enqueue / worker body, cache insert, NDJSON frame
// parsing, cancellation checks) and fires according to a rule loaded from
// the `CIPNET_FAULT_SPEC` environment variable or the `--fault-spec` CLI
// flag. Decisions are a pure function of `(seed, site name, hit index)`,
// so the same spec replays the same fault sequence regardless of wall
// clock — the property the chaos soak test (tests/test_chaos.cpp) builds
// on.
//
// Spec grammar (clauses separated by `;` or `,`):
//
//   spec   := clause (';' clause)*
//   clause := 'seed=' uint            global seed (default 0)
//           | site '=' rule
//   rule   := 'p' float               fire each hit with probability p
//           | 'n' uint                fire exactly on the Nth hit (once)
//           | 'every' uint            fire on every Nth hit
//
//   CIPNET_FAULT_SPEC='seed=42;reach.store.grow=p0.01;svc.cache.insert=n3'
//
// Site names must come from the compiled-in catalogue (`known_sites()`);
// unknown names are a configuration error, so typos fail loudly instead of
// silently injecting nothing.
//
// Cost model mirrors obs/metrics.h: when the `CIPNET_FAULT` CMake option is
// OFF the `CIPNET_FAULT_SITE`/`CIPNET_FAULT_FIRES` macros expand to nothing
// and `false` — sites compile out of release/bench builds entirely. When
// compiled in but no spec is active, a hit is one relaxed atomic load plus
// a branch. Counters `fault.hits` / `fault.injected` surface activity via
// `--stats`; per-site numbers come from `stats()`.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"

namespace cipnet {

/// Thrown by fault points that simulate an unexpected internal failure
/// (distinct from std::bad_alloc, which allocation sites throw to exercise
/// real out-of-memory paths). Carries the site name so responses and logs
/// can attribute the failure to the injected fault.
class FaultInjected : public Error {
 public:
  explicit FaultInjected(const std::string& site)
      : Error("injected fault at " + site), site_(site) {}

  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

namespace fault {

namespace detail {
extern std::atomic<bool> g_active;

struct SiteState;
SiteState* site_state(std::string_view name);
bool site_should_fire(SiteState& state);

/// The pure decision function behind probability rules: does site
/// `name_hash` fire on (1-based) hit `index` under `seed` with probability
/// `p`? Exposed so tests can verify determinism without driving real hits.
[[nodiscard]] bool prob_decision(std::uint64_t seed, std::uint64_t name_hash,
                                 std::uint64_t index, double p);

[[nodiscard]] std::uint64_t site_name_hash(std::string_view name);
}  // namespace detail

/// True when a fault spec is loaded. One relaxed load; every site checks
/// this before anything else.
inline bool active() {
  return detail::g_active.load(std::memory_order_relaxed);
}

/// A handle to one named fault point. Construct once at namespace scope in
/// the instrumented .cpp (like obs::Counter); `should_fire()` counts the
/// hit and evaluates the site's rule.
class FaultSite {
 public:
  explicit FaultSite(std::string_view name)
      : state_(detail::site_state(name)) {}

  [[nodiscard]] bool should_fire() const {
    return active() && detail::site_should_fire(*state_);
  }

 private:
  detail::SiteState* state_;
};

/// Load a fault spec (see grammar above), replacing any previous one and
/// resetting all hit counters. Throws `Error` on syntax errors or unknown
/// site names. An empty spec deactivates injection (same as `clear`).
void configure(const std::string& spec);

/// Drop the active spec and zero all counters.
void clear();

/// The compiled-in site catalogue, sorted. Stable names — they are part of
/// the spec surface documented in docs/RESILIENCE.md.
[[nodiscard]] std::vector<std::string> known_sites();

struct SiteStats {
  std::string name;
  std::uint64_t hits = 0;   ///< times the site was evaluated under a rule
  std::uint64_t fired = 0;  ///< times it injected
};

/// Per-site hit/fire counts for every catalogued site (zeroes for sites
/// never reached), sorted by name.
[[nodiscard]] std::vector<SiteStats> stats();

}  // namespace fault
}  // namespace cipnet

// Site declaration + query macros. `CIPNET_FAULT_SITE(var, "name");` at
// namespace scope declares a handle; `CIPNET_FAULT_FIRES(var)` evaluates
// it. With the CMake option OFF both vanish, so a fault point is
//
//   if (CIPNET_FAULT_FIRES(f_grow)) throw std::bad_alloc();
//
// and costs literally nothing in builds without fault support.
#if CIPNET_FAULT_ENABLED
#define CIPNET_FAULT_SITE(var, name) \
  const ::cipnet::fault::FaultSite var { name }
#define CIPNET_FAULT_FIRES(var) ((var).should_fire())
#else
#define CIPNET_FAULT_SITE(var, name) static_assert(true)
#define CIPNET_FAULT_FIRES(var) (false)
#endif
