#pragma once

// Minimal strict JSON parser: objects, arrays, strings (with escapes),
// numbers, booleans, null. Used to validate the trace files the obs sinks
// emit and to read `BENCH_*.json` perf-trajectory files in bench tooling —
// both formats this codebase writes itself, so the subset is by design.
// Malformed input throws `ParseError`.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cipnet::json {

/// One parsed JSON value. Object member order is preserved.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }

  /// Typed accessors; throw `ParseError` on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const;

  /// Object member by key, or nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Convenience: member `key` as string/number with a default.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback = "") const;
  [[nodiscard]] double get_number(std::string_view key,
                                  double fallback = 0.0) const;

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws `ParseError`.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace cipnet::json
