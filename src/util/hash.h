#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

namespace cipnet {

/// Boost-style hash combining; adequate for hash-map keys over markings and
/// state vectors (not cryptographic).
inline void hash_combine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

template <typename T>
std::size_t hash_range(const std::vector<T>& v) {
  std::size_t seed = v.size();
  for (const T& x : v) hash_combine(seed, std::hash<T>{}(x));
  return seed;
}

struct VectorHash {
  template <typename T>
  std::size_t operator()(const std::vector<T>& v) const {
    return hash_range(v);
  }
};

/// Incremental FNV-1a over bytes: a stable, platform-independent 64-bit
/// digest (unlike std::hash, which varies by implementation). Used for
/// content addressing — canonical net hashes (petri/canonical.h) and
/// result-cache keys (svc/result_cache.h). Not cryptographic.
class Fnv1a64 {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }

  void str(std::string_view text) {
    bytes(text.data(), text.size());
    u64(text.size());  // length-prefix so "ab","c" != "a","bc"
  }

  void u64(std::uint64_t v) {
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
    bytes(buf, sizeof(buf));
  }

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace cipnet
