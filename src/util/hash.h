#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace cipnet {

/// Boost-style hash combining; adequate for hash-map keys over markings and
/// state vectors (not cryptographic).
inline void hash_combine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

template <typename T>
std::size_t hash_range(const std::vector<T>& v) {
  std::size_t seed = v.size();
  for (const T& x : v) hash_combine(seed, std::hash<T>{}(x));
  return seed;
}

struct VectorHash {
  template <typename T>
  std::size_t operator()(const std::vector<T>& v) const {
    return hash_range(v);
  }
};

}  // namespace cipnet
