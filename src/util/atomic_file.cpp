#include "util/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "util/error.h"
#include "util/fault.h"
#include "util/hash.h"

namespace cipnet::store {

namespace {
CIPNET_FAULT_SITE(f_write, "store.write");
CIPNET_FAULT_SITE(f_fsync, "store.fsync");
CIPNET_FAULT_SITE(f_load, "store.load");

[[noreturn]] void io_error(const std::string& what, const std::string& path) {
  throw Error("store: " + what + " " + path + ": " +
              std::strerror(errno));
}

/// Directory component of `path` ("" when there is none).
std::string dir_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return {};
  return path.substr(0, slash == 0 ? 1 : slash);
}

void fsync_dir(const std::string& dir) {
  if (dir.empty()) return;
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir fsync
  (void)::fsync(fd);
  ::close(fd);
}

}  // namespace

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_str(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out += s;
}

bool get_u32(const std::string& in, std::size_t& pos, std::uint32_t& v) {
  if (pos + 4 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 4;
  return true;
}

bool get_u64(const std::string& in, std::size_t& pos, std::uint64_t& v) {
  if (pos + 8 > in.size()) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return true;
}

bool get_str(const std::string& in, std::size_t& pos, std::string& s) {
  std::uint64_t n = 0;
  if (!get_u64(in, pos, n)) return false;
  if (n > in.size() - pos) return false;
  s.assign(in, pos, static_cast<std::size_t>(n));
  pos += static_cast<std::size_t>(n);
  return true;
}

std::uint64_t content_checksum(const std::string& bytes) {
  Fnv1a64 h;
  h.bytes(bytes.data(), bytes.size());
  return h.digest();
}

std::string seal_blob(std::uint64_t magic, std::uint32_t version,
                      std::string body) {
  std::string out;
  out.reserve(body.size() + 28);
  put_u64(out, magic);
  put_u32(out, version);
  put_u64(out, body.size());
  const std::uint64_t checksum = content_checksum(body);
  out += body;
  put_u64(out, checksum);
  return out;
}

bool open_blob(const std::string& bytes, std::uint64_t magic,
               std::uint32_t max_version, std::string& body,
               std::string& why) {
  std::size_t pos = 0;
  std::uint64_t file_magic = 0;
  std::uint32_t version = 0;
  std::uint64_t length = 0;
  if (!get_u64(bytes, pos, file_magic) || !get_u32(bytes, pos, version) ||
      !get_u64(bytes, pos, length)) {
    why = "short read (header truncated)";
    return false;
  }
  if (file_magic != magic) {
    why = "bad format magic";
    return false;
  }
  if (version == 0 || version > max_version) {
    why = "unknown version " + std::to_string(version);
    return false;
  }
  if (length != bytes.size() - pos - 8 || length > bytes.size()) {
    why = "short read (body truncated)";
    return false;
  }
  body.assign(bytes, pos, static_cast<std::size_t>(length));
  pos += static_cast<std::size_t>(length);
  std::uint64_t stored = 0;
  if (!get_u64(bytes, pos, stored)) {
    why = "short read (checksum truncated)";
    return false;
  }
  if (stored != content_checksum(body)) {
    why = "checksum mismatch";
    return false;
  }
  return true;
}

void write_file_atomic(const std::string& path, const std::string& bytes) {
  if (CIPNET_FAULT_FIRES(f_write)) {
    throw FaultInjected("store.write");
  }
  // The temp name must be unique per writer: two concurrent writers to
  // the same destination sharing one temp would interleave writes, unlink
  // each other mid-write, and could rename a torn file into place. pid +
  // a process-local counter disambiguates; O_EXCL steps over the stale
  // leftover of a crashed earlier process that drew the same pair.
  static std::atomic<std::uint64_t> tmp_counter{0};
  std::string tmp;
  int fd = -1;
  for (;;) {
    tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
          std::to_string(
              tmp_counter.fetch_add(1, std::memory_order_relaxed));
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd >= 0) break;
    if (errno != EEXIST) io_error("cannot open", tmp);
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      io_error("write failed on", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (CIPNET_FAULT_FIRES(f_fsync)) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw FaultInjected("store.fsync");
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    io_error("fsync failed on", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    io_error("close failed on", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    io_error("rename failed onto", path);
  }
  // Make the rename itself durable; without this the file can exist but
  // the directory entry vanish on power loss.
  fsync_dir(dir_of(path));
}

std::optional<std::string> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    io_error("cannot open", path);
  }
  if (CIPNET_FAULT_FIRES(f_load)) {
    ::close(fd);
    throw FaultInjected("store.load");
  }
  std::string out;
  char chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      io_error("read failed on", path);
    }
    if (n == 0) break;
    out.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::optional<std::string> quarantine_file(const std::string& path) {
  const std::string bad = path + ".bad";
  if (::rename(path.c_str(), bad.c_str()) != 0) return std::nullopt;
  fsync_dir(dir_of(path));
  return bad;
}

}  // namespace cipnet::store
