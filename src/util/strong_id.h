#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace cipnet {

/// A type-safe index. `Tag` distinguishes id spaces (places vs transitions vs
/// states) so they cannot be mixed up at compile time; the underlying value is
/// an index into the owning container.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr std::size_t index() const { return value_; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

 private:
  std::uint32_t value_ = 0;
};

struct PlaceTag {};
struct TransitionTag {};
struct ActionTag {};
struct StateTag {};
struct SignalTag {};
struct ModuleTag {};
struct ChannelTag {};

using PlaceId = StrongId<PlaceTag>;
using TransitionId = StrongId<TransitionTag>;
using ActionId = StrongId<ActionTag>;
using StateId = StrongId<StateTag>;
using SignalId = StrongId<SignalTag>;
using ModuleId = StrongId<ModuleTag>;
using ChannelId = StrongId<ChannelTag>;

}  // namespace cipnet

template <typename Tag>
struct std::hash<cipnet::StrongId<Tag>> {
  std::size_t operator()(cipnet::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
