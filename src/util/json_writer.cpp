#include "util/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cipnet::json {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number_to_string(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  // Shortest representation that parses back to the same double: try
  // increasing precision until strtod round-trips.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void Writer::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
}

Writer& Writer::begin_object() {
  before_value();
  out_ += '{';
  need_comma_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  assert(!need_comma_.empty() && !pending_key_);
  need_comma_.pop_back();
  out_ += '}';
  return *this;
}

Writer& Writer::begin_array() {
  before_value();
  out_ += '[';
  need_comma_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  assert(!need_comma_.empty() && !pending_key_);
  need_comma_.pop_back();
  out_ += ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  assert(!pending_key_);
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ += ',';
    need_comma_.back() = true;
  }
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

Writer& Writer::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::value(double v) {
  before_value();
  out_ += number_to_string(v);
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::null() {
  before_value();
  out_ += "null";
  return *this;
}

Writer& Writer::raw(std::string_view fragment) {
  before_value();
  out_ += fragment;
  return *this;
}

}  // namespace cipnet::json
