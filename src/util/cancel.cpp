#include "util/cancel.h"

#include <atomic>

#include "util/error.h"

namespace cipnet {

struct CancelToken::State {
  std::atomic<bool> cancelled{false};
  bool has_deadline = false;
  Clock::time_point start{};
  Clock::time_point deadline{};
};

CancelToken CancelToken::with_deadline(std::chrono::milliseconds budget) {
  CancelToken token;
  token.state_ = std::make_shared<State>();
  token.state_->has_deadline = true;
  token.state_->start = Clock::now();
  token.state_->deadline = token.state_->start + budget;
  return token;
}

CancelToken CancelToken::manual() {
  CancelToken token;
  token.state_ = std::make_shared<State>();
  token.state_->start = Clock::now();
  return token;
}

void CancelToken::request_cancel() const {
  if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
}

bool CancelToken::expired() const {
  if (!state_) return false;
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  return state_->has_deadline && Clock::now() >= state_->deadline;
}

std::uint64_t CancelToken::elapsed_ms() const {
  if (!state_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            state_->start)
          .count());
}

void CancelToken::check(const char* operation) const {
  if (!state_) return;
  if (state_->cancelled.load(std::memory_order_relaxed)) {
    throw Cancelled(operation, elapsed_ms(), /*deadline_exceeded=*/false);
  }
  if (state_->has_deadline && Clock::now() >= state_->deadline) {
    throw Cancelled(operation, elapsed_ms(), /*deadline_exceeded=*/true);
  }
}

}  // namespace cipnet
