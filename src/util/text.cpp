#include "util/text.h"

#include <cctype>
#include <charconv>

namespace cipnet::text {

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || s.empty()) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string_view strip_comment(std::string_view line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '#' &&
        (i == 0 || std::isspace(static_cast<unsigned char>(line[i - 1])))) {
      return line.substr(0, i);
    }
  }
  return line;
}

}  // namespace cipnet::text
