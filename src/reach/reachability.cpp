#include "reach/reachability.h"

#include <algorithm>
#include <deque>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "petri/structure.h"
#include "reach/engine.h"
#include "util/error.h"
#include "util/fault.h"

namespace cipnet {

namespace {
CIPNET_FAULT_SITE(f_cancel, "reach.cancel");
CIPNET_FAULT_SITE(f_packed_fallback, "reach.packed.fallback");
const obs::Counter c_states("reach.states");
const obs::Counter c_edges("reach.edges");
const obs::Counter c_hash_lookups("reach.hash_lookups");
const obs::Counter c_delta_updates("reach.delta_enabled");
const obs::Counter c_packed_selected("reach.packed.selected");
const obs::Counter c_packed_fallbacks("reach.packed.fallbacks");
const obs::Gauge g_packed_words("reach.packed.words_per_state");
const obs::Gauge g_frontier_peak("reach.frontier_peak");
const obs::Gauge g_graph_bytes("reach.graph_bytes");
const obs::Gauge g_index_bytes("reach.index_bytes");
const obs::Histogram h_frontier("reach.frontier_size");
const obs::Histogram h_enabled("reach.enabled_per_state");
}  // namespace

const char* to_string(ReachEngine engine) {
  switch (engine) {
    case ReachEngine::kAuto:
      return "auto";
    case ReachEngine::kDense:
      return "dense";
    case ReachEngine::kPacked:
      return "packed";
  }
  return "auto";
}

std::optional<ReachEngine> parse_reach_engine(std::string_view name) {
  if (name == "auto") return ReachEngine::kAuto;
  if (name == "dense") return ReachEngine::kDense;
  if (name == "packed") return ReachEngine::kPacked;
  return std::nullopt;
}

std::size_t ReachabilityGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& out : edges_) n += out.size();
  return n;
}

std::size_t ReachabilityGraph::estimated_graph_bytes() const {
  const std::size_t arena =
      packed_ ? packed_store_.arena_bytes() : store_.arena_bytes();
  return arena + edges_.size() * sizeof(std::vector<Edge>) +
         edge_count() * sizeof(Edge);
}

std::size_t ReachabilityGraph::estimated_index_bytes() const {
  return packed_ ? packed_index_.table_bytes() : index_.table_bytes();
}

bool ReachabilityGraph::contains(const Marking& m) const {
  if (!packed_) {
    return m.size() == store_.width() &&
           index_.find(m.tokens().data(), store_).has_value();
  }
  if (m.size() != places_) return false;
  // A marking with two tokens anywhere has no packed encoding and is
  // certainly not in a packed (hence 1-safe) graph.
  std::vector<std::uint64_t> row(packed_store_.width());
  if (!packed::pack_row(m.tokens().data(), places_, row.data())) return false;
  return packed_index_.find(row.data(), packed_store_).has_value();
}

std::vector<StateId> ReachabilityGraph::all_states() const {
  std::vector<StateId> out;
  out.reserve(state_count());
  for (std::size_t i = 0; i < state_count(); ++i) {
    out.push_back(StateId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

namespace reach_detail {

void count_delta_update() { c_delta_updates.add(); }

void packed_fault_check() {
  if (CIPNET_FAULT_FIRES(f_packed_fallback)) throw PackedUnsafe{};
}

void delta_enabled(const PetriNet& net,
                   const std::vector<TransitionId>& parent_enabled,
                   TransitionId fired, MarkingView next,
                   std::vector<TransitionId>& out,
                   std::vector<TransitionId>& candidates) {
  const DenseDomain dom(net);
  delta_enabled_t(dom, parent_enabled, fired, next.data(), out, candidates);
}

}  // namespace reach_detail

namespace {

/// The sequential BFS, generic over the marking domain. Everything that
/// determines the result — discovery order, ascending enabled sets, intern
/// order — is domain-independent, which is what makes packed graphs
/// bit-identical to dense ones.
template <class Domain>
ReachabilityGraph explore_seq(const Domain& dom, const PetriNet& net,
                              const ReachOptions& options) {
  using Cell = typename Domain::Cell;
  using Access = reach_detail::GraphAccess;
  constexpr std::uint32_t kNoId = BasicMarkingInterner<Cell>::kNoId;
  obs::Span span("reach.explore");
  obs::ProgressReporter progress("reach.explore");
  progress.set_target(options.max_states);
  ReachabilityGraph rg;
  BasicMarkingStore<Cell>& store = Domain::store(rg);
  BasicMarkingInterner<Cell>& index = Domain::index(rg);
  std::vector<std::vector<ReachabilityGraph::Edge>>& edges = Access::edges(rg);
  store.reset(dom.width);
  const std::size_t hint =
      std::min(options.max_states, reach_detail::kReserveCap);
  store.reserve(hint);
  index.reserve(hint);
  edges.reserve(hint);

  std::size_t edges_added = 0;
  bool truncated = false;
  // O(1) live estimate of the graph + marking-index footprint, refreshed
  // from the running counts (edge_count() would rescan every state).
  auto sample_memory = [&] {
    if (!obs::enabled()) return;
    g_graph_bytes.set(store.arena_bytes() +
                      edges.size() * sizeof(std::vector<
                                            ReachabilityGraph::Edge>) +
                      edges_added * sizeof(ReachabilityGraph::Edge));
    g_index_bytes.set(index.table_bytes());
  };
  auto limit_error = [&] {
    sample_memory();
    return LimitError(
        "reachability exploration exceeded " +
            std::to_string(options.max_states) + " states",
        LimitContext{store.size(), edges_added, options.max_states});
  };
  // O(1) footprint estimate for the memory-budget guard (same quantities
  // the gauges report, plus the index table).
  auto approx_bytes = [&] {
    return store.arena_bytes() +
           edges.size() * sizeof(std::vector<ReachabilityGraph::Edge>) +
           edges_added * sizeof(ReachabilityGraph::Edge) +
           index.table_bytes();
  };

  // Enabled sets of discovered-but-unexpanded states, maintained
  // incrementally from the parent's set (moved out on expansion).
  std::vector<std::vector<TransitionId>> pending_enabled;
  pending_enabled.reserve(hint);

  {
    std::vector<Cell> m0;
    dom.initial_row(m0);
    c_hash_lookups.add();
    auto r0 = index.intern(m0.data(), store, options.max_states);
    if (r0.id == kNoId) throw limit_error();
    edges.emplace_back();
    pending_enabled.push_back(net.enabled_transitions(net.initial_marking()));
    c_states.add();
  }

  std::deque<StateId> frontier{rg.initial()};
  std::vector<Cell> scratch;
  std::vector<TransitionId> candidates;
  while (!frontier.empty() && !truncated) {
    g_frontier_peak.set_max(frontier.size());
    h_frontier.record(frontier.size());
    StateId s = frontier.front();
    frontier.pop_front();
    progress.update(store.size(), frontier.size());
    options.cancel.check("reach.explore");
    if (CIPNET_FAULT_FIRES(f_cancel)) {
      throw Cancelled("reach.explore", options.cancel.elapsed_ms(), false);
    }
    dom.state_check();
    if (options.max_graph_bytes != 0 &&
        approx_bytes() > options.max_graph_bytes) {
      if (options.truncate_on_limit) {
        truncated = true;
        obs::FlightRecorder::instance().record(
            obs::FlightKind::kTruncated, 0, "reach.explore.bytes",
            store.size(), approx_bytes());
        break;
      }
      sample_memory();
      throw LimitError(
          "reachability exploration exceeded memory budget of " +
              std::to_string(options.max_graph_bytes) + " bytes",
          LimitContext{store.size(), edges_added, options.max_graph_bytes});
    }
    const std::vector<TransitionId> enabled =
        std::move(pending_enabled[s.index()]);
    h_enabled.record(enabled.size());
    for (TransitionId t : enabled) {
      // Re-fetch the row per edge: interning a fresh successor may grow
      // the arena under the pointer.
      dom.fire(store.row(s.index()), t, scratch);
      c_hash_lookups.add();
      auto r = index.intern(scratch.data(), store, options.max_states);
      if (r.id == kNoId) {
        if (options.truncate_on_limit) {
          truncated = true;
          obs::FlightRecorder::instance().record(
              obs::FlightKind::kTruncated, 0, "reach.explore.states",
              store.size(), options.max_states);
          break;
        }
        throw limit_error();
      }
      StateId target(r.id);
      edges[s.index()].push_back(ReachabilityGraph::Edge{t, target});
      ++edges_added;
      c_edges.add();
      if (r.fresh) {
        edges.emplace_back();
        pending_enabled.emplace_back();
        reach_detail::delta_enabled_t(dom, enabled, t, store.row(r.id),
                                      pending_enabled.back(), candidates);
        c_states.add();
        frontier.push_back(target);
      }
    }
    if ((store.size() & 0x3ff) == 0) sample_memory();
  }
  sample_memory();
  Access::set_truncated(rg, truncated);
  dom.bind(rg);
  return rg;
}

}  // namespace

ReachabilityGraph explore(const PetriNet& net, const ReachOptions& options) {
  bool use_packed = false;
  switch (options.engine) {
    case ReachEngine::kDense:
      break;
    case ReachEngine::kPacked:
      use_packed = true;
      break;
    case ReachEngine::kAuto:
      // Select packed only on a structural *proof* of 1-safety, so the
      // dynamic guard cannot trip and auto never pays a fallback rerun.
      use_packed = is_structurally_safe(net);
      break;
  }
  if (use_packed) {
    c_packed_selected.add();
    g_packed_words.set(packed::word_count(net.place_count()));
    try {
      if (options.threads > 1) {
        return reach_detail::explore_parallel(net, options, true);
      }
      const reach_detail::PackedDomain dom(net);
      return explore_seq(dom, net, options);
    } catch (const reach_detail::PackedUnsafe&) {
      // The net is not 1-safe after all (forced packed engine), or the
      // reach.packed.fallback fault fired: rerun on the dense engine.
      c_packed_fallbacks.add();
    }
  }
  if (options.threads > 1) {
    return reach_detail::explore_parallel(net, options, false);
  }
  const reach_detail::DenseDomain dom(net);
  return explore_seq(dom, net, options);
}

}  // namespace cipnet
