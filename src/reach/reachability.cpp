#include "reach/reachability.h"

#include <deque>

#include "util/error.h"

namespace cipnet {

std::size_t ReachabilityGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& out : edges_) n += out.size();
  return n;
}

std::vector<StateId> ReachabilityGraph::all_states() const {
  std::vector<StateId> out;
  out.reserve(markings_.size());
  for (std::size_t i = 0; i < markings_.size(); ++i) {
    out.push_back(StateId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

ReachabilityGraph explore(const PetriNet& net, const ReachOptions& options) {
  ReachabilityGraph rg;
  auto intern = [&](const Marking& m) -> StateId {
    auto it = rg.index_.find(m);
    if (it != rg.index_.end()) return it->second;
    if (rg.markings_.size() >= options.max_states) {
      throw LimitError("reachability exploration exceeded " +
                       std::to_string(options.max_states) + " states");
    }
    StateId id(static_cast<std::uint32_t>(rg.markings_.size()));
    rg.index_.emplace(m, id);
    rg.markings_.push_back(m);
    rg.edges_.emplace_back();
    return id;
  };

  intern(net.initial_marking());
  std::deque<StateId> frontier{rg.initial()};
  while (!frontier.empty()) {
    StateId s = frontier.front();
    frontier.pop_front();
    // Copy: interning may reallocate markings_.
    const Marking current = rg.markings_[s.index()];
    for (TransitionId t : net.enabled_transitions(current)) {
      Marking next = net.fire(current, t);
      const bool fresh = !rg.index_.contains(next);
      StateId target = intern(next);
      rg.edges_[s.index()].push_back(ReachabilityGraph::Edge{t, target});
      if (fresh) frontier.push_back(target);
    }
  }
  return rg;
}

}  // namespace cipnet
