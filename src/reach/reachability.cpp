#include "reach/reachability.h"

#include <algorithm>
#include <deque>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/sorted_set.h"

namespace cipnet {

namespace {
CIPNET_FAULT_SITE(f_cancel, "reach.cancel");
const obs::Counter c_states("reach.states");
const obs::Counter c_edges("reach.edges");
const obs::Counter c_hash_lookups("reach.hash_lookups");
const obs::Counter c_delta_updates("reach.delta_enabled");
const obs::Gauge g_frontier_peak("reach.frontier_peak");
const obs::Gauge g_graph_bytes("reach.graph_bytes");
const obs::Gauge g_index_bytes("reach.index_bytes");
const obs::Histogram h_frontier("reach.frontier_size");
const obs::Histogram h_enabled("reach.enabled_per_state");
}  // namespace

std::size_t ReachabilityGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& out : edges_) n += out.size();
  return n;
}

std::size_t ReachabilityGraph::estimated_graph_bytes() const {
  return store_.arena_bytes() +
         edges_.size() * sizeof(std::vector<Edge>) +
         edge_count() * sizeof(Edge);
}

std::size_t ReachabilityGraph::estimated_index_bytes() const {
  return index_.table_bytes();
}

std::vector<StateId> ReachabilityGraph::all_states() const {
  std::vector<StateId> out;
  out.reserve(store_.size());
  for (std::size_t i = 0; i < store_.size(); ++i) {
    out.push_back(StateId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

namespace reach_detail {

void delta_enabled(const PetriNet& net,
                   const std::vector<TransitionId>& parent_enabled,
                   TransitionId fired, MarkingView next,
                   std::vector<TransitionId>& out,
                   std::vector<TransitionId>& candidates) {
  c_delta_updates.add();
  out.clear();
  candidates.clear();
  // Only consumers of places that gained a token can newly become enabled;
  // everything else enabled in `next` was already enabled in the parent.
  const auto& tr = net.transition(fired);
  for (PlaceId p : tr.postset) {
    if (sorted_set::contains(tr.preset, p)) continue;  // self-loop: no change
    const auto& consumers = net.consumers_of(p);
    candidates.insert(candidates.end(), consumers.begin(), consumers.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // Ascending merge of (parent set) ∪ (candidates), rechecking enabledness
  // against `next` — presets are tiny, so this is O(small) per successor
  // where the full rescan is O(|T|).
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < parent_enabled.size() || j < candidates.size()) {
    TransitionId t;
    if (j >= candidates.size() ||
        (i < parent_enabled.size() && parent_enabled[i] <= candidates[j])) {
      t = parent_enabled[i];
      if (j < candidates.size() && candidates[j] == t) ++j;
      ++i;
    } else {
      t = candidates[j];
      ++j;
    }
    if (net.is_enabled(next, t)) out.push_back(t);
  }
}

}  // namespace reach_detail

ReachabilityGraph explore(const PetriNet& net, const ReachOptions& options) {
  if (options.threads > 1) return reach_detail::explore_parallel(net, options);
  obs::Span span("reach.explore");
  obs::ProgressReporter progress("reach.explore");
  progress.set_target(options.max_states);
  ReachabilityGraph rg;
  const std::size_t places = net.place_count();
  rg.store_.reset(places);
  const std::size_t hint =
      std::min(options.max_states, reach_detail::kReserveCap);
  rg.store_.reserve(hint);
  rg.index_.reserve(hint);
  rg.edges_.reserve(hint);

  std::size_t edges_added = 0;
  // O(1) live estimate of the graph + marking-index footprint, refreshed
  // from the running counts (edge_count() would rescan every state).
  auto sample_memory = [&] {
    if (!obs::enabled()) return;
    g_graph_bytes.set(rg.store_.arena_bytes() +
                      rg.edges_.size() * sizeof(std::vector<
                                            ReachabilityGraph::Edge>) +
                      edges_added * sizeof(ReachabilityGraph::Edge));
    g_index_bytes.set(rg.index_.table_bytes());
  };
  auto limit_error = [&] {
    sample_memory();
    return LimitError(
        "reachability exploration exceeded " +
            std::to_string(options.max_states) + " states",
        LimitContext{rg.store_.size(), edges_added, options.max_states});
  };
  // O(1) footprint estimate for the memory-budget guard (same quantities
  // the gauges report, plus the index table).
  auto approx_bytes = [&] {
    return rg.store_.arena_bytes() +
           rg.edges_.size() * sizeof(std::vector<ReachabilityGraph::Edge>) +
           edges_added * sizeof(ReachabilityGraph::Edge) +
           rg.index_.table_bytes();
  };

  // Enabled sets of discovered-but-unexpanded states, maintained
  // incrementally from the parent's set (moved out on expansion).
  std::vector<std::vector<TransitionId>> pending_enabled;
  pending_enabled.reserve(hint);

  {
    const Marking& m0 = net.initial_marking();
    c_hash_lookups.add();
    auto r0 = rg.index_.intern(m0.tokens().data(), rg.store_,
                               options.max_states);
    if (r0.id == MarkingInterner::kNoId) throw limit_error();
    rg.edges_.emplace_back();
    pending_enabled.push_back(net.enabled_transitions(m0));
    c_states.add();
  }

  std::deque<StateId> frontier{rg.initial()};
  std::vector<Token> scratch;
  std::vector<TransitionId> candidates;
  while (!frontier.empty() && !rg.truncated_) {
    g_frontier_peak.set_max(frontier.size());
    h_frontier.record(frontier.size());
    StateId s = frontier.front();
    frontier.pop_front();
    progress.update(rg.store_.size(), frontier.size());
    options.cancel.check("reach.explore");
    if (CIPNET_FAULT_FIRES(f_cancel)) {
      throw Cancelled("reach.explore", options.cancel.elapsed_ms(), false);
    }
    if (options.max_graph_bytes != 0 &&
        approx_bytes() > options.max_graph_bytes) {
      if (options.truncate_on_limit) {
        rg.truncated_ = true;
        obs::FlightRecorder::instance().record(
            obs::FlightKind::kTruncated, 0, "reach.explore.bytes",
            rg.store_.size(), approx_bytes());
        break;
      }
      sample_memory();
      throw LimitError(
          "reachability exploration exceeded memory budget of " +
              std::to_string(options.max_graph_bytes) + " bytes",
          LimitContext{rg.store_.size(), edges_added,
                       options.max_graph_bytes});
    }
    const std::vector<TransitionId> enabled =
        std::move(pending_enabled[s.index()]);
    h_enabled.record(enabled.size());
    for (TransitionId t : enabled) {
      // Re-view per edge: interning a fresh successor may grow the arena.
      net.fire_into(rg.store_.view(s.index()), t, scratch);
      c_hash_lookups.add();
      auto r = rg.index_.intern(scratch.data(), rg.store_, options.max_states);
      if (r.id == MarkingInterner::kNoId) {
        if (options.truncate_on_limit) {
          rg.truncated_ = true;
          obs::FlightRecorder::instance().record(
              obs::FlightKind::kTruncated, 0, "reach.explore.states",
              rg.store_.size(), options.max_states);
          break;
        }
        throw limit_error();
      }
      StateId target(r.id);
      rg.edges_[s.index()].push_back(ReachabilityGraph::Edge{t, target});
      ++edges_added;
      c_edges.add();
      if (r.fresh) {
        rg.edges_.emplace_back();
        pending_enabled.emplace_back();
        reach_detail::delta_enabled(net, enabled, t,
                                    rg.store_.view(r.id),
                                    pending_enabled.back(), candidates);
        c_states.add();
        frontier.push_back(target);
      }
    }
    if ((rg.store_.size() & 0x3ff) == 0) sample_memory();
  }
  sample_memory();
  return rg;
}

}  // namespace cipnet
