#include "reach/reachability.h"

#include <deque>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/error.h"

namespace cipnet {

namespace {
const obs::Counter c_states("reach.states");
const obs::Counter c_edges("reach.edges");
const obs::Counter c_hash_lookups("reach.hash_lookups");
const obs::Gauge g_frontier_peak("reach.frontier_peak");
}  // namespace

std::size_t ReachabilityGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& out : edges_) n += out.size();
  return n;
}

std::vector<StateId> ReachabilityGraph::all_states() const {
  std::vector<StateId> out;
  out.reserve(markings_.size());
  for (std::size_t i = 0; i < markings_.size(); ++i) {
    out.push_back(StateId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

ReachabilityGraph explore(const PetriNet& net, const ReachOptions& options) {
  obs::Span span("reach.explore");
  ReachabilityGraph rg;
  std::size_t edges_added = 0;
  auto intern = [&](const Marking& m) -> StateId {
    c_hash_lookups.add();
    auto it = rg.index_.find(m);
    if (it != rg.index_.end()) return it->second;
    if (rg.markings_.size() >= options.max_states) {
      throw LimitError(
          "reachability exploration exceeded " +
              std::to_string(options.max_states) + " states",
          LimitContext{rg.markings_.size(), edges_added, options.max_states});
    }
    StateId id(static_cast<std::uint32_t>(rg.markings_.size()));
    rg.index_.emplace(m, id);
    rg.markings_.push_back(m);
    rg.edges_.emplace_back();
    c_states.add();
    return id;
  };

  intern(net.initial_marking());
  std::deque<StateId> frontier{rg.initial()};
  while (!frontier.empty()) {
    g_frontier_peak.set_max(frontier.size());
    StateId s = frontier.front();
    frontier.pop_front();
    // Copy: interning may reallocate markings_.
    const Marking current = rg.markings_[s.index()];
    for (TransitionId t : net.enabled_transitions(current)) {
      Marking next = net.fire(current, t);
      c_hash_lookups.add();
      const bool fresh = !rg.index_.contains(next);
      StateId target = intern(next);
      rg.edges_[s.index()].push_back(ReachabilityGraph::Edge{t, target});
      ++edges_added;
      c_edges.add();
      if (fresh) frontier.push_back(target);
    }
  }
  return rg;
}

}  // namespace cipnet
