#include "reach/reachability.h"

#include <deque>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/error.h"

namespace cipnet {

namespace {
const obs::Counter c_states("reach.states");
const obs::Counter c_edges("reach.edges");
const obs::Counter c_hash_lookups("reach.hash_lookups");
const obs::Gauge g_frontier_peak("reach.frontier_peak");
const obs::Gauge g_graph_bytes("reach.graph_bytes");
const obs::Gauge g_index_bytes("reach.index_bytes");
const obs::Histogram h_frontier("reach.frontier_size");
const obs::Histogram h_enabled("reach.enabled_per_state");

/// Rough per-node overhead of an unordered_map: bucket pointer plus node
/// header (next pointer + cached hash).
constexpr std::size_t kHashNodeOverhead = 3 * sizeof(void*);

}  // namespace

std::size_t ReachabilityGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& out : edges_) n += out.size();
  return n;
}

std::size_t ReachabilityGraph::estimated_graph_bytes() const {
  const std::size_t places = markings_.empty() ? 0 : markings_[0].size();
  return markings_.size() *
             (sizeof(Marking) + places * sizeof(Token) +
              sizeof(std::vector<Edge>)) +
         edge_count() * sizeof(Edge);
}

std::size_t ReachabilityGraph::estimated_index_bytes() const {
  const std::size_t places = markings_.empty() ? 0 : markings_[0].size();
  return index_.size() * (sizeof(Marking) + places * sizeof(Token) +
                          sizeof(StateId) + kHashNodeOverhead) +
         index_.bucket_count() * sizeof(void*);
}

std::vector<StateId> ReachabilityGraph::all_states() const {
  std::vector<StateId> out;
  out.reserve(markings_.size());
  for (std::size_t i = 0; i < markings_.size(); ++i) {
    out.push_back(StateId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

ReachabilityGraph explore(const PetriNet& net, const ReachOptions& options) {
  obs::Span span("reach.explore");
  obs::ProgressReporter progress("reach.explore");
  ReachabilityGraph rg;
  std::size_t edges_added = 0;
  const std::size_t places = net.place_count();
  // O(1) live estimate of the graph + marking-index footprint, refreshed
  // from the running counts (edge_count() would rescan every state).
  auto sample_memory = [&] {
    if (!obs::enabled()) return;
    const std::size_t marking_bytes = sizeof(Marking) + places * sizeof(Token);
    g_graph_bytes.set(rg.markings_.size() *
                          (marking_bytes + sizeof(std::vector<
                                               ReachabilityGraph::Edge>)) +
                      edges_added * sizeof(ReachabilityGraph::Edge));
    g_index_bytes.set(rg.index_.size() * (marking_bytes + sizeof(StateId) +
                                          kHashNodeOverhead) +
                      rg.index_.bucket_count() * sizeof(void*));
  };
  auto intern = [&](const Marking& m) -> StateId {
    c_hash_lookups.add();
    auto it = rg.index_.find(m);
    if (it != rg.index_.end()) return it->second;
    if (rg.markings_.size() >= options.max_states) {
      sample_memory();
      throw LimitError(
          "reachability exploration exceeded " +
              std::to_string(options.max_states) + " states",
          LimitContext{rg.markings_.size(), edges_added, options.max_states});
    }
    StateId id(static_cast<std::uint32_t>(rg.markings_.size()));
    rg.index_.emplace(m, id);
    rg.markings_.push_back(m);
    rg.edges_.emplace_back();
    c_states.add();
    return id;
  };

  intern(net.initial_marking());
  std::deque<StateId> frontier{rg.initial()};
  while (!frontier.empty()) {
    g_frontier_peak.set_max(frontier.size());
    h_frontier.record(frontier.size());
    StateId s = frontier.front();
    frontier.pop_front();
    progress.update(rg.markings_.size(), frontier.size());
    options.cancel.check("reach.explore");
    // Copy: interning may reallocate markings_.
    const Marking current = rg.markings_[s.index()];
    const std::vector<TransitionId> enabled =
        net.enabled_transitions(current);
    h_enabled.record(enabled.size());
    for (TransitionId t : enabled) {
      Marking next = net.fire(current, t);
      c_hash_lookups.add();
      const bool fresh = !rg.index_.contains(next);
      StateId target = intern(next);
      rg.edges_[s.index()].push_back(ReachabilityGraph::Edge{t, target});
      ++edges_added;
      c_edges.add();
      if (fresh) frontier.push_back(target);
    }
    if ((rg.markings_.size() & 0x3ff) == 0) sample_memory();
  }
  sample_memory();
  return rg;
}

}  // namespace cipnet
