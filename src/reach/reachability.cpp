#include "reach/reachability.h"

#include <algorithm>
#include <csignal>
#include <cstring>
#include <deque>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "petri/canonical.h"
#include "petri/structure.h"
#include "reach/checkpoint.h"
#include "reach/engine.h"
#include "util/atomic_file.h"
#include "util/error.h"
#include "util/fault.h"

namespace cipnet {

namespace {
CIPNET_FAULT_SITE(f_cancel, "reach.cancel");
CIPNET_FAULT_SITE(f_packed_fallback, "reach.packed.fallback");
const obs::Counter c_states("reach.states");
const obs::Counter c_edges("reach.edges");
const obs::Counter c_hash_lookups("reach.hash_lookups");
const obs::Counter c_delta_updates("reach.delta_enabled");
const obs::Counter c_packed_selected("reach.packed.selected");
const obs::Counter c_packed_fallbacks("reach.packed.fallbacks");
const obs::Gauge g_packed_words("reach.packed.words_per_state");
const obs::Gauge g_frontier_peak("reach.frontier_peak");
const obs::Gauge g_graph_bytes("reach.graph_bytes");
const obs::Gauge g_index_bytes("reach.index_bytes");
const obs::Histogram h_frontier("reach.frontier_size");
const obs::Histogram h_enabled("reach.enabled_per_state");
const obs::Counter c_ckpt_writes("store.ckpt.writes");
const obs::Counter c_persist_errors("store.persist.errors");
const obs::Counter c_resume_loaded("store.resume.loaded");
const obs::Counter c_resume_rejected("store.resume.rejected");
const obs::Counter c_corrupt_skipped("store.corrupt.skipped");
}  // namespace

const char* to_string(ReachEngine engine) {
  switch (engine) {
    case ReachEngine::kAuto:
      return "auto";
    case ReachEngine::kDense:
      return "dense";
    case ReachEngine::kPacked:
      return "packed";
  }
  return "auto";
}

std::optional<ReachEngine> parse_reach_engine(std::string_view name) {
  if (name == "auto") return ReachEngine::kAuto;
  if (name == "dense") return ReachEngine::kDense;
  if (name == "packed") return ReachEngine::kPacked;
  return std::nullopt;
}

std::size_t ReachabilityGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& out : edges_) n += out.size();
  return n;
}

std::size_t ReachabilityGraph::estimated_graph_bytes() const {
  const std::size_t arena =
      packed_ ? packed_store_.arena_bytes() : store_.arena_bytes();
  return arena + edges_.size() * sizeof(std::vector<Edge>) +
         edge_count() * sizeof(Edge);
}

std::size_t ReachabilityGraph::estimated_index_bytes() const {
  return packed_ ? packed_index_.table_bytes() : index_.table_bytes();
}

bool ReachabilityGraph::contains(const Marking& m) const {
  if (!packed_) {
    return m.size() == store_.width() &&
           index_.find(m.tokens().data(), store_).has_value();
  }
  if (m.size() != places_) return false;
  // A marking with two tokens anywhere has no packed encoding and is
  // certainly not in a packed (hence 1-safe) graph.
  std::vector<std::uint64_t> row(packed_store_.width());
  if (!packed::pack_row(m.tokens().data(), places_, row.data())) return false;
  return packed_index_.find(row.data(), packed_store_).has_value();
}

std::vector<StateId> ReachabilityGraph::all_states() const {
  std::vector<StateId> out;
  out.reserve(state_count());
  for (std::size_t i = 0; i < state_count(); ++i) {
    out.push_back(StateId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

namespace reach_detail {

void count_delta_update() { c_delta_updates.add(); }

void packed_fault_check() {
  if (CIPNET_FAULT_FIRES(f_packed_fallback)) throw PackedUnsafe{};
}

void delta_enabled(const PetriNet& net,
                   const std::vector<TransitionId>& parent_enabled,
                   TransitionId fired, MarkingView next,
                   std::vector<TransitionId>& out,
                   std::vector<TransitionId>& candidates) {
  const DenseDomain dom(net);
  delta_enabled_t(dom, parent_enabled, fired, next.data(), out, candidates);
}

}  // namespace reach_detail

namespace {

/// The sequential BFS, generic over the marking domain. Everything that
/// determines the result — discovery order, ascending enabled sets, intern
/// order — is domain-independent, which is what makes packed graphs
/// bit-identical to dense ones.
template <class Domain>
ReachabilityGraph explore_seq(const Domain& dom, const PetriNet& net,
                              const ReachOptions& options,
                              const reach_detail::CheckpointImage* resume) {
  using Cell = typename Domain::Cell;
  using Access = reach_detail::GraphAccess;
  constexpr std::uint32_t kNoId = BasicMarkingInterner<Cell>::kNoId;
  obs::Span span("reach.explore");
  obs::ProgressReporter progress("reach.explore");
  progress.set_target(options.max_states);
  ReachabilityGraph rg;
  BasicMarkingStore<Cell>& store = Domain::store(rg);
  BasicMarkingInterner<Cell>& index = Domain::index(rg);
  std::vector<std::vector<ReachabilityGraph::Edge>>& edges = Access::edges(rg);
  store.reset(dom.width);
  const std::size_t hint =
      std::min(options.max_states, reach_detail::kReserveCap);
  store.reserve(hint);
  index.reserve(hint);
  edges.reserve(hint);

  std::size_t edges_added = 0;
  bool truncated = false;
  // O(1) live estimate of the graph + marking-index footprint, refreshed
  // from the running counts (edge_count() would rescan every state).
  auto sample_memory = [&] {
    if (!obs::enabled()) return;
    g_graph_bytes.set(store.arena_bytes() +
                      edges.size() * sizeof(std::vector<
                                            ReachabilityGraph::Edge>) +
                      edges_added * sizeof(ReachabilityGraph::Edge));
    g_index_bytes.set(index.table_bytes());
  };
  auto limit_error = [&] {
    sample_memory();
    return LimitError(
        "reachability exploration exceeded " +
            std::to_string(options.max_states) + " states",
        LimitContext{store.size(), edges_added, options.max_states});
  };
  // O(1) footprint estimate for the memory-budget guard (same quantities
  // the gauges report, plus the index table).
  auto approx_bytes = [&] {
    return store.arena_bytes() +
           edges.size() * sizeof(std::vector<ReachabilityGraph::Edge>) +
           edges_added * sizeof(ReachabilityGraph::Edge) +
           index.table_bytes();
  };

  // Enabled sets of discovered-but-unexpanded states, maintained
  // incrementally from the parent's set (moved out on expansion).
  std::vector<std::vector<TransitionId>> pending_enabled;
  pending_enabled.reserve(hint);

  std::deque<StateId> frontier;
  if (resume != nullptr) {
    // Seed from the checkpoint: arena rows, adjacency, and the frontier
    // with its pending enabled sets, exactly as the interrupted run held
    // them at its loop head. The interner is rebuilt from the rows, so a
    // resumed run probes the same table an uninterrupted one would.
    std::vector<Cell> cells(static_cast<std::size_t>(resume->state_count) *
                            dom.width);
    std::memcpy(cells.data(), resume->arena.data(), resume->arena.size());
    for (std::size_t i = 0; i < resume->state_count; ++i) {
      store.push_back(cells.data() + i * dom.width);
    }
    index.rebuild(store);
    edges = resume->edges;
    for (const auto& out : edges) edges_added += out.size();
    pending_enabled.assign(store.size(), {});
    for (std::size_t k = 0; k < resume->frontier.size(); ++k) {
      pending_enabled[resume->frontier[k]] = resume->frontier_enabled[k];
      frontier.push_back(StateId(resume->frontier[k]));
    }
  } else {
    std::vector<Cell> m0;
    dom.initial_row(m0);
    c_hash_lookups.add();
    auto r0 = index.intern(m0.data(), store, options.max_states);
    if (r0.id == kNoId) throw limit_error();
    edges.emplace_back();
    pending_enabled.push_back(net.enabled_transitions(net.initial_marking()));
    c_states.add();
    frontier.push_back(rg.initial());
  }

  const bool checkpointing = !options.checkpoint_path.empty() &&
                             options.checkpoint_every_states > 0;
  const std::uint64_t net_hash = checkpointing ? canonical_hash(net) : 0;
  std::size_t next_checkpoint =
      checkpointing ? store.size() + options.checkpoint_every_states : 0;
  std::size_t checkpoints_written = 0;
  // Snapshot at the loop head: every expanded state's edges are complete
  // and every frontier state's enabled set is still pending, so a resumed
  // run replays the identical discovery order.
  auto maybe_checkpoint = [&] {
    if (!checkpointing || store.size() < next_checkpoint) return;
    const std::size_t frontier_size = frontier.size();
    reach_detail::CheckpointImage image;
    image.packed = Domain::kIsPacked;
    image.net_hash = net_hash;
    image.cell_size = sizeof(Cell);
    image.places = net.place_count();
    image.width = dom.width;
    image.state_count = store.size();
    image.arena.assign(reinterpret_cast<const char*>(store.row(0)),
                       store.size() * dom.width * sizeof(Cell));
    image.edges = edges;
    image.frontier.reserve(frontier_size);
    image.frontier_enabled.reserve(frontier_size);
    for (StateId f : frontier) {
      image.frontier.push_back(static_cast<std::uint32_t>(f.index()));
      image.frontier_enabled.push_back(pending_enabled[f.index()]);
    }
    next_checkpoint = store.size() + options.checkpoint_every_states;
    try {
      reach_detail::write_checkpoint(options.checkpoint_path, image);
      c_ckpt_writes.add();
      obs::FlightRecorder::instance().record(obs::FlightKind::kCustom, 0,
                                             "store.ckpt.write", store.size(),
                                             frontier_size);
      ++checkpoints_written;
      if (options.crash_after_checkpoints != 0 &&
          checkpoints_written >= options.crash_after_checkpoints) {
        std::raise(SIGKILL);  // deterministic crash for resume_smoke.sh
      }
    } catch (const Error&) {
      // A failed checkpoint write (real or injected store.write /
      // store.fsync) costs durability, not progress.
      c_persist_errors.add();
      obs::FlightRecorder::instance().record(obs::FlightKind::kCustom, 0,
                                             "store.persist.error",
                                             store.size(), frontier_size);
    }
  };

  std::vector<Cell> scratch;
  std::vector<TransitionId> candidates;
  while (!frontier.empty() && !truncated) {
    maybe_checkpoint();
    g_frontier_peak.set_max(frontier.size());
    h_frontier.record(frontier.size());
    StateId s = frontier.front();
    frontier.pop_front();
    progress.update(store.size(), frontier.size());
    options.cancel.check("reach.explore");
    if (CIPNET_FAULT_FIRES(f_cancel)) {
      throw Cancelled("reach.explore", options.cancel.elapsed_ms(), false);
    }
    dom.state_check();
    if (options.max_graph_bytes != 0 &&
        approx_bytes() > options.max_graph_bytes) {
      if (options.truncate_on_limit) {
        truncated = true;
        obs::FlightRecorder::instance().record(
            obs::FlightKind::kTruncated, 0, "reach.explore.bytes",
            store.size(), approx_bytes());
        break;
      }
      sample_memory();
      throw LimitError(
          "reachability exploration exceeded memory budget of " +
              std::to_string(options.max_graph_bytes) + " bytes",
          LimitContext{store.size(), edges_added, options.max_graph_bytes});
    }
    const std::vector<TransitionId> enabled =
        std::move(pending_enabled[s.index()]);
    h_enabled.record(enabled.size());
    for (TransitionId t : enabled) {
      // Re-fetch the row per edge: interning a fresh successor may grow
      // the arena under the pointer.
      dom.fire(store.row(s.index()), t, scratch);
      c_hash_lookups.add();
      auto r = index.intern(scratch.data(), store, options.max_states);
      if (r.id == kNoId) {
        if (options.truncate_on_limit) {
          truncated = true;
          obs::FlightRecorder::instance().record(
              obs::FlightKind::kTruncated, 0, "reach.explore.states",
              store.size(), options.max_states);
          break;
        }
        throw limit_error();
      }
      StateId target(r.id);
      edges[s.index()].push_back(ReachabilityGraph::Edge{t, target});
      ++edges_added;
      c_edges.add();
      if (r.fresh) {
        edges.emplace_back();
        pending_enabled.emplace_back();
        reach_detail::delta_enabled_t(dom, enabled, t, store.row(r.id),
                                      pending_enabled.back(), candidates);
        c_states.add();
        frontier.push_back(target);
      }
    }
    if ((store.size() & 0x3ff) == 0) sample_memory();
  }
  sample_memory();
  Access::set_truncated(rg, truncated);
  dom.bind(rg);
  return rg;
}

}  // namespace

ReachabilityGraph explore(const PetriNet& net, const ReachOptions& options) {
  bool use_packed = false;
  switch (options.engine) {
    case ReachEngine::kDense:
      break;
    case ReachEngine::kPacked:
      use_packed = true;
      break;
    case ReachEngine::kAuto:
      // Select packed only on a structural *proof* of 1-safety, so the
      // dynamic guard cannot trip and auto never pays a fallback rerun.
      use_packed = is_structurally_safe(net);
      break;
  }
  // Durable runs stay on the canonical sequential BFS: the checkpoint
  // format snapshots its loop-head invariant, and the bit-identity
  // contract already guarantees the parallel explorer would produce the
  // same graph.
  const bool durable =
      !options.checkpoint_path.empty() || !options.resume_path.empty();
  reach_detail::CheckpointImage resume_image;
  const reach_detail::CheckpointImage* resume = nullptr;
  if (!options.resume_path.empty()) {
    reach_detail::LoadResult loaded;
    try {
      loaded = reach_detail::load_checkpoint(options.resume_path);
    } catch (const Error&) {
      // Read failure (real I/O trouble or the injected store.load fault):
      // transient, so the file is left alone — no quarantine — and the
      // exploration starts cold. Resume is never a correctness dependency.
      c_corrupt_skipped.add();
      obs::FlightRecorder::instance().record(
          obs::FlightKind::kCustom, 0, "store.corrupt.skipped: read failure",
          0, 0);
      loaded.status = reach_detail::LoadStatus::kMissing;
    }
    if (loaded.status == reach_detail::LoadStatus::kCorrupt) {
      // Quarantine the evidence and fall back to a fresh exploration —
      // a bad checkpoint must never take the analysis down with it.
      c_corrupt_skipped.add();
      store::quarantine_file(options.resume_path);
      obs::FlightRecorder::instance().record(
          obs::FlightKind::kCustom, 0, "store.corrupt.skipped: " + loaded.why,
          0, 0);
    } else if (loaded.status == reach_detail::LoadStatus::kOk) {
      const std::string reject =
          reach_detail::validate_checkpoint(loaded.image, net, use_packed);
      if (!reject.empty()) {
        c_resume_rejected.add();
        obs::FlightRecorder::instance().record(
            obs::FlightKind::kCustom, 0, "store.resume.rejected: " + reject,
            loaded.image.state_count, 0);
      } else {
        resume_image = std::move(loaded.image);
        resume = &resume_image;
        c_resume_loaded.add();
        obs::FlightRecorder::instance().record(
            obs::FlightKind::kCustom, 0, "store.resume.loaded",
            resume_image.state_count, resume_image.frontier.size());
      }
    }
  }
  if (use_packed) {
    c_packed_selected.add();
    g_packed_words.set(packed::word_count(net.place_count()));
    try {
      if (options.threads > 1 && !durable) {
        return reach_detail::explore_parallel(net, options, true);
      }
      const reach_detail::PackedDomain dom(net);
      return explore_seq(dom, net, options, resume);
    } catch (const reach_detail::PackedUnsafe&) {
      // The net is not 1-safe after all (forced packed engine), or the
      // reach.packed.fallback fault fired: rerun on the dense engine.
      c_packed_fallbacks.add();
    }
  }
  if (options.threads > 1 && !durable) {
    return reach_detail::explore_parallel(net, options, false);
  }
  const reach_detail::DenseDomain dom(net);
  // A checkpoint validated for the packed engine cannot seed the dense
  // fallback rerun — geometry differs; the rerun starts fresh.
  return explore_seq(dom, net, options, use_packed ? nullptr : resume);
}

}  // namespace cipnet
