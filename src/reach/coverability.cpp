#include "reach/coverability.h"

#include <limits>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "reach/marking_store.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/sorted_set.h"

namespace cipnet {

namespace {

CIPNET_FAULT_SITE(f_cancel, "reach.cancel");
const obs::Counter c_nodes("cover.nodes");
const obs::Counter c_accelerations("cover.accelerations");
const obs::Counter c_subsumed("cover.subsumed");
const obs::Histogram h_frontier("cover.frontier_size");

/// ω is represented as the maximum token value; real nets never get there
/// (acceleration jumps straight to it).
constexpr Token kOmega = std::numeric_limits<Token>::max();

bool leq(const Token* a, const Token* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

bool rows_equal(const Token* a, const Token* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

CoverabilityResult coverability(const PetriNet& net,
                                const CoverabilityOptions& options) {
  obs::Span span("reach.coverability");
  obs::ProgressReporter progress("reach.coverability");
  const std::size_t places = net.place_count();

  // Tree markings live contiguously in one arena (the subsumption scan
  // below is a linear pass over memory); `parents` carries the ancestor
  // chain for the acceleration test.
  MarkingStore tree(places);
  tree.reserve(std::min<std::size_t>(options.max_nodes, 1u << 14));
  std::vector<int> parents;
  std::vector<std::size_t> frontier;

  // Per-transition net effect, computed once: places that lose / gain a
  // token (self-loops excluded — they only test).
  struct Effect {
    std::vector<PlaceId> dec;
    std::vector<PlaceId> inc;
  };
  std::vector<Effect> effects(net.transition_count());
  for (TransitionId t : net.all_transitions()) {
    const auto& tr = net.transition(t);
    Effect& e = effects[t.index()];
    for (PlaceId p : tr.preset) {
      if (!sorted_set::contains(tr.postset, p)) e.dec.push_back(p);
    }
    for (PlaceId p : tr.postset) {
      if (!sorted_set::contains(tr.preset, p)) e.inc.push_back(p);
    }
  }

  // `m` arrives in the caller's scratch buffer; it is accelerated in place
  // and only copied into the arena when no existing node subsumes it.
  bool truncated = false;
  auto push = [&](std::vector<Token>& m, int parent) {
    if (tree.size() >= options.max_nodes) {
      if (options.truncate_on_limit) {
        if (!truncated) {
          obs::FlightRecorder::instance().record(
              obs::FlightKind::kTruncated, 0, "cover.tree.nodes",
              tree.size(), options.max_nodes);
        }
        truncated = true;
        return;
      }
      throw LimitError("coverability tree exceeded max_nodes",
                       LimitContext{tree.size(), 0, options.max_nodes});
    }
    // Acceleration: if m strictly dominates an ancestor, the gap can be
    // pumped — set the strictly larger places to ω.
    for (int a = parent; a >= 0; a = parents[a]) {
      const Token* anc = tree.row(static_cast<std::size_t>(a));
      if (leq(anc, m.data(), places) && !rows_equal(anc, m.data(), places)) {
        bool pumped = false;
        for (std::size_t i = 0; i < places; ++i) {
          if (m[i] > anc[i]) {
            pumped = pumped || m[i] != kOmega;
            m[i] = kOmega;
          }
        }
        if (pumped) c_accelerations.add();
      }
    }
    // Subsumption: drop if some existing node covers m.
    for (std::size_t n = 0; n < tree.size(); ++n) {
      if (leq(m.data(), tree.row(n), places)) {
        c_subsumed.add();
        return;
      }
    }
    tree.push_back(m.data());
    parents.push_back(parent);
    frontier.push_back(tree.size() - 1);
    c_nodes.add();
  };

  std::vector<Token> scratch = net.initial_marking().tokens();
  push(scratch, -1);
  std::vector<Token> current;
  while (!frontier.empty() && !truncated) {
    h_frontier.record(frontier.size());
    progress.update(tree.size(), frontier.size());
    options.cancel.check("reach.coverability");
    if (CIPNET_FAULT_FIRES(f_cancel)) {
      throw Cancelled("reach.coverability", options.cancel.elapsed_ms(),
                      false);
    }
    std::size_t index = frontier.back();
    frontier.pop_back();
    if (index >= tree.size()) continue;
    // Copy: `push` grows the arena while `current` is being read.
    const Token* row = tree.row(index);
    current.assign(row, row + places);
    for (TransitionId t : net.all_transitions()) {
      const auto& tr = net.transition(t);
      bool enabled = true;
      for (PlaceId p : tr.preset) {
        if (current[p.index()] == 0) enabled = false;
      }
      if (!enabled) continue;
      scratch = current;
      for (PlaceId p : effects[t.index()].dec) {
        if (scratch[p.index()] != kOmega) scratch[p.index()] -= 1;
      }
      for (PlaceId p : effects[t.index()].inc) {
        if (scratch[p.index()] != kOmega) scratch[p.index()] += 1;
      }
      push(scratch, static_cast<int>(index));
    }
  }

  CoverabilityResult result;
  result.truncated = truncated;
  result.tree_nodes = tree.size();
  result.bounds.assign(places, Token{0});
  for (std::size_t n = 0; n < tree.size(); ++n) {
    const Token* row = tree.row(n);
    for (std::size_t i = 0; i < places; ++i) {
      if (row[i] == kOmega) {
        result.bounds[i] = std::nullopt;
      } else if (result.bounds[i] && row[i] > *result.bounds[i]) {
        result.bounds[i] = row[i];
      }
    }
  }
  return result;
}

}  // namespace cipnet
