#include "reach/coverability.h"

#include <limits>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/error.h"

namespace cipnet {

namespace {

const obs::Counter c_nodes("cover.nodes");
const obs::Counter c_accelerations("cover.accelerations");
const obs::Counter c_subsumed("cover.subsumed");
const obs::Histogram h_frontier("cover.frontier_size");

/// ω is represented as the maximum token value; real nets never get there
/// (acceleration jumps straight to it).
constexpr Token kOmega = std::numeric_limits<Token>::max();

bool leq(const std::vector<Token>& a, const std::vector<Token>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

}  // namespace

CoverabilityResult coverability(const PetriNet& net,
                                const CoverabilityOptions& options) {
  obs::Span span("reach.coverability");
  obs::ProgressReporter progress("reach.coverability");
  struct Node {
    std::vector<Token> marking;
    int parent;
  };
  std::vector<Node> tree;
  std::vector<std::size_t> frontier;

  auto push = [&](std::vector<Token> m, int parent) {
    if (tree.size() >= options.max_nodes) {
      throw LimitError("coverability tree exceeded max_nodes",
                       LimitContext{tree.size(), 0, options.max_nodes});
    }
    // Acceleration: if m strictly dominates an ancestor, the gap can be
    // pumped — set the strictly larger places to ω.
    for (int a = parent; a >= 0; a = tree[a].parent) {
      const auto& anc = tree[a].marking;
      if (leq(anc, m) && anc != m) {
        bool pumped = false;
        for (std::size_t i = 0; i < m.size(); ++i) {
          if (m[i] > anc[i]) {
            pumped = pumped || m[i] != kOmega;
            m[i] = kOmega;
          }
        }
        if (pumped) c_accelerations.add();
      }
    }
    // Subsumption: drop if some existing node covers m.
    for (const Node& node : tree) {
      if (leq(m, node.marking)) {
        c_subsumed.add();
        return;
      }
    }
    tree.push_back(Node{std::move(m), parent});
    frontier.push_back(tree.size() - 1);
    c_nodes.add();
  };

  push(net.initial_marking().tokens(), -1);
  while (!frontier.empty()) {
    h_frontier.record(frontier.size());
    progress.update(tree.size(), frontier.size());
    options.cancel.check("reach.coverability");
    std::size_t index = frontier.back();
    frontier.pop_back();
    if (index >= tree.size()) continue;
    const std::vector<Token> current = tree[index].marking;
    for (TransitionId t : net.all_transitions()) {
      const auto& tr = net.transition(t);
      bool enabled = true;
      for (PlaceId p : tr.preset) {
        if (current[p.index()] == 0) enabled = false;
      }
      if (!enabled) continue;
      std::vector<Token> next = current;
      for (PlaceId p : tr.preset) {
        std::size_t i = p.index();
        bool self_loop = false;
        for (PlaceId q : tr.postset) self_loop = self_loop || q == p;
        if (!self_loop && next[i] != kOmega) next[i] -= 1;
      }
      for (PlaceId p : tr.postset) {
        std::size_t i = p.index();
        bool self_loop = false;
        for (PlaceId q : tr.preset) self_loop = self_loop || q == p;
        if (!self_loop && next[i] != kOmega) next[i] += 1;
      }
      push(std::move(next), static_cast<int>(index));
    }
  }

  CoverabilityResult result;
  result.tree_nodes = tree.size();
  result.bounds.assign(net.place_count(), Token{0});
  for (const Node& node : tree) {
    for (std::size_t i = 0; i < node.marking.size(); ++i) {
      if (node.marking[i] == kOmega) {
        result.bounds[i] = std::nullopt;
      } else if (result.bounds[i] &&
                 node.marking[i] > *result.bounds[i]) {
        result.bounds[i] = node.marking[i];
      }
    }
  }
  return result;
}

}  // namespace cipnet
