#pragma once

// Marking-domain policies for the reachability explorers. Both the
// sequential BFS (reachability.cpp) and the sharded parallel explorer
// (explore_parallel.cpp) are templates over a `Domain` that fixes how a
// marking is represented and fired:
//
//  * `DenseDomain`  — rows of `Token` (one per place), dynamics delegated
//    to `PetriNet`; correct for every net.
//  * `PackedDomain` — rows of `uint64_t` (one *bit* per place), dynamics
//    delegated to the precomputed `PackedNet` word masks; sound only for
//    1-safe nets.
//
// Everything schedule- and order-relevant (BFS discovery order, ascending
// enabled sets, the delta merge, intern order, parallel renumbering) lives
// in the shared explorer skeletons, so the two domains produce
// bit-identical graphs — packing changes the cost of a step, never its
// outcome.
//
// The packed domain polices its own soundness: `fire` detects a firing that
// would put a second token on a place (impossible on a truly 1-safe net)
// and throws `PackedUnsafe`, which the `explore` dispatcher converts into a
// dense rerun. The same exception is raised by the `reach.packed.fallback`
// fault site so the rerun path is testable on nets that never violate
// 1-safety for real.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "petri/net.h"
#include "petri/packed.h"
#include "reach/reachability.h"
#include "util/sorted_set.h"

namespace cipnet::reach_detail {

/// Internal control-flow signal, not an `Error`: a packed exploration
/// discovered the net is not 1-safe after all (or the fallback fault site
/// fired). Never escapes `explore` — the dispatcher catches it and reruns
/// the exploration on the dense engine.
struct PackedUnsafe {};

/// Out-of-line hooks (reachability.cpp) so the domain templates stay
/// header-only: the `reach.delta_enabled` counter bump, and the
/// `reach.packed.fallback` fault point (throws `PackedUnsafe` when fired).
void count_delta_update();
void packed_fault_check();

struct DenseDomain {
  using Cell = Token;
  static constexpr bool kIsPacked = false;

  const PetriNet& net;
  std::size_t width;  ///< cells per row = place count

  explicit DenseDomain(const PetriNet& n) : net(n), width(n.place_count()) {}

  void initial_row(std::vector<Cell>& out) const {
    const std::vector<Token>& tokens = net.initial_marking().tokens();
    out.assign(tokens.begin(), tokens.end());
  }

  [[nodiscard]] bool is_enabled(const Cell* m, TransitionId t) const {
    return net.is_enabled(MarkingView(m, width), t);
  }

  /// `out` is fully overwritten with the successor row.
  void fire(const Cell* m, TransitionId t, std::vector<Cell>& out) const {
    net.fire_into(MarkingView(m, width), t, out);
  }

  /// Per-expanded-state hook; nothing to check densely.
  void state_check() const {}

  static BasicMarkingStore<Cell>& store(ReachabilityGraph& g) {
    return GraphAccess::dense_store(g);
  }
  static BasicMarkingInterner<Cell>& index(ReachabilityGraph& g) {
    return GraphAccess::dense_index(g);
  }
  /// Stamp domain identity onto a finished graph (no-op: dense is the
  /// default representation).
  void bind(ReachabilityGraph&) const {}
};

struct PackedDomain {
  using Cell = std::uint64_t;
  static constexpr bool kIsPacked = true;

  const PetriNet& net;
  PackedNet masks;
  std::size_t width;  ///< cells per row = words per packed marking

  explicit PackedDomain(const PetriNet& n)
      : net(n), masks(n), width(masks.words()) {}

  /// Throws `PackedUnsafe` if M0 itself has no 1-safe encoding (some place
  /// starts with two tokens) — possible only under a forced packed engine;
  /// auto-selection proves safety of M0 first.
  void initial_row(std::vector<Cell>& out) const {
    out.resize(width);
    if (!packed::pack_row(net.initial_marking().tokens().data(),
                          net.place_count(), out.data())) {
      throw PackedUnsafe{};
    }
  }

  [[nodiscard]] bool is_enabled(const Cell* m, TransitionId t) const {
    return masks.is_enabled(m, t);
  }

  void fire(const Cell* m, TransitionId t, std::vector<Cell>& out) const {
    out.resize(width);
    if (!masks.fire_into(m, t, out.data())) throw PackedUnsafe{};
  }

  void state_check() const { packed_fault_check(); }

  static BasicMarkingStore<Cell>& store(ReachabilityGraph& g) {
    return GraphAccess::packed_store(g);
  }
  static BasicMarkingInterner<Cell>& index(ReachabilityGraph& g) {
    return GraphAccess::packed_index(g);
  }
  void bind(ReachabilityGraph& g) const {
    GraphAccess::mark_packed(g, net.place_count());
  }
};

/// Domain-generic incremental enabled-set maintenance (see the dense
/// `delta_enabled` doc in reachability.h). The candidate set is purely
/// structural — consumers of places the firing marks — so it is shared;
/// only the enabledness recheck goes through the domain. The ascending
/// merge order is part of the bit-identity contract between engines.
template <class Domain>
void delta_enabled_t(const Domain& dom,
                     const std::vector<TransitionId>& parent_enabled,
                     TransitionId fired, const typename Domain::Cell* next,
                     std::vector<TransitionId>& out,
                     std::vector<TransitionId>& candidates) {
  count_delta_update();
  out.clear();
  candidates.clear();
  // Only consumers of places that gained a token can newly become enabled;
  // everything else enabled in `next` was already enabled in the parent.
  const auto& tr = dom.net.transition(fired);
  for (PlaceId p : tr.postset) {
    if (sorted_set::contains(tr.preset, p)) continue;  // self-loop: no change
    const auto& consumers = dom.net.consumers_of(p);
    candidates.insert(candidates.end(), consumers.begin(), consumers.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  // Ascending merge of (parent set) ∪ (candidates), rechecking enabledness
  // against `next` — presets are tiny, so this is O(small) per successor
  // where the full rescan is O(|T|).
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < parent_enabled.size() || j < candidates.size()) {
    TransitionId t;
    if (j >= candidates.size() ||
        (i < parent_enabled.size() && parent_enabled[i] <= candidates[j])) {
      t = parent_enabled[i];
      if (j < candidates.size() && candidates[j] == t) ++j;
      ++i;
    } else {
      t = candidates[j];
      ++j;
    }
    if (dom.is_enabled(next, t)) out.push_back(t);
  }
}

}  // namespace cipnet::reach_detail
