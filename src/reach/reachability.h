#pragma once

#include <cstddef>
#include <vector>

#include "petri/net.h"
#include "reach/marking_store.h"
#include "util/cancel.h"

namespace cipnet {

/// Exploration limits. General Petri nets can have huge or infinite state
/// spaces, so every exploration is bounded and overflow raises `LimitError`.
struct ReachOptions {
  std::size_t max_states = 1u << 20;
  /// Worker threads for the explorer. 1 (the default) is the sequential
  /// BFS; >1 runs the sharded parallel explorer, whose result is
  /// bit-identical to the sequential graph (states are renumbered into
  /// canonical BFS order after exploration, so state ids are reproducible
  /// regardless of schedule).
  std::size_t threads = 1;
  /// Polled once per expanded state; a tripped token raises `Cancelled`.
  CancelToken cancel;
  /// Graceful degradation: when the state limit or memory budget trips,
  /// stop exploring and return the partial graph with `truncated()` set
  /// instead of throwing `LimitError`. The partial graph is always
  /// internally consistent (every edge targets a stored state); with
  /// `threads > 1` its exact content is schedule-dependent. Requires
  /// `max_states >= 1` — a zero budget still throws.
  bool truncate_on_limit = false;
  /// Approximate cap on the graph + index heap footprint in bytes
  /// (0 = unlimited), checked against the same O(1) estimates behind the
  /// `reach.graph_bytes` / `reach.index_bytes` gauges. Honors
  /// `truncate_on_limit`.
  std::size_t max_graph_bytes = 0;
};

/// The reachability graph RG(N) (Section 2.1): nodes are reachable markings,
/// edges are transition firings labeled by the fired transition (and hence by
/// its action). State 0 is the initial marking.
///
/// Markings live contiguously in a `MarkingStore` arena (state `i` is the
/// token slice `[i*places, (i+1)*places)`) and are deduplicated by an
/// open-addressing `MarkingInterner` — `marking()` hands out non-owning
/// views into the arena, valid for the graph's lifetime.
class ReachabilityGraph {
 public:
  struct Edge {
    TransitionId transition;
    StateId to;
  };

  [[nodiscard]] std::size_t state_count() const { return store_.size(); }
  [[nodiscard]] std::size_t edge_count() const;

  /// Rough heap footprint of the graph (marking arena + adjacency) and of
  /// the interner's slot table — the numbers behind the
  /// `reach.graph_bytes` / `reach.index_bytes` gauges.
  [[nodiscard]] std::size_t estimated_graph_bytes() const;
  [[nodiscard]] std::size_t estimated_index_bytes() const;

  [[nodiscard]] MarkingView marking(StateId s) const {
    return store_.view(s.index());
  }
  [[nodiscard]] const std::vector<Edge>& successors(StateId s) const {
    return edges_[s.index()];
  }
  [[nodiscard]] StateId initial() const { return StateId(0); }

  [[nodiscard]] bool contains(const Marking& m) const {
    return m.size() == store_.width() &&
           index_.find(m.tokens().data(), store_).has_value();
  }

  /// All states, ascending.
  [[nodiscard]] std::vector<StateId> all_states() const;

  /// True when exploration stopped early on a limit/memory-budget trip
  /// under `ReachOptions::truncate_on_limit` — the graph is a valid prefix
  /// of the full reachability graph, not all of it.
  [[nodiscard]] bool truncated() const { return truncated_; }

 private:
  friend ReachabilityGraph explore(const PetriNet& net,
                                   const ReachOptions& options);
  friend class ParallelExplorer;

  MarkingStore store_;
  MarkingInterner index_;
  std::vector<std::vector<Edge>> edges_;
  bool truncated_ = false;
};

/// Breadth-first construction of RG(N). Throws `LimitError` if more than
/// `options.max_states` markings are reachable. With `options.threads > 1`
/// the construction is parallel but the returned graph is identical to the
/// sequential one.
[[nodiscard]] ReachabilityGraph explore(const PetriNet& net,
                                        const ReachOptions& options = {});

namespace reach_detail {

/// Incremental enabled-set maintenance: given the enabled set of a parent
/// marking and the transition fired to reach `next`, produce `next`'s
/// enabled set (ascending) by rechecking only the parent's set plus the
/// consumers of places that gained a token — instead of rescanning all |T|
/// transitions per state. `candidates` is caller-provided scratch.
void delta_enabled(const PetriNet& net,
                   const std::vector<TransitionId>& parent_enabled,
                   TransitionId fired, MarkingView next,
                   std::vector<TransitionId>& out,
                   std::vector<TransitionId>& candidates);

/// Entry point of the multi-threaded explorer (explore_parallel.cpp);
/// `explore` dispatches here when `options.threads > 1`.
[[nodiscard]] ReachabilityGraph explore_parallel(const PetriNet& net,
                                                 const ReachOptions& options);

/// Cap on the rows/slots pre-reserved from the `max_states` hint. Arena and
/// table growth are amortized-linear doublings, so reserving buys only the
/// first few rehashes — a small cap keeps tiny explorations (the common
/// case) from committing MBs against a default 1M-state budget.
inline constexpr std::size_t kReserveCap = std::size_t{1} << 10;

}  // namespace reach_detail

}  // namespace cipnet
