#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "petri/net.h"
#include "util/cancel.h"

namespace cipnet {

/// Exploration limits. General Petri nets can have huge or infinite state
/// spaces, so every exploration is bounded and overflow raises `LimitError`.
struct ReachOptions {
  std::size_t max_states = 1u << 20;
  /// Polled once per expanded state; a tripped token raises `Cancelled`.
  CancelToken cancel;
};

/// The reachability graph RG(N) (Section 2.1): nodes are reachable markings,
/// edges are transition firings labeled by the fired transition (and hence by
/// its action). State 0 is the initial marking.
class ReachabilityGraph {
 public:
  struct Edge {
    TransitionId transition;
    StateId to;
  };

  [[nodiscard]] std::size_t state_count() const { return markings_.size(); }
  [[nodiscard]] std::size_t edge_count() const;

  /// Rough heap footprint of the graph (markings + adjacency) and of the
  /// marking-interning hash index — the numbers behind the
  /// `reach.graph_bytes` / `reach.index_bytes` gauges.
  [[nodiscard]] std::size_t estimated_graph_bytes() const;
  [[nodiscard]] std::size_t estimated_index_bytes() const;

  [[nodiscard]] const Marking& marking(StateId s) const {
    return markings_[s.index()];
  }
  [[nodiscard]] const std::vector<Edge>& successors(StateId s) const {
    return edges_[s.index()];
  }
  [[nodiscard]] StateId initial() const { return StateId(0); }

  [[nodiscard]] bool contains(const Marking& m) const {
    return index_.contains(m);
  }

  /// All states, ascending.
  [[nodiscard]] std::vector<StateId> all_states() const;

 private:
  friend ReachabilityGraph explore(const PetriNet& net,
                                   const ReachOptions& options);

  std::vector<Marking> markings_;
  std::vector<std::vector<Edge>> edges_;
  std::unordered_map<Marking, StateId, MarkingHash> index_;
};

/// Breadth-first construction of RG(N). Throws `LimitError` if more than
/// `options.max_states` markings are reachable.
[[nodiscard]] ReachabilityGraph explore(const PetriNet& net,
                                        const ReachOptions& options = {});

}  // namespace cipnet
