#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "petri/net.h"
#include "petri/packed.h"
#include "reach/marking_store.h"
#include "util/cancel.h"

namespace cipnet {

/// Marking representation used by the explorer.
///
///  * `kDense`  — one `Token` per place; works for every net.
///  * `kPacked` — one *bit* per place (petri/packed.h); sound only for
///    1-safe nets, 8-32x smaller per state and word-parallel on the firing
///    rule. If a firing would put a second token on a place, the packed run
///    aborts and the exploration silently reruns dense (counted by
///    `reach.packed.fallbacks`).
///  * `kAuto`   — packed iff `is_structurally_safe(net)` proves 1-safety
///    up front, dense otherwise. The default: structurally safe nets never
///    trip the dynamic guard, so auto never pays a fallback rerun.
///
/// Engine choice never changes the result: packed graphs are bit-identical
/// to dense ones (same states, same ids, same edge order).
enum class ReachEngine { kAuto, kDense, kPacked };

/// Wire names: "auto" / "dense" / "packed".
[[nodiscard]] const char* to_string(ReachEngine engine);
[[nodiscard]] std::optional<ReachEngine> parse_reach_engine(
    std::string_view name);

/// Exploration limits. General Petri nets can have huge or infinite state
/// spaces, so every exploration is bounded and overflow raises `LimitError`.
struct ReachOptions {
  std::size_t max_states = 1u << 20;
  /// Worker threads for the explorer. 1 (the default) is the sequential
  /// BFS; >1 runs the sharded parallel explorer, whose result is
  /// bit-identical to the sequential graph (states are renumbered into
  /// canonical BFS order after exploration, so state ids are reproducible
  /// regardless of schedule).
  std::size_t threads = 1;
  /// Polled once per expanded state; a tripped token raises `Cancelled`.
  CancelToken cancel;
  /// Graceful degradation: when the state limit or memory budget trips,
  /// stop exploring and return the partial graph with `truncated()` set
  /// instead of throwing `LimitError`. The partial graph is always
  /// internally consistent (every edge targets a stored state); with
  /// `threads > 1` its exact content is schedule-dependent. Requires
  /// `max_states >= 1` — a zero budget still throws.
  bool truncate_on_limit = false;
  /// Approximate cap on the graph + index heap footprint in bytes
  /// (0 = unlimited), checked against the same O(1) estimates behind the
  /// `reach.graph_bytes` / `reach.index_bytes` gauges. Honors
  /// `truncate_on_limit`.
  std::size_t max_graph_bytes = 0;
  /// Marking representation (see `ReachEngine`). Orthogonal to `threads`.
  ReachEngine engine = ReachEngine::kAuto;
  /// Durability (reach/checkpoint.h). With a non-empty `checkpoint_path`
  /// and `checkpoint_every_states > 0`, the explorer atomically replaces
  /// the checkpoint file every time that many further states have been
  /// discovered. A failed write is counted (`store.persist.errors`) and
  /// exploration continues — a lost checkpoint loses durability, never
  /// progress. Durable runs (checkpointing or resuming) always use the
  /// canonical sequential BFS regardless of `threads`; the bit-identity
  /// contract makes the result equal to any parallel run anyway.
  std::string checkpoint_path;
  std::size_t checkpoint_every_states = 0;
  /// Continue from a checkpoint written by an earlier run. A missing file
  /// starts fresh; a corrupt one is quarantined to `.bad` and counted
  /// (`store.corrupt.skipped`); one for a different net / engine /
  /// geometry is rejected and counted (`store.resume.rejected`). In every
  /// fallback case the exploration simply runs from the initial marking —
  /// resume is an optimization, never a correctness dependency.
  std::string resume_path;
  /// Test hook for the kill-and-resume suite: SIGKILL the process after
  /// this many successful checkpoint writes (0 = never).
  std::size_t crash_after_checkpoints = 0;
};

namespace reach_detail {
struct GraphAccess;
}  // namespace reach_detail

/// The reachability graph RG(N) (Section 2.1): nodes are reachable markings,
/// edges are transition firings labeled by the fired transition (and hence by
/// its action). State 0 is the initial marking.
///
/// Markings live contiguously in an arena — dense graphs store one `Token`
/// per place, packed graphs one bit per place — deduplicated by an
/// open-addressing interner. `marking()` always hands out a dense
/// `MarkingView` either way; on a packed graph the row is unpacked into a
/// per-graph scratch buffer, so the view is only valid until the next
/// `marking()` call on the same graph (dense views live as long as the
/// graph). No consumer in-tree holds two views of one graph at once, and
/// reading a packed graph from several threads concurrently is not
/// supported.
class ReachabilityGraph {
 public:
  struct Edge {
    TransitionId transition;
    StateId to;
  };

  [[nodiscard]] std::size_t state_count() const {
    return packed_ ? packed_store_.size() : store_.size();
  }
  [[nodiscard]] std::size_t edge_count() const;

  /// Rough heap footprint of the graph (marking arena + adjacency) and of
  /// the interner's slot table — the numbers behind the
  /// `reach.graph_bytes` / `reach.index_bytes` gauges.
  [[nodiscard]] std::size_t estimated_graph_bytes() const;
  [[nodiscard]] std::size_t estimated_index_bytes() const;

  [[nodiscard]] MarkingView marking(StateId s) const {
    if (!packed_) return store_.view(s.index());
    unpack_scratch_.resize(places_);
    packed::unpack_row(packed_store_.row(s.index()), places_,
                       unpack_scratch_.data());
    return MarkingView(unpack_scratch_.data(), places_);
  }
  [[nodiscard]] const std::vector<Edge>& successors(StateId s) const {
    return edges_[s.index()];
  }
  [[nodiscard]] StateId initial() const { return StateId(0); }

  [[nodiscard]] bool contains(const Marking& m) const;

  /// All states, ascending.
  [[nodiscard]] std::vector<StateId> all_states() const;

  /// True when exploration stopped early on a limit/memory-budget trip
  /// under `ReachOptions::truncate_on_limit` — the graph is a valid prefix
  /// of the full reachability graph, not all of it.
  [[nodiscard]] bool truncated() const { return truncated_; }

  /// The engine that actually built this graph (`kDense` or `kPacked`,
  /// never `kAuto`) — what auto-selection resolved to, after any fallback.
  [[nodiscard]] ReachEngine engine() const {
    return packed_ ? ReachEngine::kPacked : ReachEngine::kDense;
  }

 private:
  friend struct reach_detail::GraphAccess;

  // Exactly one of the two stores is populated, per `packed_`.
  MarkingStore store_;
  MarkingInterner index_;
  PackedMarkingStore packed_store_;
  PackedMarkingInterner packed_index_;
  std::vector<std::vector<Edge>> edges_;
  bool packed_ = false;
  std::size_t places_ = 0;  // dense width of packed rows
  mutable std::vector<Token> unpack_scratch_;
  bool truncated_ = false;
};

/// Breadth-first construction of RG(N). Throws `LimitError` if more than
/// `options.max_states` markings are reachable. With `options.threads > 1`
/// the construction is parallel but the returned graph is identical to the
/// sequential one; the same holds for `options.engine` (see `ReachEngine`).
[[nodiscard]] ReachabilityGraph explore(const PetriNet& net,
                                        const ReachOptions& options = {});

namespace reach_detail {

/// Private-member access for the explorers (reachability.cpp and
/// explore_parallel.cpp) — one named back door instead of a friend list
/// that grows with every explorer variant.
struct GraphAccess {
  static MarkingStore& dense_store(ReachabilityGraph& g) { return g.store_; }
  static MarkingInterner& dense_index(ReachabilityGraph& g) {
    return g.index_;
  }
  static PackedMarkingStore& packed_store(ReachabilityGraph& g) {
    return g.packed_store_;
  }
  static PackedMarkingInterner& packed_index(ReachabilityGraph& g) {
    return g.packed_index_;
  }
  static std::vector<std::vector<ReachabilityGraph::Edge>>& edges(
      ReachabilityGraph& g) {
    return g.edges_;
  }
  static void set_truncated(ReachabilityGraph& g, bool v) {
    g.truncated_ = v;
  }
  static void mark_packed(ReachabilityGraph& g, std::size_t places) {
    g.packed_ = true;
    g.places_ = places;
  }
};

/// Incremental enabled-set maintenance: given the enabled set of a parent
/// marking and the transition fired to reach `next`, produce `next`'s
/// enabled set (ascending) by rechecking only the parent's set plus the
/// consumers of places that gained a token — instead of rescanning all |T|
/// transitions per state. `candidates` is caller-provided scratch.
void delta_enabled(const PetriNet& net,
                   const std::vector<TransitionId>& parent_enabled,
                   TransitionId fired, MarkingView next,
                   std::vector<TransitionId>& out,
                   std::vector<TransitionId>& candidates);

/// Entry point of the multi-threaded explorer (explore_parallel.cpp);
/// `explore` dispatches here when `options.threads > 1`, after resolving
/// `options.engine` (`packed` is the resolved choice, never auto). A packed
/// run throws `PackedUnsafe` (engine.h) on a 1-safety violation; the
/// dispatcher turns that into a dense rerun.
[[nodiscard]] ReachabilityGraph explore_parallel(const PetriNet& net,
                                                 const ReachOptions& options,
                                                 bool packed);

/// Cap on the rows/slots pre-reserved from the `max_states` hint. Arena and
/// table growth are amortized-linear doublings, so reserving buys only the
/// first few rehashes — a small cap keeps tiny explorations (the common
/// case) from committing MBs against a default 1M-state budget.
inline constexpr std::size_t kReserveCap = std::size_t{1} << 10;

}  // namespace reach_detail

}  // namespace cipnet
