#pragma once

#include <string>
#include <vector>

#include "reach/reachability.h"

namespace cipnet {

/// A trace: a finite sequence of action labels.
using Trace = std::vector<std::string>;

/// Options for bounded trace enumeration.
struct TraceEnumOptions {
  std::size_t max_length = 6;
  /// Treat `eps`-labeled transitions as invisible (skipped in traces but
  /// still fired). Off by default: the algebra of Section 4 treats all
  /// labels uniformly.
  bool skip_epsilon = false;
  std::size_t max_traces = 1u << 20;
};

/// All traces of `L(N)` (Definition 4.1 — prefix closed) of length at most
/// `max_length`, sorted and deduplicated. Exponential in `max_length`; meant
/// for small nets in tests and examples. Throws `LimitError` on overflow.
[[nodiscard]] std::vector<Trace> bounded_language(
    const PetriNet& net, const TraceEnumOptions& options = {});

/// Same, but starting from an already-built reachability graph.
[[nodiscard]] std::vector<Trace> bounded_language(
    const PetriNet& net, const ReachabilityGraph& rg,
    const TraceEnumOptions& options = {});

/// True iff `trace` is a firing sequence label word of the net (bounded
/// check; explores on demand).
[[nodiscard]] bool accepts_trace(const PetriNet& net, const Trace& trace,
                                 const ReachOptions& options = {});

/// Render "a.b.c" (empty trace renders as "<>").
[[nodiscard]] std::string trace_to_string(const Trace& trace);

}  // namespace cipnet
