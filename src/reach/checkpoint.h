#pragma once

// Durable snapshots of an in-flight sequential BFS exploration
// (reachability.cpp). A checkpoint is everything needed to continue the
// search as if it had never stopped: the marking arena, the per-state
// adjacency built so far, and the BFS frontier together with each
// unexpanded state's incrementally-maintained enabled set. Because the
// snapshot is taken at the loop head — every expanded state's edges
// complete, every frontier state's enabled set intact — a resumed run
// replays the exact discovery order and produces a graph bit-identical to
// an uninterrupted one, for the dense and the packed domain alike.
//
// On disk a checkpoint is a `store::seal_blob` envelope (format magic,
// version, length, FNV-1a content checksum) written with
// `store::write_file_atomic`, so a crash mid-write leaves the previous
// checkpoint, never a torn one. Loading is corruption-tolerant: a bad file
// is reported (`LoadStatus::kCorrupt`), quarantined by the caller, and
// exploration simply starts fresh (docs/RESILIENCE.md, "Durability &
// crash recovery").

#include <cstdint>
#include <string>
#include <vector>

#include "reach/reachability.h"

namespace cipnet::reach_detail {

/// "CIPNCKP1" little-endian.
inline constexpr std::uint64_t kCheckpointMagic = 0x31504b434e504943ULL;
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Domain-neutral image of a paused exploration. `arena` holds the raw
/// marking rows (`state_count * width` cells of `cell_size` bytes,
/// little-endian as stored in memory); `frontier` lists the
/// discovered-but-unexpanded state ids in BFS order, `frontier_enabled[k]`
/// the enabled set of `frontier[k]`.
struct CheckpointImage {
  bool packed = false;
  std::uint64_t net_hash = 0;   ///< canonical_hash of the explored net
  std::uint32_t cell_size = 0;  ///< sizeof(Cell): 4 dense, 8 packed
  std::uint64_t places = 0;     ///< dense place count
  std::uint64_t width = 0;      ///< cells per row
  std::uint64_t state_count = 0;
  std::string arena;
  std::vector<std::vector<ReachabilityGraph::Edge>> edges;
  std::vector<std::uint32_t> frontier;
  std::vector<std::vector<TransitionId>> frontier_enabled;
};

/// Body serialization (the part inside the sealed envelope).
[[nodiscard]] std::string encode_checkpoint(const CheckpointImage& image);

/// Strict decode: false (with `why` set) on any structural violation —
/// truncated input, arena length mismatch, frontier id out of range,
/// a frontier id repeated or naming an already-expanded state (non-empty
/// edge list), trailing garbage. Never throws, never reads past the
/// input.
[[nodiscard]] bool decode_checkpoint(const std::string& body,
                                     CheckpointImage& image,
                                     std::string& why);

/// Seal and atomically replace `path`. Throws on I/O failure (including
/// the `store.write` / `store.fsync` faults); the explorer counts the
/// throw under `store.persist.errors` and keeps exploring — a failed
/// checkpoint loses durability, never progress.
void write_checkpoint(const std::string& path, const CheckpointImage& image);

enum class LoadStatus {
  kOk,       ///< image decoded and self-consistent
  kMissing,  ///< no such file — silently start fresh
  kCorrupt,  ///< unreadable/unverifiable — quarantine and start fresh
};

struct LoadResult {
  LoadStatus status = LoadStatus::kMissing;
  CheckpointImage image;
  std::string why;  ///< populated when status == kCorrupt
};

/// Read + unseal + decode `path`. Never throws on corruption (that is the
/// `kCorrupt` outcome); an injected `store.load` fault propagates as the
/// I/O error it simulates.
[[nodiscard]] LoadResult load_checkpoint(const std::string& path);

/// "" when `image` can seed an exploration of `net` on the given engine;
/// otherwise the human-readable reason the resume must be rejected (net
/// hash mismatch, engine/geometry mismatch, transition id out of range).
[[nodiscard]] std::string validate_checkpoint(const CheckpointImage& image,
                                              const PetriNet& net,
                                              bool packed_engine);

}  // namespace cipnet::reach_detail

namespace cipnet {

/// Stable content digest of a finished graph: FNV-1a over every state's
/// *dense* marking (packed rows are unpacked first, so dense and packed
/// digests of the same graph agree) and every edge in id order. Two graphs
/// are bit-identical iff their digests match — this is what
/// `resume_smoke.sh` diffs across kill/resume runs and engines.
[[nodiscard]] std::uint64_t graph_digest(const ReachabilityGraph& graph);

}  // namespace cipnet
