#include "reach/properties.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "util/error.h"

namespace cipnet {

namespace {

/// a strictly dominates b: a >= b pointwise and a != b.
bool strictly_dominates(const Marking& a, const Marking& b) {
  bool strict = false;
  for (std::size_t i = 0; i < a.tokens().size(); ++i) {
    if (a.tokens()[i] < b.tokens()[i]) return false;
    if (a.tokens()[i] > b.tokens()[i]) strict = true;
  }
  return strict;
}

}  // namespace

Boundedness check_boundedness(const PetriNet& net, std::size_t max_states) {
  // Iterative DFS carrying the ancestor path for the domination test.
  struct Frame {
    Marking marking;
    std::vector<TransitionId> pending;
  };
  std::unordered_set<Marking, MarkingHash> visited;
  std::vector<Frame> stack;

  auto push = [&](Marking m) -> bool {  // returns false on domination
    for (const Frame& f : stack) {
      if (strictly_dominates(m, f.marking)) return false;
    }
    if (visited.size() >= max_states) {
      throw LimitError("boundedness check exceeded state limit");
    }
    auto pending = net.enabled_transitions(m);
    stack.push_back(Frame{std::move(m), std::move(pending)});
    return true;
  };

  if (!push(net.initial_marking())) return Boundedness::kUnbounded;
  visited.insert(net.initial_marking());

  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.pending.empty()) {
      stack.pop_back();
      continue;
    }
    TransitionId t = top.pending.back();
    top.pending.pop_back();
    Marking next = net.fire(top.marking, t);
    if (visited.contains(next)) continue;
    visited.insert(next);
    if (!push(std::move(next))) return Boundedness::kUnbounded;
  }
  return Boundedness::kBounded;
}

bool is_safe(const ReachabilityGraph& rg) {
  for (StateId s : rg.all_states()) {
    if (!rg.marking(s).is_safe()) return false;
  }
  return true;
}

Token max_tokens_in_any_place(const ReachabilityGraph& rg) {
  Token best = 0;
  for (StateId s : rg.all_states()) {
    for (Token t : rg.marking(s)) best = std::max(best, t);
  }
  return best;
}

std::vector<StateId> deadlock_states(const ReachabilityGraph& rg) {
  std::vector<StateId> out;
  for (StateId s : rg.all_states()) {
    if (rg.successors(s).empty()) out.push_back(s);
  }
  return out;
}

std::vector<TransitionId> dead_transitions(const PetriNet& net,
                                           const ReachabilityGraph& rg) {
  std::vector<bool> fired(net.transition_count(), false);
  for (StateId s : rg.all_states()) {
    for (const auto& e : rg.successors(s)) fired[e.transition.index()] = true;
  }
  std::vector<TransitionId> out;
  for (std::size_t i = 0; i < fired.size(); ++i) {
    if (!fired[i]) out.push_back(TransitionId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

std::vector<StateId> states_enabling(const PetriNet& net,
                                     const ReachabilityGraph& rg,
                                     TransitionId t) {
  std::vector<StateId> out;
  for (StateId s : rg.all_states()) {
    if (net.is_enabled(rg.marking(s), t)) out.push_back(s);
  }
  return out;
}

std::vector<TransitionId> non_live_transitions(const PetriNet& net,
                                               const ReachabilityGraph& rg) {
  // Reverse adjacency once.
  std::vector<std::vector<StateId>> pred(rg.state_count());
  for (StateId s : rg.all_states()) {
    for (const auto& e : rg.successors(s)) pred[e.to.index()].push_back(s);
  }

  std::vector<TransitionId> out;
  for (TransitionId t : net.all_transitions()) {
    // Backward closure of the states where t is enabled; t is live iff the
    // closure covers every reachable state.
    std::vector<bool> can_reach(rg.state_count(), false);
    std::deque<StateId> frontier;
    for (StateId s : states_enabling(net, rg, t)) {
      can_reach[s.index()] = true;
      frontier.push_back(s);
    }
    while (!frontier.empty()) {
      StateId s = frontier.front();
      frontier.pop_front();
      for (StateId p : pred[s.index()]) {
        if (!can_reach[p.index()]) {
          can_reach[p.index()] = true;
          frontier.push_back(p);
        }
      }
    }
    if (std::find(can_reach.begin(), can_reach.end(), false) !=
        can_reach.end()) {
      out.push_back(t);
    }
  }
  return out;
}

bool is_live(const PetriNet& net, const ReachabilityGraph& rg) {
  return non_live_transitions(net, rg).empty();
}

std::optional<std::vector<TransitionId>> firing_sequence_to(
    const ReachabilityGraph& rg, StateId target) {
  // BFS from the initial state recording parent edges.
  struct Parent {
    StateId state;
    TransitionId transition;
  };
  std::vector<std::optional<Parent>> parent(rg.state_count());
  std::vector<bool> seen(rg.state_count(), false);
  std::deque<StateId> frontier{rg.initial()};
  seen[rg.initial().index()] = true;
  while (!frontier.empty()) {
    StateId s = frontier.front();
    frontier.pop_front();
    if (s == target) break;
    for (const auto& e : rg.successors(s)) {
      if (!seen[e.to.index()]) {
        seen[e.to.index()] = true;
        parent[e.to.index()] = Parent{s, e.transition};
        frontier.push_back(e.to);
      }
    }
  }
  if (!seen[target.index()]) return std::nullopt;
  std::vector<TransitionId> path;
  StateId cur = target;
  while (parent[cur.index()]) {
    path.push_back(parent[cur.index()]->transition);
    cur = parent[cur.index()]->state;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace cipnet
