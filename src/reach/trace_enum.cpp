#include "reach/trace_enum.h"

#include <deque>
#include <set>

#include "util/error.h"

namespace cipnet {

namespace {

/// States reachable from `state` by firing only eps-labeled transitions
/// (including `state` itself).
std::vector<StateId> epsilon_closure(const PetriNet& net,
                                     const ReachabilityGraph& rg,
                                     StateId state) {
  std::vector<bool> seen(rg.state_count(), false);
  std::deque<StateId> frontier{state};
  seen[state.index()] = true;
  std::vector<StateId> closure;
  while (!frontier.empty()) {
    StateId s = frontier.front();
    frontier.pop_front();
    closure.push_back(s);
    for (const auto& edge : rg.successors(s)) {
      if (!is_epsilon_label(net.transition_label(edge.transition))) continue;
      if (!seen[edge.to.index()]) {
        seen[edge.to.index()] = true;
        frontier.push_back(edge.to);
      }
    }
  }
  return closure;
}

void enumerate(const PetriNet& net, const ReachabilityGraph& rg,
               const TraceEnumOptions& options, StateId state, Trace& prefix,
               std::set<Trace>& out) {
  if (out.size() > options.max_traces) {
    throw LimitError("trace enumeration exceeded max_traces");
  }
  out.insert(prefix);
  if (prefix.size() >= options.max_length) return;

  auto expand = [&](StateId s) {
    for (const auto& edge : rg.successors(s)) {
      const std::string& label = net.transition_label(edge.transition);
      if (options.skip_epsilon && is_epsilon_label(label)) continue;
      prefix.push_back(label);
      enumerate(net, rg, options, edge.to, prefix, out);
      prefix.pop_back();
    }
  };

  if (options.skip_epsilon) {
    for (StateId s : epsilon_closure(net, rg, state)) expand(s);
  } else {
    expand(state);
  }
}

}  // namespace

std::vector<Trace> bounded_language(const PetriNet& net,
                                    const ReachabilityGraph& rg,
                                    const TraceEnumOptions& options) {
  std::set<Trace> out;
  Trace prefix;
  enumerate(net, rg, options, rg.initial(), prefix, out);
  return {out.begin(), out.end()};
}

std::vector<Trace> bounded_language(const PetriNet& net,
                                    const TraceEnumOptions& options) {
  ReachabilityGraph rg = explore(net);
  return bounded_language(net, rg, options);
}

bool accepts_trace(const PetriNet& net, const Trace& trace,
                   const ReachOptions& options) {
  // Depth-first over (position, state) pairs of the product of the trace
  // word with the reachability graph.
  ReachabilityGraph rg = explore(net, options);
  std::vector<std::vector<bool>> seen(trace.size() + 1,
                                      std::vector<bool>(rg.state_count()));
  std::vector<std::pair<std::size_t, StateId>> frontier{{0, rg.initial()}};
  seen[0][rg.initial().index()] = true;
  while (!frontier.empty()) {
    auto [pos, state] = frontier.back();
    frontier.pop_back();
    if (pos == trace.size()) return true;
    for (const auto& edge : rg.successors(state)) {
      if (net.transition_label(edge.transition) != trace[pos]) continue;
      if (!seen[pos + 1][edge.to.index()]) {
        seen[pos + 1][edge.to.index()] = true;
        frontier.push_back({pos + 1, edge.to});
      }
    }
  }
  return false;
}

std::string trace_to_string(const Trace& trace) {
  if (trace.empty()) return "<>";
  std::string out;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) out += ".";
    out += trace[i];
  }
  return out;
}

}  // namespace cipnet
