#pragma once

#include "petri/rebuild.h"
#include "reach/reachability.h"

namespace cipnet {

/// How dead transitions were detected by `remove_dead_transitions`.
enum class DeadCheckMethod {
  kStructuralMarkedGraph,  // polynomial fixpoint (Section 5.2)
  kReachability,           // exact on the explored state space
};

struct DeadRemovalResult {
  NetSlice slice;
  std::size_t removed = 0;
  DeadCheckMethod method = DeadCheckMethod::kReachability;
};

/// Removes transitions that can never fire. Uses the polynomial structural
/// fixpoint when the net is a marked graph (the paper's Section 5.2 claim:
/// "The removal of these dead transitions can be done in polynomial time and
/// space for marked and free-choice nets"), otherwise falls back to
/// reachability. Isolated places left behind are dropped when
/// `drop_isolated_places` is set.
[[nodiscard]] DeadRemovalResult remove_dead_transitions(
    const PetriNet& net, bool drop_isolated_places = true,
    const ReachOptions& options = {});

}  // namespace cipnet
