#include "reach/marking_store.h"

#include <new>

#include "obs/metrics.h"
#include "util/fault.h"

namespace cipnet::marking_detail {

namespace {

/// Simulated allocation failure on arena/table growth — fires as a real
/// `std::bad_alloc` so callers exercise their genuine out-of-memory paths.
CIPNET_FAULT_SITE(f_grow, "reach.store.grow");

/// Slots inspected per intern (1 = direct hit on an empty or matching
/// slot). The p99 of this distribution is the early-warning signal for
/// clustering — it degrades before throughput visibly does.
const obs::Histogram h_probe("reach.interner.probe");

}  // namespace

void record_probe(std::uint64_t probes) { h_probe.record(probes); }

void grow_fault_check() {
  if (CIPNET_FAULT_FIRES(f_grow)) throw std::bad_alloc();
}

}  // namespace cipnet::marking_detail
