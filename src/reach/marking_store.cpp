#include "reach/marking_store.h"

#include <cstring>
#include <new>

#include "obs/metrics.h"
#include "util/fault.h"

namespace cipnet {

namespace {

/// Simulated allocation failure on arena/table growth — fires as a real
/// `std::bad_alloc` so callers exercise their genuine out-of-memory paths.
CIPNET_FAULT_SITE(f_grow, "reach.store.grow");

/// Slots inspected per intern (1 = direct hit on an empty or matching
/// slot). The p99 of this distribution is the early-warning signal for
/// clustering — it degrades before throughput visibly does.
const obs::Histogram h_probe("reach.interner.probe");

/// Max load factor 7/8 before growing: linear probing stays short and the
/// table is still 12 bytes/state — far below the ~56 bytes/node of the
/// `unordered_map<Marking, StateId>` it replaces.
constexpr std::size_t kMinSlots = 16;

bool over_loaded(std::size_t count, std::size_t slots) {
  return (count + 1) * 8 > slots * 7;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = kMinSlots;
  while (p < n) p <<= 1;
  return p;
}

bool rows_equal(const Token* a, const Token* b, std::size_t width) {
  return width == 0 || std::memcmp(a, b, width * sizeof(Token)) == 0;
}

}  // namespace

std::uint64_t row_hash(const Token* row, std::size_t width) {
  // FNV-1a over the tokens, widened per element, then an xmx avalanche so
  // both the low bits (table index) and the high bits (shard selector of
  // the parallel explorer) are well mixed.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ (width * 0x9e3779b97f4a7c15ULL);
  for (std::size_t i = 0; i < width; ++i) {
    h ^= row[i];
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

MarkingInterner::Result MarkingInterner::intern_hashed(std::uint64_t hash,
                                                       const Token* row,
                                                       MarkingStore& store,
                                                       std::size_t limit) {
  if (slots_.empty() || over_loaded(count_, slots_.size())) {
    grow(next_pow2((count_ + 1) * 8 / 7 + 1));
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  std::uint64_t probes = 1;
  while (slots_[i].id != kNoId) {
    if (slots_[i].hash == hash &&
        rows_equal(store.row(slots_[i].id), row, store.width())) {
      h_probe.record(probes);
      return Result{slots_[i].id, false};
    }
    i = (i + 1) & mask;
    ++probes;
  }
  h_probe.record(probes);
  if (store.size() >= limit) return Result{kNoId, true};
  const auto id = static_cast<std::uint32_t>(store.push_back(row));
  slots_[i] = Slot{hash, id};
  ++count_;
  return Result{id, true};
}

std::optional<std::uint32_t> MarkingInterner::find(
    const Token* row, const MarkingStore& store) const {
  if (slots_.empty()) return std::nullopt;
  const std::uint64_t hash = row_hash(row, store.width());
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash) & mask;
  while (slots_[i].id != kNoId) {
    if (slots_[i].hash == hash &&
        rows_equal(store.row(slots_[i].id), row, store.width())) {
      return slots_[i].id;
    }
    i = (i + 1) & mask;
  }
  return std::nullopt;
}

void MarkingInterner::rebuild(const MarkingStore& store) {
  slots_.clear();
  count_ = store.size();
  slots_.assign(next_pow2(count_ * 8 / 7 + 1), Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (std::size_t id = 0; id < store.size(); ++id) {
    const std::uint64_t hash = row_hash(store.row(id), store.width());
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    while (slots_[i].id != kNoId) i = (i + 1) & mask;
    slots_[i] = Slot{hash, static_cast<std::uint32_t>(id)};
  }
}

void MarkingInterner::reserve(std::size_t expected) {
  const std::size_t want = next_pow2(expected * 8 / 7 + 1);
  if (want > slots_.size()) grow(want);
}

void MarkingInterner::grow(std::size_t min_slots) {
  // Every growth event — the `reserve()` pre-size and load-factor doublings
  // alike — is one hit at the allocation fault point.
  if (CIPNET_FAULT_FIRES(f_grow)) throw std::bad_alloc();
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(next_pow2(min_slots), Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.id == kNoId) continue;
    std::size_t i = static_cast<std::size_t>(s.hash) & mask;
    while (slots_[i].id != kNoId) i = (i + 1) & mask;
    slots_[i] = s;
  }
}

}  // namespace cipnet
