#pragma once

#include <optional>
#include <vector>

#include "reach/reachability.h"

namespace cipnet {

/// Boundedness verdict from the Karp-Miller style domination test.
enum class Boundedness { kBounded, kUnbounded };

/// Decides boundedness exactly: depth-first search in which a newly reached
/// marking that strictly dominates an ancestor on the current path witnesses
/// unboundedness (the classic monotonicity argument); if the full finite
/// state space is exhausted without a witness the net is bounded. The
/// `max_states` limit only guards against pathological blow-up of *bounded*
/// nets and raises `LimitError`.
[[nodiscard]] Boundedness check_boundedness(const PetriNet& net,
                                            std::size_t max_states = 1u << 20);

/// Every reachable marking puts at most one token in each place
/// (Section 2.1: "Safe nets").
[[nodiscard]] bool is_safe(const ReachabilityGraph& rg);

/// Largest token count any place reaches.
[[nodiscard]] Token max_tokens_in_any_place(const ReachabilityGraph& rg);

/// States with no enabled transition.
[[nodiscard]] std::vector<StateId> deadlock_states(const ReachabilityGraph& rg);

/// Transitions that are never enabled in any reachable marking (dead, i.e.
/// not L1-live). Exact on the explored graph.
[[nodiscard]] std::vector<TransitionId> dead_transitions(
    const PetriNet& net, const ReachabilityGraph& rg);

/// Liveness in the strong (L4) sense: from every reachable marking, every
/// transition can eventually fire again. Computed per transition by a
/// backward closure over the reachability graph.
[[nodiscard]] bool is_live(const PetriNet& net, const ReachabilityGraph& rg);

/// The transitions that are *not* L4-live.
[[nodiscard]] std::vector<TransitionId> non_live_transitions(
    const PetriNet& net, const ReachabilityGraph& rg);

/// States enabling a given transition.
[[nodiscard]] std::vector<StateId> states_enabling(const PetriNet& net,
                                                   const ReachabilityGraph& rg,
                                                   TransitionId t);

/// A firing sequence (transition ids) from the initial state to `target`,
/// or nullopt if unreachable (it never is for states in the graph).
[[nodiscard]] std::optional<std::vector<TransitionId>> firing_sequence_to(
    const ReachabilityGraph& rg, StateId target);

}  // namespace cipnet
