#pragma once

#include <optional>
#include <vector>

#include "petri/net.h"
#include "util/cancel.h"

namespace cipnet {

/// Per-place bound from the Karp-Miller coverability tree: a concrete
/// maximum for bounded places, `nullopt` (ω) for unbounded ones. For a
/// bounded net no acceleration ever fires, the tree nodes are exactly the
/// reachable markings, and the bounds are exact; for unbounded nets the ω
/// entries are exact (a place is ω iff it is unbounded) while finite
/// entries are upper bounds.
struct CoverabilityResult {
  /// bounds[p] = max tokens seen, or nullopt = unbounded (ω).
  std::vector<std::optional<Token>> bounds;
  /// Nodes in the Karp-Miller tree (after subsumption).
  std::size_t tree_nodes = 0;
  /// True when construction stopped early at `max_nodes` under
  /// `truncate_on_limit`. Finite bounds are then lower bounds on the true
  /// maxima (ω entries remain sound: a pumped place really is unbounded).
  bool truncated = false;

  [[nodiscard]] bool bounded() const {
    for (const auto& b : bounds) {
      if (!b) return false;
    }
    return true;
  }
};

struct CoverabilityOptions {
  std::size_t max_nodes = 1u << 18;
  /// Polled once per expanded tree node; a tripped token raises `Cancelled`.
  CancelToken cancel;
  /// On hitting `max_nodes`, stop and return the partial result with
  /// `CoverabilityResult::truncated` set instead of throwing `LimitError`.
  bool truncate_on_limit = false;
};

/// Karp-Miller with ancestor acceleration and subsumption. Throws
/// LimitError beyond `max_nodes` (the tree is finite in theory; the limit
/// guards against practical blow-up).
[[nodiscard]] CoverabilityResult coverability(
    const PetriNet& net, const CoverabilityOptions& options = {});

}  // namespace cipnet
