#include "reach/dead.h"

#include "petri/marked_graph.h"
#include "petri/structure.h"
#include "reach/properties.h"

namespace cipnet {

DeadRemovalResult remove_dead_transitions(const PetriNet& net,
                                          bool drop_isolated_places,
                                          const ReachOptions& options) {
  DeadRemovalResult result;
  std::vector<TransitionId> dead;
  if (is_marked_graph(net)) {
    dead = mg_dead_transitions(net);
    result.method = DeadCheckMethod::kStructuralMarkedGraph;
  } else {
    ReachabilityGraph rg = explore(net, options);
    dead = dead_transitions(net, rg);
    result.method = DeadCheckMethod::kReachability;
  }
  result.removed = dead.size();
  result.slice = remove_transitions(net, std::move(dead), drop_isolated_places);
  return result;
}

}  // namespace cipnet
