#pragma once

// Cache-friendly storage for explicit state-space construction. Explicit
// explorers (reach::explore, the Karp-Miller tree, the STG state-graph
// builder) intern millions of small fixed-width rows; giving each its own
// heap-allocated `Marking` plus an `std::unordered_map` node costs two
// pointer chases and ~48 bytes of overhead per state. Instead:
//
//  * `BasicMarkingStore<Cell>` — one flat `std::vector<Cell>` arena. Row
//    `i` lives at `[i*width, (i+1)*width)`, so a linear pass over all
//    states is a linear pass over memory (the subsumption scan in
//    coverability, the renumbering pass of the parallel explorer).
//  * `BasicMarkingInterner<Cell>` — an open-addressing linear-probe table
//    of `{hash, id}` slots over a store. One probe answers both "have we
//    seen this row?" and "what is its id?", and inserts on a miss — the
//    classic `contains()`-then-`emplace()` double lookup becomes a single
//    `intern()` returning `{id, fresh}`.
//
// Both are cell- and width-generic. The dense engine uses `Cell = Token`
// rows of `place_count` entries; the STG builder uses combined `Token`
// rows of `place_count + signal_count` (marking ++ encoding); the packed
// 1-safe engine uses `Cell = std::uint64_t` rows of `ceil(places/64)`
// words — one bit per place, which is where the 8-32x arena shrink and the
// one-word hash/compare of docs/PERFORMANCE.md come from. Neither class is
// thread-safe; the parallel explorer shards them and guards each shard
// with its own mutex.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "petri/marking.h"

namespace cipnet {

namespace marking_detail {
/// Out-of-line obs/fault hooks (marking_store.cpp) so the templates stay
/// header-only without dragging metrics/fault headers into every includer:
/// probe-length histogram `reach.interner.probe` and the
/// `reach.store.grow` allocation-failure fault site.
void record_probe(std::uint64_t probes);
void grow_fault_check();
}  // namespace marking_detail

/// Stable, schedule-independent 64-bit hash of one row: FNV-1a over the
/// cells (tokens or packed words alike), widened per element, then an xmx
/// avalanche so both the low bits (table index) and the high bits (shard
/// selector of the parallel explorer) are well mixed. All interner shards
/// must agree on it (the shard of a row is a function of this hash), so it
/// is a fixed algorithm, not `std::hash`.
template <class Cell>
[[nodiscard]] std::uint64_t row_hash_cells(const Cell* row,
                                           std::size_t width) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ (width * 0x9e3779b97f4a7c15ULL);
  for (std::size_t i = 0; i < width; ++i) {
    h ^= static_cast<std::uint64_t>(row[i]);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// The dense-token instantiation, kept under its historical name.
[[nodiscard]] inline std::uint64_t row_hash(const Token* row,
                                            std::size_t width) {
  return row_hash_cells(row, width);
}

/// A flat arena of fixed-width rows.
template <class Cell>
class BasicMarkingStore {
 public:
  BasicMarkingStore() = default;
  explicit BasicMarkingStore(std::size_t width) : width_(width) {}

  /// Drops all rows and switches to a new row width.
  void reset(std::size_t width) {
    width_ = width;
    count_ = 0;
    arena_.clear();
  }

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Pointer to row `i`; invalidated by `push_back` growth (copy the row
  /// out before interleaving reads with inserts).
  [[nodiscard]] const Cell* row(std::size_t i) const {
    return arena_.data() + i * width_;
  }

  /// Dense-token stores only: a `MarkingView` of row `i` (instantiated on
  /// use, so packed stores simply never call it).
  [[nodiscard]] MarkingView view(std::size_t i) const {
    return MarkingView(row(i), width_);
  }

  /// Appends a copy of `row` (width cells); returns its index.
  std::size_t push_back(const Cell* row) {
    arena_.insert(arena_.end(), row, row + width_);
    return count_++;
  }

  void reserve(std::size_t rows) { arena_.reserve(rows * width_); }

  /// Bytes held by the arena (capacity, not size — this is what the
  /// `reach.graph_bytes` estimate charges for markings).
  [[nodiscard]] std::size_t arena_bytes() const {
    return arena_.capacity() * sizeof(Cell);
  }

 private:
  std::size_t width_ = 0;
  std::size_t count_ = 0;
  std::vector<Cell> arena_;
};

/// Open-addressing linear-probe interner over a `BasicMarkingStore`: slots
/// hold `{hash, id}` where `id` indexes the store. Growth rehashes from
/// the stored hashes without touching the rows. Ids are dense and assigned
/// in interning order.
template <class Cell>
class BasicMarkingInterner {
 public:
  /// Sentinel id returned by `intern` when the row is fresh but the
  /// caller's state budget is exhausted (nothing was inserted).
  static constexpr std::uint32_t kNoId = 0xffffffffu;

  struct Result {
    std::uint32_t id = kNoId;
    bool fresh = false;
  };

  /// Single-probe intern: returns `{id, false}` for a known row. For a
  /// fresh row, appends it to `store` and returns `{new_id, true}` — unless
  /// the store already holds `limit` rows, in which case `{kNoId, true}`
  /// comes back and nothing is modified (the caller turns this into its
  /// own LimitError).
  Result intern(const Cell* row, BasicMarkingStore<Cell>& store,
                std::size_t limit = kNoId) {
    return intern_hashed(row_hash_cells(row, store.width()), row, store,
                         limit);
  }

  /// Same, with the hash precomputed (the parallel explorer hashes once to
  /// pick the shard and reuses the value here).
  Result intern_hashed(std::uint64_t hash, const Cell* row,
                       BasicMarkingStore<Cell>& store,
                       std::size_t limit = kNoId) {
    if (slots_.empty() || over_loaded(count_, slots_.size())) {
      grow(next_pow2((count_ + 1) * 8 / 7 + 1));
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    std::uint64_t probes = 1;
    while (slots_[i].id != kNoId) {
      if (slots_[i].hash == hash &&
          rows_equal(store.row(slots_[i].id), row, store.width())) {
        marking_detail::record_probe(probes);
        return Result{slots_[i].id, false};
      }
      i = (i + 1) & mask;
      ++probes;
    }
    marking_detail::record_probe(probes);
    if (store.size() >= limit) return Result{kNoId, true};
    const auto id = static_cast<std::uint32_t>(store.push_back(row));
    slots_[i] = Slot{hash, id};
    ++count_;
    return Result{id, true};
  }

  /// Probe without inserting.
  [[nodiscard]] std::optional<std::uint32_t> find(
      const Cell* row, const BasicMarkingStore<Cell>& store) const {
    if (slots_.empty()) return std::nullopt;
    const std::uint64_t hash = row_hash_cells(row, store.width());
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash) & mask;
    while (slots_[i].id != kNoId) {
      if (slots_[i].hash == hash &&
          rows_equal(store.row(slots_[i].id), row, store.width())) {
        return slots_[i].id;
      }
      i = (i + 1) & mask;
    }
    return std::nullopt;
  }

  /// Re-index every row already in `store` (table is cleared first). The
  /// parallel explorer uses this after its renumbering pass so the final
  /// graph supports `contains()` queries.
  void rebuild(const BasicMarkingStore<Cell>& store) {
    slots_.clear();
    count_ = store.size();
    slots_.assign(next_pow2(count_ * 8 / 7 + 1), Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t id = 0; id < store.size(); ++id) {
      const std::uint64_t hash = row_hash_cells(store.row(id), store.width());
      std::size_t i = static_cast<std::size_t>(hash) & mask;
      while (slots_[i].id != kNoId) i = (i + 1) & mask;
      slots_[i] = Slot{hash, static_cast<std::uint32_t>(id)};
    }
  }

  /// Pre-size the table for `expected` entries (rounds up to a power of
  /// two honoring the load factor) to avoid rehash storms mid-explore.
  void reserve(std::size_t expected) {
    const std::size_t want = next_pow2(expected * 8 / 7 + 1);
    if (want > slots_.size()) grow(want);
  }

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Bytes held by the slot table — the `reach.index_bytes` estimate.
  [[nodiscard]] std::size_t table_bytes() const {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t id = kNoId;  // kNoId = empty slot
  };

  /// Max load factor 7/8 before growing: linear probing stays short and
  /// the table is still 12 bytes/state — far below the ~56 bytes/node of
  /// the `unordered_map<Marking, StateId>` it replaces.
  static bool over_loaded(std::size_t count, std::size_t slots) {
    return (count + 1) * 8 > slots * 7;
  }

  static std::size_t next_pow2(std::size_t n) {
    std::size_t p = 16;  // kMinSlots
    while (p < n) p <<= 1;
    return p;
  }

  static bool rows_equal(const Cell* a, const Cell* b, std::size_t width) {
    return width == 0 || std::memcmp(a, b, width * sizeof(Cell)) == 0;
  }

  void grow(std::size_t min_slots) {
    // Every growth event — the `reserve()` pre-size and load-factor
    // doublings alike — is one hit at the `reach.store.grow` allocation
    // fault point.
    marking_detail::grow_fault_check();
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(next_pow2(min_slots), Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.id == kNoId) continue;
      std::size_t i = static_cast<std::size_t>(s.hash) & mask;
      while (slots_[i].id != kNoId) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t count_ = 0;
};

/// Dense rows: one `Token` per place (general nets).
using MarkingStore = BasicMarkingStore<Token>;
using MarkingInterner = BasicMarkingInterner<Token>;

/// Packed rows: one bit per place, 64 places per word (1-safe nets only).
using PackedMarkingStore = BasicMarkingStore<std::uint64_t>;
using PackedMarkingInterner = BasicMarkingInterner<std::uint64_t>;

}  // namespace cipnet
