#pragma once

// Cache-friendly storage for explicit state-space construction. Explicit
// explorers (reach::explore, the Karp-Miller tree, the STG state-graph
// builder) intern millions of small fixed-width token vectors; giving each
// its own heap-allocated `Marking` plus an `std::unordered_map` node costs
// two pointer chases and ~48 bytes of overhead per state. Instead:
//
//  * `MarkingStore` — one flat `std::vector<Token>` arena. Row `i` lives at
//    `[i*width, (i+1)*width)`, so a linear pass over all states is a linear
//    pass over memory (the subsumption scan in coverability, the renumbering
//    pass of the parallel explorer).
//  * `MarkingInterner` — an open-addressing linear-probe table of
//    `{hash, id}` slots over a store. One probe answers both "have we seen
//    this marking?" and "what is its id?", and inserts on a miss — the
//    classic `contains()`-then-`emplace()` double lookup becomes a single
//    `intern()` returning `{id, fresh}`.
//
// Both are width-generic: reach uses rows of `place_count` tokens, the STG
// builder uses combined rows of `place_count + signal_count` (marking ++
// encoding). Neither is thread-safe; the parallel explorer shards them and
// guards each shard with its own mutex.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "petri/marking.h"

namespace cipnet {

/// Stable, schedule-independent 64-bit hash of one row. All interner shards
/// of the parallel explorer must agree on it (the shard of a marking is a
/// function of this hash), so it is a fixed algorithm, not `std::hash`.
[[nodiscard]] std::uint64_t row_hash(const Token* row, std::size_t width);

/// A flat arena of fixed-width token rows.
class MarkingStore {
 public:
  MarkingStore() = default;
  explicit MarkingStore(std::size_t width) : width_(width) {}

  /// Drops all rows and switches to a new row width.
  void reset(std::size_t width) {
    width_ = width;
    count_ = 0;
    arena_.clear();
  }

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t size() const { return count_; }

  /// Pointer to row `i`; invalidated by `push_back` growth (copy the row
  /// out before interleaving reads with inserts).
  [[nodiscard]] const Token* row(std::size_t i) const {
    return arena_.data() + i * width_;
  }

  [[nodiscard]] MarkingView view(std::size_t i) const {
    return MarkingView(row(i), width_);
  }

  /// Appends a copy of `row` (width tokens); returns its index.
  std::size_t push_back(const Token* row) {
    arena_.insert(arena_.end(), row, row + width_);
    return count_++;
  }

  void reserve(std::size_t rows) { arena_.reserve(rows * width_); }

  /// Bytes held by the arena (capacity, not size — this is what the
  /// `reach.graph_bytes` estimate charges for markings).
  [[nodiscard]] std::size_t arena_bytes() const {
    return arena_.capacity() * sizeof(Token);
  }

 private:
  std::size_t width_ = 0;
  std::size_t count_ = 0;
  std::vector<Token> arena_;
};

/// Open-addressing linear-probe interner over a `MarkingStore`: slots hold
/// `{hash, id}` where `id` indexes the store. Growth rehashes from the
/// stored hashes without touching the rows. Ids are dense and assigned in
/// interning order.
class MarkingInterner {
 public:
  /// Sentinel id returned by `intern` when the marking is fresh but the
  /// caller's state budget is exhausted (nothing was inserted).
  static constexpr std::uint32_t kNoId = 0xffffffffu;

  struct Result {
    std::uint32_t id = kNoId;
    bool fresh = false;
  };

  /// Single-probe intern: returns `{id, false}` for a known row. For a
  /// fresh row, appends it to `store` and returns `{new_id, true}` — unless
  /// the store already holds `limit` rows, in which case `{kNoId, true}`
  /// comes back and nothing is modified (the caller turns this into its
  /// own LimitError).
  Result intern(const Token* row, MarkingStore& store,
                std::size_t limit = kNoId) {
    return intern_hashed(row_hash(row, store.width()), row, store, limit);
  }

  /// Same, with the hash precomputed (the parallel explorer hashes once to
  /// pick the shard and reuses the value here).
  Result intern_hashed(std::uint64_t hash, const Token* row,
                       MarkingStore& store, std::size_t limit = kNoId);

  /// Probe without inserting.
  [[nodiscard]] std::optional<std::uint32_t> find(
      const Token* row, const MarkingStore& store) const;

  /// Re-index every row already in `store` (table is cleared first). The
  /// parallel explorer uses this after its renumbering pass so the final
  /// graph supports `contains()` queries.
  void rebuild(const MarkingStore& store);

  /// Pre-size the table for `expected` entries (rounds up to a power of
  /// two honoring the load factor) to avoid rehash storms mid-explore.
  void reserve(std::size_t expected);

  [[nodiscard]] std::size_t size() const { return count_; }

  /// Bytes held by the slot table — the `reach.index_bytes` estimate.
  [[nodiscard]] std::size_t table_bytes() const {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t id = kNoId;  // kNoId = empty slot
  };

  void grow(std::size_t min_slots);

  std::vector<Slot> slots_;
  std::size_t count_ = 0;
};

}  // namespace cipnet
