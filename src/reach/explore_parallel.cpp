// Multi-threaded reachability exploration (ReachOptions.threads > 1).
//
// Architecture:
//  * The marking set is sharded: `kShardCount` independent
//    store+interner pairs, each behind its own mutex. The shard of a
//    marking is a function of its row hash (top bits — the interner probes
//    with the low bits, so shard membership does not skew the probe
//    sequence). Workers only contend when two of them intern into the same
//    shard at the same instant.
//  * Work distribution: a shared FIFO of `WorkItem`s (one discovered,
//    unexpanded state plus its delta-maintained enabled set). Workers pop
//    one item, expand it against worker-local scratch buffers, and hand the
//    batch of freshly discovered states back in a single critical section.
//    `pending` counts discovered-but-unexpanded states; it reaching zero is
//    the termination signal.
//  * Limits and cancellation are cooperative: the first worker to trip
//    `max_states` or observe an expired `CancelToken` stores the exception
//    and raises the stop flag; everyone else drains and the main thread
//    rethrows.
//  * Determinism: workers record edges against schedule-dependent temporary
//    ids (shard, local). A final single-threaded renumbering pass walks the
//    finished graph breadth-first from the initial marking, visiting each
//    state's edges in ascending transition order — exactly the order the
//    sequential explorer discovers states in — and emits the canonical
//    `ReachabilityGraph`. The result is bit-identical to `threads == 1`
//    regardless of schedule, so golden tests and downstream consumers never
//    see nondeterministic state ids.
//  * The whole explorer is a template over the marking domain
//    (reach/engine.h): dense `Token` rows or packed one-bit-per-place
//    words. A packed worker that hits a 1-safety violation throws
//    `PackedUnsafe` through the regular error machinery; the `explore`
//    dispatcher reruns dense.

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "reach/engine.h"
#include "reach/reachability.h"
#include "util/error.h"
#include "util/fault.h"

namespace cipnet {

namespace {

CIPNET_FAULT_SITE(f_cancel, "reach.cancel");
const obs::Counter c_states("reach.states");
const obs::Counter c_edges("reach.edges");
const obs::Counter c_hash_lookups("reach.hash_lookups");
const obs::Gauge g_frontier_peak("reach.frontier_peak");
const obs::Gauge g_graph_bytes("reach.graph_bytes");
const obs::Gauge g_index_bytes("reach.index_bytes");
const obs::Histogram h_enabled("reach.enabled_per_state");

const obs::Gauge g_par_workers("reach.par.workers");
const obs::Counter c_par_handoffs("reach.par.handoffs");
const obs::Counter c_par_idle_waits("reach.par.idle_waits");
const obs::Counter c_par_renumbered("reach.par.renumbered");
const obs::Gauge g_par_queue_depth("reach.par.queue_depth");
const obs::Gauge g_par_pending("reach.par.pending");
const obs::Gauge g_par_shard_max("reach.par.shard_states_max");
const obs::Gauge g_par_imbalance("reach.par.imbalance_x1000");

/// Power of two; the shard index is the top 6 bits of the row hash.
constexpr std::size_t kShardCount = 64;
constexpr unsigned kShardShift = 58;

/// Upper bound on states popped per queue acquisition.
constexpr std::size_t kMaxBatch = 32;

/// Schedule-dependent temporary state id: shard in the high word, the
/// shard-local store index in the low word.
using TmpId = std::uint64_t;

constexpr TmpId make_tmp(std::size_t shard, std::uint32_t local) {
  return (static_cast<TmpId>(shard) << 32) | local;
}
constexpr std::size_t tmp_shard(TmpId id) {
  return static_cast<std::size_t>(id >> 32);
}
constexpr std::uint32_t tmp_local(TmpId id) {
  return static_cast<std::uint32_t>(id);
}

template <class Domain>
class ParallelExplorerT {
  using Cell = typename Domain::Cell;
  using Store = BasicMarkingStore<Cell>;
  using Interner = BasicMarkingInterner<Cell>;

 public:
  ParallelExplorerT(const Domain& dom, const PetriNet& net,
                    const ReachOptions& options)
      : dom_(dom), net_(net), options_(options), width_(dom.width) {
    const std::size_t hint = std::min(options.max_states,
                                      reach_detail::kReserveCap) /
                                 kShardCount +
                             1;
    for (Shard& shard : shards_) {
      shard.store.reset(width_);
      shard.store.reserve(hint);
      shard.index.reserve(hint);
    }
  }

  ReachabilityGraph run() {
    obs::Span span("reach.explore");
    obs::ProgressReporter progress("reach.explore");
    progress.set_target(options_.max_states);
    progress.set_shard_supplier([this] { return shard_snapshot(); });
    progress_ = &progress;
    const std::size_t workers =
        std::min<std::size_t>(options_.threads, kShardCount);
    g_par_workers.set(workers);

    seed_initial();
    std::vector<std::thread> pool;
    std::vector<WorkerOutput> outputs(workers);
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back(
          [this, &outputs, w, workers] { worker(outputs[w], workers); });
    }
    for (std::thread& t : pool) t.join();
    if (error_) std::rethrow_exception(error_);

    ReachabilityGraph rg = assemble(outputs);
    reach_detail::GraphAccess::set_truncated(
        rg, truncated_.load(std::memory_order_relaxed));
    if (obs::enabled()) shard_snapshot();  // final imbalance gauges
    progress.update(rg.state_count(), 0);
    if (obs::enabled()) {
      g_graph_bytes.set(rg.estimated_graph_bytes());
      g_index_bytes.set(rg.estimated_index_bytes());
    }
    return rg;
  }

 private:
  struct Shard {
    std::mutex mu;
    Store store;
    Interner index;
  };

  struct WorkItem {
    TmpId id = 0;
    std::vector<TransitionId> enabled;
  };

  struct TmpEdge {
    TmpId from;
    TransitionId transition;
    TmpId to;
  };

  /// Edges recorded by one worker; merged single-threaded after the join.
  struct WorkerOutput {
    std::vector<TmpEdge> edges;
  };

  void seed_initial() {
    if (options_.max_states == 0) {
      throw LimitError("reachability exploration exceeded 0 states",
                       LimitContext{0, 0, 0});
    }
    std::vector<Cell> m0;
    dom_.initial_row(m0);
    const std::uint64_t hash = row_hash_cells(m0.data(), width_);
    const std::size_t shard = static_cast<std::size_t>(hash >> kShardShift);
    auto r = shards_[shard].index.intern_hashed(hash, m0.data(),
                                                shards_[shard].store);
    c_hash_lookups.add();
    c_states.add();
    shard_counts_[shard].store(1, std::memory_order_relaxed);
    state_count_.store(1, std::memory_order_relaxed);
    WorkItem item;
    item.id = make_tmp(shard, r.id);
    item.enabled = net_.enabled_transitions(net_.initial_marking());
    initial_tmp_ = item.id;
    queue_.push_back(std::move(item));
    pending_ = 1;
  }

  void worker(WorkerOutput& out, std::size_t workers) {
    std::vector<Cell> current;
    std::vector<Cell> scratch;
    std::vector<TransitionId> candidates;
    std::vector<WorkItem> batch;
    std::vector<WorkItem> fresh;
    for (;;) {
      batch.clear();
      {
        std::unique_lock<std::mutex> lk(queue_mu_);
        if (queue_.empty() && pending_ > 0 && !stop_) {
          c_par_idle_waits.add();
        }
        queue_cv_.wait(lk, [this] {
          return stop_ || !queue_.empty() || pending_ == 0;
        });
        if (stop_ || queue_.empty()) return;  // done or aborting
        // Grab a fair share of the frontier in one lock acquisition —
        // popping state-by-state would make the queue mutex the hot spot.
        std::size_t take =
            std::min<std::size_t>(kMaxBatch, queue_.size() / workers + 1);
        while (take-- > 0 && !queue_.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      fresh.clear();
      bool ok = true;
      for (const WorkItem& item : batch) {
        if (stop_.load(std::memory_order_relaxed)) break;
        try {
          expand(item, out, current, scratch, candidates, fresh);
        } catch (...) {
          std::lock_guard<std::mutex> lk(queue_mu_);
          if (!error_) error_ = std::current_exception();
          stop_ = true;
          ok = false;
          break;
        }
      }
      std::size_t queue_depth = 0;
      {
        std::lock_guard<std::mutex> lk(queue_mu_);
        pending_ -= batch.size();
        if (ok) {
          pending_ += fresh.size();
          for (WorkItem& wi : fresh) queue_.push_back(std::move(wi));
          c_par_handoffs.add(fresh.size());
          g_frontier_peak.set_max(queue_.size());
        }
        queue_depth = queue_.size();
        g_par_queue_depth.set(queue_depth);
        g_par_pending.set(pending_);
        if (!ok || pending_ == 0 || stop_ || fresh.size() > 1) {
          queue_cv_.notify_all();
        } else if (!fresh.empty()) {
          queue_cv_.notify_one();
        }
      }
      if (!ok) return;
      // Live heartbeat from the workers themselves (previously the only
      // update came after the join): throttled by the ProgressBus
      // interval, a no-op with no listeners.
      progress_->update(state_count_.load(std::memory_order_relaxed),
                        queue_depth);
    }
  }

  /// Per-shard interned-state counts (the heartbeat shard payload), also
  /// refreshing the load-imbalance gauges: `reach.par.shard_states_max`
  /// and `reach.par.imbalance_x1000` (max/mean scaled by 1000; 1000 =
  /// perfectly balanced).
  std::vector<std::uint64_t> shard_snapshot() const {
    std::vector<std::uint64_t> counts(kShardCount);
    std::uint64_t max = 0;
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < kShardCount; ++s) {
      counts[s] = shard_counts_[s].load(std::memory_order_relaxed);
      max = std::max(max, counts[s]);
      total += counts[s];
    }
    g_par_shard_max.set(max);
    if (total > 0) {
      g_par_imbalance.set(max * kShardCount * 1000 / total);
    }
    return counts;
  }

  /// Approximate live footprint from the two atomic counters: arena row +
  /// interner slot per state, edge log + final adjacency per edge. A
  /// budget guard, not an accountant — capacity slack is ignored.
  [[nodiscard]] std::size_t approx_bytes() const {
    const std::uint64_t states =
        state_count_.load(std::memory_order_relaxed);
    const std::uint64_t edges = edge_count_.load(std::memory_order_relaxed);
    return static_cast<std::size_t>(
        states * (width_ * sizeof(Cell) + 16 +
                  sizeof(std::vector<ReachabilityGraph::Edge>)) +
        edges * (sizeof(TmpEdge) + sizeof(ReachabilityGraph::Edge)));
  }

  /// Graceful-degradation stop: raise the stop flag without recording an
  /// error, so `run()` assembles the partial graph instead of rethrowing.
  void request_truncate() {
    truncated_.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(queue_mu_);
    stop_.store(true, std::memory_order_relaxed);
    queue_cv_.notify_all();
  }

  void expand(const WorkItem& item, WorkerOutput& out,
              std::vector<Cell>& current, std::vector<Cell>& scratch,
              std::vector<TransitionId>& candidates,
              std::vector<WorkItem>& fresh) {
    options_.cancel.check("reach.explore");
    if (CIPNET_FAULT_FIRES(f_cancel)) {
      throw Cancelled("reach.explore", options_.cancel.elapsed_ms(), false);
    }
    dom_.state_check();
    if (options_.max_graph_bytes != 0 &&
        approx_bytes() > options_.max_graph_bytes) {
      if (options_.truncate_on_limit) {
        request_truncate();
        return;
      }
      throw LimitError(
          "reachability exploration exceeded memory budget of " +
              std::to_string(options_.max_graph_bytes) + " bytes",
          LimitContext{state_count_.load(std::memory_order_relaxed),
                       edge_count_.load(std::memory_order_relaxed),
                       options_.max_graph_bytes});
    }
    {
      // Copy the row out under the shard lock: another worker interning
      // into this shard may grow the arena under us.
      Shard& shard = shards_[tmp_shard(item.id)];
      std::lock_guard<std::mutex> lk(shard.mu);
      const Cell* row = shard.store.row(tmp_local(item.id));
      current.assign(row, row + width_);
    }
    h_enabled.record(item.enabled.size());
    for (TransitionId t : item.enabled) {
      dom_.fire(current.data(), t, scratch);
      const std::uint64_t hash = row_hash_cells(scratch.data(), width_);
      const std::size_t shard_idx =
          static_cast<std::size_t>(hash >> kShardShift);
      typename Interner::Result r;
      {
        Shard& shard = shards_[shard_idx];
        std::lock_guard<std::mutex> lk(shard.mu);
        r = shard.index.intern_hashed(hash, scratch.data(), shard.store);
      }
      c_hash_lookups.add();
      const TmpId target = make_tmp(shard_idx, r.id);
      out.edges.push_back(TmpEdge{item.id, t, target});
      c_edges.add();
      if (r.fresh) {
        const std::uint64_t n =
            state_count_.fetch_add(1, std::memory_order_relaxed) + 1;
        c_states.add();
        shard_counts_[shard_idx].fetch_add(1, std::memory_order_relaxed);
        if (n > options_.max_states) {
          if (options_.truncate_on_limit) {
            request_truncate();
            return;
          }
          throw LimitError(
              "reachability exploration exceeded " +
                  std::to_string(options_.max_states) + " states",
              LimitContext{options_.max_states, 0, options_.max_states});
        }
        WorkItem wi;
        wi.id = target;
        reach_detail::delta_enabled_t(dom_, item.enabled, t, scratch.data(),
                                      wi.enabled, candidates);
        fresh.push_back(std::move(wi));
      }
    }
    edge_count_.fetch_add(item.enabled.size(), std::memory_order_relaxed);
  }

  /// Single-threaded: merge worker edge logs, renumber states into
  /// canonical (sequential-BFS) order, and build the final graph.
  ReachabilityGraph assemble(std::vector<WorkerOutput>& outputs) {
    // Per-tmp-state adjacency in CSR form: shard-local state `i` owns the
    // flat slice `[offsets[i], offsets[i+1])`. Each state was expanded by
    // exactly one worker, so its edges sit contiguously in that worker's
    // log in ascending-transition order (enabled sets are ascending), and
    // a counting pass + fill pass reproduces per-state order with no
    // per-state vectors and no sort.
    struct LocalEdge {
      TransitionId transition;
      TmpId to;
    };
    std::array<std::vector<std::uint32_t>, kShardCount> offsets;
    std::array<std::vector<LocalEdge>, kShardCount> adj;
    for (std::size_t s = 0; s < kShardCount; ++s) {
      offsets[s].assign(shards_[s].store.size() + 1, 0);
    }
    for (const WorkerOutput& out : outputs) {
      for (const TmpEdge& e : out.edges) {
        ++offsets[tmp_shard(e.from)][tmp_local(e.from) + 1];
      }
    }
    for (std::size_t s = 0; s < kShardCount; ++s) {
      for (std::size_t i = 1; i < offsets[s].size(); ++i) {
        offsets[s][i] += offsets[s][i - 1];
      }
      adj[s].resize(offsets[s].back());
    }
    std::array<std::vector<std::uint32_t>, kShardCount> cursor = offsets;
    for (WorkerOutput& out : outputs) {
      for (const TmpEdge& e : out.edges) {
        const std::size_t s = tmp_shard(e.from);
        adj[s][cursor[s][tmp_local(e.from)]++] =
            LocalEdge{e.transition, e.to};
      }
      out.edges.clear();
      out.edges.shrink_to_fit();
    }

    ReachabilityGraph rg;
    Store& store = Domain::store(rg);
    Interner& index = Domain::index(rg);
    std::vector<std::vector<ReachabilityGraph::Edge>>& edges =
        reach_detail::GraphAccess::edges(rg);
    store.reset(width_);
    const std::size_t total =
        static_cast<std::size_t>(state_count_.load(std::memory_order_relaxed));
    store.reserve(total);
    edges.reserve(total);

    constexpr std::uint32_t kUnassigned = 0xffffffffu;
    std::array<std::vector<std::uint32_t>, kShardCount> canon;
    for (std::size_t s = 0; s < kShardCount; ++s) {
      canon[s].assign(shards_[s].store.size(), kUnassigned);
    }
    auto assign = [&](TmpId id) -> std::uint32_t {
      std::uint32_t& slot = canon[tmp_shard(id)][tmp_local(id)];
      if (slot == kUnassigned) {
        slot = static_cast<std::uint32_t>(store.push_back(
            shards_[tmp_shard(id)].store.row(tmp_local(id))));
        edges.emplace_back();
        c_par_renumbered.add();
      }
      return slot;
    };

    std::deque<TmpId> order{initial_tmp_};
    assign(initial_tmp_);
    while (!order.empty()) {
      const TmpId u = order.front();
      order.pop_front();
      const std::size_t us = tmp_shard(u);
      const std::uint32_t ul = tmp_local(u);
      const std::uint32_t cu = canon[us][ul];
      edges[cu].reserve(offsets[us][ul + 1] - offsets[us][ul]);
      for (std::uint32_t i = offsets[us][ul]; i < offsets[us][ul + 1]; ++i) {
        const LocalEdge& e = adj[us][i];
        const bool seen =
            canon[tmp_shard(e.to)][tmp_local(e.to)] != kUnassigned;
        const std::uint32_t cv = assign(e.to);
        edges[cu].push_back(
            ReachabilityGraph::Edge{e.transition, StateId(cv)});
        if (!seen) order.push_back(e.to);
      }
    }
    index.rebuild(store);
    dom_.bind(rg);
    return rg;
  }

  const Domain& dom_;
  const PetriNet& net_;
  const ReachOptions& options_;
  const std::size_t width_;

  std::array<Shard, kShardCount> shards_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  std::size_t pending_ = 0;  // discovered but not yet fully expanded
  std::atomic<bool> stop_{false};
  std::atomic<bool> truncated_{false};
  std::exception_ptr error_;
  std::atomic<std::uint64_t> state_count_{0};
  std::atomic<std::uint64_t> edge_count_{0};
  std::array<std::atomic<std::uint32_t>, kShardCount> shard_counts_{};
  obs::ProgressReporter* progress_ = nullptr;
  TmpId initial_tmp_ = 0;
};

}  // namespace

namespace reach_detail {

ReachabilityGraph explore_parallel(const PetriNet& net,
                                   const ReachOptions& options, bool packed) {
  if (packed) {
    const PackedDomain dom(net);
    return ParallelExplorerT<PackedDomain>(dom, net, options).run();
  }
  const DenseDomain dom(net);
  return ParallelExplorerT<DenseDomain>(dom, net, options).run();
}

}  // namespace reach_detail

}  // namespace cipnet
