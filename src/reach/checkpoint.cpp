#include "reach/checkpoint.h"

#include <limits>

#include "petri/canonical.h"
#include "util/atomic_file.h"
#include "util/error.h"
#include "util/hash.h"

namespace cipnet::reach_detail {

namespace {

using store::get_str;
using store::get_u32;
using store::get_u64;
using store::put_str;
using store::put_u32;
using store::put_u64;

bool fail(std::string& why, const char* what) {
  why = what;
  return false;
}

}  // namespace

std::string encode_checkpoint(const CheckpointImage& image) {
  std::string body;
  body.reserve(image.arena.size() + 64);
  put_u32(body, image.packed ? 1 : 0);
  put_u64(body, image.net_hash);
  put_u32(body, image.cell_size);
  put_u64(body, image.places);
  put_u64(body, image.width);
  put_u64(body, image.state_count);
  put_str(body, image.arena);
  for (const auto& out : image.edges) {
    put_u64(body, out.size());
    for (const ReachabilityGraph::Edge& e : out) {
      put_u32(body, e.transition.value());
      put_u32(body, e.to.value());
    }
  }
  put_u64(body, image.frontier.size());
  for (std::size_t k = 0; k < image.frontier.size(); ++k) {
    put_u32(body, image.frontier[k]);
    put_u64(body, image.frontier_enabled[k].size());
    for (TransitionId t : image.frontier_enabled[k]) {
      put_u32(body, t.value());
    }
  }
  return body;
}

bool decode_checkpoint(const std::string& body, CheckpointImage& image,
                       std::string& why) {
  std::size_t pos = 0;
  std::uint32_t packed_flag = 0;
  if (!get_u32(body, pos, packed_flag) ||
      !get_u64(body, pos, image.net_hash) ||
      !get_u32(body, pos, image.cell_size) ||
      !get_u64(body, pos, image.places) || !get_u64(body, pos, image.width) ||
      !get_u64(body, pos, image.state_count)) {
    return fail(why, "truncated header");
  }
  if (packed_flag > 1) return fail(why, "bad packed flag");
  image.packed = packed_flag == 1;
  if (image.cell_size != 4 && image.cell_size != 8) {
    return fail(why, "bad cell size");
  }
  if (image.state_count == 0) return fail(why, "empty state set");
  if (image.state_count > std::numeric_limits<std::uint32_t>::max()) {
    return fail(why, "state count overflows 32-bit ids");
  }
  if (!get_str(body, pos, image.arena)) return fail(why, "truncated arena");
  if (image.arena.size() !=
      image.state_count * image.width * image.cell_size) {
    return fail(why, "arena length mismatch");
  }
  image.edges.assign(static_cast<std::size_t>(image.state_count), {});
  for (auto& out : image.edges) {
    std::uint64_t n = 0;
    if (!get_u64(body, pos, n)) return fail(why, "truncated edge list");
    // Every edge costs >= 8 encoded bytes; reject counts the input cannot
    // possibly hold before allocating for them.
    if (n > (body.size() - pos) / 8) return fail(why, "edge count too large");
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint32_t t = 0;
      std::uint32_t to = 0;
      if (!get_u32(body, pos, t) || !get_u32(body, pos, to)) {
        return fail(why, "truncated edge");
      }
      if (to >= image.state_count) return fail(why, "edge target out of range");
      out.push_back(
          ReachabilityGraph::Edge{TransitionId(t), StateId(to)});
    }
  }
  std::uint64_t frontier_size = 0;
  if (!get_u64(body, pos, frontier_size)) {
    return fail(why, "truncated frontier");
  }
  if (frontier_size > image.state_count) {
    return fail(why, "frontier larger than state set");
  }
  image.frontier.reserve(static_cast<std::size_t>(frontier_size));
  image.frontier_enabled.assign(static_cast<std::size_t>(frontier_size), {});
  std::vector<bool> in_frontier(static_cast<std::size_t>(image.state_count));
  for (std::uint64_t k = 0; k < frontier_size; ++k) {
    std::uint32_t id = 0;
    if (!get_u32(body, pos, id)) return fail(why, "truncated frontier entry");
    if (id >= image.state_count) {
      return fail(why, "frontier id out of range");
    }
    // BFS invariants of the loop-head snapshot, which resume relies on:
    // each state is queued at most once, and a frontier state is by
    // definition unexpanded (empty edge list). A crafted checksum-valid
    // file violating either would expand a state twice on resume,
    // appending duplicate edges and breaking bit-identity.
    if (in_frontier[id]) return fail(why, "duplicate frontier id");
    in_frontier[id] = true;
    if (!image.edges[id].empty()) {
      return fail(why, "frontier state already has edges");
    }
    image.frontier.push_back(id);
    std::uint64_t n = 0;
    if (!get_u64(body, pos, n)) return fail(why, "truncated enabled set");
    if (n > (body.size() - pos) / 4) {
      return fail(why, "enabled set too large");
    }
    auto& enabled = image.frontier_enabled[static_cast<std::size_t>(k)];
    enabled.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint32_t t = 0;
      if (!get_u32(body, pos, t)) return fail(why, "truncated enabled set");
      enabled.push_back(TransitionId(t));
    }
  }
  if (pos != body.size()) return fail(why, "trailing bytes");
  return true;
}

void write_checkpoint(const std::string& path, const CheckpointImage& image) {
  store::write_file_atomic(
      path, store::seal_blob(kCheckpointMagic, kCheckpointVersion,
                             encode_checkpoint(image)));
}

LoadResult load_checkpoint(const std::string& path) {
  LoadResult result;
  const std::optional<std::string> bytes = store::read_file(path);
  if (!bytes.has_value()) return result;  // kMissing
  std::string body;
  std::string why;
  if (!store::open_blob(*bytes, kCheckpointMagic, kCheckpointVersion, body,
                        why)) {
    result.status = LoadStatus::kCorrupt;
    result.why = why;
    return result;
  }
  if (!decode_checkpoint(body, result.image, why)) {
    result.status = LoadStatus::kCorrupt;
    result.why = why;
    return result;
  }
  result.status = LoadStatus::kOk;
  return result;
}

std::string validate_checkpoint(const CheckpointImage& image,
                                const PetriNet& net, bool packed_engine) {
  if (image.net_hash != canonical_hash(net)) {
    return "checkpoint is for a different net";
  }
  if (image.packed != packed_engine) {
    return std::string("checkpoint engine is ") +
           (image.packed ? "packed" : "dense") + ", resolved engine is " +
           (packed_engine ? "packed" : "dense");
  }
  if (image.places != net.place_count()) return "place count mismatch";
  const std::uint64_t want_width =
      packed_engine ? packed::word_count(net.place_count())
                    : net.place_count();
  const std::uint32_t want_cell =
      packed_engine ? sizeof(std::uint64_t) : sizeof(Token);
  if (image.width != want_width || image.cell_size != want_cell) {
    return "marking geometry mismatch";
  }
  const std::size_t transitions = net.transition_count();
  for (const auto& out : image.edges) {
    for (const ReachabilityGraph::Edge& e : out) {
      if (e.transition.index() >= transitions) {
        return "edge transition out of range";
      }
    }
  }
  for (const auto& enabled : image.frontier_enabled) {
    for (TransitionId t : enabled) {
      if (t.index() >= transitions) return "enabled transition out of range";
    }
  }
  return {};
}

}  // namespace cipnet::reach_detail

namespace cipnet {

std::uint64_t graph_digest(const ReachabilityGraph& graph) {
  Fnv1a64 h;
  h.u64(graph.state_count());
  for (StateId s : graph.all_states()) {
    const MarkingView m = graph.marking(s);
    for (std::size_t i = 0; i < m.size(); ++i) {
      h.u64(m.data()[i]);
    }
    const auto& out = graph.successors(s);
    h.u64(out.size());
    for (const ReachabilityGraph::Edge& e : out) {
      h.u64(e.transition.value());
      h.u64(e.to.value());
    }
  }
  return h.digest();
}

}  // namespace cipnet
