#include "petri/canonical.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/hash.h"

namespace cipnet {

std::uint64_t canonical_hash(const PetriNet& net) {
  Fnv1a64 h;

  // Places in id order with their initial marking.
  h.u64(net.place_count());
  const Marking& initial = net.initial_marking();
  for (PlaceId p : net.all_places()) {
    h.str(net.place(p).name);
    h.u64(initial[p]);
  }

  // The alphabet as a sorted label set: the paper's composition/hiding
  // operators care about alphabet *membership* (a transition-less common
  // action still synchronizes, Definition 4.7), while the interning order
  // of ActionIds is an accident of construction.
  std::vector<std::string> labels = net.alphabet();
  std::sort(labels.begin(), labels.end());
  h.u64(labels.size());
  for (const std::string& label : labels) h.str(label);

  // Transitions in id order: preset, label (by name, not ActionId), postset,
  // guard literals (kept sorted by Guard itself).
  h.u64(net.transition_count());
  for (TransitionId t : net.all_transitions()) {
    const auto& tr = net.transition(t);
    h.str(net.transition_label(t));
    h.u64(tr.preset.size());
    for (PlaceId p : tr.preset) h.u64(p.index());
    h.u64(tr.postset.size());
    for (PlaceId p : tr.postset) h.u64(p.index());
    h.u64(tr.guard.literals().size());
    for (const auto& [signal, level] : tr.guard.literals()) {
      h.str(signal);
      h.u64(level ? 1 : 0);
    }
  }
  return h.digest();
}

}  // namespace cipnet
