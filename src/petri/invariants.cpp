#include "petri/invariants.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"
#include "util/sorted_set.h"

namespace cipnet {

bool Semiflow::is_zero() const {
  for (std::int64_t w : weights) {
    if (w != 0) return false;
  }
  return true;
}

std::vector<std::size_t> Semiflow::support() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] != 0) out.push_back(i);
  }
  return out;
}

namespace {

/// Incidence matrix with rows = places, cols = transitions:
/// C[p][t] = post(t, p) - pre(t, p) (self-loops contribute 0, matching the
/// firing rule of Definition 2.2).
std::vector<std::vector<std::int64_t>> incidence(const PetriNet& net) {
  std::vector<std::vector<std::int64_t>> c(
      net.place_count(), std::vector<std::int64_t>(net.transition_count(), 0));
  for (TransitionId t : net.all_transitions()) {
    const auto& tr = net.transition(t);
    for (PlaceId p : tr.preset) {
      if (!sorted_set::contains(tr.postset, p)) c[p.index()][t.index()] -= 1;
    }
    for (PlaceId p : tr.postset) {
      if (!sorted_set::contains(tr.preset, p)) c[p.index()][t.index()] += 1;
    }
  }
  return c;
}

void normalize_row(std::vector<std::int64_t>& row, std::size_t cols) {
  std::int64_t g = 0;
  for (std::int64_t v : row) g = std::gcd(g, v < 0 ? -v : v);
  if (g > 1) {
    for (std::int64_t& v : row) v /= g;
  }
  (void)cols;
}

/// Farkas' algorithm over the matrix [C | I]: eliminate each C-column by
/// combining rows of opposite sign; surviving rows' identity part are the
/// non-negative semiflows. Minimality filtering by support inclusion.
std::vector<Semiflow> farkas(std::vector<std::vector<std::int64_t>> c,
                             const InvariantOptions& options) {
  const std::size_t rows0 = c.size();
  const std::size_t cols = rows0 == 0 ? 0 : c[0].size();
  // Augment with the identity.
  std::vector<std::vector<std::int64_t>> table = std::move(c);
  for (std::size_t i = 0; i < rows0; ++i) {
    for (std::size_t j = 0; j < rows0; ++j) {
      table[i].push_back(i == j ? 1 : 0);
    }
  }

  for (std::size_t col = 0; col < cols; ++col) {
    std::vector<std::vector<std::int64_t>> next;
    std::vector<const std::vector<std::int64_t>*> pos, neg;
    for (const auto& row : table) {
      if (row[col] > 0) {
        pos.push_back(&row);
      } else if (row[col] < 0) {
        neg.push_back(&row);
      } else {
        next.push_back(row);
      }
    }
    for (const auto* rp : pos) {
      for (const auto* rn : neg) {
        if (next.size() >= options.max_rows) {
          throw LimitError("Farkas algorithm exceeded max_rows");
        }
        const std::int64_t a = (*rp)[col];
        const std::int64_t b = -(*rn)[col];
        std::vector<std::int64_t> combined(rp->size());
        for (std::size_t k = 0; k < combined.size(); ++k) {
          combined[k] = b * (*rp)[k] + a * (*rn)[k];
        }
        normalize_row(combined, cols);
        next.push_back(std::move(combined));
      }
    }
    table = std::move(next);
  }

  // Extract the identity part; keep non-zero, minimal-support, distinct.
  std::vector<Semiflow> flows;
  for (const auto& row : table) {
    Semiflow flow;
    flow.weights.assign(row.begin() + static_cast<std::ptrdiff_t>(cols),
                        row.end());
    if (!flow.is_zero()) flows.push_back(std::move(flow));
  }
  // Deduplicate.
  std::sort(flows.begin(), flows.end(),
            [](const Semiflow& a, const Semiflow& b) {
              return a.weights < b.weights;
            });
  flows.erase(std::unique(flows.begin(), flows.end(),
                          [](const Semiflow& a, const Semiflow& b) {
                            return a.weights == b.weights;
                          }),
              flows.end());
  // Minimal support: drop flows whose support strictly contains another's.
  std::vector<Semiflow> minimal;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    auto si = flows[i].support();
    bool dominated = false;
    for (std::size_t j = 0; j < flows.size() && !dominated; ++j) {
      if (i == j) continue;
      auto sj = flows[j].support();
      if (sj.size() < si.size() && sorted_set::is_subset(sj, si)) {
        dominated = true;
      }
    }
    if (!dominated) minimal.push_back(flows[i]);
  }
  return minimal;
}

std::vector<std::vector<std::int64_t>> transpose(
    const std::vector<std::vector<std::int64_t>>& m, std::size_t cols) {
  std::vector<std::vector<std::int64_t>> out(
      cols, std::vector<std::int64_t>(m.size(), 0));
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < cols; ++j) out[j][i] = m[i][j];
  }
  return out;
}

}  // namespace

std::vector<Semiflow> place_semiflows(const PetriNet& net,
                                      const InvariantOptions& options) {
  return farkas(incidence(net), options);
}

std::vector<Semiflow> transition_semiflows(const PetriNet& net,
                                           const InvariantOptions& options) {
  return farkas(transpose(incidence(net), net.transition_count()), options);
}

bool covered_by_place_semiflows(const PetriNet& net,
                                const InvariantOptions& options) {
  auto flows = place_semiflows(net, options);
  for (PlaceId p : net.all_places()) {
    bool covered = false;
    for (const Semiflow& flow : flows) {
      if (flow.weights[p.index()] != 0) covered = true;
    }
    if (!covered) return false;
  }
  return !flows.empty() || net.place_count() == 0;
}

std::int64_t invariant_constant(const PetriNet& net, const Semiflow& flow) {
  std::int64_t sum = 0;
  for (PlaceId p : net.all_places()) {
    sum += flow.weights[p.index()] *
           static_cast<std::int64_t>(net.initial_marking()[p]);
  }
  return sum;
}

bool invariant_holds(const PetriNet& net, const Semiflow& flow,
                     MarkingView m) {
  std::int64_t sum = 0;
  for (PlaceId p : net.all_places()) {
    sum += flow.weights[p.index()] * static_cast<std::int64_t>(m[p]);
  }
  return sum == invariant_constant(net, flow);
}

}  // namespace cipnet
