#pragma once

// Content addressing for nets: a stable 64-bit hash over a canonical
// serialization of a `PetriNet`'s full structure — places (names + initial
// tokens), the alphabet (as a *sorted* label set, so label-interning order
// does not leak in), and transitions (preset, label, postset, guard) in id
// order. Two nets built by the same construction sequence — in particular,
// two parses of the same `.cpn`/`.g` text — hash equal; the hash is
// platform- and process-independent (FNV-1a, util/hash.h), so it can key
// persistent or cross-process caches (svc/result_cache.h). It is *not* an
// isomorphism hash: structurally equal nets with permuted place ids hash
// differently.

#include <cstdint>

#include "petri/net.h"

namespace cipnet {

[[nodiscard]] std::uint64_t canonical_hash(const PetriNet& net);

}  // namespace cipnet
