#include "petri/siphons.h"

#include <algorithm>

#include "util/error.h"
#include "util/sorted_set.h"

namespace cipnet {

bool is_siphon(const PetriNet& net, const std::vector<PlaceId>& places) {
  if (places.empty()) return false;
  // Every transition producing into the set must consume from it.
  for (PlaceId p : places) {
    for (TransitionId t : net.producers_of(p)) {
      if (!sorted_set::intersects(net.transition(t).preset, places)) {
        return false;
      }
    }
  }
  return true;
}

bool is_trap(const PetriNet& net, const std::vector<PlaceId>& places) {
  if (places.empty()) return false;
  // Every transition consuming from the set must produce into it.
  for (PlaceId p : places) {
    for (TransitionId t : net.consumers_of(p)) {
      if (!sorted_set::intersects(net.transition(t).postset, places)) {
        return false;
      }
    }
  }
  return true;
}

std::vector<PlaceId> maximal_trap_within(const PetriNet& net,
                                         std::vector<PlaceId> places) {
  sorted_set::normalize(places);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < places.size(); ++i) {
      PlaceId p = places[i];
      bool keep = true;
      for (TransitionId t : net.consumers_of(p)) {
        if (!sorted_set::intersects(net.transition(t).postset, places)) {
          keep = false;
          break;
        }
      }
      if (!keep) {
        places.erase(places.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
        break;
      }
    }
  }
  return places;
}

namespace {

struct SiphonSearch {
  const PetriNet& net;
  const SiphonOptions& options;
  std::size_t nodes = 0;
  std::vector<std::vector<PlaceId>> found;

  /// A producer into `current` whose preset misses `current`, or nullopt if
  /// the set is already a siphon.
  std::optional<TransitionId> open_producer(
      const std::vector<PlaceId>& current) const {
    for (PlaceId p : current) {
      for (TransitionId t : net.producers_of(p)) {
        if (!sorted_set::intersects(net.transition(t).preset, current)) {
          return t;
        }
      }
    }
    return std::nullopt;
  }

  void record(const std::vector<PlaceId>& siphon) {
    // Keep only inclusion-minimal results.
    for (const auto& existing : found) {
      if (sorted_set::is_subset(existing, siphon)) return;
    }
    std::erase_if(found, [&](const std::vector<PlaceId>& existing) {
      return sorted_set::is_subset(siphon, existing);
    });
    found.push_back(siphon);
  }

  void grow(std::vector<PlaceId> current,
            const std::vector<PlaceId>& forbidden) {
    if (++nodes > options.max_nodes) {
      throw LimitError("minimal siphon search exceeded max_nodes");
    }
    if (found.size() >= options.max_siphons) return;
    // Prune: a superset of an already found siphon cannot be minimal.
    for (const auto& existing : found) {
      if (sorted_set::is_subset(existing, current)) return;
    }
    auto open = open_producer(current);
    if (!open) {
      record(current);
      return;
    }
    // Branch: one of the producer's input places must join the siphon.
    for (PlaceId p : net.transition(*open).preset) {
      if (sorted_set::contains(forbidden, p)) continue;
      auto extended = current;
      sorted_set::insert(extended, p);
      // Forbid earlier alternatives in sibling branches to avoid revisiting
      // the same sets (standard refinement).
      grow(std::move(extended), forbidden);
    }
  }
};

}  // namespace

std::vector<std::vector<PlaceId>> minimal_siphons(
    const PetriNet& net, const SiphonOptions& options) {
  SiphonSearch search{net, options};
  std::vector<PlaceId> forbidden;
  for (PlaceId seed : net.all_places()) {
    // Seeds processed in order; earlier seeds are forbidden later so each
    // minimal siphon is produced from its smallest member.
    search.grow({seed}, forbidden);
    forbidden.push_back(seed);
  }
  std::sort(search.found.begin(), search.found.end());
  return search.found;
}

CommonerReport check_commoner(const PetriNet& net,
                              const SiphonOptions& options) {
  CommonerReport report;
  for (const auto& siphon : minimal_siphons(net, options)) {
    auto trap = maximal_trap_within(net, siphon);
    bool marked = false;
    for (PlaceId p : trap) {
      marked = marked || net.initial_marking()[p] > 0;
    }
    if (trap.empty() || !marked) {
      report.holds = false;
      report.offending_siphon = siphon;
      return report;
    }
  }
  return report;
}

}  // namespace cipnet
