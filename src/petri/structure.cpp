#include "petri/structure.h"

#include <algorithm>

#include "obs/trace.h"
#include "petri/invariants.h"
#include "util/error.h"

namespace cipnet {

StructureClass classify(const PetriNet& net) {
  obs::Span span("petri.classify");
  StructureClass c;
  c.marked_graph = is_marked_graph(net);
  c.state_machine = is_state_machine(net);
  c.free_choice = is_free_choice(net);
  c.extended_free_choice = is_extended_free_choice(net);
  return c;
}

bool is_marked_graph(const PetriNet& net) {
  for (PlaceId p : net.all_places()) {
    if (net.consumers_of(p).size() > 1 || net.producers_of(p).size() > 1) {
      return false;
    }
  }
  return true;
}

bool is_state_machine(const PetriNet& net) {
  for (TransitionId t : net.all_transitions()) {
    const auto& tr = net.transition(t);
    if (tr.preset.size() != 1 || tr.postset.size() != 1) return false;
  }
  return true;
}

bool is_free_choice(const PetriNet& net) {
  for (PlaceId p : net.all_places()) {
    const auto& consumers = net.consumers_of(p);
    if (consumers.size() <= 1) continue;
    for (TransitionId t : consumers) {
      const auto& preset = net.transition(t).preset;
      if (preset.size() != 1 || preset[0] != p) return false;
    }
  }
  return true;
}

bool is_extended_free_choice(const PetriNet& net) {
  for (PlaceId p : net.all_places()) {
    const auto& consumers = net.consumers_of(p);
    for (std::size_t i = 1; i < consumers.size(); ++i) {
      if (net.transition(consumers[i]).preset !=
          net.transition(consumers[0]).preset) {
        return false;
      }
    }
  }
  return true;
}

bool is_structurally_safe(const PetriNet& net) {
  obs::Span span("petri.safety_check");
  const Marking& m0 = net.initial_marking();
  for (Token t : m0.tokens()) {
    if (t > 1) return false;  // M0 itself is reachable
  }
  // Producer-free places can only lose their (at most one) token.
  std::vector<bool> proven(net.place_count(), false);
  std::size_t open = 0;
  for (PlaceId p : net.all_places()) {
    if (net.producers_of(p).empty()) {
      proven[p.index()] = true;
    } else {
      ++open;
    }
  }
  if (open == 0) return true;
  // A state machine moves exactly one token per firing, so the total is
  // invariant; one token in the whole net bounds every place by 1.
  if (m0.total() <= 1 && is_state_machine(net)) return true;
  // Semiflow cover under a small Farkas budget — enumeration blowup means
  // "not proven", never an error surfaced to the caller.
  InvariantOptions options;
  options.max_rows = 512;
  std::vector<Semiflow> flows;
  try {
    flows = place_semiflows(net, options);
  } catch (const LimitError&) {
    return false;
  }
  for (const Semiflow& y : flows) {
    const std::int64_t constant = invariant_constant(net, y);
    for (std::size_t p = 0; p < net.place_count(); ++p) {
      if (!proven[p] && y.weights[p] >= 1 && constant <= y.weights[p]) {
        proven[p] = true;
        --open;
      }
    }
  }
  return open == 0;
}

Digraph flow_digraph(const PetriNet& net) {
  const int p_count = static_cast<int>(net.place_count());
  Digraph g(p_count + static_cast<int>(net.transition_count()));
  for (TransitionId t : net.all_transitions()) {
    const auto& tr = net.transition(t);
    const int t_node = p_count + static_cast<int>(t.index());
    for (PlaceId p : tr.preset) {
      g.add_edge(static_cast<int>(p.index()), t_node);
    }
    for (PlaceId p : tr.postset) {
      g.add_edge(t_node, static_cast<int>(p.index()));
    }
  }
  return g;
}

bool is_strongly_connected(const PetriNet& net) {
  if (net.place_count() == 0 || net.transition_count() == 0) return false;
  return is_strongly_connected(flow_digraph(net));
}

std::optional<TransitionGraph> transition_graph(const PetriNet& net) {
  TransitionGraph tg;
  tg.graph = Digraph(static_cast<int>(net.transition_count()));
  for (PlaceId p : net.all_places()) {
    const auto& producers = net.producers_of(p);
    const auto& consumers = net.consumers_of(p);
    if (producers.size() != 1 || consumers.size() != 1) return std::nullopt;
    tg.graph.add_edge(static_cast<int>(producers[0].index()),
                      static_cast<int>(consumers[0].index()),
                      net.initial_marking()[p]);
    tg.edge_place.push_back(p);
  }
  return tg;
}

}  // namespace cipnet
