#include "petri/packed.h"

#include "util/sorted_set.h"

namespace cipnet {

PackedNet::PackedNet(const PetriNet& net)
    : places_(net.place_count()),
      transitions_(net.transition_count()),
      words_(packed::word_count(net.place_count())) {
  pre_.assign(transitions_ * words_, 0);
  consume_.assign(transitions_ * words_, 0);
  produce_.assign(transitions_ * words_, 0);
  auto set_bit = [this](std::vector<std::uint64_t>& table, std::size_t t,
                        PlaceId p) {
    table[t * words_ + p.index() / packed::kBitsPerWord] |=
        std::uint64_t{1} << (p.index() % packed::kBitsPerWord);
  };
  for (std::size_t i = 0; i < transitions_; ++i) {
    const auto& tr = net.transition(TransitionId(
        static_cast<std::uint32_t>(i)));
    for (PlaceId p : tr.preset) {
      set_bit(pre_, i, p);
      // Self-loops (read arcs) test the token without moving it: they are
      // in `pre` but in neither `consume` nor `produce`.
      if (!sorted_set::contains(tr.postset, p)) set_bit(consume_, i, p);
    }
    for (PlaceId p : tr.postset) {
      if (!sorted_set::contains(tr.preset, p)) set_bit(produce_, i, p);
    }
  }
}

void PackedNet::enabled_transitions(const std::uint64_t* m,
                                    std::vector<TransitionId>& out) const {
  out.clear();
  for (std::size_t i = 0; i < transitions_; ++i) {
    TransitionId t(static_cast<std::uint32_t>(i));
    if (is_enabled(m, t)) out.push_back(t);
  }
}

}  // namespace cipnet
