#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/hash.h"
#include "util/strong_id.h"

namespace cipnet {

using Token = std::uint32_t;

/// A marking `M : P -> N` (Definition 2.1): the number of tokens in each
/// place, indexed densely by `PlaceId`. General nets are supported — token
/// counts are natural numbers, not restricted to {0, 1}.
class Marking {
 public:
  Marking() = default;
  explicit Marking(std::size_t place_count) : tokens_(place_count, 0) {}
  explicit Marking(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  [[nodiscard]] std::size_t size() const { return tokens_.size(); }

  [[nodiscard]] Token operator[](PlaceId p) const { return tokens_[p.index()]; }
  [[nodiscard]] Token& operator[](PlaceId p) { return tokens_[p.index()]; }

  [[nodiscard]] const std::vector<Token>& tokens() const { return tokens_; }

  /// Total number of tokens across all places.
  [[nodiscard]] std::uint64_t total() const;

  /// True iff no place holds more than one token.
  [[nodiscard]] bool is_safe() const;

  /// Places with at least one token, ascending.
  [[nodiscard]] std::vector<PlaceId> marked_places() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Marking& a, const Marking& b) = default;

 private:
  std::vector<Token> tokens_;
};

struct MarkingHash {
  std::size_t operator()(const Marking& m) const {
    return hash_range(m.tokens());
  }
};

}  // namespace cipnet
