#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/hash.h"
#include "util/strong_id.h"

namespace cipnet {

using Token = std::uint32_t;

/// A marking `M : P -> N` (Definition 2.1): the number of tokens in each
/// place, indexed densely by `PlaceId`. General nets are supported — token
/// counts are natural numbers, not restricted to {0, 1}.
class Marking {
 public:
  Marking() = default;
  explicit Marking(std::size_t place_count) : tokens_(place_count, 0) {}
  explicit Marking(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  [[nodiscard]] std::size_t size() const { return tokens_.size(); }

  [[nodiscard]] Token operator[](PlaceId p) const { return tokens_[p.index()]; }
  [[nodiscard]] Token& operator[](PlaceId p) { return tokens_[p.index()]; }

  [[nodiscard]] const std::vector<Token>& tokens() const { return tokens_; }

  /// Total number of tokens across all places.
  [[nodiscard]] std::uint64_t total() const;

  /// True iff no place holds more than one token.
  [[nodiscard]] bool is_safe() const;

  /// Places with at least one token, ascending.
  [[nodiscard]] std::vector<PlaceId> marked_places() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Marking& a, const Marking& b) = default;

 private:
  std::vector<Token> tokens_;
};

/// A non-owning view of a marking: `place_count` tokens living somewhere
/// else — a `Marking`, or one row of the flat `reach::MarkingStore` arena.
/// The dynamics (`PetriNet::is_enabled`, `enabled_transitions`, `fire_into`)
/// and the read-only inspection helpers all work on views, so arena-backed
/// reachability graphs never materialize per-state `Marking` objects.
/// Views are trivially copyable and valid only while the backing storage is.
class MarkingView {
 public:
  constexpr MarkingView() = default;
  constexpr MarkingView(const Token* data, std::size_t size)
      : data_(data), size_(size) {}
  /*implicit*/ MarkingView(const Marking& m)
      : data_(m.tokens().data()), size_(m.size()) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const Token* data() const { return data_; }
  [[nodiscard]] const Token* begin() const { return data_; }
  [[nodiscard]] const Token* end() const { return data_ + size_; }

  [[nodiscard]] Token operator[](PlaceId p) const { return data_[p.index()]; }

  /// Materialize an owning copy (e.g. to keep a witness marking alive
  /// beyond the exploration that produced it).
  [[nodiscard]] Marking to_marking() const {
    return Marking(std::vector<Token>(data_, data_ + size_));
  }

  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] bool is_safe() const;
  [[nodiscard]] std::vector<PlaceId> marked_places() const;
  [[nodiscard]] std::string to_string() const;

  /// Elementwise; mixed Marking/view comparisons go through the implicit
  /// conversion.
  friend bool operator==(MarkingView a, MarkingView b);

 private:
  const Token* data_ = nullptr;
  std::size_t size_ = 0;
};

struct MarkingHash {
  std::size_t operator()(const Marking& m) const {
    return hash_range(m.tokens());
  }
};

}  // namespace cipnet
