#include "petri/rebuild.h"

#include <map>
#include <tuple>

#include "util/sorted_set.h"

namespace cipnet {

NetSlice restrict_transitions(const PetriNet& net,
                              std::vector<TransitionId> keep,
                              bool drop_isolated_places) {
  sorted_set::normalize(keep);

  NetSlice out;
  out.place_map.resize(net.place_count());
  out.transition_map.resize(net.transition_count());

  // Decide which places survive.
  std::vector<bool> place_used(net.place_count(), false);
  for (TransitionId t : keep) {
    for (PlaceId p : net.transition(t).preset) place_used[p.index()] = true;
    for (PlaceId p : net.transition(t).postset) place_used[p.index()] = true;
  }
  for (std::size_t i = 0; i < net.place_count(); ++i) {
    PlaceId p(static_cast<std::uint32_t>(i));
    bool survives = !drop_isolated_places || place_used[i] ||
                    net.initial_marking()[p] > 0;
    if (survives) {
      out.place_map[i] =
          out.net.add_place(net.place(p).name, net.initial_marking()[p]);
    }
  }

  // Preserve the whole alphabet (even labels that lose all transitions).
  for (std::size_t a = 0; a < net.action_count(); ++a) {
    out.net.add_action(net.label(ActionId(static_cast<std::uint32_t>(a))));
  }

  for (TransitionId t : keep) {
    const auto& tr = net.transition(t);
    std::vector<PlaceId> preset, postset;
    for (PlaceId p : tr.preset) preset.push_back(*out.place_map[p.index()]);
    for (PlaceId p : tr.postset) postset.push_back(*out.place_map[p.index()]);
    out.transition_map[t.index()] = out.net.add_transition(
        std::move(preset), out.net.add_action(net.label(tr.action)),
        std::move(postset), tr.guard);
  }
  return out;
}

NetSlice remove_transitions(const PetriNet& net,
                            std::vector<TransitionId> remove,
                            bool drop_isolated_places) {
  sorted_set::normalize(remove);
  std::vector<TransitionId> keep;
  for (TransitionId t : net.all_transitions()) {
    if (!sorted_set::contains(remove, t)) keep.push_back(t);
  }
  return restrict_transitions(net, std::move(keep), drop_isolated_places);
}

PetriNet clone(const PetriNet& net) {
  return restrict_transitions(net, net.all_transitions()).net;
}

namespace {

/// One pass: returns true if anything changed.
bool simplify_places_once(PetriNet& net) {
  std::vector<bool> drop(net.place_count(), false);
  bool changed = false;
  // Pure sinks.
  for (PlaceId p : net.all_places()) {
    if (net.consumers_of(p).empty()) {
      drop[p.index()] = true;
      changed = true;
    }
  }
  // Duplicates: group by (producers, consumers, tokens); keep the first.
  std::map<std::tuple<std::vector<TransitionId>, std::vector<TransitionId>,
                      Token>,
           PlaceId>
      seen;
  for (PlaceId p : net.all_places()) {
    if (drop[p.index()]) continue;
    auto key = std::make_tuple(net.producers_of(p), net.consumers_of(p),
                               net.initial_marking()[p]);
    auto [it, fresh] = seen.try_emplace(std::move(key), p);
    if (!fresh) {
      drop[p.index()] = true;
      changed = true;
    }
  }
  if (!changed) return false;

  PetriNet out;
  std::vector<std::optional<PlaceId>> place_map(net.place_count());
  for (PlaceId p : net.all_places()) {
    if (drop[p.index()]) continue;
    place_map[p.index()] =
        out.add_place(net.place(p).name, net.initial_marking()[p]);
  }
  for (std::size_t a = 0; a < net.action_count(); ++a) {
    out.add_action(net.label(ActionId(static_cast<std::uint32_t>(a))));
  }
  for (TransitionId t : net.all_transitions()) {
    const auto& tr = net.transition(t);
    std::vector<PlaceId> preset, postset;
    for (PlaceId p : tr.preset) {
      if (place_map[p.index()]) preset.push_back(*place_map[p.index()]);
    }
    for (PlaceId p : tr.postset) {
      if (place_map[p.index()]) postset.push_back(*place_map[p.index()]);
    }
    out.add_transition(std::move(preset),
                       out.add_action(net.label(tr.action)),
                       std::move(postset), tr.guard);
  }
  net = std::move(out);
  return true;
}

}  // namespace

PetriNet simplify_places(const PetriNet& net) {
  PetriNet current = clone(net);
  while (simplify_places_once(current)) {
  }
  return current;
}

}  // namespace cipnet
