#pragma once

#include <optional>
#include <vector>

#include "petri/net.h"

namespace cipnet {

/// Siphon/trap structural theory (Peterson [8], Commoner). A *siphon* is a
/// place set that, once empty, stays empty (every producer into the set
/// also consumes from it); a *trap* is its dual — once marked, it stays
/// marked. For free-choice nets, Commoner's theorem ties them to liveness:
/// the net is live iff every minimal siphon contains an initially marked
/// trap. This is the polynomial-vs-exponential boundary the paper gestures
/// at in Section 5.1.

[[nodiscard]] bool is_siphon(const PetriNet& net,
                             const std::vector<PlaceId>& places);
[[nodiscard]] bool is_trap(const PetriNet& net,
                           const std::vector<PlaceId>& places);

/// Largest trap contained in `places` (possibly empty): the greatest
/// fixpoint of removing places whose consumption can leave the set.
[[nodiscard]] std::vector<PlaceId> maximal_trap_within(
    const PetriNet& net, std::vector<PlaceId> places);

struct SiphonOptions {
  /// Minimal-siphon enumeration is exponential in the worst case; the
  /// search is cut off (LimitError) beyond this many branch nodes.
  std::size_t max_nodes = 200000;
  /// Stop after this many minimal siphons.
  std::size_t max_siphons = 1024;
};

/// All minimal (by set inclusion) non-empty siphons, via branch and bound:
/// close the candidate under "some input place of every producer", branch
/// over the choice of input place.
[[nodiscard]] std::vector<std::vector<PlaceId>> minimal_siphons(
    const PetriNet& net, const SiphonOptions& options = {});

/// Commoner's deadlock-freedom condition: every minimal siphon contains a
/// trap that is marked at M0. Sufficient for deadlock-freedom of any net;
/// for free-choice nets it is equivalent to liveness.
struct CommonerReport {
  bool holds = true;
  /// A siphon violating the condition (its maximal trap is unmarked).
  std::optional<std::vector<PlaceId>> offending_siphon;
};

[[nodiscard]] CommonerReport check_commoner(const PetriNet& net,
                                            const SiphonOptions& options = {});

}  // namespace cipnet
