#pragma once

// Word-parallel dynamics for 1-safe nets. Every net the source paper works
// with — STG translations of asynchronous modules, the Fig. 1-9 algebra
// examples, CIP channel encodings — is 1-safe by construction, so a marking
// is a *set* of places and fits one bit per place. `PackedNet` precomputes,
// per transition, three word masks over that bitvector:
//
//   pre      — the preset (all places that must hold a token),
//   consume  — preset \ postset (places whose token is removed),
//   produce  — postset \ preset (places that gain a token),
//
// after which the Definition 2.2 firing rule collapses to a handful of
// bitwise ops per 64 places:
//
//   enabled(M, t)  ⇔  (M & pre) == pre
//   fire(M, t)     =   (M & ~consume) | produce
//
// This is strictly a *1-safe* semantics: if a produced place already holds
// a token, the dense rule would put two tokens there while the OR silently
// saturates at one. `fire_into` therefore reports that case to the caller
// (the reachability engine treats it as "this net is not 1-safe after all"
// and falls back to the dense engine).

#include <cstdint>
#include <vector>

#include "petri/net.h"

namespace cipnet {

namespace packed {

inline constexpr std::size_t kBitsPerWord = 64;

/// Words needed for one packed marking over `places` places.
[[nodiscard]] constexpr std::size_t word_count(std::size_t places) {
  return (places + kBitsPerWord - 1) / kBitsPerWord;
}

/// Pack a dense token row into `out` (`word_count(places)` words, fully
/// overwritten). Returns false — with `out` unspecified — if any place
/// holds more than one token, i.e. the marking has no 1-safe encoding.
[[nodiscard]] inline bool pack_row(const Token* tokens, std::size_t places,
                                   std::uint64_t* out) {
  for (std::size_t w = 0; w < word_count(places); ++w) out[w] = 0;
  for (std::size_t p = 0; p < places; ++p) {
    if (tokens[p] > 1) return false;
    out[p / kBitsPerWord] |=
        static_cast<std::uint64_t>(tokens[p]) << (p % kBitsPerWord);
  }
  return true;
}

/// Unpack a packed marking back into a dense 0/1 token row.
inline void unpack_row(const std::uint64_t* words, std::size_t places,
                       Token* out) {
  for (std::size_t p = 0; p < places; ++p) {
    out[p] = static_cast<Token>((words[p / kBitsPerWord] >>
                                 (p % kBitsPerWord)) &
                                1u);
  }
}

}  // namespace packed

/// Per-transition word masks of a net, precomputed once per exploration.
/// Rows of all three mask tables are flat (`transition t` owns words
/// `[t*words, (t+1)*words)`), so the inner loops touch contiguous memory.
class PackedNet {
 public:
  explicit PackedNet(const PetriNet& net);

  [[nodiscard]] std::size_t place_count() const { return places_; }
  [[nodiscard]] std::size_t transition_count() const { return transitions_; }
  /// Words per packed marking row.
  [[nodiscard]] std::size_t words() const { return words_; }

  [[nodiscard]] const std::uint64_t* pre(TransitionId t) const {
    return pre_.data() + t.index() * words_;
  }
  [[nodiscard]] const std::uint64_t* consume(TransitionId t) const {
    return consume_.data() + t.index() * words_;
  }
  [[nodiscard]] const std::uint64_t* produce(TransitionId t) const {
    return produce_.data() + t.index() * words_;
  }

  /// `(m & pre) == pre`, word-parallel.
  [[nodiscard]] bool is_enabled(const std::uint64_t* m, TransitionId t) const {
    const std::uint64_t* p = pre(t);
    for (std::size_t w = 0; w < words_; ++w) {
      if ((m[w] & p[w]) != p[w]) return false;
    }
    return true;
  }

  /// `out = (m & ~consume) | produce` (precondition: enabled). Returns
  /// false when a produced place already held a token — the dense rule
  /// would yield two tokens there, so the 1-safe encoding is unsound for
  /// this firing and the caller must fall back to the dense engine.
  [[nodiscard]] bool fire_into(const std::uint64_t* m, TransitionId t,
                               std::uint64_t* out) const {
    const std::uint64_t* con = consume(t);
    const std::uint64_t* pro = produce(t);
    std::uint64_t clash = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      clash |= m[w] & pro[w];
      out[w] = (m[w] & ~con[w]) | pro[w];
    }
    return clash == 0;
  }

  /// All enabled transitions, ascending — the packed counterpart of
  /// `PetriNet::enabled_transitions`.
  void enabled_transitions(const std::uint64_t* m,
                           std::vector<TransitionId>& out) const;

 private:
  std::size_t places_ = 0;
  std::size_t transitions_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> pre_;
  std::vector<std::uint64_t> consume_;
  std::vector<std::uint64_t> produce_;
};

}  // namespace cipnet
