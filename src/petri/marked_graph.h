#pragma once

#include <optional>
#include <vector>

#include "petri/net.h"
#include "petri/structure.h"

namespace cipnet {

/// Structural (polynomial-time) analyses for marked graphs, after Murata /
/// Commoner-Holt. These are the checks the paper appeals to in Sections 5.2
/// and 5.3 ("can be done in polynomial time and space for marked and
/// free-choice nets"). All functions require that `transition_graph(net)`
/// exists (every place has exactly one producer and one consumer); they
/// throw `SemanticError` otherwise.

/// A marked graph is live iff every directed circuit carries at least one
/// token (equivalently: the token-free sub-graph is acyclic).
[[nodiscard]] bool mg_is_live(const PetriNet& net);

/// Maximum number of tokens place `p` can ever hold = the minimum token
/// count over all directed circuits through `p` (valid for live,
/// strongly-connected marked graphs). Empty optional if no circuit passes
/// through `p` (then `p` is structurally unbounded in a live net).
[[nodiscard]] std::optional<Token> mg_place_bound(const PetriNet& net,
                                                  PlaceId p);

/// Safe iff every place's bound is 1 (live, strongly-connected marked
/// graphs).
[[nodiscard]] bool mg_is_safe(const PetriNet& net);

/// Transitions that can never fire (not L1-live), computed as the complement
/// of the least fixpoint of: `t` can fire if every input place either holds
/// a token initially or is fed by a transition that can fire. Marked graphs
/// are conflict-free, so "can fire in some run" equals "fires in every
/// maximal run", which makes this exact. Used for the polynomial
/// dead-transition removal after parallel composition (Section 5.2).
[[nodiscard]] std::vector<TransitionId> mg_dead_transitions(
    const PetriNet& net);

}  // namespace cipnet
