#include "petri/marked_graph.h"

#include <deque>

#include "util/error.h"

namespace cipnet {

namespace {

TransitionGraph require_tg(const PetriNet& net) {
  auto tg = transition_graph(net);
  if (!tg) {
    throw SemanticError(
        "marked-graph analysis requires every place to have exactly one "
        "producer and one consumer");
  }
  return std::move(*tg);
}

}  // namespace

bool mg_is_live(const PetriNet& net) {
  TransitionGraph tg = require_tg(net);
  // Keep only token-free edges; the net is live iff this sub-graph is acyclic.
  Digraph zero(tg.graph.node_count());
  for (int e = 0; e < tg.graph.edge_count(); ++e) {
    const auto& edge = tg.graph.edge(e);
    if (edge.weight == 0) zero.add_edge(edge.from, edge.to);
  }
  return !has_cycle(zero);
}

std::optional<Token> mg_place_bound(const PetriNet& net, PlaceId p) {
  TransitionGraph tg = require_tg(net);
  for (int e = 0; e < tg.graph.edge_count(); ++e) {
    if (tg.edge_place[e] == p) {
      auto w = min_cycle_weight_through_edge(tg.graph, e);
      if (!w) return std::nullopt;
      return static_cast<Token>(*w);
    }
  }
  throw SemanticError("place not found in transition graph");
}

bool mg_is_safe(const PetriNet& net) {
  TransitionGraph tg = require_tg(net);
  for (int e = 0; e < tg.graph.edge_count(); ++e) {
    auto w = min_cycle_weight_through_edge(tg.graph, e);
    if (!w || *w > 1) return false;
  }
  return true;
}

std::vector<TransitionId> mg_dead_transitions(const PetriNet& net) {
  // Conflict-freedom (at most one consumer per place) is what makes the
  // fixpoint exact; places with no producer are allowed (they simply are
  // never refilled).
  if (!is_marked_graph(net)) {
    throw SemanticError("mg_dead_transitions requires a marked graph");
  }
  const std::size_t n = net.transition_count();
  std::vector<bool> can_fire(n, false);
  // Least fixpoint by worklist: recheck a transition whenever one of the
  // producers feeding its token-free input places becomes fireable.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (can_fire[i]) continue;
      TransitionId t(static_cast<std::uint32_t>(i));
      bool ok = true;
      for (PlaceId p : net.transition(t).preset) {
        if (net.initial_marking()[p] > 0) continue;
        const auto& producers = net.producers_of(p);
        if (producers.empty() || !can_fire[producers[0].index()]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        can_fire[i] = true;
        changed = true;
      }
    }
  }
  std::vector<TransitionId> dead;
  for (std::size_t i = 0; i < n; ++i) {
    if (!can_fire[i]) dead.push_back(TransitionId(static_cast<std::uint32_t>(i)));
  }
  return dead;
}

}  // namespace cipnet
