#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "petri/guard.h"
#include "petri/marking.h"
#include "util/strong_id.h"

namespace cipnet {

/// Canonical label of the dummy transition `ε` (Definition 2.3).
inline constexpr std::string_view kEpsilonLabel = "eps";

[[nodiscard]] inline bool is_epsilon_label(std::string_view label) {
  return label == kEpsilonLabel;
}

/// A labeled Petri net `N = (A, P, ->, M0)` (Definition 2.1).
///
/// * `A` — an explicit action alphabet. The alphabet may contain actions
///   with *no* transitions; this matters for parallel composition
///   (Definition 4.7 synchronizes on `A1 ∩ A2`, so a common action that one
///   operand never fires blocks the other operand's transitions) and for
///   hiding (which removes the action from the alphabet).
/// * `P` — places, with human-readable names (unique within the net).
/// * `->` ⊆ 2^P × A × 2^P — transitions as (preset, action, postset) with
///   presets/postsets stored as sorted place-id sets. Ordinary nets: arcs
///   have weight one; a place in both preset and postset is a self-loop
///   (read arc) which tests a token without net change (Definition 2.2).
/// * `M0` — the initial marking, over the natural numbers (general nets).
///
/// Transitions additionally carry an optional boolean `Guard` (the STG
/// extension of Section 2.2); `Guard()` is `true` and is ignored by the pure
/// Petri net dynamics unless a caller evaluates guards (the STG state graph
/// does).
class PetriNet {
 public:
  struct Place {
    std::string name;
  };

  struct Transition {
    std::vector<PlaceId> preset;   // sorted
    std::vector<PlaceId> postset;  // sorted
    ActionId action;
    Guard guard;
  };

  PetriNet() = default;

  // ----- construction -------------------------------------------------

  /// Adds a place. Names must be unique; pass `initial` tokens for M0.
  PlaceId add_place(std::string name, Token initial = 0);

  /// Interns an action label into the alphabet (idempotent).
  ActionId add_action(std::string label);

  /// Adds a transition (preset, action, postset); duplicate places within a
  /// pre/postset are collapsed (sets, not multisets).
  TransitionId add_transition(std::vector<PlaceId> preset, ActionId action,
                              std::vector<PlaceId> postset,
                              Guard guard = Guard());
  TransitionId add_transition(std::vector<PlaceId> preset,
                              const std::string& label,
                              std::vector<PlaceId> postset,
                              Guard guard = Guard());

  void set_initial_tokens(PlaceId p, Token count);

  // ----- structure accessors ------------------------------------------

  [[nodiscard]] std::size_t place_count() const { return places_.size(); }
  [[nodiscard]] std::size_t transition_count() const {
    return transitions_.size();
  }
  [[nodiscard]] std::size_t action_count() const { return labels_.size(); }

  [[nodiscard]] const Place& place(PlaceId p) const {
    return places_[p.index()];
  }
  [[nodiscard]] const Transition& transition(TransitionId t) const {
    return transitions_[t.index()];
  }
  [[nodiscard]] const std::string& label(ActionId a) const {
    return labels_[a.index()];
  }
  [[nodiscard]] const std::string& transition_label(TransitionId t) const {
    return labels_[transition(t).action.index()];
  }

  [[nodiscard]] std::optional<ActionId> find_action(
      std::string_view label) const;
  [[nodiscard]] std::optional<PlaceId> find_place(std::string_view name) const;

  /// All transitions labeled with `a`, ascending.
  [[nodiscard]] const std::vector<TransitionId>& transitions_with_action(
      ActionId a) const;

  /// Transitions consuming from / producing into `p`, ascending. A self-loop
  /// transition appears in both.
  [[nodiscard]] const std::vector<TransitionId>& consumers_of(PlaceId p) const;
  [[nodiscard]] const std::vector<TransitionId>& producers_of(PlaceId p) const;

  [[nodiscard]] const Marking& initial_marking() const { return initial_; }

  /// The alphabet as a sorted vector of labels (copies).
  [[nodiscard]] std::vector<std::string> alphabet() const;

  /// Replace the guard of a transition (used by STG construction and by the
  /// algebra when propagating guards).
  void set_guard(TransitionId t, Guard guard);

  // ----- dynamics (Definition 2.2) -------------------------------------

  /// A transition can fire in `m` iff every preset place holds a token.
  /// Guards are *not* evaluated here (see class comment). Takes a view so
  /// arena-backed explorers can query rows without materializing Markings
  /// (a `Marking` converts implicitly).
  [[nodiscard]] bool is_enabled(MarkingView m, TransitionId t) const;

  /// Fires `t` in `m` (precondition: enabled): tokens removed from
  /// `preset \ postset`, added to `postset \ preset`.
  [[nodiscard]] Marking fire(const Marking& m, TransitionId t) const;
  void fire_in_place(Marking& m, TransitionId t) const;

  /// Fires `t` from `m` into the reusable buffer `out` (resized/overwritten,
  /// no allocation once warm). `out` must not alias `m`'s storage. This is
  /// the explore/coverability inner-loop path: one successor candidate is
  /// built per edge, and only fresh ones are copied into the state store.
  void fire_into(MarkingView m, TransitionId t, std::vector<Token>& out) const;

  [[nodiscard]] std::vector<TransitionId> enabled_transitions(
      MarkingView m) const;

  // ----- convenience ----------------------------------------------------

  [[nodiscard]] std::vector<PlaceId> all_places() const;
  [[nodiscard]] std::vector<TransitionId> all_transitions() const;

  /// Sum of preset/postset sizes over all transitions (arc count).
  [[nodiscard]] std::size_t arc_count() const;

  /// Human-readable one-line summary "(|P|=.., |T|=.., |A|=.., arcs=..)".
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Place> places_;
  std::vector<Transition> transitions_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, ActionId> label_index_;
  std::unordered_map<std::string, PlaceId> place_index_;
  std::vector<std::vector<TransitionId>> by_action_;
  std::vector<std::vector<TransitionId>> consumers_;
  std::vector<std::vector<TransitionId>> producers_;
  Marking initial_;
};

}  // namespace cipnet
