#pragma once

#include <optional>
#include <vector>

#include "petri/net.h"

namespace cipnet {

/// Result of rebuilding a net: the new net plus id maps from the original.
/// `place_map[i]` / `transition_map[i]` give the new id of old place /
/// transition `i`, or nullopt if it was dropped.
struct NetSlice {
  PetriNet net;
  std::vector<std::optional<PlaceId>> place_map;
  std::vector<std::optional<TransitionId>> transition_map;
};

/// Rebuild `net` keeping only the transitions in `keep` (sorted or not).
/// The alphabet is preserved in full (dropping a transition does not shrink
/// `A`; only `hide` does that, per Definition 4.10). If
/// `drop_isolated_places` is set, places left with no producers, no
/// consumers *and* no initial token are removed.
[[nodiscard]] NetSlice restrict_transitions(const PetriNet& net,
                                            std::vector<TransitionId> keep,
                                            bool drop_isolated_places = false);

/// Rebuild without the given transitions (complement of the above).
[[nodiscard]] NetSlice remove_transitions(const PetriNet& net,
                                          std::vector<TransitionId> remove,
                                          bool drop_isolated_places = false);

/// Deep copy with densely renumbered ids (drops nothing).
[[nodiscard]] PetriNet clone(const PetriNet& net);

/// Trace-preserving place reduction, applied to fixpoint:
///  * places with no consumers never constrain any firing and are dropped
///    (they only accumulate tokens);
///  * places with identical producer sets, identical consumer sets and
///    identical initial marking are interchangeable — one representative is
///    kept. The hiding contraction of Definition 4.10 creates whole rows of
///    such duplicates (`(p_i, q_1) ... (p_i, q_m)` share all adjacency), so
///    this keeps repeated contraction from blowing up.
[[nodiscard]] PetriNet simplify_places(const PetriNet& net);

}  // namespace cipnet
