#include "petri/net.h"

#include <cassert>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/sorted_set.h"

namespace cipnet {

namespace {
const obs::Counter c_firings("petri.firings");
const obs::Counter c_enabled_scans("petri.enabled_scans");
}  // namespace

PlaceId PetriNet::add_place(std::string name, Token initial) {
  if (place_index_.contains(name)) {
    throw SemanticError("duplicate place name: " + name);
  }
  PlaceId id(static_cast<std::uint32_t>(places_.size()));
  place_index_.emplace(name, id);
  places_.push_back(Place{std::move(name)});
  consumers_.emplace_back();
  producers_.emplace_back();
  initial_ = Marking([&] {
    auto tokens = initial_.tokens();
    tokens.push_back(initial);
    return tokens;
  }());
  return id;
}

ActionId PetriNet::add_action(std::string label) {
  if (auto it = label_index_.find(label); it != label_index_.end()) {
    return it->second;
  }
  ActionId id(static_cast<std::uint32_t>(labels_.size()));
  label_index_.emplace(label, id);
  labels_.push_back(std::move(label));
  by_action_.emplace_back();
  return id;
}

TransitionId PetriNet::add_transition(std::vector<PlaceId> preset,
                                      ActionId action,
                                      std::vector<PlaceId> postset,
                                      Guard guard) {
  if (action.index() >= labels_.size()) {
    throw SemanticError("transition uses unknown action id");
  }
  sorted_set::normalize(preset);
  sorted_set::normalize(postset);
  for (PlaceId p : preset) {
    if (p.index() >= places_.size())
      throw SemanticError("transition preset uses unknown place id");
  }
  for (PlaceId p : postset) {
    if (p.index() >= places_.size())
      throw SemanticError("transition postset uses unknown place id");
  }
  TransitionId id(static_cast<std::uint32_t>(transitions_.size()));
  for (PlaceId p : preset) consumers_[p.index()].push_back(id);
  for (PlaceId p : postset) producers_[p.index()].push_back(id);
  by_action_[action.index()].push_back(id);
  transitions_.push_back(Transition{std::move(preset), std::move(postset),
                                    action, std::move(guard)});
  return id;
}

TransitionId PetriNet::add_transition(std::vector<PlaceId> preset,
                                      const std::string& label,
                                      std::vector<PlaceId> postset,
                                      Guard guard) {
  return add_transition(std::move(preset), add_action(label),
                        std::move(postset), std::move(guard));
}

void PetriNet::set_initial_tokens(PlaceId p, Token count) {
  initial_[p] = count;
}

std::optional<ActionId> PetriNet::find_action(std::string_view label) const {
  auto it = label_index_.find(std::string(label));
  if (it == label_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<PlaceId> PetriNet::find_place(std::string_view name) const {
  auto it = place_index_.find(std::string(name));
  if (it == place_index_.end()) return std::nullopt;
  return it->second;
}

const std::vector<TransitionId>& PetriNet::transitions_with_action(
    ActionId a) const {
  return by_action_[a.index()];
}

const std::vector<TransitionId>& PetriNet::consumers_of(PlaceId p) const {
  return consumers_[p.index()];
}

const std::vector<TransitionId>& PetriNet::producers_of(PlaceId p) const {
  return producers_[p.index()];
}

std::vector<std::string> PetriNet::alphabet() const {
  std::vector<std::string> out = labels_;
  sorted_set::normalize(out);
  return out;
}

void PetriNet::set_guard(TransitionId t, Guard guard) {
  transitions_[t.index()].guard = std::move(guard);
}

bool PetriNet::is_enabled(MarkingView m, TransitionId t) const {
  for (PlaceId p : transition(t).preset) {
    if (m[p] == 0) return false;
  }
  return true;
}

void PetriNet::fire_in_place(Marking& m, TransitionId t) const {
  const Transition& tr = transition(t);
  assert(is_enabled(m, t));
  c_firings.add();
  // M'(p) = M(p) - 1 on (preset minus postset), M(p) + 1 on (postset minus
  // preset), unchanged otherwise (self-loops only test the token).
  for (PlaceId p : tr.preset) {
    if (!sorted_set::contains(tr.postset, p)) m[p] -= 1;
  }
  for (PlaceId p : tr.postset) {
    if (!sorted_set::contains(tr.preset, p)) m[p] += 1;
  }
}

Marking PetriNet::fire(const Marking& m, TransitionId t) const {
  Marking next = m;
  fire_in_place(next, t);
  return next;
}

void PetriNet::fire_into(MarkingView m, TransitionId t,
                         std::vector<Token>& out) const {
  const Transition& tr = transition(t);
  assert(is_enabled(m, t));
  c_firings.add();
  out.assign(m.begin(), m.end());
  for (PlaceId p : tr.preset) {
    if (!sorted_set::contains(tr.postset, p)) out[p.index()] -= 1;
  }
  for (PlaceId p : tr.postset) {
    if (!sorted_set::contains(tr.preset, p)) out[p.index()] += 1;
  }
}

std::vector<TransitionId> PetriNet::enabled_transitions(MarkingView m) const {
  c_enabled_scans.add();
  std::vector<TransitionId> out;
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    TransitionId t(static_cast<std::uint32_t>(i));
    if (is_enabled(m, t)) out.push_back(t);
  }
  return out;
}

std::vector<PlaceId> PetriNet::all_places() const {
  std::vector<PlaceId> out;
  out.reserve(places_.size());
  for (std::size_t i = 0; i < places_.size(); ++i) {
    out.push_back(PlaceId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

std::vector<TransitionId> PetriNet::all_transitions() const {
  std::vector<TransitionId> out;
  out.reserve(transitions_.size());
  for (std::size_t i = 0; i < transitions_.size(); ++i) {
    out.push_back(TransitionId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

std::size_t PetriNet::arc_count() const {
  std::size_t n = 0;
  for (const Transition& t : transitions_) {
    n += t.preset.size() + t.postset.size();
  }
  return n;
}

std::string PetriNet::summary() const {
  return "(|P|=" + std::to_string(place_count()) +
         ", |T|=" + std::to_string(transition_count()) +
         ", |A|=" + std::to_string(action_count()) +
         ", arcs=" + std::to_string(arc_count()) + ")";
}

}  // namespace cipnet
