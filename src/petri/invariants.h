#pragma once

#include <cstdint>
#include <vector>

#include "petri/net.h"

namespace cipnet {

/// A place semiflow (P-invariant): a non-negative integer weighting `y` of
/// the places with `y · C = 0` for the incidence matrix `C` — the weighted
/// token sum is constant under every firing. A transition semiflow
/// (T-invariant) is the dual: a firing-count vector reproducing the
/// marking. Classic structural theory (Peterson [8] in the paper's
/// references): a net covered by P-semiflows is bounded; the mutex place
/// of an arbiter shows up as the invariant `mutex + granted1 + granted2 =
/// 1`.
struct Semiflow {
  /// Weight per place (P-semiflow) or per transition (T-semiflow).
  std::vector<std::int64_t> weights;

  [[nodiscard]] bool is_zero() const;
  /// Indices with non-zero weight, ascending.
  [[nodiscard]] std::vector<std::size_t> support() const;
};

struct InvariantOptions {
  /// The Farkas algorithm can blow up combinatorially; intermediate row
  /// counts beyond this raise LimitError.
  std::size_t max_rows = 4096;
};

/// Minimal-support P-semiflows via the Farkas algorithm.
[[nodiscard]] std::vector<Semiflow> place_semiflows(
    const PetriNet& net, const InvariantOptions& options = {});

/// Minimal-support T-semiflows (the dual computation).
[[nodiscard]] std::vector<Semiflow> transition_semiflows(
    const PetriNet& net, const InvariantOptions& options = {});

/// True iff every place lies in the support of some P-semiflow — a
/// *structural* (marking-independent) guarantee of boundedness.
[[nodiscard]] bool covered_by_place_semiflows(
    const PetriNet& net, const InvariantOptions& options = {});

/// The constant `y · M0` of a P-semiflow; combined with the weights this
/// bounds each place: `M(p) <= (y · M0) / y_p` for every reachable M.
[[nodiscard]] std::int64_t invariant_constant(const PetriNet& net,
                                              const Semiflow& semiflow);

/// Checks `y · M = y · M0` for a concrete marking (used in tests and as a
/// fast runtime assertion during simulation).
[[nodiscard]] bool invariant_holds(const PetriNet& net,
                                   const Semiflow& semiflow, MarkingView m);

}  // namespace cipnet
