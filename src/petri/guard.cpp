#include "petri/guard.h"

#include <algorithm>

#include "util/sorted_set.h"

namespace cipnet {

Guard::Guard(std::vector<Literal> literals) : literals_(std::move(literals)) {
  sorted_set::normalize(literals_);
}

Guard Guard::literal(std::string signal, bool level) {
  return Guard({{std::move(signal), level}});
}

bool Guard::is_contradiction() const {
  for (std::size_t i = 0; i + 1 < literals_.size(); ++i) {
    if (literals_[i].first == literals_[i + 1].first &&
        literals_[i].second != literals_[i + 1].second) {
      return true;
    }
  }
  return false;
}

Guard Guard::conjoin(const Guard& other) const {
  std::vector<Literal> merged = literals_;
  merged.insert(merged.end(), other.literals_.begin(), other.literals_.end());
  return Guard(std::move(merged));
}

bool Guard::evaluate(
    const std::vector<std::pair<std::string, bool>>& assignment) const {
  for (const auto& [signal, level] : literals_) {
    auto it = std::find_if(assignment.begin(), assignment.end(),
                           [&](const auto& a) { return a.first == signal; });
    if (it == assignment.end() || it->second != level) return false;
  }
  return true;
}

std::string Guard::to_string() const {
  if (is_true()) return "true";
  std::string out;
  for (std::size_t i = 0; i < literals_.size(); ++i) {
    if (i != 0) out += " & ";
    if (!literals_[i].second) out += "!";
    out += literals_[i].first;
  }
  return out;
}

}  // namespace cipnet
