#pragma once

#include <string>
#include <utility>
#include <vector>

namespace cipnet {

/// A boolean guard: a conjunction of literals over signal *levels* (the STG
/// extension of Section 2.2 / [9]). The empty conjunction is `true`. Guards
/// are attached to transitions; a guard on an incoming arc of a transition
/// (the paper's formulation) is semantically the same as a guard on the
/// transition itself, and transition-level storage lets the net algebra
/// propagate guards through composition and hiding (Section 5.1) without
/// tracking individual arcs.
class Guard {
 public:
  /// (signal name, required level). Literals are kept sorted by name.
  using Literal = std::pair<std::string, bool>;

  Guard() = default;
  explicit Guard(std::vector<Literal> literals);

  [[nodiscard]] static Guard literal(std::string signal, bool level);

  [[nodiscard]] bool is_true() const { return literals_.empty(); }

  /// True iff the conjunction contains `s` and `!s` for some signal — the
  /// guard can never be satisfied.
  [[nodiscard]] bool is_contradiction() const;

  [[nodiscard]] const std::vector<Literal>& literals() const {
    return literals_;
  }

  /// Conjunction of two guards (used when parallel composition joins two
  /// guarded transitions, and when hiding propagates the hidden transition's
  /// guard onto its successors).
  [[nodiscard]] Guard conjoin(const Guard& other) const;

  /// Evaluate under a (partial) assignment: `levels[i]` is the level of the
  /// signal named `names[i]`. Unknown signals make the guard false.
  [[nodiscard]] bool evaluate(
      const std::vector<std::pair<std::string, bool>>& assignment) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Guard& a, const Guard& b) = default;

 private:
  std::vector<Literal> literals_;
};

}  // namespace cipnet
