#include "petri/marking.h"

#include <numeric>

namespace cipnet {

std::uint64_t Marking::total() const {
  return std::accumulate(tokens_.begin(), tokens_.end(), std::uint64_t{0});
}

bool Marking::is_safe() const {
  for (Token t : tokens_) {
    if (t > 1) return false;
  }
  return true;
}

std::vector<PlaceId> Marking::marked_places() const {
  std::vector<PlaceId> out;
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i] > 0) out.push_back(PlaceId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

std::string Marking::to_string() const {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "p" + std::to_string(i);
    if (tokens_[i] > 1) out += ":" + std::to_string(tokens_[i]);
  }
  out += "}";
  return out;
}

}  // namespace cipnet
