#include "petri/marking.h"

#include <cstring>
#include <numeric>

namespace cipnet {

std::uint64_t Marking::total() const { return MarkingView(*this).total(); }

bool Marking::is_safe() const { return MarkingView(*this).is_safe(); }

std::vector<PlaceId> Marking::marked_places() const {
  return MarkingView(*this).marked_places();
}

std::string Marking::to_string() const {
  return MarkingView(*this).to_string();
}

std::uint64_t MarkingView::total() const {
  return std::accumulate(begin(), end(), std::uint64_t{0});
}

bool MarkingView::is_safe() const {
  for (Token t : *this) {
    if (t > 1) return false;
  }
  return true;
}

std::vector<PlaceId> MarkingView::marked_places() const {
  std::vector<PlaceId> out;
  for (std::size_t i = 0; i < size_; ++i) {
    if (data_[i] > 0) out.push_back(PlaceId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

std::string MarkingView::to_string() const {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < size_; ++i) {
    if (data_[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "p" + std::to_string(i);
    if (data_[i] > 1) out += ":" + std::to_string(data_[i]);
  }
  out += "}";
  return out;
}

bool operator==(MarkingView a, MarkingView b) {
  return a.size_ == b.size_ &&
         (a.size_ == 0 ||
          std::memcmp(a.data_, b.data_, a.size_ * sizeof(Token)) == 0);
}

}  // namespace cipnet
