#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"
#include "petri/net.h"

namespace cipnet {

/// Structural subclass flags of a net (Section 5.1: "Usually an STG is a
/// restricted subclass of Petri nets, e.g. the marked graphs or the
/// free-choice nets... Many properties can be checked structurally for
/// marked graphs and free-choice nets in polynomial time").
struct StructureClass {
  /// Every place has at most one consumer and at most one producer.
  bool marked_graph = false;
  /// Every transition has exactly one input and one output place.
  bool state_machine = false;
  /// If a place has several consumers, it is the sole input of each of them.
  bool free_choice = false;
  /// Transitions sharing any input place have identical presets.
  bool extended_free_choice = false;
};

[[nodiscard]] StructureClass classify(const PetriNet& net);

/// Structural proof of 1-safety: true only when every reachable marking is
/// guaranteed to hold at most one token per place, established without
/// exploring the state space. Sufficient conditions checked, cheapest
/// first:
///
///  * every place with no producer is bounded by its initial tokens;
///  * a state machine (every transition 1-in/1-out) conserves the total
///    token count, so total(M0) <= 1 bounds every place by 1;
///  * a place `p` covered by a P-semiflow `y` with `y_p >= 1` and
///    `y . M0 <= y_p` satisfies `M(p) <= (y . M0) / y_p <= 1` in every
///    reachable marking (the Farkas enumeration runs under a small row
///    budget; blowing it is treated as "not proven").
///
/// `false` means *not proven*, not "provably unsafe" — the packed
/// reachability engine (docs/PERFORMANCE.md) uses this as its selection
/// predicate and keeps a dynamic guard for forced-packed runs.
[[nodiscard]] bool is_structurally_safe(const PetriNet& net);

[[nodiscard]] bool is_marked_graph(const PetriNet& net);
[[nodiscard]] bool is_state_machine(const PetriNet& net);
[[nodiscard]] bool is_free_choice(const PetriNet& net);
[[nodiscard]] bool is_extended_free_choice(const PetriNet& net);

/// The bipartite flow graph: nodes `0..P-1` are places, `P..P+T-1` are
/// transitions; an arc per preset/postset membership.
[[nodiscard]] Digraph flow_digraph(const PetriNet& net);

/// Strong connectedness of the flow graph (classical STG requirement,
/// Definition 2.3). Nets without places or transitions are not strongly
/// connected.
[[nodiscard]] bool is_strongly_connected(const PetriNet& net);

/// For a marked graph in which every place has exactly one producer and one
/// consumer: the transition-level digraph whose nodes are transitions and
/// which has, per place `p`, an edge producer(p) -> consumer(p) weighted by
/// `M0(p)`. Returns the graph plus `edge_place[e]` mapping edges back to
/// places. Empty optional if the net is not such a marked graph.
struct TransitionGraph {
  Digraph graph;
  std::vector<PlaceId> edge_place;
};
[[nodiscard]] std::optional<TransitionGraph> transition_graph(
    const PetriNet& net);

}  // namespace cipnet
