#include "cip/encoding.h"

#include "util/sorted_set.h"

namespace cipnet {

DataEncoding::DataEncoding(std::vector<std::string> wires,
                           std::vector<std::vector<std::size_t>> codes)
    : wires_(std::move(wires)), codes_(std::move(codes)) {
  for (auto& code : codes_) sorted_set::normalize(code);
}

DataEncoding DataEncoding::one_hot(std::size_t values,
                                   const std::string& prefix) {
  std::vector<std::string> wires;
  std::vector<std::vector<std::size_t>> codes;
  for (std::size_t v = 0; v < values; ++v) {
    wires.push_back(prefix + "w" + std::to_string(v));
    codes.push_back({v});
  }
  return DataEncoding(std::move(wires), std::move(codes));
}

DataEncoding DataEncoding::dual_rail(std::size_t bits,
                                     const std::string& prefix) {
  std::vector<std::string> wires;
  for (std::size_t b = 0; b < bits; ++b) {
    wires.push_back(prefix + "b" + std::to_string(b) + "f");  // index 2b
    wires.push_back(prefix + "b" + std::to_string(b) + "t");  // index 2b+1
  }
  std::vector<std::vector<std::size_t>> codes;
  for (std::size_t v = 0; v < (std::size_t{1} << bits); ++v) {
    std::vector<std::size_t> code;
    for (std::size_t b = 0; b < bits; ++b) {
      code.push_back(2 * b + ((v >> b) & 1));
    }
    codes.push_back(std::move(code));
  }
  return DataEncoding(std::move(wires), std::move(codes));
}

DataEncoding DataEncoding::m_of_n(std::size_t m, std::size_t n,
                                  const std::string& prefix) {
  std::vector<std::string> wires;
  for (std::size_t i = 0; i < n; ++i) {
    wires.push_back(prefix + "w" + std::to_string(i));
  }
  std::vector<std::vector<std::size_t>> codes;
  if (m == 0 || m > n) {
    return DataEncoding(std::move(wires), std::move(codes));
  }
  // Enumerate all m-subsets of {0..n-1} lexicographically.
  std::vector<std::size_t> subset(m);
  for (std::size_t i = 0; i < m; ++i) subset[i] = i;
  while (true) {
    codes.push_back(subset);
    // Rightmost position that can still be incremented.
    std::size_t i = m;
    bool found = false;
    while (i-- > 0) {
      if (subset[i] < i + n - m) {
        found = true;
        break;
      }
    }
    if (!found) break;
    ++subset[i];
    for (std::size_t j = i + 1; j < m; ++j) subset[j] = subset[j - 1] + 1;
  }
  return DataEncoding(std::move(wires), std::move(codes));
}

std::vector<std::string> DataEncoding::code_wires(std::size_t value) const {
  std::vector<std::string> out;
  for (std::size_t w : codes_[value]) out.push_back(wires_[w]);
  return out;
}

bool DataEncoding::is_valid() const {
  for (std::size_t i = 0; i < codes_.size(); ++i) {
    if (codes_[i].empty()) return false;
    for (std::size_t w : codes_[i]) {
      if (w >= wires_.size()) return false;
    }
    for (std::size_t j = 0; j < codes_.size(); ++j) {
      if (i == j) continue;
      if (sorted_set::is_subset(codes_[i], codes_[j])) return false;
    }
  }
  return true;
}

}  // namespace cipnet
