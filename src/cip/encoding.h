#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cipnet {

/// A delay-insensitive data encoding for an abstract channel (Section 3):
/// each value is represented by the set of wires that go high. "Such an
/// encoding is correct when no encoding covers another" — `is_valid` checks
/// that antichain property.
class DataEncoding {
 public:
  DataEncoding() = default;
  DataEncoding(std::vector<std::string> wires,
               std::vector<std::vector<std::size_t>> codes);

  /// n values on n wires, value v = wire v high.
  [[nodiscard]] static DataEncoding one_hot(std::size_t values,
                                            const std::string& prefix);

  /// 2^bits values on 2*bits wires (a true and false rail per bit) — the
  /// paper's dual-rail example.
  [[nodiscard]] static DataEncoding dual_rail(std::size_t bits,
                                              const std::string& prefix);

  /// All C(n, m) ways to raise m of n wires, enumerated in lexicographic
  /// order — the paper's "encoding with m wires" generalization.
  [[nodiscard]] static DataEncoding m_of_n(std::size_t m, std::size_t n,
                                           const std::string& prefix);

  [[nodiscard]] std::size_t value_count() const { return codes_.size(); }
  [[nodiscard]] std::size_t wire_count() const { return wires_.size(); }
  [[nodiscard]] const std::vector<std::string>& wires() const {
    return wires_;
  }
  /// Wire indexes that go high for `value`, sorted.
  [[nodiscard]] const std::vector<std::size_t>& code(std::size_t value) const {
    return codes_[value];
  }
  [[nodiscard]] std::vector<std::string> code_wires(std::size_t value) const;

  /// The antichain property: no code is a subset of another (and codes are
  /// non-empty and distinct).
  [[nodiscard]] bool is_valid() const;

 private:
  std::vector<std::string> wires_;
  std::vector<std::vector<std::size_t>> codes_;
};

}  // namespace cipnet
