#include "cip/channel.h"

#include <cctype>

#include "util/text.h"

namespace cipnet {

std::string channel_action_label(const ChannelAction& action) {
  std::string out = action.channel + (action.send ? "!" : "?");
  if (action.value) out += std::to_string(*action.value);
  return out;
}

std::string send_label(const std::string& channel,
                       std::optional<std::size_t> value) {
  return channel_action_label(ChannelAction{channel, true, value});
}

std::string receive_label(const std::string& channel,
                          std::optional<std::size_t> value) {
  return channel_action_label(ChannelAction{channel, false, value});
}

std::optional<ChannelAction> parse_channel_action(const std::string& label) {
  auto mark = label.find_first_of("!?");
  if (mark == std::string::npos || mark == 0) return std::nullopt;
  ChannelAction action;
  action.channel = label.substr(0, mark);
  action.send = label[mark] == '!';
  std::string rest = label.substr(mark + 1);
  if (!rest.empty()) {
    // parse_u64 also rejects values that overflow (std::stoul would throw
    // std::out_of_range straight through the cipnet::Error hierarchy).
    const auto value = text::parse_u64(rest);
    if (!value) return std::nullopt;
    action.value = static_cast<std::size_t>(*value);
  }
  return action;
}

}  // namespace cipnet
