#include "cip/channel.h"

#include <cctype>

namespace cipnet {

std::string channel_action_label(const ChannelAction& action) {
  std::string out = action.channel + (action.send ? "!" : "?");
  if (action.value) out += std::to_string(*action.value);
  return out;
}

std::string send_label(const std::string& channel,
                       std::optional<std::size_t> value) {
  return channel_action_label(ChannelAction{channel, true, value});
}

std::string receive_label(const std::string& channel,
                          std::optional<std::size_t> value) {
  return channel_action_label(ChannelAction{channel, false, value});
}

std::optional<ChannelAction> parse_channel_action(const std::string& label) {
  auto mark = label.find_first_of("!?");
  if (mark == std::string::npos || mark == 0) return std::nullopt;
  ChannelAction action;
  action.channel = label.substr(0, mark);
  action.send = label[mark] == '!';
  std::string rest = label.substr(mark + 1);
  if (!rest.empty()) {
    for (char c : rest) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    }
    action.value = static_cast<std::size_t>(std::stoul(rest));
  }
  return action;
}

}  // namespace cipnet
