#pragma once

#include <optional>
#include <string>

#include "cip/encoding.h"
#include "util/strong_id.h"

namespace cipnet {

/// How an abstract synchronization event is expanded into low-level
/// signalling (Section 3): the classical return-to-zero 4-phase handshake
/// `r+ -> a+ -> r- -> a-`, or 2-phase transition signalling `r~ -> a~`.
enum class HandshakeStyle { kFourPhase, kTwoPhase };

/// An edge of the CIP graph (Definition 3.1) carrying rendez-vous events:
/// control-only channels synchronize, data channels additionally transfer a
/// value from a finite domain under a delay-insensitive encoding.
struct Channel {
  std::string name;
  ModuleId sender;
  ModuleId receiver;
  /// nullopt = pure synchronization channel.
  std::optional<DataEncoding> data;
  HandshakeStyle style = HandshakeStyle::kFourPhase;

  /// Request wire name (control channels) and acknowledge wire name.
  [[nodiscard]] std::string request_wire() const { return name + "_r"; }
  [[nodiscard]] std::string ack_wire() const { return name + "_a"; }
};

/// A parsed abstract communication action `A_Σ = Σ × {!, ?}`:
/// `c!` / `c?` for control, `c!2` / `c?2` for value 2; a receive without a
/// value (`c?`) accepts any value.
struct ChannelAction {
  std::string channel;
  bool send = false;
  std::optional<std::size_t> value;

  friend bool operator==(const ChannelAction& a,
                         const ChannelAction& b) = default;
};

[[nodiscard]] std::string channel_action_label(const ChannelAction& action);
[[nodiscard]] std::string send_label(const std::string& channel,
                                     std::optional<std::size_t> value = {});
[[nodiscard]] std::string receive_label(const std::string& channel,
                                        std::optional<std::size_t> value = {});

/// Parses "c!v" / "c?v"; nullopt if the label is not a channel action.
[[nodiscard]] std::optional<ChannelAction> parse_channel_action(
    const std::string& label);

}  // namespace cipnet
