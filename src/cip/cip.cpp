#include "cip/cip.h"

#include "algebra/parallel.h"
#include "algebra/basic.h"
#include "util/error.h"
#include "util/sorted_set.h"

namespace cipnet {

ModuleId CipNetwork::add_module(std::string name, PetriNet net,
                                std::vector<std::string> inputs,
                                std::vector<std::string> outputs) {
  ModuleId id(static_cast<std::uint32_t>(modules_.size()));
  modules_.push_back(CipModule{std::move(name), std::move(net),
                               sorted_set::make(std::move(inputs)),
                               sorted_set::make(std::move(outputs))});
  return id;
}

ChannelId CipNetwork::add_channel(std::string name, ModuleId sender,
                                  ModuleId receiver,
                                  std::optional<DataEncoding> data,
                                  HandshakeStyle style) {
  if (sender.index() >= modules_.size() ||
      receiver.index() >= modules_.size()) {
    throw SemanticError("channel endpoints must be existing modules");
  }
  ChannelId id(static_cast<std::uint32_t>(channels_.size()));
  channels_.push_back(
      Channel{std::move(name), sender, receiver, std::move(data), style});
  return id;
}

std::vector<ModuleId> CipNetwork::all_modules() const {
  std::vector<ModuleId> out;
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    out.push_back(ModuleId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

const Channel& CipNetwork::channel_by_name(const std::string& name) const {
  for (const Channel& c : channels_) {
    if (c.name == name) return c;
  }
  throw SemanticError("unknown channel: " + name);
}

void CipNetwork::validate() const {
  for (const Channel& c : channels_) {
    if (c.data && !c.data->is_valid()) {
      throw SemanticError("channel " + c.name +
                          " has an invalid (non-antichain) data encoding");
    }
  }
  for (std::size_t mi = 0; mi < modules_.size(); ++mi) {
    const CipModule& mod = modules_[mi];
    for (const std::string& label : mod.net.alphabet()) {
      auto action = parse_channel_action(label);
      if (!action) continue;
      const Channel& ch = channel_by_name(action->channel);
      ModuleId self(static_cast<std::uint32_t>(mi));
      if (action->send && ch.sender != self) {
        throw SemanticError("module " + mod.name + " sends on channel " +
                            ch.name + " but is not its sender");
      }
      if (!action->send && ch.receiver != self) {
        throw SemanticError("module " + mod.name + " receives on channel " +
                            ch.name + " but is not its receiver");
      }
      if (!ch.data) {
        if (action->value) {
          throw SemanticError("control channel " + ch.name +
                              " used with a data value");
        }
      } else {
        if (action->send && !action->value) {
          throw SemanticError("data channel " + ch.name +
                              " requires a value on send");
        }
        if (action->value && *action->value >= ch.data->value_count()) {
          throw SemanticError("channel " + ch.name + " value out of range");
        }
      }
    }
  }
}

namespace {

/// Helper accumulating the expanded net.
struct Expander {
  PetriNet out;
  std::vector<PlaceId> place_map;
  std::size_t fresh_counter = 0;

  PlaceId fresh_place(const std::string& hint) {
    return out.add_place(
        fresh_place_name(out, "x" + std::to_string(fresh_counter++) + hint),
        0);
  }

  std::vector<PlaceId> mapped(const std::vector<PlaceId>& places) {
    std::vector<PlaceId> res;
    for (PlaceId p : places) res.push_back(place_map[p.index()]);
    return res;
  }

  /// Sequential 4-phase control handshake between pre and post.
  void control_handshake(const std::vector<PlaceId>& pre,
                         const std::vector<PlaceId>& post,
                         const Channel& ch, const Guard& guard) {
    const std::string r = ch.request_wire();
    const std::string a = ch.ack_wire();
    if (ch.style == HandshakeStyle::kTwoPhase) {
      PlaceId s1 = fresh_place("_" + ch.name);
      out.add_transition(pre, r + "~", {s1}, guard);
      out.add_transition({s1}, a + "~", post);
      return;
    }
    PlaceId s1 = fresh_place("_" + ch.name);
    PlaceId s2 = fresh_place("_" + ch.name);
    PlaceId s3 = fresh_place("_" + ch.name);
    out.add_transition(pre, r + "+", {s1}, guard);
    out.add_transition({s1}, a + "+", {s2});
    out.add_transition({s2}, r + "-", {s3});
    out.add_transition({s3}, a + "-", post);
  }

  /// Data transfer of one value: concurrent rise of the code wires, ack+,
  /// concurrent return to zero, ack- (the sequence of Section 3:
  /// (..., r_j+, ...) -> a+ -> (..., r_j-, ...) -> a-).
  void data_handshake(const std::vector<PlaceId>& pre,
                      const std::vector<PlaceId>& post, const Channel& ch,
                      std::size_t value, const Guard& guard) {
    const std::string a = ch.ack_wire();
    const auto wires = ch.data->code_wires(value);
    if (ch.style == HandshakeStyle::kTwoPhase) {
      // Transition signalling: each wire toggles once, then the ack toggles.
      std::vector<PlaceId> gathered;
      std::vector<PlaceId> forks;
      for (std::size_t i = 0; i < wires.size(); ++i) {
        forks.push_back(fresh_place("_" + ch.name + "f"));
      }
      out.add_transition(pre, std::string(kEpsilonLabel), forks, guard);
      for (std::size_t i = 0; i < wires.size(); ++i) {
        PlaceId g = fresh_place("_" + ch.name + "g");
        out.add_transition({forks[i]}, wires[i] + "~", {g});
        gathered.push_back(g);
      }
      out.add_transition(gathered, a + "~", post);
      return;
    }
    std::vector<PlaceId> forks, gathered, lowered, done;
    for (std::size_t i = 0; i < wires.size(); ++i) {
      forks.push_back(fresh_place("_" + ch.name + "f"));
    }
    out.add_transition(pre, std::string(kEpsilonLabel), forks, guard);
    for (std::size_t i = 0; i < wires.size(); ++i) {
      PlaceId g = fresh_place("_" + ch.name + "g");
      out.add_transition({forks[i]}, wires[i] + "+", {g});
      gathered.push_back(g);
    }
    for (std::size_t i = 0; i < wires.size(); ++i) {
      lowered.push_back(fresh_place("_" + ch.name + "l"));
    }
    out.add_transition(gathered, a + "+", lowered);
    for (std::size_t i = 0; i < wires.size(); ++i) {
      PlaceId m = fresh_place("_" + ch.name + "m");
      out.add_transition({lowered[i]}, wires[i] + "-", {m});
      done.push_back(m);
    }
    out.add_transition(done, a + "-", post);
  }
};

}  // namespace

Stg CipNetwork::expand_module(ModuleId m) const {
  validate();
  const CipModule& mod = modules_[m.index()];

  Expander ex;
  for (PlaceId p : mod.net.all_places()) {
    ex.place_map.push_back(
        ex.out.add_place(mod.net.place(p).name, mod.net.initial_marking()[p]));
  }
  // Keep all non-channel labels of the alphabet.
  for (const std::string& label : mod.net.alphabet()) {
    if (!parse_channel_action(label)) ex.out.add_action(label);
  }

  for (TransitionId t : mod.net.all_transitions()) {
    const auto& tr = mod.net.transition(t);
    const std::string& label = mod.net.transition_label(t);
    auto action = parse_channel_action(label);
    if (!action) {
      ex.out.add_transition(ex.mapped(tr.preset), label,
                            ex.mapped(tr.postset), tr.guard);
      continue;
    }
    const Channel& ch = channel_by_name(action->channel);
    auto pre = ex.mapped(tr.preset);
    auto post = ex.mapped(tr.postset);
    if (!ch.data) {
      ex.control_handshake(pre, post, ch, tr.guard);
    } else if (action->value) {
      ex.data_handshake(pre, post, ch, *action->value, tr.guard);
    } else {
      // Value-less receive: a choice over every channel value.
      for (std::size_t v = 0; v < ch.data->value_count(); ++v) {
        ex.data_handshake(pre, post, ch, v, tr.guard);
      }
    }
  }

  // Signal directions: module's own signals plus the adjacent channels'
  // wires; the sender drives request/data, the receiver drives the ack.
  // Every wire edge of an adjacent channel also enters the *alphabet* even
  // when this module never produces it — composition must synchronize on
  // it, so an undriven wire blocks rather than fires freely.
  std::vector<std::string> inputs = mod.inputs;
  std::vector<std::string> outputs = mod.outputs;
  for (const Channel& ch : channels_) {
    const bool is_sender = ch.sender == m;
    const bool is_receiver = ch.receiver == m;
    if (!is_sender && !is_receiver) continue;
    std::vector<std::string> driven;
    if (!ch.data) {
      driven.push_back(ch.request_wire());
    } else {
      driven = ch.data->wires();
    }
    auto& driver_side = is_sender ? outputs : inputs;
    auto& other_side = is_sender ? inputs : outputs;
    for (const std::string& w : driven) sorted_set::insert(driver_side, w);
    sorted_set::insert(other_side, ch.ack_wire());

    std::vector<std::string> all_wires = driven;
    all_wires.push_back(ch.ack_wire());
    for (const std::string& w : all_wires) {
      if (ch.style == HandshakeStyle::kTwoPhase) {
        ex.out.add_action(w + "~");
      } else {
        ex.out.add_action(w + "+");
        ex.out.add_action(w + "-");
      }
    }
  }
  return Stg::from_net(std::move(ex.out), inputs, outputs);
}

Stg CipNetwork::expanded_composition() const {
  if (modules_.empty()) {
    throw SemanticError("empty CIP network");
  }
  std::vector<Stg> expanded;
  for (ModuleId m : all_modules()) expanded.push_back(expand_module(m));

  PetriNet net = expanded[0].net();
  for (std::size_t i = 1; i < expanded.size(); ++i) {
    net = parallel_net(net, expanded[i].net());
  }
  // A signal driven by any module is an output of the composite; the rest
  // stay inputs (Section 5.1's composition of circuits).
  std::vector<std::string> inputs, outputs;
  for (const Stg& stg : expanded) {
    for (const auto& [name, kind] : stg.signals()) {
      if (kind == SignalKind::kOutput || kind == SignalKind::kInternal) {
        sorted_set::insert(outputs, name);
      } else {
        sorted_set::insert(inputs, name);
      }
    }
  }
  inputs = sorted_set::set_difference(inputs, outputs);
  return Stg::from_net(std::move(net), inputs, outputs);
}

PetriNet CipNetwork::abstract_composition() const {
  validate();
  if (modules_.empty()) {
    throw SemanticError("empty CIP network");
  }
  // Rewrite each module: receives meet sends on the send label. A
  // value-less receive duplicates into one transition per channel value.
  std::vector<PetriNet> rewritten;
  for (const CipModule& mod : modules_) {
    PetriNet out;
    for (PlaceId p : mod.net.all_places()) {
      out.add_place(mod.net.place(p).name, mod.net.initial_marking()[p]);
    }
    for (const std::string& label : mod.net.alphabet()) {
      auto action = parse_channel_action(label);
      if (!action) {
        out.add_action(label);
      } else if (action->value || !channel_by_name(action->channel).data) {
        out.add_action(send_label(action->channel, action->value));
      } else {
        const Channel& ch = channel_by_name(action->channel);
        for (std::size_t v = 0; v < ch.data->value_count(); ++v) {
          out.add_action(send_label(ch.name, v));
        }
      }
    }
    for (TransitionId t : mod.net.all_transitions()) {
      const auto& tr = mod.net.transition(t);
      const std::string& label = mod.net.transition_label(t);
      auto action = parse_channel_action(label);
      if (!action) {
        out.add_transition(tr.preset, label, tr.postset, tr.guard);
      } else if (action->value || !channel_by_name(action->channel).data) {
        out.add_transition(tr.preset, send_label(action->channel, action->value),
                           tr.postset, tr.guard);
      } else {
        const Channel& ch = channel_by_name(action->channel);
        for (std::size_t v = 0; v < ch.data->value_count(); ++v) {
          out.add_transition(tr.preset, send_label(ch.name, v), tr.postset,
                             tr.guard);
        }
      }
    }
    rewritten.push_back(std::move(out));
  }
  PetriNet net = rewritten[0];
  for (std::size_t i = 1; i < rewritten.size(); ++i) {
    net = parallel_net(net, rewritten[i]);
  }
  return net;
}

}  // namespace cipnet
