#pragma once

#include <string>
#include <vector>

#include "cip/channel.h"
#include "petri/net.h"
#include "stg/stg.h"

namespace cipnet {

/// One vertex of the CIP graph: a labeled Petri net whose labels mix
/// ordinary signal edges, dummies and abstract channel actions, plus the
/// module's own signal directions.
struct CipModule {
  std::string name;
  PetriNet net;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
};

/// The CIP model of Definition 3.1: a graph whose vertices are labeled
/// Petri nets and whose edges are signal wires or abstract channels with
/// rendez-vous semantics. Channel events expand automatically into
/// handshake signalling (`expand_module`), after which the network is an
/// ordinary communicating STG network that the circuit algebra of Section 5
/// manipulates.
class CipNetwork {
 public:
  ModuleId add_module(std::string name, PetriNet net,
                      std::vector<std::string> inputs,
                      std::vector<std::string> outputs);

  ChannelId add_channel(std::string name, ModuleId sender, ModuleId receiver,
                        std::optional<DataEncoding> data = {},
                        HandshakeStyle style = HandshakeStyle::kFourPhase);

  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  [[nodiscard]] const CipModule& module(ModuleId m) const {
    return modules_[m.index()];
  }
  [[nodiscard]] const Channel& channel(ChannelId c) const {
    return channels_[c.index()];
  }
  [[nodiscard]] std::vector<ModuleId> all_modules() const;

  /// Static checks: every channel action used by a module refers to an
  /// existing channel, respects its direction (only the sender sends), and
  /// carries a legal value (data channels: sends must carry a value below
  /// value_count; control channels carry none); every data encoding is a
  /// valid antichain. Throws SemanticError with a precise message.
  void validate() const;

  /// Expand all abstract events of one module into handshake signalling
  /// (Section 3). The result is an STG whose extra signals are the
  /// channel's request/acknowledge/data wires with the correct directions
  /// for this module (sender drives request + data, receiver drives
  /// acknowledge). A value-less receive `c?` expands into a choice over all
  /// channel values.
  [[nodiscard]] Stg expand_module(ModuleId m) const;

  /// Parallel composition of all *expanded* modules: the rendez-vous is
  /// realized by synchronizing on the shared wire edges, so correctness of
  /// the synchronization is ensured by construction (Section 3).
  [[nodiscard]] Stg expanded_composition() const;

  /// Parallel composition at the abstract level: `c?v` is renamed to `c!v`
  /// so send and receive meet in a rendez-vous transition. Useful as the
  /// specification against which the expansion is verified.
  [[nodiscard]] PetriNet abstract_composition() const;

 private:
  [[nodiscard]] const Channel& channel_by_name(const std::string& name) const;

  std::vector<CipModule> modules_;
  std::vector<Channel> channels_;
};

}  // namespace cipnet
