#pragma once

// Thin epoll wrapper behind the TCP frontend (net/server.h): one loop
// thread multiplexes the listening socket, every live connection, and a
// cross-thread wakeup. The paper's view of a system — many independent
// sequential agents composed over shared channels — is exactly the shape
// here: each connection is a sequential state machine (net/connection.h),
// the loop is the composition, and scheduler workers communicate back into
// it through the completion queue + `notify()`.
//
// The loop is level-triggered: handlers may leave data unread or bytes
// unwritten and will simply be called again, which keeps the per-connection
// state machines simple (no drain-until-EAGAIN obligation on every path).
// `notify()` is the only member callable from other threads (and from
// signal handlers — it is one `write` on an eventfd, which is
// async-signal-safe); everything else belongs to the loop thread.

#include <cstdint>
#include <vector>

namespace cipnet::net {

/// One ready file descriptor, reported with the opaque tag it was
/// registered under. `readable`/`writable` map EPOLLIN/EPOLLOUT; `error`
/// folds EPOLLERR and EPOLLHUP (a peer reset shows up here, or as a
/// 0-byte read — both paths close the connection).
struct LoopEvent {
  void* tag = nullptr;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when epoll/eventfd creation failed at construction; a server
  /// that sees this must not run.
  [[nodiscard]] bool valid() const { return epoll_fd_ >= 0; }

  /// Register `fd` with the given interest set. `tag` comes back verbatim
  /// in every LoopEvent for this fd; it must stay valid until `remove`.
  /// Both flags false is legal — only errors/hangups are reported then
  /// (a drained connection waiting on in-flight jobs sits in this state).
  bool add(int fd, void* tag, bool want_read = true, bool want_write = false);
  /// Re-arm `fd` with a new interest set (level-triggered, so this is how
  /// read interest drops at half-close and write interest toggles as
  /// output buffers fill and drain).
  bool modify(int fd, void* tag, bool want_read, bool want_write);
  void remove(int fd);

  /// Block up to `timeout_ms` (-1 = forever) for events. Returns false on
  /// a hard epoll failure (the loop should stop); wakeups via `notify()`
  /// count as success with possibly zero events.
  bool wait(std::vector<LoopEvent>& out, int timeout_ms);

  /// Wake a blocked `wait` from any thread or signal handler. One eventfd
  /// write; coalesces (N notifies before the next wait produce one wakeup).
  void notify();

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
};

}  // namespace cipnet::net
