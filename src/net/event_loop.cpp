#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>

namespace cipnet::net {

namespace {

/// Tag value reserved for the wakeup eventfd; user tags are real pointers,
/// so the loop itself is a safe sentinel.
constexpr void* kWakeTag = nullptr;

std::uint32_t interest(bool want_read, bool want_write) {
  std::uint32_t events = 0;
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  return events;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return;
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::add(int fd, void* tag, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = interest(want_read, want_write);
  ev.data.ptr = tag;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool EventLoop::modify(int fd, void* tag, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = interest(want_read, want_write);
  ev.data.ptr = tag;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

bool EventLoop::wait(std::vector<LoopEvent>& out, int timeout_ms) {
  out.clear();
  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0) return errno == EINTR;  // a signal is a wakeup, not a failure
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (events[i].data.ptr == kWakeTag) {
      // Drain the eventfd counter so the next notify re-arms the level.
      std::uint64_t count = 0;
      while (::read(wake_fd_, &count, sizeof(count)) > 0) {
      }
      continue;
    }
    LoopEvent ev;
    ev.tag = events[i].data.ptr;
    ev.readable = (events[i].events & EPOLLIN) != 0;
    ev.writable = (events[i].events & EPOLLOUT) != 0;
    ev.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    out.push_back(ev);
  }
  return true;
}

void EventLoop::notify() {
  const std::uint64_t one = 1;
  // Async-signal-safe by construction: one write syscall, no locks. A full
  // eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace cipnet::net
