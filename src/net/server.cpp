#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "util/fault.h"

namespace cipnet::net {

namespace {

CIPNET_FAULT_SITE(f_accept, "net.accept");
CIPNET_FAULT_SITE(f_read, "net.read");

const obs::Counter c_accepted("net.conns.accepted");
const obs::Counter c_closed("net.conns.closed");
const obs::Counter c_rejected("net.conns.rejected");
const obs::Counter c_accept_errors("net.accept.errors");
const obs::Counter c_read_errors("net.read.errors");
const obs::Counter c_quota_rejected("net.quota.rejected");
const obs::Counter c_orphaned("net.responses.orphaned");
const obs::Counter c_idle_closed("net.idle.closed");
const obs::Gauge g_active("net.conns.active");

bool resolve_host(const std::string& host, in_addr& out) {
  if (host.empty() || host == "0.0.0.0") {
    out.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (host == "localhost") {
    out.s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), &out) == 1;
}

std::string peer_name(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

bool parse_hostport(const std::string& text, std::string& host,
                    std::uint16_t& port, std::string& error) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    error = "expected HOST:PORT, got '" + text + "'";
    return false;
  }
  const std::string port_text = text.substr(colon + 1);
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    error = "bad port in '" + text + "'";
    return false;
  }
  const unsigned long value = std::strtoul(port_text.c_str(), nullptr, 10);
  if (value > 65535) {
    error = "port out of range in '" + text + "'";
    return false;
  }
  const std::string candidate = text.substr(0, colon);
  in_addr probe{};
  if (!resolve_host(candidate, probe)) {
    error = "bad host in '" + text + "' (IPv4 or 'localhost')";
    return false;
  }
  host = candidate;
  port = static_cast<std::uint16_t>(value);
  return true;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {}

Server::~Server() {
  // Unpublish the introspection supplier first: `version`/`health` jobs on
  // worker threads read it, and the install mutex makes this call block
  // until any in-flight read finishes.
  set_listener_supplier(nullptr);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool Server::start() {
  if (!loop_.valid()) {
    error_ = "epoll initialisation failed";
    return false;
  }
  in_addr bind_addr{};
  if (!resolve_host(options_.host, bind_addr)) {
    error_ = "bad listen host '" + options_.host + "' (IPv4 or 'localhost')";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = bind_addr;
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = "bind " + options_.host + ":" + std::to_string(options_.port) +
             ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 128) != 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  char ip[INET_ADDRSTRLEN] = "0.0.0.0";
  ::inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof(ip));
  address_ = std::string(ip) + ":" + std::to_string(port_);
  if (!loop_.add(listen_fd_, &listen_tag_)) {
    error_ = "epoll add listener failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  listening_.store(true, std::memory_order_relaxed);
  set_listener_supplier([this] { return snapshot_info(); });
  return true;
}

ListenerInfo Server::snapshot_info() const {
  ListenerInfo info;
  info.listening = listening_.load(std::memory_order_relaxed);
  info.draining = draining_flag_.load(std::memory_order_relaxed);
  info.address = address_;  // immutable after start()
  info.conns_active = active_.load(std::memory_order_relaxed);
  info.conns_accepted = accepted_.load(std::memory_order_relaxed);
  info.frames = frames_.load(std::memory_order_relaxed);
  info.bytes_in = bytes_.in.load(std::memory_order_relaxed);
  info.bytes_out = bytes_.out.load(std::memory_order_relaxed);
  return info;
}

void Server::request_drain() {
  // Async-signal-safe: one relaxed store and one eventfd write. The loop
  // thread observes the flag at the top of its next iteration.
  drain_requested_.store(true, std::memory_order_relaxed);
  loop_.notify();
}

void Server::run() {
  // Serving implies instrumentation, exactly as the stdio loop: the
  // `metrics` op reports the live registry.
  obs::ScopedEnable metrics_on(/*reset=*/false);
  std::vector<LoopEvent> events;
  for (;;) {
    if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
      begin_drain();
    }
    drain_completions();
    reap_doomed();
    reap(std::chrono::steady_clock::now());
    if (draining_ && conns_.empty()) break;
    if (!loop_.wait(events, wait_timeout_ms())) break;
    for (const LoopEvent& event : events) {
      if (event.tag == &listen_tag_) {
        accept_ready();
        continue;
      }
      auto* conn = static_cast<Connection*>(event.tag);
      if (is_doomed(conn->id())) continue;
      handle_event(conn, event);
    }
    reap_doomed();
  }
  listening_.store(false, std::memory_order_relaxed);
}

int Server::wait_timeout_ms() const {
  // Completions and drain requests arrive via notify(), so blocking forever
  // is safe; the periodic tick only exists to police idle timeouts (and as
  // a belt-and-braces bound while draining).
  if (draining_ || options_.idle_timeout_ms != 0) return 100;
  return -1;
}

void Server::accept_ready() {
  for (;;) {
    if (listen_fd_ < 0) return;
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int fd =
        ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      c_accept_errors.add();
      return;
    }
    if (CIPNET_FAULT_FIRES(f_accept)) {
      c_accept_errors.add();
      ::close(fd);
      continue;
    }
    if (conns_.size() >= options_.max_connections) {
      c_rejected.add();
      ::close(fd);
      continue;
    }
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(fd, id, peer_name(addr), &bytes_);
    if (!loop_.add(fd, conn.get())) {
      c_accept_errors.add();
      continue;  // ~Connection closes fd
    }
    conns_.emplace(id, std::move(conn));
    c_accepted.add();
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_.store(conns_.size(), std::memory_order_relaxed);
    g_active.set(conns_.size());
  }
}

void Server::handle_event(Connection* conn, const LoopEvent& event) {
  if (event.error) {
    doom(conn->id());
    return;
  }
  if (event.readable && !conn->read_closed()) {
    if (CIPNET_FAULT_FIRES(f_read)) {
      c_read_errors.add();
      doom(conn->id());
      return;
    }
    std::vector<Frame> frames;
    const ReadResult result =
        conn->read_frames(options_.service.max_line_bytes, frames);
    if (result == ReadResult::kError) {
      // The socket is gone; frames already extracted would only produce
      // responses nobody can receive.
      c_read_errors.add();
      doom(conn->id());
      return;
    }
    process_frames(conn, frames);
    if (result == ReadResult::kEof || conn->read_closed()) {
      update_interest(conn);
    }
  }
  if (event.writable) {
    if (!conn->flush()) {
      doom(conn->id());
      return;
    }
    update_interest(conn);
  }
}

void Server::process_frames(Connection* conn, std::vector<Frame>& frames) {
  for (Frame& frame : frames) {
    if (frame.oversized) {
      // Same contract as the stdio loop: the frame was discarded unread
      // (no id to echo), but the client gets a structured rejection.
      conn->queue_response(service_.error_line(
          "", "bad_request",
          "request line exceeds " +
              std::to_string(options_.service.max_line_bytes) + " bytes"));
      continue;
    }
    if (conn->inflight() >= options_.quota.max_inflight_jobs ||
        conn->pending_bytes() > options_.quota.max_pending_bytes) {
      c_quota_rejected.add();
      conn->queue_response(service_.error_line(
          frame.line, "overloaded",
          "per-connection quota exceeded (" +
              std::to_string(options_.quota.max_inflight_jobs) +
              " in-flight); retry later",
          service_.scheduler().retry_hint_ms()));
      continue;
    }
    frames_.fetch_add(1, std::memory_order_relaxed);
    conn->add_inflight();
    const std::uint64_t conn_id = conn->id();
    // The completion may run inline (introspection, malformed, overloaded)
    // or on a worker thread; both routes go through the completion queue,
    // so the Connection is only ever touched by the loop thread.
    service_.submit_line(
        frame.line,
        [this, conn_id](const std::string& response) {
          complete(conn_id, response);
        },
        conn->peer());
  }
  after_output_queued(conn);
}

void Server::complete(std::uint64_t conn_id, const std::string& response) {
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(Completion{conn_id, response});
  }
  loop_.notify();
}

void Server::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) {
      // The connection died while its job ran; the response has nowhere
      // to go. The job itself completed normally (cache, metrics, job
      // table all updated) — only delivery is lost.
      c_orphaned.add();
      continue;
    }
    Connection* conn = it->second.get();
    conn->queue_response(completion.response);
    conn->sub_inflight();
    after_output_queued(conn);
  }
}

void Server::after_output_queued(Connection* conn) {
  // Opportunistic flush: most responses fit the socket buffer, so the
  // common case never waits for an EPOLLOUT round-trip.
  if (!conn->flush()) {
    doom(conn->id());
    return;
  }
  update_interest(conn);
}

void Server::update_interest(Connection* conn) {
  loop_.modify(conn->fd(), conn, /*want_read=*/!conn->read_closed(),
               /*want_write=*/conn->wants_write());
}

void Server::doom(std::uint64_t conn_id) {
  if (!is_doomed(conn_id)) doomed_.push_back(conn_id);
}

bool Server::is_doomed(std::uint64_t conn_id) const {
  return std::find(doomed_.begin(), doomed_.end(), conn_id) != doomed_.end();
}

void Server::reap_doomed() {
  for (const std::uint64_t id : doomed_) {
    close_connection(id, /*orderly=*/false);
  }
  doomed_.clear();
}

void Server::close_connection(std::uint64_t conn_id, bool orderly) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  loop_.remove(it->second->fd());
  conns_.erase(it);
  c_closed.add();
  (void)orderly;  // both paths count as closed; errors were counted at site
  closed_.fetch_add(1, std::memory_order_relaxed);
  active_.store(conns_.size(), std::memory_order_relaxed);
  g_active.set(conns_.size());
}

void Server::begin_drain() {
  draining_ = true;
  draining_flag_.store(true, std::memory_order_relaxed);
  listening_.store(false, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    loop_.remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Half-close every connection: nothing more is read, every accepted
  // frame still gets its response, and `reap` closes each connection once
  // it is fully answered and flushed.
  for (auto& [id, conn] : conns_) {
    conn->close_read();
    update_interest(conn.get());
  }
}

void Server::reap(std::chrono::steady_clock::time_point now) {
  std::vector<std::uint64_t> done;
  for (auto& [id, conn] : conns_) {
    if (conn->drained()) {
      done.push_back(id);
      continue;
    }
    if (options_.idle_timeout_ms != 0 && conn->inflight() == 0 &&
        !conn->wants_write()) {
      const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                            now - conn->last_activity())
                            .count();
      if (idle >= 0 &&
          static_cast<std::uint64_t>(idle) >= options_.idle_timeout_ms) {
        c_idle_closed.add();
        done.push_back(id);
      }
    }
  }
  for (const std::uint64_t id : done) {
    close_connection(id, /*orderly=*/true);
  }
}

}  // namespace cipnet::net
