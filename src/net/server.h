#pragma once

// The TCP frontend of `cipnet serve`: an epoll event loop (net/event_loop.h)
// multiplexing a listening acceptor and many per-connection NDJSON state
// machines (net/connection.h) over ONE shared `svc::AnalysisService` — the
// same scheduler, cache, shedding, and introspection the stdio mode uses,
// now serving many clients from one process. Responses computed on worker
// threads route back to the originating connection through a completion
// queue drained by the loop; a connection that died first orphans its
// responses (counted) instead of blocking a worker.
//
// Per-client quotas: frames beyond `ConnectionQuota.max_inflight_jobs` or
// arriving while more than `max_pending_bytes` of responses sit unflushed
// are answered `overloaded` with the scheduler's retry hint — one client
// cannot monopolize the pool or balloon the process. Graceful drain
// (`request_drain()`, wired to SIGTERM by the CLI): stop accepting, stop
// reading, finish every accepted frame, flush, close — every accepted
// frame gets exactly one response before its connection closes. Protocol,
// lifecycle, and quota semantics: docs/SERVICE.md (§ TCP frontend).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/connection.h"
#include "net/event_loop.h"
#include "net/info.h"
#include "svc/service.h"

namespace cipnet::net {

struct ServerOptions {
  /// Bind address: an IPv4 dotted quad, "localhost", or "" / "0.0.0.0"
  /// for INADDR_ANY.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; `address()` reports the real one.
  std::uint16_t port = 0;
  ConnectionQuota quota;
  /// Close connections with no traffic and no in-flight work after this
  /// many ms (0 = never).
  std::uint64_t idle_timeout_ms = 0;
  /// Accept cap: connections beyond are closed immediately (counted in
  /// `net.conns.rejected`).
  std::size_t max_connections = 1024;
  /// The shared analysis service behind every connection.
  svc::ServiceOptions service;
};

/// Parse "host:port" (host optional: ":0" binds any-address ephemeral).
/// Returns false on malformed input; `error` explains.
bool parse_hostport(const std::string& text, std::string& host,
                    std::uint16_t& port, std::string& error);

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + publish the introspection supplier. False on failure
  /// (`error()` explains); `run()` must not be called then.
  bool start();

  /// The event loop: blocks until a requested drain completes. Run it on
  /// a dedicated thread when the caller needs to keep working.
  void run();

  /// Begin graceful drain: stop accepting, half-close every connection,
  /// answer everything accepted, then `run()` returns. Callable from any
  /// thread and from signal handlers (atomic flag + eventfd write).
  void request_drain();

  [[nodiscard]] const std::string& address() const { return address_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] svc::AnalysisService& service() { return service_; }

  /// Lifetime totals, readable from any thread (the `health` op and tests).
  [[nodiscard]] std::uint64_t conns_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t conns_closed() const {
    return closed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t conns_active() const {
    return active_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_accepted() const {
    return frames_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool draining() const {
    return draining_flag_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ListenerInfo snapshot_info() const;

 private:
  struct Completion {
    std::uint64_t conn_id = 0;
    std::string response;
  };

  void accept_ready();
  void handle_event(Connection* conn, const LoopEvent& event);
  void process_frames(Connection* conn, std::vector<Frame>& frames);
  void complete(std::uint64_t conn_id, const std::string& response);
  void drain_completions();
  void after_output_queued(Connection* conn);
  void update_interest(Connection* conn);
  void close_connection(std::uint64_t conn_id, bool orderly);
  void doom(std::uint64_t conn_id);
  [[nodiscard]] bool is_doomed(std::uint64_t conn_id) const;
  void reap_doomed();
  void begin_drain();
  void reap(std::chrono::steady_clock::time_point now);
  [[nodiscard]] int wait_timeout_ms() const;

  ServerOptions options_;

  EventLoop loop_;
  int listen_fd_ = -1;
  /// Stable epoll tag for the listener (connection tags are Connection*).
  int listen_tag_ = 0;
  std::string address_;
  std::uint16_t port_ = 0;
  std::string error_;

  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  /// Connections condemned during event dispatch; closing is deferred to
  /// `reap_doomed` so later events in the same batch never touch a freed
  /// Connection through their epoll tag.
  std::vector<std::uint64_t> doomed_;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;              // loop-thread view
  std::atomic<bool> draining_flag_{false};  // cross-thread view
  std::atomic<bool> listening_{false};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> frames_{0};
  ByteTotals bytes_;

  /// Declared last: the scheduler's workers (whose completion callbacks
  /// touch the members above) join before anything else is torn down.
  svc::AnalysisService service_;
};

}  // namespace cipnet::net
