#pragma once

// Introspection bridge between the TCP frontend and the analysis service.
// `net::Server` depends on `svc::AnalysisService` (it dispatches frames
// into it), yet the service's `version` / `health` introspection ops need
// to report the listener's state. This header breaks the cycle: it has no
// dependencies in either direction — the server publishes a snapshot
// supplier at start, the service reads `listener_info()` when asked, and a
// process with no listener gets the zero/"not listening" defaults.

#include <cstdint>
#include <functional>
#include <string>

namespace cipnet::net {

/// Point-in-time view of the (single) TCP listener, for introspection.
struct ListenerInfo {
  bool listening = false;
  bool draining = false;
  std::string address;                ///< actual "host:port" after bind
  std::uint64_t conns_active = 0;
  std::uint64_t conns_accepted = 0;
  std::uint64_t frames = 0;           ///< frames accepted across all conns
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

/// Install the live snapshot supplier (the running server) or clear it
/// (empty function). The supplier is invoked under the same lock that
/// guards installation, so clearing blocks until in-flight reads finish —
/// the server may safely tear down right after `set_listener_supplier({})`.
void set_listener_supplier(std::function<ListenerInfo()> supplier);

/// Snapshot of the live listener, or defaults when none is running.
[[nodiscard]] ListenerInfo listener_info();

}  // namespace cipnet::net
