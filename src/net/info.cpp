#include "net/info.h"

#include <mutex>
#include <utility>

namespace cipnet::net {

namespace {

std::mutex g_mutex;
std::function<ListenerInfo()> g_supplier;

}  // namespace

void set_listener_supplier(std::function<ListenerInfo()> supplier) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_supplier = std::move(supplier);
}

ListenerInfo listener_info() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_supplier) return ListenerInfo{};
  return g_supplier();
}

}  // namespace cipnet::net
