#pragma once

// Per-connection state machine of the TCP frontend: owns the socket, the
// bounded NDJSON frame assembler on the read side, and the pending-response
// buffer on the write side. A connection is a sequential process — all of
// its methods run on the server's event-loop thread — composed with its
// peers only through the shared `JobScheduler` and the server's completion
// queue, mirroring the paper's modules-communicating-over-channels shape.
//
// Framing reuses the `serve` stdio contract (docs/SERVICE.md): frames are
// newline-delimited, a frame longer than `max_line_bytes` is discarded
// *without buffering it* and surfaces as one oversized marker so the server
// can answer `bad_request` while the stream stays line-synced.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cipnet::net {

/// One extracted request frame. `oversized` frames carry no text — the
/// bytes were discarded as they arrived.
struct Frame {
  std::string line;
  bool oversized = false;
};

/// Cross-thread byte totals the owning server exposes through
/// `net::listener_info()`. Relaxed atomics: monotonic accounting only.
struct ByteTotals {
  std::atomic<std::uint64_t> in{0};
  std::atomic<std::uint64_t> out{0};
};

/// Outcome of one readable-event service.
enum class ReadResult {
  kOk,     ///< drained what was available (possibly zero frames)
  kEof,    ///< orderly half-close: finish in-flight, flush, then reap
  kError,  ///< reset/failure: the connection is unusable, drop it
};

/// Per-client quota limits, enforced by the server when frames arrive.
struct ConnectionQuota {
  /// Frames accepted but not yet answered (queued + executing + response
  /// in the completion queue). Further frames are rejected `overloaded`.
  std::size_t max_inflight_jobs = 16;
  /// Pending (unflushed) response bytes. A client that stops reading while
  /// issuing work gets `overloaded` once this backs up.
  std::size_t max_pending_bytes = 8u << 20;
};

class Connection {
 public:
  /// `totals` (optional) receives every byte read/written, for the
  /// server's introspection snapshot.
  Connection(int fd, std::uint64_t id, std::string peer,
             ByteTotals* totals = nullptr);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  /// "ip:port" of the peer — the default client tag for jobs on this
  /// connection (jobs/health introspection show which socket a job came
  /// from).
  [[nodiscard]] const std::string& peer() const { return peer_; }

  /// Read whatever the socket has and extract complete frames (bounded by
  /// `max_line_bytes`). kOk covers the recoverable cases (EAGAIN included);
  /// kEof marks an orderly half-close (the connection still owes its
  /// in-flight responses); kError means drop the connection.
  ReadResult read_frames(std::size_t max_line_bytes, std::vector<Frame>& out);

  /// Frame assembler, exposed for direct testing: feed `n` raw bytes,
  /// append completed frames to `out`. Empty lines vanish (same as stdio
  /// serve); an over-limit line is discarded as it arrives and emits one
  /// oversized Frame at its terminating newline.
  void ingest(const char* data, std::size_t n, std::size_t max_line_bytes,
              std::vector<Frame>& out);

  /// Queue one response line (newline appended here) for the peer.
  void queue_response(const std::string& response);

  /// Push pending bytes into the socket. Returns false on a fatal write
  /// error; true otherwise (even if bytes remain — the caller re-arms
  /// write interest via `wants_write`).
  bool flush();

  [[nodiscard]] bool wants_write() const { return !wbuf_.empty(); }
  [[nodiscard]] std::size_t pending_bytes() const { return wbuf_.size(); }

  /// Frames accepted whose response has not yet been queued to the socket
  /// buffer. Maintained by the server around submit/completion.
  [[nodiscard]] std::size_t inflight() const { return inflight_; }
  void add_inflight() { ++inflight_; }
  void sub_inflight() {
    if (inflight_ > 0) --inflight_;
  }

  /// The peer half-closed (EOF) or the server is draining: no more frames
  /// will be read, but in-flight responses still flush before close.
  [[nodiscard]] bool read_closed() const { return read_closed_; }
  void close_read() { read_closed_ = true; }

  /// Ready to reap: nothing owed to the peer and nothing more coming.
  [[nodiscard]] bool drained() const {
    return read_closed_ && inflight_ == 0 && wbuf_.empty();
  }

  [[nodiscard]] std::chrono::steady_clock::time_point last_activity() const {
    return last_activity_;
  }
  void touch() { last_activity_ = std::chrono::steady_clock::now(); }

 private:
  int fd_;
  std::uint64_t id_;
  std::string peer_;
  ByteTotals* totals_;

  std::string rbuf_;        // the partial (unterminated) frame, bounded
  bool discarding_ = false; // inside an over-limit line, dropping bytes

  std::string wbuf_;        // pending response bytes
  std::size_t woff_ = 0;    // flushed prefix of wbuf_

  std::size_t inflight_ = 0;
  bool read_closed_ = false;
  std::chrono::steady_clock::time_point last_activity_;
};

}  // namespace cipnet::net
