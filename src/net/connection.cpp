#include "net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "obs/metrics.h"

namespace cipnet::net {

namespace {

const obs::Counter c_bytes_in("net.bytes.in");
const obs::Counter c_bytes_out("net.bytes.out");
const obs::Counter c_frames_in("net.frames.in");
const obs::Counter c_oversized("net.frames.oversized");
const obs::Histogram h_frame_bytes("net.frame.bytes");

}  // namespace

Connection::Connection(int fd, std::uint64_t id, std::string peer,
                       ByteTotals* totals)
    : fd_(fd), id_(id), peer_(std::move(peer)), totals_(totals) {
  touch();
}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::ingest(const char* data, std::size_t n,
                        std::size_t max_line_bytes, std::vector<Frame>& out) {
  for (std::size_t i = 0; i < n; ++i) {
    const char ch = data[i];
    if (ch == '\n') {
      if (discarding_) {
        discarding_ = false;
        c_oversized.add();
        out.push_back(Frame{std::string(), /*oversized=*/true});
      } else if (!rbuf_.empty()) {
        c_frames_in.add();
        h_frame_bytes.record(rbuf_.size());
        out.push_back(Frame{std::move(rbuf_), /*oversized=*/false});
        rbuf_.clear();
      }
      // Empty lines vanish, matching the stdio serve loop.
      continue;
    }
    if (discarding_) continue;
    if (rbuf_.size() < max_line_bytes) {
      rbuf_.push_back(ch);
    } else {
      // Over the bound: drop what we buffered and everything until the
      // newline — the stream stays line-synced without holding the bytes.
      rbuf_.clear();
      discarding_ = true;
    }
  }
}

ReadResult Connection::read_frames(std::size_t max_line_bytes,
                                   std::vector<Frame>& out) {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      touch();
      c_bytes_in.add(static_cast<std::uint64_t>(n));
      if (totals_ != nullptr) {
        totals_->in.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
      }
      ingest(buf, static_cast<std::size_t>(n), max_line_bytes, out);
      if (static_cast<std::size_t>(n) < sizeof(buf)) return ReadResult::kOk;
      continue;  // kernel buffer may hold more
    }
    if (n == 0) {
      // Orderly EOF: the peer finished sending. In-flight work still
      // completes and flushes before the server reaps the connection.
      close_read();
      return ReadResult::kEof;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadResult::kOk;
    if (errno == EINTR) continue;
    close_read();
    return ReadResult::kError;
  }
}

void Connection::queue_response(const std::string& response) {
  // Compact the flushed prefix before growing, so a long-lived connection
  // does not accrete every response it ever sent.
  if (woff_ > 0 && (woff_ >= wbuf_.size() || woff_ > 65536)) {
    wbuf_.erase(0, woff_);
    woff_ = 0;
  }
  wbuf_.append(response);
  wbuf_.push_back('\n');
}

bool Connection::flush() {
  while (woff_ < wbuf_.size()) {
    const ssize_t n = ::send(fd_, wbuf_.data() + woff_, wbuf_.size() - woff_,
                             MSG_NOSIGNAL);
    if (n > 0) {
      touch();
      c_bytes_out.add(static_cast<std::uint64_t>(n));
      if (totals_ != nullptr) {
        totals_->out.fetch_add(static_cast<std::uint64_t>(n),
                               std::memory_order_relaxed);
      }
      woff_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer reset; nothing more to deliver
  }
  wbuf_.clear();
  woff_ = 0;
  return true;
}

}  // namespace cipnet::net
