#pragma once

#include <string>

#include "petri/net.h"
#include "reach/reachability.h"
#include "stg/state_graph.h"

namespace cipnet {

/// GraphViz export of a net: places as circles (token dots in the label),
/// transitions as boxes labeled with their action (guards appended).
[[nodiscard]] std::string to_dot(const PetriNet& net,
                                 const std::string& graph_name = "net");

/// GraphViz export of a reachability graph; states labeled with their
/// marking, edges with the fired action.
[[nodiscard]] std::string to_dot(const PetriNet& net,
                                 const ReachabilityGraph& rg,
                                 const std::string& graph_name = "rg");

/// GraphViz export of an STG state graph; states labeled with their binary
/// encoding.
[[nodiscard]] std::string to_dot(const StateGraph& sg,
                                 const PetriNet& net,
                                 const std::string& graph_name = "sg");

}  // namespace cipnet
