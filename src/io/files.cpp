#include "io/files.h"

#include <fstream>
#include <sstream>

#include "io/astg.h"
#include "io/net_format.h"
#include "util/error.h"

namespace cipnet {

namespace {

bool has_suffix(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_astg_path(const std::string& path) {
  return has_suffix(path, ".g") || has_suffix(path, ".astg");
}

}  // namespace

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open for writing: " + path);
  out << content;
  if (!out) throw Error("write failed: " + path);
}

PetriNet load_net(const std::string& path) {
  if (is_astg_path(path)) return load_stg(path).net();
  return read_net(read_text_file(path));
}

Stg load_stg(const std::string& path) {
  if (!is_astg_path(path)) {
    // A .cpn file has no signal table: infer directions as inputs-only is
    // wrong; require .g for STGs.
    throw Error("load_stg expects a .g/.astg file: " + path);
  }
  return read_astg(read_text_file(path));
}

void save_net(const std::string& path, const PetriNet& net,
              const std::string& name) {
  write_text_file(path, write_net(net, name));
}

void save_stg(const std::string& path, const Stg& stg,
              const std::string& name) {
  write_text_file(path, write_astg(stg, name));
}

}  // namespace cipnet
