#pragma once

#include <iosfwd>
#include <string>

#include "petri/net.h"

namespace cipnet {

/// The native `.cpn` textual net format. Line-oriented; `#` starts a
/// comment. Example:
///
///   .net translator
///   .place idle 1
///   .place busy
///   .action ghost            # alphabet entry without transitions
///   .trans a+ : idle -> busy
///   .trans a- : busy -> idle if d !s
///   .end
///
/// Presets/postsets are whitespace-separated place names; the optional
/// `if` clause is a conjunction of signal literals (`!x` = level 0).
[[nodiscard]] std::string write_net(const PetriNet& net,
                                    const std::string& name = "net");

/// Parses the `.cpn` format; throws ParseError with a line number on any
/// malformed input.
[[nodiscard]] PetriNet read_net(const std::string& text);

}  // namespace cipnet
