#pragma once

#include <string>

#include "petri/net.h"
#include "stg/stg.h"

namespace cipnet {

/// Whole-file helpers for the textual formats. Reading throws ParseError
/// (bad content) or Error (I/O failure); writing throws Error on failure.

[[nodiscard]] std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& content);

/// Dispatch by extension: `.g` / `.astg` parse as ASTG (returning the
/// underlying net of the Stg), anything else as native `.cpn`.
[[nodiscard]] PetriNet load_net(const std::string& path);
[[nodiscard]] Stg load_stg(const std::string& path);

void save_net(const std::string& path, const PetriNet& net,
              const std::string& name = "net");
void save_stg(const std::string& path, const Stg& stg,
              const std::string& name = "stg");

}  // namespace cipnet
