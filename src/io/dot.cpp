#include "io/dot.h"

namespace cipnet {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string to_dot(const PetriNet& net, const std::string& graph_name) {
  std::string out = "digraph \"" + escape(graph_name) + "\" {\n";
  out += "  rankdir=TB;\n";
  for (PlaceId p : net.all_places()) {
    std::string label = net.place(p).name;
    Token tokens = net.initial_marking()[p];
    if (tokens > 0) label += " (" + std::to_string(tokens) + ")";
    out += "  p" + std::to_string(p.index()) + " [shape=circle, label=\"" +
           escape(label) + "\"];\n";
  }
  for (TransitionId t : net.all_transitions()) {
    std::string label = net.transition_label(t);
    const Guard& guard = net.transition(t).guard;
    if (!guard.is_true()) label += "\\n[" + guard.to_string() + "]";
    out += "  t" + std::to_string(t.index()) + " [shape=box, label=\"" +
           escape(label) + "\"];\n";
    for (PlaceId p : net.transition(t).preset) {
      out += "  p" + std::to_string(p.index()) + " -> t" +
             std::to_string(t.index()) + ";\n";
    }
    for (PlaceId p : net.transition(t).postset) {
      out += "  t" + std::to_string(t.index()) + " -> p" +
             std::to_string(p.index()) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string to_dot(const PetriNet& net, const ReachabilityGraph& rg,
                   const std::string& graph_name) {
  std::string out = "digraph \"" + escape(graph_name) + "\" {\n";
  for (StateId s : rg.all_states()) {
    out += "  s" + std::to_string(s.index()) + " [label=\"" +
           escape(rg.marking(s).to_string()) + "\"];\n";
    for (const auto& e : rg.successors(s)) {
      out += "  s" + std::to_string(s.index()) + " -> s" +
             std::to_string(e.to.index()) + " [label=\"" +
             escape(net.transition_label(e.transition)) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string to_dot(const StateGraph& sg, const PetriNet& net,
                   const std::string& graph_name) {
  std::string out = "digraph \"" + escape(graph_name) + "\" {\n";
  for (StateId s : sg.all_states()) {
    out += "  s" + std::to_string(s.index()) + " [label=\"" +
           escape(sg.encoding_string(s)) + "\"];\n";
    for (const auto& e : sg.successors(s)) {
      out += "  s" + std::to_string(s.index()) + " -> s" +
             std::to_string(e.to.index()) + " [label=\"" +
             escape(net.transition_label(e.transition)) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace cipnet
