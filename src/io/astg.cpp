#include "io/astg.h"

#include <limits>
#include <map>
#include <sstream>

#include "util/error.h"
#include "util/text.h"

namespace cipnet {

namespace {

/// Strip an `/k` instance suffix.
std::string base_name(const std::string& token) {
  auto slash = token.find('/');
  return slash == std::string::npos ? token : token.substr(0, slash);
}

}  // namespace

std::string write_astg(const Stg& stg, const std::string& model_name) {
  const PetriNet& net = stg.net();
  std::ostringstream out;
  out << ".model " << model_name << "\n";
  auto emit_signals = [&](const char* directive, SignalKind kind) {
    auto names = stg.signal_names(kind);
    if (names.empty()) return;
    out << directive;
    for (const auto& name : names) out << " " << name;
    out << "\n";
  };
  emit_signals(".inputs", SignalKind::kInput);
  emit_signals(".outputs", SignalKind::kOutput);
  emit_signals(".internal", SignalKind::kInternal);

  // Unique node name per transition: label, label/1, label/2, ...
  std::map<std::string, int> instance_counts;
  std::vector<std::string> node_name(net.transition_count());
  std::vector<std::string> dummies;
  for (TransitionId t : net.all_transitions()) {
    std::string label = net.transition_label(t);
    if (is_epsilon_label(label)) label = "eps";
    int instance = instance_counts[label]++;
    node_name[t.index()] =
        instance == 0 ? label : label + "/" + std::to_string(instance);
    if (is_epsilon_label(net.transition_label(t))) {
      dummies.push_back(node_name[t.index()]);
    }
  }
  if (!dummies.empty()) {
    out << ".dummy";
    for (const auto& d : dummies) out << " " << d;
    out << "\n";
  }

  out << ".graph\n";
  for (TransitionId t : net.all_transitions()) {
    const auto& postset = net.transition(t).postset;
    if (postset.empty()) continue;
    out << node_name[t.index()];
    for (PlaceId p : postset) out << " " << net.place(p).name;
    out << "\n";
  }
  for (PlaceId p : net.all_places()) {
    const auto& consumers = net.consumers_of(p);
    if (consumers.empty()) continue;
    out << net.place(p).name;
    for (TransitionId t : consumers) out << " " << node_name[t.index()];
    out << "\n";
  }
  out << ".marking {";
  for (PlaceId p : net.all_places()) {
    Token tokens = net.initial_marking()[p];
    if (tokens == 0) continue;
    out << " " << net.place(p).name;
    if (tokens > 1) out << "=" << tokens;
  }
  out << " }\n.end\n";
  return out.str();
}

Stg read_astg(const std::string& text) {
  std::vector<std::string> inputs, outputs, internals, dummy_names;
  struct Arc {
    std::string from;
    std::string to;
    int line;
  };
  std::vector<Arc> arcs;
  std::vector<std::pair<std::string, Token>> marking;  // node or <a,b>
  int line_no = 0;
  bool in_graph = false;

  auto fail = [&](const std::string& message) -> void {
    throw ParseError(message, static_cast<std::size_t>(line_no));
  };

  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line(text::trim(text::strip_comment(raw)));
    if (line.empty()) continue;
    auto tokens = text::split_ws(line);
    const std::string& keyword = tokens[0];
    if (keyword == ".model" || keyword == ".name") {
      continue;
    } else if (keyword == ".inputs" || keyword == ".outputs" ||
               keyword == ".internal" || keyword == ".dummy") {
      auto& target = keyword == ".inputs"    ? inputs
                     : keyword == ".outputs" ? outputs
                     : keyword == ".internal" ? internals
                                              : dummy_names;
      target.insert(target.end(), tokens.begin() + 1, tokens.end());
    } else if (keyword == ".graph") {
      in_graph = true;
    } else if (keyword == ".marking") {
      std::string rest(text::trim(line.substr(std::string(".marking").size())));
      if (rest.size() < 2 || rest.front() != '{' || rest.back() != '}') {
        fail(".marking { ... }");
      }
      std::string inner(rest.substr(1, rest.size() - 2));
      // Split respecting <a,b> groups (they contain no spaces in practice).
      for (const std::string& item : text::split_ws(inner)) {
        auto eq = item.find('=');
        if (eq == std::string::npos) {
          marking.emplace_back(item, 1);
        } else {
          const auto count = text::parse_u64(item.substr(eq + 1));
          if (!count || *count > std::numeric_limits<Token>::max()) {
            fail("bad token count in .marking entry: " + item);
          }
          marking.emplace_back(item.substr(0, eq),
                               static_cast<Token>(*count));
        }
      }
    } else if (keyword == ".end") {
      break;
    } else if (in_graph) {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        arcs.push_back(Arc{tokens[0], tokens[i], line_no});
      }
    } else {
      fail("unknown directive: " + keyword);
    }
  }

  // Classify node names.
  auto is_dummy = [&](const std::string& node) {
    const std::string base = base_name(node);
    for (const auto& d : dummy_names) {
      if (d == node || d == base) return true;
    }
    return false;
  };
  auto declared_signal = [&](const std::string& name) {
    for (const auto* set : {&inputs, &outputs, &internals}) {
      for (const auto& s : *set) {
        if (s == name) return true;
      }
    }
    return false;
  };
  auto is_transition_node = [&](const std::string& node) {
    if (is_dummy(node)) return true;
    auto edge = parse_edge(base_name(node));
    return edge && declared_signal(edge->signal);
  };

  PetriNet net;
  std::map<std::string, PlaceId> places;
  std::map<std::string, std::pair<std::vector<PlaceId>, std::vector<PlaceId>>>
      transitions;  // node -> (preset, postset)

  auto place_of = [&](const std::string& name) {
    auto it = places.find(name);
    if (it != places.end()) return it->second;
    PlaceId p = net.add_place(name, 0);
    places.emplace(name, p);
    return p;
  };
  auto transition_of = [&](const std::string& node)
      -> std::pair<std::vector<PlaceId>, std::vector<PlaceId>>& {
    return transitions[node];
  };

  for (const Arc& arc : arcs) {
    line_no = arc.line;
    const bool from_t = is_transition_node(arc.from);
    const bool to_t = is_transition_node(arc.to);
    if (from_t && to_t) {
      PlaceId p = place_of("<" + arc.from + "," + arc.to + ">");
      transition_of(arc.from).second.push_back(p);
      transition_of(arc.to).first.push_back(p);
    } else if (from_t && !to_t) {
      transition_of(arc.from).second.push_back(place_of(arc.to));
    } else if (!from_t && to_t) {
      transition_of(arc.to).first.push_back(place_of(arc.from));
    } else {
      fail("arc between two places: " + arc.from + " -> " + arc.to);
    }
  }

  for (auto& [node, pre_post] : transitions) {
    std::string label =
        is_dummy(node) ? std::string(kEpsilonLabel) : base_name(node);
    net.add_transition(std::move(pre_post.first), label,
                       std::move(pre_post.second));
  }
  for (const auto& [name, tokens] : marking) {
    auto it = places.find(name);
    if (it == places.end()) {
      throw ParseError("marking references unknown place: " + name);
    }
    net.set_initial_tokens(it->second, tokens);
  }
  return Stg::from_net(std::move(net), inputs, outputs, internals);
}

}  // namespace cipnet
