#include "io/net_format.h"

#include <limits>
#include <sstream>

#include "util/error.h"
#include "util/text.h"

namespace cipnet {

std::string write_net(const PetriNet& net, const std::string& name) {
  std::ostringstream out;
  out << ".net " << name << "\n";
  for (PlaceId p : net.all_places()) {
    out << ".place " << net.place(p).name;
    if (net.initial_marking()[p] > 0) out << " " << net.initial_marking()[p];
    out << "\n";
  }
  // Alphabet entries without transitions must be kept (they matter for
  // parallel composition).
  for (std::size_t a = 0; a < net.action_count(); ++a) {
    ActionId id(static_cast<std::uint32_t>(a));
    if (net.transitions_with_action(id).empty()) {
      out << ".action " << net.label(id) << "\n";
    }
  }
  for (TransitionId t : net.all_transitions()) {
    const auto& tr = net.transition(t);
    out << ".trans " << net.label(tr.action) << " :";
    for (PlaceId p : tr.preset) out << " " << net.place(p).name;
    out << " ->";
    for (PlaceId p : tr.postset) out << " " << net.place(p).name;
    if (!tr.guard.is_true()) {
      out << " if";
      for (const auto& [signal, level] : tr.guard.literals()) {
        out << " " << (level ? "" : "!") << signal;
      }
    }
    out << "\n";
  }
  out << ".end\n";
  return out.str();
}

PetriNet read_net(const std::string& text) {
  PetriNet net;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  bool saw_end = false;

  auto fail = [&](const std::string& message) -> void {
    throw ParseError(message, static_cast<std::size_t>(line_no));
  };
  // Like `fail`, but points at the offending token (1-based column in the
  // raw source line, before comment stripping).
  auto fail_at = [&](const std::string& message,
                     const std::string& token) -> void {
    const auto pos = raw.find(token);
    throw ParseError(message, static_cast<std::size_t>(line_no),
                     pos == std::string::npos ? 0 : pos + 1);
  };
  auto place_or_fail = [&](const std::string& name) {
    auto p = net.find_place(name);
    if (!p) fail_at("unknown place: " + name, name);
    return *p;
  };

  while (std::getline(in, raw)) {
    ++line_no;
    std::string line(text::trim(text::strip_comment(raw)));
    if (line.empty()) continue;
    if (saw_end) fail("content after .end");
    auto tokens = text::split_ws(line);
    const std::string& keyword = tokens[0];
    if (keyword == ".net") {
      continue;  // name is informational
    } else if (keyword == ".place") {
      if (tokens.size() < 2 || tokens.size() > 3) fail(".place name [tokens]");
      Token count = 0;
      if (tokens.size() == 3) {
        // parse_u64 rejects partial matches: `.place p 3x` is an error, not
        // three tokens (std::stoul silently accepted it).
        const auto parsed = text::parse_u64(tokens[2]);
        if (!parsed || *parsed > std::numeric_limits<Token>::max()) {
          fail_at("bad token count: " + tokens[2], tokens[2]);
        }
        count = static_cast<Token>(*parsed);
      }
      if (net.find_place(tokens[1])) fail("duplicate place: " + tokens[1]);
      net.add_place(tokens[1], count);
    } else if (keyword == ".action") {
      if (tokens.size() != 2) fail(".action label");
      net.add_action(tokens[1]);
    } else if (keyword == ".trans") {
      if (tokens.size() < 4 || tokens[2] != ":") {
        fail(".trans label : pre... -> post... [if lit...]");
      }
      std::vector<PlaceId> preset, postset;
      Guard guard;
      std::size_t i = 3;
      for (; i < tokens.size() && tokens[i] != "->"; ++i) {
        preset.push_back(place_or_fail(tokens[i]));
      }
      if (i == tokens.size()) fail("missing ->");
      ++i;
      for (; i < tokens.size() && tokens[i] != "if"; ++i) {
        postset.push_back(place_or_fail(tokens[i]));
      }
      if (i < tokens.size()) {  // guard
        std::vector<Guard::Literal> literals;
        for (++i; i < tokens.size(); ++i) {
          const std::string& lit = tokens[i];
          if (lit.size() > 1 && lit[0] == '!') {
            literals.emplace_back(lit.substr(1), false);
          } else if (!lit.empty()) {
            literals.emplace_back(lit, true);
          }
        }
        if (literals.empty()) fail("empty guard");
        guard = Guard(std::move(literals));
      }
      net.add_transition(std::move(preset), tokens[1], std::move(postset),
                         std::move(guard));
    } else if (keyword == ".end") {
      saw_end = true;
    } else {
      fail("unknown directive: " + keyword);
    }
  }
  if (!saw_end) {
    ++line_no;
    fail("missing .end");
  }
  return net;
}

}  // namespace cipnet
