#pragma once

#include <string>

#include "stg/stg.h"

namespace cipnet {

/// Petrify-style `.g` / ASTG signal transition graph format:
///
///   .model sender
///   .inputs rec n
///   .outputs a0 b0
///   .graph
///   p0 rec~/1
///   rec~/1 a0+ b0+
///   a0+ p1
///   ...
///   .marking { p0 }
///   .end
///
/// Supported subset: `.model/.inputs/.outputs/.internal/.dummy`, a `.graph`
/// section whose lines connect nodes (signal transitions like `a+ a- a~`,
/// optionally instance-suffixed `a+/2`, dummy names declared in `.dummy`,
/// and place names), `.marking { p ... }` with explicit places and
/// `<src,dst>` implicit-place tokens, and `.end`. Arcs directly between two
/// transitions get an implicit place. Writing always emits explicit places.
[[nodiscard]] std::string write_astg(const Stg& stg,
                                     const std::string& model_name = "stg");

[[nodiscard]] Stg read_astg(const std::string& text);

}  // namespace cipnet
