#pragma once

#include <map>
#include <string>
#include <vector>

#include "petri/net.h"
#include "stg/signal.h"

namespace cipnet {

/// A Signal Transition Graph (Definition 2.3): an interpreted labeled Petri
/// net whose labels are signal edges `s+ / s- / s~ / s= / s# / s*` or the
/// dummy `eps`, together with a signal table assigning each signal a
/// direction. STGs here may be *general* Petri nets — Section 5.1 argues
/// arbiters need that generality — and the live/safe requirements of the
/// classical definition are checkable but not enforced (the extensions of
/// Section 2.2 drop them).
class Stg {
 public:
  Stg() = default;

  /// Wrap an existing net. Every non-eps label must parse as a signal edge
  /// whose signal is in exactly one of the three direction sets; throws
  /// SemanticError otherwise.
  static Stg from_net(PetriNet net, const std::vector<std::string>& inputs,
                      const std::vector<std::string>& outputs,
                      const std::vector<std::string>& internals = {});

  // ----- construction --------------------------------------------------

  void add_signal(const std::string& name, SignalKind kind);
  PlaceId add_place(const std::string& name, Token initial = 0);

  /// Adds a transition labeled with a signal edge (signal must be known).
  TransitionId add_edge_transition(std::vector<PlaceId> preset,
                                   const std::string& signal, EdgeType type,
                                   std::vector<PlaceId> postset,
                                   Guard guard = Guard());
  /// Adds a dummy (eps) transition.
  TransitionId add_dummy_transition(std::vector<PlaceId> preset,
                                    std::vector<PlaceId> postset,
                                    Guard guard = Guard());

  // ----- access ---------------------------------------------------------

  [[nodiscard]] const PetriNet& net() const { return net_; }
  [[nodiscard]] PetriNet& net() { return net_; }

  [[nodiscard]] const std::map<std::string, SignalKind>& signals() const {
    return signals_;
  }
  [[nodiscard]] std::vector<std::string> signal_names() const;
  [[nodiscard]] std::vector<std::string> signal_names(SignalKind kind) const;
  [[nodiscard]] SignalKind kind(const std::string& signal) const;
  [[nodiscard]] bool has_signal(const std::string& signal) const;

  /// The parsed edge of a transition; nullopt for dummies.
  [[nodiscard]] std::optional<SignalEdge> edge_of(TransitionId t) const;

  /// All labels (edges) belonging to `signal` that occur in the alphabet —
  /// hiding a signal means hiding all of them (Section 5.1).
  [[nodiscard]] std::vector<std::string> labels_of_signal(
      const std::string& signal) const;

  /// Classical STG checks (Definition 2.3): strongly connected + live +
  /// safe. Exponential for general nets (via reachability), hence bounded.
  [[nodiscard]] bool is_classical(std::size_t max_states = 1u << 18) const;

 private:
  PetriNet net_;
  std::map<std::string, SignalKind> signals_;
};

}  // namespace cipnet
