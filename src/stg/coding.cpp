#include "stg/coding.h"

#include <map>

#include "util/sorted_set.h"

namespace cipnet {

CodingReport check_coding(const StateGraph& sg,
                          const std::vector<std::string>& outputs) {
  // Output-signal indexes in the state graph's order.
  std::vector<std::size_t> output_idx;
  for (const std::string& name : outputs) {
    output_idx.push_back(sg.signal_index(name));
  }
  sorted_set::normalize(output_idx);

  auto output_excitation = [&](StateId s) {
    return sorted_set::set_intersection(sg.excited_signals(s), output_idx);
  };

  std::map<std::string, std::vector<StateId>> by_code;
  for (StateId s : sg.all_states()) {
    by_code[sg.encoding_string(s)].push_back(s);
  }

  CodingReport report;
  for (const auto& [code, states] : by_code) {
    for (std::size_t i = 0; i < states.size(); ++i) {
      for (std::size_t j = i + 1; j < states.size(); ++j) {
        CodingConflict conflict{states[i], states[j], false};
        conflict.csc =
            output_excitation(states[i]) != output_excitation(states[j]);
        report.conflicts.push_back(conflict);
      }
    }
  }
  return report;
}

}  // namespace cipnet
