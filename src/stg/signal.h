#pragma once

#include <optional>
#include <string>

namespace cipnet {

/// Direction of a signal as seen by one interface module (Definition 2.3:
/// S = I ∪ O; internal signals are outputs that have been hidden from the
/// environment, Section 5.1).
enum class SignalKind { kInput, kOutput, kInternal };

[[nodiscard]] std::string to_string(SignalKind kind);

/// Signal transition types: the classical rising/falling edges plus the
/// extensions of [9] quoted in Section 2.2 (toggle, stable, unstable,
/// don't care). Suffix characters used in labels:
///   rise '+', fall '-', toggle '~', stable '=', unstable '#',
///   don't care '*'
/// (the paper prints stable as 's' and don't care as 'x'; we use '=' / '*'
/// so a label always splits unambiguously into name + one suffix char).
enum class EdgeType { kRise, kFall, kToggle, kStable, kUnstable, kDontCare };

[[nodiscard]] char edge_suffix(EdgeType type);
[[nodiscard]] std::optional<EdgeType> edge_type_from_suffix(char c);

/// A parsed signal-transition label, e.g. "req+" -> {"req", kRise}.
struct SignalEdge {
  std::string signal;
  EdgeType type = EdgeType::kRise;

  friend bool operator==(const SignalEdge& a, const SignalEdge& b) = default;
};

/// "req" + kRise -> "req+".
[[nodiscard]] std::string format_edge(const SignalEdge& edge);
[[nodiscard]] std::string format_edge(const std::string& signal,
                                      EdgeType type);

/// Parse "req+" etc.; nullopt for the epsilon label or anything without a
/// valid suffix.
[[nodiscard]] std::optional<SignalEdge> parse_edge(const std::string& label);

}  // namespace cipnet
