#include "stg/persistency.h"

#include "util/sorted_set.h"

namespace cipnet {

PersistencyReport check_output_persistency(
    const StateGraph& sg, const std::vector<std::string>& outputs) {
  std::vector<std::size_t> output_idx;
  for (const std::string& name : outputs) {
    output_idx.push_back(sg.signal_index(name));
  }
  sorted_set::normalize(output_idx);

  PersistencyReport report;
  for (StateId s : sg.all_states()) {
    auto excited = sorted_set::set_intersection(
        sg.excited_signals(s), output_idx);
    if (excited.empty()) continue;
    for (const auto& edge : sg.successors(s)) {
      const auto& se = sg.transition_edge(edge.transition);
      for (std::size_t signal : excited) {
        // The signal firing its own edge is not a disabling.
        if (se && sg.signal_index(se->signal) == signal) continue;
        auto still = sg.excited_signals(edge.to);
        if (!sorted_set::contains(still, signal)) {
          report.violations.push_back(PersistencyViolation{
              s, sg.signal_order()[signal], edge.transition});
        }
      }
    }
  }
  return report;
}

}  // namespace cipnet
