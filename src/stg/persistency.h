#pragma once

#include <string>
#include <vector>

#include "stg/state_graph.h"

namespace cipnet {

/// An output-persistency violation: in `state`, the non-input signal
/// `signal` is excited, but firing `disabler` (a different signal's edge)
/// leads to a state where it no longer is — a hazard for speed-independent
/// implementation (the synthesis context of [1, 3] that Section 5.2 plugs
/// into: an excited output must stay excited until it fires).
struct PersistencyViolation {
  StateId state;
  std::string signal;
  TransitionId disabler;
};

struct PersistencyReport {
  std::vector<PersistencyViolation> violations;
  [[nodiscard]] bool persistent() const { return violations.empty(); }
};

/// Check output persistency (aka output semi-modularity) of a state graph:
/// for every state where an edge of a signal in `outputs` is enabled, every
/// other enabled edge must leave it enabled. Input signals are exempt — the
/// environment may withdraw them (that is what the receptiveness check of
/// Section 5.3 governs instead).
[[nodiscard]] PersistencyReport check_output_persistency(
    const StateGraph& sg, const std::vector<std::string>& outputs);

}  // namespace cipnet
