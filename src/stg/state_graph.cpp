#include "stg/state_graph.h"

#include <algorithm>
#include <deque>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "reach/marking_store.h"
#include "util/error.h"

namespace cipnet {

namespace {
const obs::Counter c_sg_states("stg.states");
const obs::Counter c_sg_edges("stg.edges");
const obs::Counter c_sg_violations("stg.violations");
}  // namespace

char level_char(Level level) {
  switch (level) {
    case Level::kLow:
      return '0';
    case Level::kHigh:
      return '1';
    case Level::kUnknown:
      return '?';
  }
  return '?';
}

std::size_t StateGraph::signal_index(const std::string& signal) const {
  for (std::size_t i = 0; i < signals_.size(); ++i) {
    if (signals_[i] == signal) return i;
  }
  throw SemanticError("signal not in state graph: " + signal);
}

std::vector<StateId> StateGraph::all_states() const {
  std::vector<StateId> out;
  out.reserve(markings_.size());
  for (std::size_t i = 0; i < markings_.size(); ++i) {
    out.push_back(StateId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

std::string StateGraph::encoding_string(StateId s) const {
  std::string out;
  for (Level level : encodings_[s.index()]) out += level_char(level);
  return out;
}

class StateGraphBuilder {
 public:
  StateGraphBuilder(const Stg& stg, const StateGraphOptions& options)
      : stg_(stg),
        options_(options),
        key_store_(stg.net().place_count() + stg.signal_names().size()) {
    sg_.signals_ = stg.signal_names();
    for (TransitionId t : stg.net().all_transitions()) {
      sg_.transition_edges_.push_back(stg.edge_of(t));
    }
  }

  StateGraph build(const Encoding& initial) {
    obs::Span span("stg.state_graph");
    obs::ProgressReporter progress("stg.state_graph");
    intern(stg_.net().initial_marking(), initial);
    std::deque<StateId> frontier{StateId(0)};
    while (!frontier.empty()) {
      StateId s = frontier.front();
      frontier.pop_front();
      progress.update(sg_.markings_.size(), frontier.size());
      options_.cancel.check("stg.state_graph");
      expand(s, frontier);
    }
    return std::move(sg_);
  }

 private:
  /// Dedup key: one flat row of `place_count + signal_count` tokens
  /// (marking ++ encoding levels), interned through the same arena +
  /// open-addressing interner the reachability explorer uses — a single
  /// probe instead of hashing a pair of heap vectors per successor.
  struct InternResult {
    StateId id;
    bool fresh;
  };

  InternResult intern(const Marking& m, const Encoding& e) {
    key_scratch_.assign(m.tokens().begin(), m.tokens().end());
    for (Level level : e) {
      key_scratch_.push_back(static_cast<Token>(level));
    }
    auto r = index_.intern(key_scratch_.data(), key_store_,
                           options_.max_states);
    if (r.id == MarkingInterner::kNoId) {
      throw LimitError("state graph exceeded max_states",
                       LimitContext{sg_.markings_.size(), edges_added_,
                                    options_.max_states});
    }
    if (r.fresh) {
      sg_.markings_.push_back(m);
      sg_.encodings_.push_back(e);
      sg_.edges_.emplace_back();
      c_sg_states.add();
    }
    return InternResult{StateId(r.id), r.fresh};
  }

  bool guard_holds(const Guard& guard, const Encoding& e) const {
    for (const auto& [signal, level] : guard.literals()) {
      std::size_t i = sg_.signal_index(signal);
      Level required = level ? Level::kHigh : Level::kLow;
      if (e[i] != required) return false;
    }
    return true;
  }

  void expand(StateId s, std::deque<StateId>& frontier) {
    // Copy: interning reallocates the state vectors.
    const Marking marking = sg_.markings_[s.index()];
    const Encoding encoding = sg_.encodings_[s.index()];
    for (TransitionId t : stg_.net().enabled_transitions(marking)) {
      const auto& tr = stg_.net().transition(t);
      if (options_.respect_guards && !guard_holds(tr.guard, encoding)) {
        continue;
      }
      Marking next_marking = stg_.net().fire(marking, t);
      auto edge = stg_.edge_of(t);
      if (!edge) {  // dummy transition: encoding unchanged
        emit(s, t, next_marking, encoding, frontier);
        continue;
      }
      std::size_t i = sg_.signal_index(edge->signal);
      Level current = encoding[i];
      switch (edge->type) {
        case EdgeType::kRise:
          if (current == Level::kHigh) {
            violate(s, t, edge->signal + "+ fired while already high");
          } else {
            emit(s, t, next_marking, with(encoding, i, Level::kHigh),
                 frontier);
          }
          break;
        case EdgeType::kFall:
          if (current == Level::kLow) {
            violate(s, t, edge->signal + "- fired while already low");
          } else {
            emit(s, t, next_marking, with(encoding, i, Level::kLow), frontier);
          }
          break;
        case EdgeType::kToggle:
          if (current == Level::kUnknown) {
            emit(s, t, next_marking, encoding, frontier);
          } else {
            Level flipped =
                current == Level::kLow ? Level::kHigh : Level::kLow;
            emit(s, t, next_marking, with(encoding, i, flipped), frontier);
          }
          break;
        case EdgeType::kStable:
          if (current == Level::kUnknown) {
            // The line settles at either value: branch (Section 6's "expected
            // to stabilize at either a 1 or a 0").
            emit(s, t, next_marking, with(encoding, i, Level::kLow), frontier);
            emit(s, t, next_marking, with(encoding, i, Level::kHigh),
                 frontier);
          } else {
            emit(s, t, next_marking, encoding, frontier);
          }
          break;
        case EdgeType::kUnstable:
          emit(s, t, next_marking, with(encoding, i, Level::kUnknown),
               frontier);
          break;
        case EdgeType::kDontCare:
          emit(s, t, next_marking, encoding, frontier);
          break;
      }
    }
  }

  static Encoding with(Encoding e, std::size_t i, Level level) {
    e[i] = level;
    return e;
  }

  void emit(StateId from, TransitionId t, const Marking& m, const Encoding& e,
            std::deque<StateId>& frontier) {
    InternResult r = intern(m, e);
    sg_.edges_[from.index()].push_back(StateGraph::Edge{t, r.id});
    ++edges_added_;
    c_sg_edges.add();
    if (r.fresh) frontier.push_back(r.id);
  }

  void violate(StateId s, TransitionId t, std::string reason) {
    c_sg_violations.add();
    sg_.violations_.push_back(ConsistencyViolation{s, t, std::move(reason)});
  }

  const Stg& stg_;
  StateGraphOptions options_;
  StateGraph sg_;
  std::uint64_t edges_added_ = 0;
  MarkingStore key_store_;
  MarkingInterner index_;
  std::vector<Token> key_scratch_;
};

StateGraph build_state_graph(
    const Stg& stg,
    const std::vector<std::pair<std::string, Level>>& initial_levels,
    const StateGraphOptions& options) {
  StateGraphBuilder builder(stg, options);
  Encoding initial(stg.signal_names().size(), Level::kUnknown);
  auto names = stg.signal_names();
  for (const auto& [signal, level] : initial_levels) {
    bool found = false;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == signal) {
        initial[i] = level;
        found = true;
      }
    }
    if (!found) throw SemanticError("unknown signal in encoding: " + signal);
  }
  return builder.build(initial);
}

std::vector<std::size_t> StateGraph::excited_signals(StateId s) const {
  // Edges in the graph are exactly the consistent enabled firings, so a
  // signal is excited iff a rise/fall/toggle edge of it leaves `s`.
  std::vector<std::size_t> out;
  for (const Edge& e : successors(s)) {
    const auto& edge = transition_edges_[e.transition.index()];
    if (!edge) continue;
    if (edge->type == EdgeType::kRise || edge->type == EdgeType::kFall ||
        edge->type == EdgeType::kToggle) {
      std::size_t i = signal_index(edge->signal);
      bool seen = false;
      for (std::size_t x : out) seen = seen || (x == i);
      if (!seen) out.push_back(i);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::vector<std::pair<std::string, Level>>>
infer_initial_encoding(const Stg& stg, const StateGraphOptions& options) {
  std::vector<std::pair<std::string, Level>> result;
  for (const std::string& signal : stg.signal_names()) {
    bool solved = false;
    for (Level candidate : {Level::kLow, Level::kHigh}) {
      try {
        StateGraph sg = build_state_graph(stg, {{signal, candidate}}, options);
        bool ok = true;
        for (const auto& v : sg.violations()) {
          auto edge = parse_edge(stg.net().transition_label(v.transition));
          if (edge && edge->signal == signal) ok = false;
        }
        if (ok) {
          result.emplace_back(signal, candidate);
          solved = true;
          break;
        }
      } catch (const LimitError&) {
        return std::nullopt;
      }
    }
    if (!solved) return std::nullopt;
  }
  return result;
}

}  // namespace cipnet
