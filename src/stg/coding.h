#pragma once

#include <vector>

#include "stg/state_graph.h"

namespace cipnet {

/// A pair of distinct state-graph states carrying the same signal encoding.
struct CodingConflict {
  StateId a;
  StateId b;
  /// True when the two states also disagree on which *output* signals are
  /// excited — then no logic function of the signal values can tell them
  /// apart (a Complete State Coding violation); USC-only conflicts can
  /// still be synthesizable.
  bool csc = false;
};

struct CodingReport {
  std::vector<CodingConflict> conflicts;

  [[nodiscard]] bool has_usc_violation() const { return !conflicts.empty(); }
  [[nodiscard]] bool has_csc_violation() const {
    for (const auto& c : conflicts) {
      if (c.csc) return true;
    }
    return false;
  }
  [[nodiscard]] std::size_t csc_count() const {
    std::size_t n = 0;
    for (const auto& c : conflicts) n += c.csc ? 1 : 0;
    return n;
  }
};

/// Unique / Complete State Coding analysis of a state graph. `outputs` are
/// the signal names the module drives (outputs + internals); conflicts are
/// reported pairwise.
[[nodiscard]] CodingReport check_coding(const StateGraph& sg,
                                        const std::vector<std::string>& outputs);

}  // namespace cipnet
