#include "stg/stg.h"

#include "petri/structure.h"
#include "reach/properties.h"
#include "reach/reachability.h"
#include "util/error.h"

namespace cipnet {

Stg Stg::from_net(PetriNet net, const std::vector<std::string>& inputs,
                  const std::vector<std::string>& outputs,
                  const std::vector<std::string>& internals) {
  Stg stg;
  for (const auto& s : inputs) stg.add_signal(s, SignalKind::kInput);
  for (const auto& s : outputs) stg.add_signal(s, SignalKind::kOutput);
  for (const auto& s : internals) stg.add_signal(s, SignalKind::kInternal);
  for (const std::string& label : net.alphabet()) {
    if (is_epsilon_label(label)) continue;
    auto edge = parse_edge(label);
    if (!edge) {
      throw SemanticError("STG label is not a signal edge: " + label);
    }
    if (!stg.has_signal(edge->signal)) {
      throw SemanticError("STG label uses undeclared signal: " + label);
    }
  }
  stg.net_ = std::move(net);
  return stg;
}

void Stg::add_signal(const std::string& name, SignalKind kind) {
  auto [it, fresh] = signals_.emplace(name, kind);
  if (!fresh && it->second != kind) {
    throw SemanticError("signal redeclared with different direction: " + name);
  }
}

PlaceId Stg::add_place(const std::string& name, Token initial) {
  return net_.add_place(name, initial);
}

TransitionId Stg::add_edge_transition(std::vector<PlaceId> preset,
                                      const std::string& signal,
                                      EdgeType type,
                                      std::vector<PlaceId> postset,
                                      Guard guard) {
  if (!has_signal(signal)) {
    throw SemanticError("unknown signal: " + signal);
  }
  return net_.add_transition(std::move(preset), format_edge(signal, type),
                             std::move(postset), std::move(guard));
}

TransitionId Stg::add_dummy_transition(std::vector<PlaceId> preset,
                                       std::vector<PlaceId> postset,
                                       Guard guard) {
  return net_.add_transition(std::move(preset), std::string(kEpsilonLabel),
                             std::move(postset), std::move(guard));
}

std::vector<std::string> Stg::signal_names() const {
  std::vector<std::string> out;
  for (const auto& [name, kind] : signals_) out.push_back(name);
  return out;
}

std::vector<std::string> Stg::signal_names(SignalKind kind) const {
  std::vector<std::string> out;
  for (const auto& [name, k] : signals_) {
    if (k == kind) out.push_back(name);
  }
  return out;
}

SignalKind Stg::kind(const std::string& signal) const {
  auto it = signals_.find(signal);
  if (it == signals_.end()) {
    throw SemanticError("unknown signal: " + signal);
  }
  return it->second;
}

bool Stg::has_signal(const std::string& signal) const {
  return signals_.contains(signal);
}

std::optional<SignalEdge> Stg::edge_of(TransitionId t) const {
  return parse_edge(net_.transition_label(t));
}

std::vector<std::string> Stg::labels_of_signal(
    const std::string& signal) const {
  std::vector<std::string> out;
  for (const std::string& label : net_.alphabet()) {
    auto edge = parse_edge(label);
    if (edge && edge->signal == signal) out.push_back(label);
  }
  return out;
}

bool Stg::is_classical(std::size_t max_states) const {
  if (!is_strongly_connected(net_)) return false;
  ReachOptions options;
  options.max_states = max_states;
  ReachabilityGraph rg = explore(net_, options);
  return is_safe(rg) && is_live(net_, rg);
}

}  // namespace cipnet
