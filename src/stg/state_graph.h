#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "stg/stg.h"
#include "util/cancel.h"

namespace cipnet {

/// Ternary signal level. `kUnknown` models lines the specification leaves
/// free (e.g. the DATA/STROBE lines of the protocol translator before a
/// `stable` transition pins them).
enum class Level : std::uint8_t { kLow = 0, kHigh = 1, kUnknown = 2 };

[[nodiscard]] char level_char(Level level);

/// A vector of levels indexed by the state graph's signal order.
using Encoding = std::vector<Level>;

/// Why an edge violates the consistent state assignment rule (Section 2.2).
struct ConsistencyViolation {
  StateId state;
  TransitionId transition;
  std::string reason;
};

/// The state graph of an STG (Section 2.2): the reachability graph with each
/// state additionally labeled by a signal encoding. Construction enforces
/// the consistent-state-assignment rules:
///  * `s+` only from s=0 (or unknown), landing at s=1; `s-` dually;
///  * `s~` flips a known value;
///  * `s=` (stable) pins an unknown value — it *branches* into both
///    resolutions, which is how "the lines stabilize at either a 1 or a 0"
///    (Section 6) is modeled;
///  * `s#` (unstable) releases the value back to unknown; `s*` is a no-op.
/// Guarded transitions fire only in states whose encoding satisfies the
/// guard (unknown levels fail guards). Offending firings are recorded in
/// `violations` and not expanded.
class StateGraph {
 public:
  struct Edge {
    TransitionId transition;
    StateId to;
  };

  [[nodiscard]] const std::vector<std::string>& signal_order() const {
    return signals_;
  }
  [[nodiscard]] std::size_t signal_index(const std::string& signal) const;

  [[nodiscard]] std::size_t state_count() const { return markings_.size(); }
  [[nodiscard]] const Marking& marking(StateId s) const {
    return markings_[s.index()];
  }
  [[nodiscard]] const Encoding& encoding(StateId s) const {
    return encodings_[s.index()];
  }
  [[nodiscard]] const std::vector<Edge>& successors(StateId s) const {
    return edges_[s.index()];
  }
  [[nodiscard]] StateId initial() const { return StateId(0); }
  [[nodiscard]] std::vector<StateId> all_states() const;

  [[nodiscard]] const std::vector<ConsistencyViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool is_consistent() const { return violations_.empty(); }

  /// Signals excited in a state: an enabled rise/fall/toggle transition of
  /// that signal. Returns signal indexes.
  [[nodiscard]] std::vector<std::size_t> excited_signals(StateId s) const;

  [[nodiscard]] std::string encoding_string(StateId s) const;

  /// Parsed edge of a net transition (nullopt = dummy), cached at build
  /// time so the graph is self-contained.
  [[nodiscard]] const std::optional<SignalEdge>& transition_edge(
      TransitionId t) const {
    return transition_edges_[t.index()];
  }

 private:
  friend class StateGraphBuilder;
  std::vector<std::string> signals_;
  std::vector<Marking> markings_;
  std::vector<Encoding> encodings_;
  std::vector<std::vector<Edge>> edges_;
  std::vector<ConsistencyViolation> violations_;
  std::vector<std::optional<SignalEdge>> transition_edges_;
};

struct StateGraphOptions {
  std::size_t max_states = 1u << 18;
  /// Evaluate boolean guards against the encoding (unknown fails). Turning
  /// this off explores the raw net dynamics.
  bool respect_guards = true;
  /// Polled once per expanded state; a tripped token raises `Cancelled`.
  CancelToken cancel;
};

/// Build the state graph from an initial encoding. The encoding is given as
/// (signal, level) pairs; unlisted signals start unknown.
[[nodiscard]] StateGraph build_state_graph(
    const Stg& stg,
    const std::vector<std::pair<std::string, Level>>& initial_levels = {},
    const StateGraphOptions& options = {});

/// Infer a consistent initial level per signal by trying low, then high
/// (signals are independent for the consistency rules). Signals that are
/// consistent either way get kLow; signals consistent neither way map to
/// nullopt overall.
[[nodiscard]] std::optional<std::vector<std::pair<std::string, Level>>>
infer_initial_encoding(const Stg& stg, const StateGraphOptions& options = {});

}  // namespace cipnet
