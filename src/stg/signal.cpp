#include "stg/signal.h"

namespace cipnet {

std::string to_string(SignalKind kind) {
  switch (kind) {
    case SignalKind::kInput:
      return "input";
    case SignalKind::kOutput:
      return "output";
    case SignalKind::kInternal:
      return "internal";
  }
  return "?";
}

char edge_suffix(EdgeType type) {
  switch (type) {
    case EdgeType::kRise:
      return '+';
    case EdgeType::kFall:
      return '-';
    case EdgeType::kToggle:
      return '~';
    case EdgeType::kStable:
      return '=';
    case EdgeType::kUnstable:
      return '#';
    case EdgeType::kDontCare:
      return '*';
  }
  return '?';
}

std::optional<EdgeType> edge_type_from_suffix(char c) {
  switch (c) {
    case '+':
      return EdgeType::kRise;
    case '-':
      return EdgeType::kFall;
    case '~':
      return EdgeType::kToggle;
    case '=':
      return EdgeType::kStable;
    case '#':
      return EdgeType::kUnstable;
    case '*':
      return EdgeType::kDontCare;
    default:
      return std::nullopt;
  }
}

std::string format_edge(const SignalEdge& edge) {
  return edge.signal + edge_suffix(edge.type);
}

std::string format_edge(const std::string& signal, EdgeType type) {
  return signal + edge_suffix(type);
}

std::optional<SignalEdge> parse_edge(const std::string& label) {
  if (label.size() < 2) return std::nullopt;
  auto type = edge_type_from_suffix(label.back());
  if (!type) return std::nullopt;
  return SignalEdge{label.substr(0, label.size() - 1), *type};
}

}  // namespace cipnet
