#include "models/arbiter.h"

namespace cipnet::models {

Circuit arbiter2() {
  PetriNet net;
  PlaceId mutex = net.add_place("arb_mutex", 1);
  std::vector<std::string> inputs, outputs;
  for (int i = 1; i <= 2; ++i) {
    const std::string r = "r" + std::to_string(i);
    const std::string g = "g" + std::to_string(i);
    inputs.push_back(r);
    outputs.push_back(g);
    PlaceId idle = net.add_place("arb_idle" + std::to_string(i), 1);
    PlaceId req = net.add_place("arb_req" + std::to_string(i), 0);
    PlaceId granted = net.add_place("arb_granted" + std::to_string(i), 0);
    PlaceId releasing = net.add_place("arb_rel" + std::to_string(i), 0);
    net.add_transition({idle}, r + "+", {req});
    // The grant needs the request AND the mutex: two consumers share the
    // mutex place with different presets -> not free choice.
    net.add_transition({req, mutex}, g + "+", {granted});
    net.add_transition({granted}, r + "-", {releasing});
    net.add_transition({releasing}, g + "-", {idle, mutex});
  }
  return Circuit("arbiter2", inputs, outputs, std::move(net));
}

Circuit arbiter_client(int index) {
  const std::string r = "r" + std::to_string(index);
  const std::string g = "g" + std::to_string(index);
  PetriNet net;
  PlaceId p0 = net.add_place("cl" + std::to_string(index) + "_p0", 1);
  PlaceId p1 = net.add_place("cl" + std::to_string(index) + "_p1", 0);
  PlaceId p2 = net.add_place("cl" + std::to_string(index) + "_p2", 0);
  PlaceId p3 = net.add_place("cl" + std::to_string(index) + "_p3", 0);
  net.add_transition({p0}, r + "+", {p1});
  net.add_transition({p1}, g + "+", {p2});
  net.add_transition({p2}, r + "-", {p3});
  net.add_transition({p3}, g + "-", {p0});
  return Circuit("client" + std::to_string(index), {g}, {r}, std::move(net));
}

}  // namespace cipnet::models
