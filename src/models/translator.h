#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.h"

namespace cipnet::models {

/// One row of Table 1: a transition-signalled command and the two 4-phase
/// rails that encode it.
struct TranslationRow {
  std::string command;
  std::string rail_a;
  std::string rail_b;
};

/// Table 1(a): sender side — rec/reset/send0/send1 onto {a0, a1} × {b0, b1}.
[[nodiscard]] std::vector<TranslationRow> sender_translation_table();
/// Table 1(b): receiver side — start/mute/zero/one onto {p0, p1} × {q0, q1}.
[[nodiscard]] std::vector<TranslationRow> receiver_translation_table();

/// The *sender* block of Figures 4/5: converts transition-signalled
/// commands (toggles on rec/reset/send0/send1) to the 4-phase protocol on
/// a0/a1/b0/b1 acknowledged by `n`.
///   inputs: rec reset send0 send1 n     outputs: a0 a1 b0 b1
[[nodiscard]] Circuit sender();

/// The *protocol translator* of Figure 7. Initially sends `start`; then
/// serves sender commands: reset/send0/send1 map to start/zero/one; `rec`
/// samples the DATA (d) / STROBE (s) lines once they stabilize and sends
/// start/mute/zero/one according to their values.
///   inputs: a0 a1 b0 b1 d s r          outputs: n p0 p1 q0 q1
[[nodiscard]] Circuit translator();

/// The *receiver* block of Figure 6: converts 4-phase commands on
/// p0/p1/q0/q1 back to transition signalling on start/mute/zero/one,
/// acknowledging with `r`.
///   inputs: p0 p1 q0 q1                outputs: r start mute zero one
[[nodiscard]] Circuit receiver();

/// The inconsistent sender of Figure 8: the rails rise *and fall* without
/// waiting for the acknowledge `n`, violating the 4-phase protocol — the
/// composition with the translator fails the receptiveness check.
[[nodiscard]] Circuit sender_inconsistent();

/// The restricted sender of Figure 9(a): it never issues `rec`, enabling
/// the compositional simplification of Figures 9(b)/(c).
[[nodiscard]] Circuit sender_restricted();

}  // namespace cipnet::models
