#include "models/translator.h"

#include "petri/guard.h"

namespace cipnet::models {

std::vector<TranslationRow> sender_translation_table() {
  return {{"rec", "a0", "b0"},
          {"reset", "a0", "b1"},
          {"send0", "a1", "b0"},
          {"send1", "a1", "b1"}};
}

std::vector<TranslationRow> receiver_translation_table() {
  return {{"start", "p0", "q0"},
          {"mute", "p0", "q1"},
          {"zero", "p1", "q0"},
          {"one", "p1", "q1"}};
}

namespace {

/// Sender branch (Figure 5(b)/(c)): cmd~ -> (x+ || y+) -> n+ -> (x- || y-)
/// -> n- -> back to the idle place.
void add_sender_branch(PetriNet& net, PlaceId idle, const TranslationRow& row) {
  const std::string& cmd = row.command;
  auto p = [&](const std::string& suffix) {
    return net.add_place("sn_" + cmd + "_" + suffix, 0);
  };
  PlaceId f1 = p("f1"), f2 = p("f2");
  PlaceId g1 = p("g1"), g2 = p("g2");
  PlaceId h1 = p("h1"), h2 = p("h2");
  PlaceId i1 = p("i1"), i2 = p("i2");
  net.add_transition({idle}, cmd + "~", {f1, f2});
  net.add_transition({f1}, row.rail_a + "+", {g1});
  net.add_transition({f2}, row.rail_b + "+", {g2});
  net.add_transition({g1, g2}, "n+", {h1, h2});
  net.add_transition({h1}, row.rail_a + "-", {i1});
  net.add_transition({h2}, row.rail_b + "-", {i2});
  net.add_transition({i1, i2}, "n-", {idle});
}

/// Inconsistent branch (Figure 8): the rails return to zero without waiting
/// for the acknowledge.
void add_inconsistent_branch(PetriNet& net, PlaceId idle,
                             const TranslationRow& row) {
  const std::string& cmd = row.command;
  auto p = [&](const std::string& suffix) {
    return net.add_place("sn_" + cmd + "_" + suffix, 0);
  };
  PlaceId f1 = p("f1"), f2 = p("f2");
  PlaceId g1 = p("g1"), g2 = p("g2");
  PlaceId h1 = p("h1"), h2 = p("h2");
  PlaceId k = p("k");
  net.add_transition({idle}, cmd + "~", {f1, f2});
  net.add_transition({f1}, row.rail_a + "+", {g1});
  net.add_transition({g1}, row.rail_a + "-", {h1});  // no wait for n+
  net.add_transition({f2}, row.rail_b + "+", {g2});
  net.add_transition({g2}, row.rail_b + "-", {h2});
  net.add_transition({h1, h2}, "n+", {k});
  net.add_transition({k}, "n-", {idle});
}

Circuit make_sender(const std::string& name,
                    const std::vector<TranslationRow>& rows,
                    bool consistent) {
  PetriNet net;
  PlaceId idle = net.add_place("sn_idle", 1);
  std::vector<std::string> inputs{"n"};
  for (const TranslationRow& row : rows) {
    inputs.push_back(row.command);
    if (consistent) {
      add_sender_branch(net, idle, row);
    } else {
      add_inconsistent_branch(net, idle, row);
    }
  }
  return Circuit(name, inputs, {"a0", "a1", "b0", "b1"}, std::move(net));
}

/// 4-phase send to the receiver: (px+ || qy+) -> r+ -> (px- || qy-) -> r-.
/// Consumes two places, finishes into one fresh place which is returned.
/// A guard may gate the two rise transitions.
PlaceId add_receiver_send(PetriNet& net, const std::string& tag,
                          PlaceId from_a, PlaceId from_b,
                          const TranslationRow& row,
                          const Guard& guard = Guard()) {
  auto p = [&](const std::string& suffix) {
    return net.add_place("tr_" + tag + "_" + suffix, 0);
  };
  PlaceId v1 = p("v1"), v2 = p("v2");
  PlaceId w1 = p("w1"), w2 = p("w2");
  PlaceId x1 = p("x1"), x2 = p("x2");
  PlaceId done = p("done");
  net.add_transition({from_a}, row.rail_a + "+", {v1}, guard);
  net.add_transition({from_b}, row.rail_b + "+", {v2}, guard);
  net.add_transition({v1, v2}, "r+", {w1, w2});
  net.add_transition({w1}, row.rail_a + "-", {x1});
  net.add_transition({w2}, row.rail_b + "-", {x2});
  net.add_transition({x1, x2}, "r-", {done});
  return done;
}

}  // namespace

Circuit sender() { return make_sender("sender", sender_translation_table(),
                                      /*consistent=*/true); }

Circuit sender_inconsistent() {
  return make_sender("sender_inconsistent", sender_translation_table(),
                     /*consistent=*/false);
}

Circuit sender_restricted() {
  auto rows = sender_translation_table();
  rows.erase(rows.begin());  // drop `rec`
  return make_sender("sender_restricted", rows, /*consistent=*/true);
}

Circuit translator() {
  PetriNet net;
  const auto out_rows = receiver_translation_table();
  const TranslationRow& start = out_rows[0];

  // Wait state, marked from the beginning: the sender may issue its first
  // command while the initial `start` is still being delivered — the
  // receiver channel token `ch` serializes the sends.
  PlaceId wa = net.add_place("tr_wa", 1);
  PlaceId wb = net.add_place("tr_wb", 1);
  PlaceId ch = net.add_place("tr_ch", 0);

  // Initially send `start` to the receiver (Figure 7: "Initially, it sends
  // a start command to the receiver"); completing it releases the channel.
  PlaceId ia = net.add_place("tr_ia", 1);
  PlaceId ib = net.add_place("tr_ib", 1);
  PlaceId init_done = add_receiver_send(net, "init", ia, ib, start);
  net.add_transition({init_done}, std::string(kEpsilonLabel), {ch});

  // Rail-rise decoding: the a-rail and b-rail arrive concurrently and
  // independently; the command is known once both are up.
  PlaceId va0 = net.add_place("tr_va0", 0);
  PlaceId va1 = net.add_place("tr_va1", 0);
  PlaceId vb0 = net.add_place("tr_vb0", 0);
  PlaceId vb1 = net.add_place("tr_vb1", 0);
  net.add_transition({wa}, "a0+", {va0});
  net.add_transition({wa}, "a1+", {va1});
  net.add_transition({wb}, "b0+", {vb0});
  net.add_transition({wb}, "b1+", {vb1});

  // Per sender command: n+ -> rails fall -> forward -> n- -> wait.
  auto command_entry = [&](const TranslationRow& in_row, PlaceId va,
                           PlaceId vb) {
    auto p = [&](const std::string& suffix) {
      return net.add_place("tr_" + in_row.command + "_" + suffix, 0);
    };
    PlaceId ha = p("ha"), hb = p("hb");
    PlaceId ka = p("ka"), kb = p("kb");
    net.add_transition({va, vb}, "n+", {ha, hb});
    net.add_transition({ha}, in_row.rail_a + "-", {ka});
    net.add_transition({hb}, in_row.rail_b + "-", {kb});
    return std::make_pair(ka, kb);
  };

  const auto in_rows = sender_translation_table();
  // reset -> start, send0 -> zero, send1 -> one (Figure 7).
  const std::vector<std::pair<std::size_t, TranslationRow>> simple = {
      {1, out_rows[0]},   // reset  -> start
      {2, out_rows[2]},   // send0 -> zero
      {3, out_rows[3]}};  // send1 -> one
  auto rail_place_a = [&](const TranslationRow& row) {
    return row.rail_a == "a0" ? va0 : va1;
  };
  auto rail_place_b = [&](const TranslationRow& row) {
    return row.rail_b == "b0" ? vb0 : vb1;
  };
  for (const auto& [idx, target] : simple) {
    const TranslationRow& in_row = in_rows[idx];
    auto [ka, kb] = command_entry(in_row, rail_place_a(in_row),
                                  rail_place_b(in_row));
    // Acquire the receiver channel before forwarding.
    PlaceId ua = net.add_place("tr_" + in_row.command + "_ua", 0);
    PlaceId ub = net.add_place("tr_" + in_row.command + "_ub", 0);
    net.add_transition({ka, kb, ch}, std::string(kEpsilonLabel), {ua, ub});
    PlaceId done =
        add_receiver_send(net, in_row.command + "_fw", ua, ub, target);
    net.add_transition({done}, "n-", {wa, wb, ch});
  }

  // rec: sample DATA (d) / STROBE (s) once they stabilize, forward the
  // command selected by their values, release the lines, acknowledge.
  {
    const TranslationRow& in_row = in_rows[0];
    auto [ka, kb] = command_entry(in_row, va0, vb0);
    PlaceId st1 = net.add_place("tr_rec_st1", 0);
    PlaceId st2 = net.add_place("tr_rec_st2", 0);
    net.add_transition({ka, kb}, "d=", {st1});
    net.add_transition({st1}, "s=", {st2});
    // Value decoding: (s, d) = (0,0) start, (0,1) mute, (1,0) zero,
    // (1,1) one. (The paper fixes no particular assignment; this one is
    // documented in DESIGN.md.)
    const std::vector<std::pair<Guard, TranslationRow>> decode = {
        {Guard({{"d", false}, {"s", false}}), out_rows[0]},
        {Guard({{"d", true}, {"s", false}}), out_rows[1]},
        {Guard({{"d", false}, {"s", true}}), out_rows[2]},
        {Guard({{"d", true}, {"s", true}}), out_rows[3]}};
    for (const auto& [guard, target] : decode) {
      PlaceId ua = net.add_place("tr_rec_" + target.command + "_ua", 0);
      PlaceId ub = net.add_place("tr_rec_" + target.command + "_ub", 0);
      net.add_transition({st2, ch}, std::string(kEpsilonLabel), {ua, ub},
                         guard);
      PlaceId done =
          add_receiver_send(net, "rec_" + target.command, ua, ub, target);
      PlaceId rel1 =
          net.add_place("tr_rec_" + target.command + "_rel1", 0);
      PlaceId rel2 =
          net.add_place("tr_rec_" + target.command + "_rel2", 0);
      net.add_transition({done}, "d#", {rel1});
      net.add_transition({rel1}, "s#", {rel2});
      net.add_transition({rel2}, "n-", {wa, wb, ch});
    }
  }

  return Circuit("translator", {"a0", "a1", "b0", "b1", "d", "s", "r"},
                 {"n", "p0", "p1", "q0", "q1"}, std::move(net));
}

Circuit receiver() {
  PetriNet net;
  PlaceId xa = net.add_place("rc_xa", 1);
  PlaceId xb = net.add_place("rc_xb", 1);
  PlaceId vp0 = net.add_place("rc_vp0", 0);
  PlaceId vp1 = net.add_place("rc_vp1", 0);
  PlaceId vq0 = net.add_place("rc_vq0", 0);
  PlaceId vq1 = net.add_place("rc_vq1", 0);
  net.add_transition({xa}, "p0+", {vp0});
  net.add_transition({xa}, "p1+", {vp1});
  net.add_transition({xb}, "q0+", {vq0});
  net.add_transition({xb}, "q1+", {vq1});

  for (const TranslationRow& row : receiver_translation_table()) {
    auto p = [&](const std::string& suffix) {
      return net.add_place("rc_" + row.command + "_" + suffix, 0);
    };
    PlaceId va = row.rail_a == "p0" ? vp0 : vp1;
    PlaceId vb = row.rail_b == "q0" ? vq0 : vq1;
    PlaceId c = p("c");
    PlaceId f1 = p("f1"), f2 = p("f2");
    PlaceId g1 = p("g1"), g2 = p("g2");
    net.add_transition({va, vb}, row.command + "~", {c});
    net.add_transition({c}, "r+", {f1, f2});
    net.add_transition({f1}, row.rail_a + "-", {g1});
    net.add_transition({f2}, row.rail_b + "-", {g2});
    net.add_transition({g1, g2}, "r-", {xa, xb});
  }
  return Circuit("receiver", {"p0", "p1", "q0", "q1"},
                 {"r", "start", "mute", "zero", "one"}, std::move(net));
}

}  // namespace cipnet::models
