#include "models/figures.h"

namespace cipnet::models {

PetriNet fig1_left() {
  PetriNet net;
  PlaceId p0 = net.add_place("f1l_p0", 1);
  PlaceId p1 = net.add_place("f1l_p1", 0);
  net.add_transition({p0}, "a", {p1});
  net.add_transition({p1}, "b", {p0});
  return net;
}

PetriNet fig1_right() {
  PetriNet net;
  PlaceId p0 = net.add_place("f1r_p0", 1);
  PlaceId p1 = net.add_place("f1r_p1", 0);
  net.add_transition({p0}, "c", {p1});
  net.add_transition({p1}, "d", {p0});
  return net;
}

PetriNet fig2_left() {
  PetriNet net;
  PlaceId s0 = net.add_place("f2l_s0", 1);
  PlaceId s1 = net.add_place("f2l_s1", 0);
  net.add_transition({s0}, "a", {s1});
  net.add_transition({s0}, "b", {s1});
  net.add_transition({s1}, "c", {s0});
  return net;
}

PetriNet fig2_right() {
  PetriNet net;
  PlaceId s0 = net.add_place("f2r_s0", 1);
  PlaceId s1 = net.add_place("f2r_s1", 0);
  PlaceId s2 = net.add_place("f2r_s2", 0);
  PlaceId s3 = net.add_place("f2r_s3", 0);
  net.add_transition({s0}, "a", {s1});
  net.add_transition({s1}, "d", {s2});
  net.add_transition({s2}, "a", {s3});
  net.add_transition({s3}, "e", {s0});
  return net;
}

PetriNet fig3_net() {
  PetriNet net;
  // One-shot sources keep the net bounded while every rule of the
  // contraction fires at least once.
  PlaceId sa = net.add_place("sa", 1);
  PlaceId sb = net.add_place("sb", 1);
  PlaceId sc = net.add_place("sc", 1);
  PlaceId sd = net.add_place("sd", 1);
  PlaceId sk = net.add_place("sk", 1);
  PlaceId sl = net.add_place("sl", 1);
  PlaceId p1 = net.add_place("P1", 0);
  PlaceId p2 = net.add_place("P2", 0);
  PlaceId q1 = net.add_place("Q1", 0);
  PlaceId q2 = net.add_place("Q2", 0);
  PlaceId oe = net.add_place("oe", 0);
  PlaceId of = net.add_place("of", 0);
  PlaceId og = net.add_place("og", 0);
  PlaceId oh = net.add_place("oh", 0);
  PlaceId oi = net.add_place("oi", 0);
  PlaceId oj = net.add_place("oj", 0);
  net.add_transition({sa}, "a", {p1});  // producers into the preset
  net.add_transition({sb}, "b", {p1});
  net.add_transition({sc}, "c", {p2});
  net.add_transition({sd}, "d", {p2});
  net.add_transition({p1}, "e", {oe});  // conflictive consumers
  net.add_transition({p2}, "f", {of});
  net.add_transition({p1, p2}, "t", {q1, q2});  // the transition to hide
  net.add_transition({q1}, "g", {og});  // successors
  net.add_transition({q1}, "h", {oh});
  net.add_transition({q2}, "i", {oi});
  net.add_transition({q2}, "j", {oj});
  net.add_transition({sk}, "k", {q1});  // extra producers into the postset
  net.add_transition({sl}, "l", {q2});
  return net;
}

PetriNet fig3_marked_graph() {
  PetriNet net;
  PlaceId sb = net.add_place("sb", 1);
  PlaceId sc = net.add_place("sc", 1);
  PlaceId p1 = net.add_place("P1", 0);
  PlaceId p2 = net.add_place("P2", 0);
  PlaceId q1 = net.add_place("Q1", 0);
  PlaceId q2 = net.add_place("Q2", 0);
  PlaceId og = net.add_place("og", 0);
  PlaceId oi = net.add_place("oi", 0);
  net.add_transition({sb}, "b", {p1});
  net.add_transition({sc}, "c", {p2});
  net.add_transition({p1, p2}, "t", {q1, q2});
  net.add_transition({q1}, "g", {og});
  net.add_transition({q2}, "i", {oi});
  return net;
}

}  // namespace cipnet::models
