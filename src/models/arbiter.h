#pragma once

#include "circuit/circuit.h"

namespace cipnet::models {

/// A two-client mutual-exclusion arbiter. Section 5.1 motivates general
/// Petri nets precisely with this component: "important systems like
/// arbiters cannot be modeled in these subclasses of marked graphs and
/// free-choice nets". The net below is *not* free-choice — the shared
/// mutex place is consumed by two grant transitions whose presets also
/// contain the private request places.
///
///   inputs:  r1 r2 (requests)      outputs: g1 g2 (grants)
///
/// Protocol per client i: ri+ -> gi+ -> ri- -> gi-; the mutex place makes
/// the grant sections mutually exclusive.
[[nodiscard]] Circuit arbiter2();

/// Client process for `arbiter2`: issues requests and releases forever.
[[nodiscard]] Circuit arbiter_client(int index);

}  // namespace cipnet::models
