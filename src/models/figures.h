#pragma once

#include "petri/net.h"

namespace cipnet::models {

/// Figure 1 operands: two simple cycles through their initial place,
/// `(a.b)*` and `(c.d)*`. The choice `fig1_left() + fig1_right()` is the
/// paper's illustration that root-unwinding keeps a loop iteration from
/// re-enabling the unchosen branch.
[[nodiscard]] PetriNet fig1_left();
[[nodiscard]] PetriNet fig1_right();

/// Figure 2 operands: `((a+b).c)*` and `(a.d.a.e)*`; their parallel
/// composition synchronizes on the common label `a`.
[[nodiscard]] PetriNet fig2_left();
[[nodiscard]] PetriNet fig2_right();

/// Figure 3(a): a general net around a transition `t` (labeled "t") with
/// preset {P1, P2} and postset {Q1, Q2}, producers a..d into the preset,
/// conflictive consumers e, f of the preset, successors g..j of the
/// postset, and extra producers k, l into the postset. Hiding "t" exercises
/// every rule of Definition 4.10.
[[nodiscard]] PetriNet fig3_net();

/// Figure 3(c): the marked-graph variant — transitions a, d, e, f, h, j, k
/// and l are not present (no conflicts, single successor per output).
[[nodiscard]] PetriNet fig3_marked_graph();

}  // namespace cipnet::models
