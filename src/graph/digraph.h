#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace cipnet {

/// A small weighted directed multigraph used by the structural analyses
/// (SCC / liveness / safeness of marked graphs, cycle checks). Nodes are dense
/// indices `0..node_count-1`; edges carry a non-negative integer weight (token
/// counts when modelling marked graphs).
class Digraph {
 public:
  struct Edge {
    int from = 0;
    int to = 0;
    std::int64_t weight = 0;
  };

  Digraph() = default;
  explicit Digraph(int node_count) : out_(node_count), in_(node_count) {}

  // Edge weights may be negative (difference-constraint graphs); the
  // Dijkstra-based queries below require non-negative weights and check it.

  [[nodiscard]] int node_count() const { return static_cast<int>(out_.size()); }
  [[nodiscard]] int edge_count() const { return static_cast<int>(edges_.size()); }

  int add_node();
  /// Returns the edge index.
  int add_edge(int from, int to, std::int64_t weight = 0);

  [[nodiscard]] const Edge& edge(int e) const { return edges_[e]; }
  [[nodiscard]] const std::vector<int>& out_edges(int node) const {
    return out_[node];
  }
  [[nodiscard]] const std::vector<int>& in_edges(int node) const {
    return in_[node];
  }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_;  // node -> edge indices
  std::vector<std::vector<int>> in_;   // node -> edge indices
};

/// Result of Tarjan's algorithm: `component[v]` is the SCC index of node `v`;
/// components are numbered in reverse topological order (an edge between
/// distinct SCCs goes from a higher to a lower component index).
struct SccResult {
  std::vector<int> component;
  int component_count = 0;
};

[[nodiscard]] SccResult strongly_connected_components(const Digraph& g);

/// True iff the graph has one SCC containing every node (and at least one
/// node).
[[nodiscard]] bool is_strongly_connected(const Digraph& g);

/// True iff the graph contains a directed cycle (self-loops count).
[[nodiscard]] bool has_cycle(const Digraph& g);

/// Topological order of nodes; empty optional if the graph is cyclic.
[[nodiscard]] std::optional<std::vector<int>> topological_order(
    const Digraph& g);

/// Minimum total weight of a directed cycle passing through edge `e`, i.e.
/// weight(e) + shortest path from e.to back to e.from (Dijkstra; all weights
/// must be >= 0). Empty optional if no such cycle exists.
[[nodiscard]] std::optional<std::int64_t> min_cycle_weight_through_edge(
    const Digraph& g, int e);

/// Minimum total weight of any directed cycle; empty optional if acyclic.
[[nodiscard]] std::optional<std::int64_t> min_cycle_weight(const Digraph& g);

/// Shortest (by weight) path distances from `source` to all nodes; -1 where
/// unreachable. Weights must be >= 0.
[[nodiscard]] std::vector<std::int64_t> shortest_paths_from(const Digraph& g,
                                                            int source);

/// Bellman-Ford negative-cycle detection (weights may be negative). Used to
/// decide feasibility of difference-constraint systems: the system
/// `x_v - x_u <= w(u, v)` is feasible iff the constraint graph has no
/// negative cycle.
[[nodiscard]] bool has_negative_cycle(const Digraph& g);

}  // namespace cipnet
