#include "graph/digraph.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace cipnet {

int Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return node_count() - 1;
}

int Digraph::add_edge(int from, int to, std::int64_t weight) {
  assert(from >= 0 && from < node_count());
  assert(to >= 0 && to < node_count());
  int e = edge_count();
  edges_.push_back(Edge{from, to, weight});
  out_[from].push_back(e);
  in_[to].push_back(e);
  return e;
}

namespace {

// Iterative Tarjan to avoid stack overflow on long chains.
struct TarjanState {
  const Digraph& g;
  std::vector<int> index, lowlink, component;
  std::vector<bool> on_stack;
  std::vector<int> stack;
  int next_index = 0;
  int component_count = 0;

  explicit TarjanState(const Digraph& g_in)
      : g(g_in),
        index(g_in.node_count(), -1),
        lowlink(g_in.node_count(), 0),
        component(g_in.node_count(), -1),
        on_stack(g_in.node_count(), false) {}

  void run(int root) {
    struct Frame {
      int node;
      std::size_t edge_pos;
    };
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      int v = f.node;
      const auto& out = g.out_edges(v);
      if (f.edge_pos < out.size()) {
        int w = g.edge(out[f.edge_pos++]).to;
        if (index[w] < 0) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = component_count;
            if (w == v) break;
          }
          ++component_count;
        }
        frames.pop_back();
        if (!frames.empty()) {
          int parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
};

}  // namespace

SccResult strongly_connected_components(const Digraph& g) {
  TarjanState state(g);
  for (int v = 0; v < g.node_count(); ++v) {
    if (state.index[v] < 0) state.run(v);
  }
  return SccResult{std::move(state.component), state.component_count};
}

bool is_strongly_connected(const Digraph& g) {
  if (g.node_count() == 0) return false;
  return strongly_connected_components(g).component_count == 1;
}

bool has_cycle(const Digraph& g) {
  return !topological_order(g).has_value();
}

std::optional<std::vector<int>> topological_order(const Digraph& g) {
  std::vector<int> indegree(g.node_count(), 0);
  for (int v = 0; v < g.node_count(); ++v) {
    for (int e : g.out_edges(v)) indegree[g.edge(e).to]++;
  }
  std::vector<int> order;
  order.reserve(g.node_count());
  std::vector<int> ready;
  for (int v = 0; v < g.node_count(); ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    int v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (int e : g.out_edges(v)) {
      int w = g.edge(e).to;
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  if (static_cast<int>(order.size()) != g.node_count()) return std::nullopt;
  return order;
}

bool has_negative_cycle(const Digraph& g) {
  // Bellman-Ford from a virtual super-source (distance 0 everywhere).
  const int n = g.node_count();
  std::vector<std::int64_t> dist(n, 0);
  for (int round = 0; round < n; ++round) {
    bool relaxed = false;
    for (int e = 0; e < g.edge_count(); ++e) {
      const auto& edge = g.edge(e);
      if (dist[edge.from] + edge.weight < dist[edge.to]) {
        dist[edge.to] = dist[edge.from] + edge.weight;
        relaxed = true;
      }
    }
    if (!relaxed) return false;
  }
  return true;  // still relaxing after n rounds
}

std::vector<std::int64_t> shortest_paths_from(const Digraph& g, int source) {
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(g.node_count(), kInf);
  using Item = std::pair<std::int64_t, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;
    for (int e : g.out_edges(v)) {
      const auto& edge = g.edge(e);
      std::int64_t nd = d + edge.weight;
      if (nd < dist[edge.to]) {
        dist[edge.to] = nd;
        heap.push({nd, edge.to});
      }
    }
  }
  for (auto& d : dist) {
    if (d == kInf) d = -1;
  }
  return dist;
}

std::optional<std::int64_t> min_cycle_weight_through_edge(const Digraph& g,
                                                          int e) {
  const auto& edge = g.edge(e);
  auto dist = shortest_paths_from(g, edge.to);
  if (dist[edge.from] < 0) return std::nullopt;
  return edge.weight + dist[edge.from];
}

std::optional<std::int64_t> min_cycle_weight(const Digraph& g) {
  std::optional<std::int64_t> best;
  for (int e = 0; e < g.edge_count(); ++e) {
    auto w = min_cycle_weight_through_edge(g, e);
    if (w && (!best || *w < *best)) best = w;
  }
  return best;
}

}  // namespace cipnet
