#pragma once

// Post-mortem analysis of one run's observability artifacts — the engine
// behind `cipnet report`. A run can leave up to four kinds of evidence:
//
//   * a span trace (`--trace-out run.jsonl`, `{"event":"span",...}` lines
//     with a final `{"event":"counters",...}` snapshot),
//   * a Chrome trace (`--trace-out run.json`, `{"traceEvents":[...]}`),
//   * a flight-recorder dump (`--flight-dump`, watchdog/crash/exit dumps:
//     a `{"event":"flight_dump",...}` header followed by bare
//     `{"seq":...,"kind":...}` event lines),
//   * a sample stream (`--samples-out`, `{"event":"sample",...}` lines
//     from the time-series sampler).
//
// `PostMortemBuilder` ingests any mix of these (format auto-detected per
// file, unknown lines counted and skipped, never fatal) and distills one
// `PostMortem`: phase breakdown, slowest spans, throughput and RSS curves,
// shard-imbalance table, fault-site and flight-event summaries. The
// renderers emit it as aligned text, markdown tables, or a JSON document
// that round-trips through the strict parser.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cipnet::obs {

struct PostMortem {
  /// Spans aggregated by name across every ingested trace.
  struct PhaseAgg {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };

  /// The slowest individual spans (path = root/.../name when known).
  struct TopSpan {
    std::string path;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint64_t job = 0;
  };

  /// One progress heartbeat: the states/sec curve.
  struct RatePoint {
    std::string phase;
    std::uint64_t elapsed_ms = 0;
    std::uint64_t items = 0;
    double items_per_sec = 0.0;
    std::uint64_t rss_bytes = 0;
  };

  /// One sampler reading: the RSS (and cumulative-states) curve.
  struct SamplePoint {
    std::uint64_t seq = 0;
    std::uint64_t ns = 0;
    std::uint64_t rss_bytes = 0;
    std::uint64_t states = 0;  ///< reach.states counter, 0 when absent
  };

  struct FaultSite {
    std::string site;
    std::uint64_t fired = 0;
  };

  std::vector<PhaseAgg> phases;      ///< sorted by total_ns, descending
  std::vector<TopSpan> top_spans;    ///< sorted by dur_ns, descending
  std::vector<RatePoint> progress;   ///< chronological
  std::vector<SamplePoint> samples;  ///< chronological (by seq)
  /// Last per-shard item payload seen in a progress heartbeat.
  std::vector<std::uint64_t> shard_items;
  std::vector<FaultSite> fault_sites;  ///< from flight `fault_fired` events
  /// Flight events by kind name, sorted by count descending.
  std::vector<std::pair<std::string, std::uint64_t>> flight_kinds;
  std::uint64_t flight_recorded = 0;
  std::uint64_t flight_discarded = 0;
  /// Nonzero counters of the final `{"event":"counters"}` snapshot.
  std::vector<std::pair<std::string, std::uint64_t>> final_counters;

  std::size_t files = 0;          ///< files ingested
  std::size_t lines = 0;          ///< JSONL lines (or Chrome events) read
  std::size_t skipped = 0;        ///< unrecognized/unparseable lines
  bool saw_spans = false;
  bool saw_progress = false;
  bool saw_samples = false;
  bool saw_flight = false;
};

/// Streaming accumulator: `ingest` each artifact, then `finish` once.
class PostMortemBuilder {
 public:
  /// Parse one artifact. `name` is used only for diagnostics; the format
  /// is detected from the content. Returns the number of lines (or Chrome
  /// events) recognized; malformed lines are skipped, not fatal.
  std::size_t ingest(const std::string& name, const std::string& text);

  /// Sort, cap, and return the accumulated report. `top_limit` bounds the
  /// slowest-spans table.
  [[nodiscard]] PostMortem finish(std::size_t top_limit = 10);

 private:
  void ingest_chrome(const std::string& text);
  void ingest_jsonl(const std::string& text);
  void add_span(const std::string& name, const std::string& path,
                std::uint64_t start_ns, std::uint64_t dur_ns,
                std::uint64_t job);

  PostMortem pm_;
};

/// Render `pm` in the requested format: "text" (aligned console report),
/// "md"/"markdown" (tables), or "json" (round-trips through json::parse).
/// Throws `Error` on an unknown format.
[[nodiscard]] std::string render_postmortem(const PostMortem& pm,
                                            std::string_view format);

}  // namespace cipnet::obs
