#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace cipnet::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// An open span on this thread: the record under construction plus the
/// counter values when it opened (registration order; diffed on close).
struct Frame {
  SpanRecord record;
  std::vector<std::uint64_t> counters_at_open;
};

thread_local std::vector<Frame> t_stack;

}  // namespace

Tracer::Tracer() : epoch_ns_(steady_now_ns()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::add_sink(std::shared_ptr<Sink> sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.push_back(std::move(sink));
}

void Tracer::remove_sink(const std::shared_ptr<Sink>& sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void Tracer::clear_sinks() {
  std::lock_guard<std::mutex> lock(mutex_);
  sinks_.clear();
}

void Tracer::reset_epoch() {
  std::lock_guard<std::mutex> lock(mutex_);
  epoch_ns_ = steady_now_ns();
}

std::uint64_t Tracer::now_ns() const {
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch = epoch_ns_;
  }
  const std::uint64_t now = steady_now_ns();
  return now >= epoch ? now - epoch : 0;
}

void Tracer::emit(const SpanRecord& root) {
  // Copy the sink list so a sink can (de)register sinks without deadlock.
  std::vector<std::shared_ptr<Sink>> sinks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sinks = sinks_;
  }
  for (const auto& sink : sinks) sink->on_span(root);
}

Span::Span(std::string_view name) {
  if (!enabled()) return;
  active_ = true;
  t_stack.emplace_back();
  Frame& frame = t_stack.back();
  frame.record.name = std::string(name);
  frame.record.start_ns = Tracer::instance().now_ns();
  frame.record.job_id = current_job_id();
  Registry::instance().counter_values(frame.counters_at_open);
}

Span::~Span() {
  if (!active_ || t_stack.empty()) return;
  Frame frame = std::move(t_stack.back());
  t_stack.pop_back();
  frame.record.duration_ns =
      Tracer::instance().now_ns() - frame.record.start_ns;
  if (enabled()) {
    // Duration distribution per span name ("span.reach.explore", ...), so
    // repeated operations expose p50/p90/p99 in the metrics snapshot.
    Registry::instance()
        .histogram_cells("span." + frame.record.name)
        ->record(frame.record.duration_ns);
  }

  // Counter deltas: counters registered after the span opened diff against
  // zero (registration order only ever appends).
  std::vector<std::uint64_t> now_values;
  Registry::instance().counter_values(now_values);
  const std::vector<std::string> names = Registry::instance().counter_names();
  for (std::size_t i = 0; i < now_values.size(); ++i) {
    const std::uint64_t before =
        i < frame.counters_at_open.size() ? frame.counters_at_open[i] : 0;
    // A Registry::reset() mid-span can make the counter go backwards;
    // attribute the post-reset value in that case rather than underflow.
    const std::uint64_t delta =
        now_values[i] >= before ? now_values[i] - before : now_values[i];
    if (delta != 0) {
      frame.record.counter_deltas.emplace_back(names[i], delta);
    }
  }
  std::sort(frame.record.counter_deltas.begin(),
            frame.record.counter_deltas.end());

  if (t_stack.empty()) {
    Tracer::instance().emit(frame.record);
  } else {
    t_stack.back().record.children.push_back(std::move(frame.record));
  }
}

}  // namespace cipnet::obs
