#include "obs/flight_recorder.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "obs/trace.h"
#include "obs/trace_context.h"
#include "util/json_writer.h"

namespace cipnet::obs {

namespace {

constexpr std::string_view kKindNames[] = {
    "job_submitted", "job_started", "job_completed", "job_errored",
    "job_cancelled", "job_shed",    "job_rejected",  "watchdog_trip",
    "fault_fired",   "truncated",   "dump",          "custom",
};

// Fixed-size mirror of the dump path for the signal handler: std::string
// access is off-limits mid-crash, a pre-copied char buffer is not. Written
// under path_mutex_ by set_dump_path, read lock-free by the handler (a
// torn read risks at worst a garbled filename, never UB — the handler
// falls back to fd 2 when the open fails).
char g_crash_dump_path[512] = {0};

}  // namespace

std::string_view flight_kind_name(FlightKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < std::size(kKindNames) ? kKindNames[i] : "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder::FlightRecorder() {
  const char* off = std::getenv("CIPNET_FLIGHT_DISABLE");
  active_ = !(off != nullptr && off[0] == '1');
}

void FlightRecorder::record(FlightKind kind, std::uint64_t job_id,
                            std::string_view detail, std::uint64_t a,
                            std::uint64_t b) {
  if (!active_) return;
  if (job_id == 0) job_id = current_job_id();
  const std::uint64_t ticket =
      next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % kFlightCapacity];
  // Claim the slot: spin until the previous occupant (N tickets older, or
  // a reader-visible even state) is out. Contention requires a writer to
  // lap the entire ring mid-store — effectively never for job-rate events.
  std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
  for (;;) {
    if (seq >= 2 * (ticket + 1)) return;  // lapped while stalled: ours is
                                          // older than the slot's event
    if (seq % 2 == 0 &&
        slot.seq.compare_exchange_weak(seq, 2 * ticket + 1,
                                       std::memory_order_acq_rel)) {
      break;
    }
    seq = slot.seq.load(std::memory_order_acquire);
  }
  slot.ns.store(Tracer::instance().now_ns(), std::memory_order_relaxed);
  slot.job_id.store(job_id, std::memory_order_relaxed);
  slot.kind.store(static_cast<std::uint64_t>(kind),
                  std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  // Pack the detail string into the atomic words, zero-padded.
  for (std::size_t w = 0; w < slot.detail.size(); ++w) {
    std::uint64_t word = 0;
    for (std::size_t c = 0; c < 8; ++c) {
      const std::size_t i = w * 8 + c;
      if (i < detail.size() && i < kFlightDetailBytes) {
        word |= static_cast<std::uint64_t>(
                    static_cast<unsigned char>(detail[i]))
                << (8 * c);
      }
    }
    slot.detail[w].store(word, std::memory_order_relaxed);
  }
  slot.seq.store(2 * (ticket + 1), std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  if (!active_) return out;
  out.reserve(kFlightCapacity);
  for (const Slot& slot : slots_) {
    // Seqlock read: the slot is consistent only if the sequence word is
    // even and unchanged across the field reads.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
      if (seq1 == 0) break;          // never written
      if (seq1 % 2 != 0) continue;   // writer in the slot; retry
      FlightEvent ev;
      ev.ticket = seq1 / 2 - 1;
      ev.ns = slot.ns.load(std::memory_order_relaxed);
      ev.job_id = slot.job_id.load(std::memory_order_relaxed);
      ev.kind =
          static_cast<FlightKind>(slot.kind.load(std::memory_order_relaxed));
      ev.a = slot.a.load(std::memory_order_relaxed);
      ev.b = slot.b.load(std::memory_order_relaxed);
      char chars[kFlightDetailBytes];
      for (std::size_t w = 0; w < slot.detail.size(); ++w) {
        const std::uint64_t word =
            slot.detail[w].load(std::memory_order_relaxed);
        for (std::size_t c = 0; c < 8; ++c) {
          chars[w * 8 + c] = static_cast<char>((word >> (8 * c)) & 0xff);
        }
      }
      const std::uint64_t seq2 = slot.seq.load(std::memory_order_acquire);
      if (seq1 != seq2) continue;  // torn; retry
      ev.detail.assign(chars, strnlen(chars, kFlightDetailBytes));
      out.push_back(std::move(ev));
      break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.ticket < y.ticket;
            });
  return out;
}

void FlightRecorder::dump(std::ostream& out, std::string_view reason) const {
  const std::vector<FlightEvent> events = snapshot();
  const std::uint64_t total = next_.load(std::memory_order_relaxed);
  const std::uint64_t discarded =
      total > events.size() ? total - events.size() : 0;
  {
    json::Writer w;
    w.begin_object();
    w.member("event", "flight_dump");
    w.member("reason", reason);
    w.member("recorded", total);
    w.member("discarded", discarded);
    w.member("events", static_cast<std::uint64_t>(events.size()));
    w.end_object();
    out << w.str() << '\n';
  }
  for (const FlightEvent& ev : events) {
    json::Writer w;
    w.begin_object();
    w.member("seq", ev.ticket);
    w.member("ns", ev.ns);
    if (ev.job_id != 0) w.member("job", ev.job_id);
    w.member("kind", flight_kind_name(ev.kind));
    if (!ev.detail.empty()) w.member("detail", ev.detail);
    if (ev.a != 0) w.member("a", ev.a);
    if (ev.b != 0) w.member("b", ev.b);
    w.end_object();
    out << w.str() << '\n';
  }
  out.flush();
}

std::string FlightRecorder::dump_string(std::string_view reason) const {
  std::ostringstream out;
  dump(out, reason);
  return out.str();
}

void FlightRecorder::auto_dump(std::string_view reason) {
  if (!active_) return;
  record(FlightKind::kDump, 0, reason);
  std::string path;
  bool truncate = false;
  {
    std::lock_guard<std::mutex> lock(path_mutex_);
    path = dump_path_;
    truncate = !path_truncated_;
    path_truncated_ = true;
  }
  if (path.empty()) {
    dump(std::cerr, reason);
    return;
  }
  std::ofstream out(path, truncate ? std::ios::trunc : std::ios::app);
  if (!out) {
    dump(std::cerr, reason);
    return;
  }
  dump(out, reason);
}

void FlightRecorder::set_dump_path(std::string path) {
  std::lock_guard<std::mutex> lock(path_mutex_);
  dump_path_ = std::move(path);
  path_truncated_ = false;
  const std::size_t n =
      std::min(dump_path_.size(), sizeof(g_crash_dump_path) - 1);
  std::memcpy(g_crash_dump_path, dump_path_.data(), n);
  g_crash_dump_path[n] = '\0';
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock(path_mutex_);
  return dump_path_;
}

std::uint64_t FlightRecorder::recorded() const {
  return next_.load(std::memory_order_relaxed);
}

void FlightRecorder::clear() {
  next_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    slot.seq.store(0, std::memory_order_relaxed);
  }
}

namespace {

/// Fatal-signal path: format and write the events with nothing but stack
/// buffers, snprintf, and write(2). snprintf is not strictly
/// async-signal-safe, but this runs while the process is already dying —
/// a best-effort black box, not a correctness guarantee.
void write_crash_dump(int fd, int signo) {
  char line[256];
  int n = std::snprintf(line, sizeof(line),
                        "{\"event\":\"flight_dump\",\"reason\":\"signal "
                        "%d\"}\n",
                        signo);
  if (n > 0) (void)!write(fd, line, static_cast<std::size_t>(n));
  for (const FlightEvent& ev : FlightRecorder::instance().snapshot()) {
    n = std::snprintf(
        line, sizeof(line),
        "{\"seq\":%llu,\"ns\":%llu,\"job\":%llu,\"kind\":\"%.*s\","
        "\"detail\":\"%.*s\",\"a\":%llu,\"b\":%llu}\n",
        static_cast<unsigned long long>(ev.ticket),
        static_cast<unsigned long long>(ev.ns),
        static_cast<unsigned long long>(ev.job_id),
        static_cast<int>(flight_kind_name(ev.kind).size()),
        flight_kind_name(ev.kind).data(), static_cast<int>(ev.detail.size()),
        ev.detail.c_str(), static_cast<unsigned long long>(ev.a),
        static_cast<unsigned long long>(ev.b));
    if (n > 0) (void)!write(fd, line, static_cast<std::size_t>(n));
  }
}

void crash_handler(int signo) {
  // Honor the --flight-dump routing when a path is configured: append so a
  // crash after earlier auto_dumps extends the same black box. Fall back
  // to stderr when the open fails (read-only fs, bad path, ...).
  int fd = 2;
  if (g_crash_dump_path[0] != '\0') {
    const int file_fd =
        open(g_crash_dump_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (file_fd >= 0) fd = file_fd;
  }
  write_crash_dump(fd, signo);
  if (fd != 2) close(fd);
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace

void FlightRecorder::install_crash_handler() {
  if (!active_) return;
  static std::once_flag once;
  std::call_once(once, [] {
    std::signal(SIGSEGV, crash_handler);
    std::signal(SIGABRT, crash_handler);
    std::signal(SIGBUS, crash_handler);
  });
}

}  // namespace cipnet::obs
