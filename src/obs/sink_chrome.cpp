#include "obs/sink_chrome.h"

#include <cstdio>

#include "util/json_writer.h"

namespace cipnet::obs {

namespace {

/// Nanoseconds to the format's microsecond timestamps, keeping sub-µs
/// precision as a fractional part (spliced in as a raw JSON number).
std::string us_from_ns(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

ChromeSink::ChromeSink(std::ostream& out) : out_(out) {
  out_ << "{\"traceEvents\":[";
  // Process metadata so Perfetto labels the track.
  write_event(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"cipnet\"}}");
}

ChromeSink::~ChromeSink() { finish(); }

int ChromeSink::tid_for_current_thread() {
  const auto id = std::this_thread::get_id();
  auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const int tid = next_tid_++;
  tids_.emplace(id, tid);
  return tid;
}

void ChromeSink::write_event(const std::string& body) {
  if (!first_event_) out_ << ",\n";
  first_event_ = false;
  out_ << body;
}

void ChromeSink::write_span(const SpanRecord& span, int tid) {
  json::Writer w;
  w.begin_object();
  w.member("name", span.name);
  w.member("cat", "cipnet");
  w.member("ph", "X");
  w.key("ts").raw(us_from_ns(span.start_ns));
  w.key("dur").raw(us_from_ns(span.duration_ns));
  w.member("pid", 1);
  w.member("tid", tid);
  w.key("args").begin_object();
  for (const auto& [name, delta] : span.counter_deltas) {
    w.member(name, delta);
  }
  w.end_object();
  w.end_object();
  write_event(w.take());

  // Counter tracks: cumulative value at the span's end time.
  const std::uint64_t end_ns = span.start_ns + span.duration_ns;
  for (const auto& [name, delta] : span.counter_deltas) {
    const std::uint64_t total = counter_totals_[name] += delta;
    json::Writer c;
    c.begin_object();
    c.member("name", name);
    c.member("ph", "C");
    c.key("ts").raw(us_from_ns(end_ns));
    c.member("pid", 1);
    c.key("args").begin_object().member("value", total).end_object();
    c.end_object();
    write_event(c.take());
  }

  for (const SpanRecord& child : span.children) write_span(child, tid);
}

void ChromeSink::on_span(const SpanRecord& root) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  write_span(root, tid_for_current_thread());
  out_.flush();
}

void ChromeSink::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  finished_ = true;
  out_ << "],\"displayTimeUnit\":\"ms\"}\n";
  out_.flush();
}

}  // namespace cipnet::obs
