#pragma once

// Metric time series: a background sampler that snapshots the metric
// registry plus resident-set size into a bounded in-memory ring at a fixed
// interval, turning the point-in-time registry into a recorded history of
// the run. Consumers:
//
//   * `--sample-ms N` on the CLI (or CIPNET_SAMPLE_MS in the environment)
//     starts the sampler for the duration of a command; `--samples-out
//     <file.jsonl>` additionally streams every sample to disk as one
//     `{"event":"sample",...}` line — the stream `cipnet report` ingests.
//   * The `history` introspection op of `cipnet serve` pages the ring with
//     a since-cursor (`cursor` = highest `seq` already seen; the response
//     carries `next_cursor`), so a dashboard can poll without re-reading.
//
// Sampling is deliberately coarse (≥ 1 ms interval, default off) and the
// critical sections are tiny — a registry snapshot under the registry
// mutex, a ring push under the sampler mutex — so a live sampler costs
// well under the 2% gate enforced by the `sampler-overhead-check` bench
// target. The ring overwrites oldest-first; `obs.sampler.dropped` counts
// evictions so a paging consumer can tell when it fell behind.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace cipnet::json {
class Writer;
}  // namespace cipnet::json

namespace cipnet::obs {

/// One recorded sample: monotonic sequence number (the paging cursor),
/// tracer-epoch timestamp, RSS, and a full metric snapshot.
struct TimeSample {
  std::uint64_t seq = 0;
  std::uint64_t ns = 0;
  std::uint64_t rss_bytes = 0;
  Snapshot metrics;
};

struct SamplerOptions {
  /// Milliseconds between samples; clamped to >= 1.
  std::uint64_t interval_ms = 100;
  /// Ring capacity in samples; oldest are evicted past this.
  std::size_t capacity = 600;
  /// When nonempty, every sample is appended to this JSONL file as an
  /// `{"event":"sample",...}` line (file truncated at start).
  std::string jsonl_path;
};

/// Process-wide sampler singleton. `start`/`stop` manage the background
/// thread; `sample_once` takes an immediate sample on the caller's thread
/// (tests, final flush). All methods are thread-safe.
class TimeSeriesSampler {
 public:
  static TimeSeriesSampler& instance();

  /// Launch the background thread. Returns false (and changes nothing)
  /// when already running or when `jsonl_path` cannot be opened.
  bool start(const SamplerOptions& options);

  /// Take one final sample, join the thread, close the export file.
  /// No-op when not running.
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] std::uint64_t interval_ms() const;

  /// Sample immediately on the calling thread (also used by the background
  /// loop). Works whether or not the thread is running.
  void sample_once();

  /// Samples with `seq > cursor`, oldest first, at most `max` (0 = no
  /// limit). Pass cursor 0 for "from the beginning of the ring".
  [[nodiscard]] std::vector<TimeSample> since(std::uint64_t cursor,
                                              std::size_t max = 0) const;

  /// Highest sequence number assigned so far (0 = never sampled). Feed it
  /// back as `cursor` to receive only newer samples.
  [[nodiscard]] std::uint64_t next_cursor() const;

  /// Samples evicted by the bounded ring since the last `start`.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Drop all samples and reset the cursor (tests).
  void clear();

 private:
  TimeSeriesSampler() = default;

  void run_loop();
  void push(TimeSample sample);

  mutable std::mutex mutex_;
  std::deque<TimeSample> ring_;
  std::size_t capacity_ = 600;  // standalone sample_once before any start()
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t interval_ms_ = 0;
  bool running_ = false;
  bool stop_requested_ = false;
  std::condition_variable cv_;
  std::thread thread_;
  std::ofstream out_;
  bool export_open_ = false;
};

/// Serialize one sample as the `{"event":"sample",...}` object shared by
/// the JSONL export and the `history` op: seq, ns, rss_bytes, nonzero
/// counters and gauges, histogram percentiles.
void write_sample_json(json::Writer& w, const TimeSample& sample);

/// Start the sampler from CIPNET_SAMPLE_MS / CIPNET_SAMPLES_OUT when set
/// (used by bench mains so `sampler-overhead-check` can toggle sampling
/// without new flags). Returns true when a sampler was started.
bool start_sampler_from_env();

}  // namespace cipnet::obs
