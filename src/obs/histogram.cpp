#include "obs/histogram.h"

#include <bit>
#include <cmath>

namespace cipnet::obs {

std::size_t histogram_bucket_index(std::uint64_t value) {
  if (value < kHistogramSubBuckets) return static_cast<std::size_t>(value);
  // MSB position h >= 4: group (h - 3) with the 4 bits after the MSB as
  // the linear sub-bucket.
  const std::uint32_t h = static_cast<std::uint32_t>(std::bit_width(value)) - 1;
  const std::uint32_t shift = h - kHistogramSubBucketBits;
  const std::uint32_t group = h - kHistogramSubBucketBits + 1;
  const std::uint32_t sub = static_cast<std::uint32_t>(value >> shift) &
                            (kHistogramSubBuckets - 1);
  return (static_cast<std::size_t>(group) << kHistogramSubBucketBits) | sub;
}

std::uint64_t histogram_bucket_value(std::size_t index) {
  if (index < kHistogramSubBuckets) return index;
  const std::uint32_t group =
      static_cast<std::uint32_t>(index >> kHistogramSubBucketBits);
  const std::uint32_t sub = static_cast<std::uint32_t>(index) &
                            (kHistogramSubBuckets - 1);
  const std::uint32_t h = group + kHistogramSubBucketBits - 1;
  const std::uint32_t shift = h - kHistogramSubBucketBits;
  const std::uint64_t low =
      (static_cast<std::uint64_t>(kHistogramSubBuckets + sub)) << shift;
  const std::uint64_t width = std::uint64_t{1} << shift;
  return low + (width >> 1);
}

namespace detail {

void HistogramCells::record(std::uint64_t value) {
  buckets[histogram_bucket_index(value)].fetch_add(1,
                                                   std::memory_order_relaxed);
  sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t current = max.load(std::memory_order_relaxed);
  while (value > current &&
         !max.compare_exchange_weak(current, value,
                                    std::memory_order_relaxed)) {
  }
}

void HistogramCells::reset() {
  for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  sum.store(0, std::memory_order_relaxed);
  max.store(0, std::memory_order_relaxed);
}

}  // namespace detail

std::uint64_t HistogramSnapshot::percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0;
  if (p >= 100.0) return max;
  if (p < 0.0) p = 0.0;
  // Rank of the target recording, 1-based.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (const auto& [index, bucket_count] : buckets) {
    cumulative += bucket_count;
    if (cumulative >= rank) return histogram_bucket_value(index);
  }
  return max;
}

}  // namespace cipnet::obs
