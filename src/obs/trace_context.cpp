#include "obs/trace_context.h"

#include <utility>

namespace cipnet::obs {

namespace {
thread_local TraceContext* t_current = nullptr;
}  // namespace

const TraceContext* current_trace_context() { return t_current; }

TraceContext* mutable_current_trace_context() { return t_current; }

std::uint64_t current_job_id() {
  return t_current != nullptr ? t_current->job_id : 0;
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx)
    : ctx_(std::move(ctx)), prev_(t_current) {
  t_current = &ctx_;
}

ScopedTraceContext::~ScopedTraceContext() { t_current = prev_; }

}  // namespace cipnet::obs
