#pragma once

// Chrome trace-event sink: writes the span trees as a JSON document in the
// Chrome trace-event format, loadable in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing. Spans become "X" (complete) events with pid/tid and
// their counter deltas as args; each counter delta additionally feeds a
// "C" (counter) event carrying the running total, so Perfetto renders
// counter tracks alongside the flame chart.
//
// The document is `{"traceEvents":[...]}`; the sink writes the opening on
// construction, streams events as spans complete, and `finish()` (also run
// by the destructor) closes the JSON so even aborted runs leave a loadable
// file.

#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cipnet::obs {

/// Streams completed span trees to `out` in Chrome trace-event JSON. The
/// stream must outlive the sink; writes are serialized with an internal
/// mutex.
class ChromeSink : public Sink {
 public:
  explicit ChromeSink(std::ostream& out);
  ~ChromeSink() override;

  void on_span(const SpanRecord& root) override;

  /// Close the JSON document. Idempotent; no events are accepted after.
  void finish();

 private:
  void write_span(const SpanRecord& span, int tid);
  void write_event(const std::string& body);
  int tid_for_current_thread();

  std::mutex mutex_;
  std::ostream& out_;
  bool first_event_ = true;
  bool finished_ = false;
  int next_tid_ = 1;
  std::map<std::thread::id, int> tids_;
  // Running totals behind the "C" counter events.
  std::map<std::string, std::uint64_t> counter_totals_;
};

}  // namespace cipnet::obs
