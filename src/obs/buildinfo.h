#pragma once

// Build provenance for perf-trajectory files: git SHA, compiler, build
// type. Captured at CMake configure time (see src/CMakeLists.txt) and
// compiled into the library, so every BENCH_META line — from the bench
// binaries and from `cipnet bench` — identifies the code and toolchain it
// measured. Values fall back to "unknown" outside a git checkout; the SHA
// refreshes on reconfigure, not on every commit.

namespace cipnet::obs {

[[nodiscard]] const char* build_git_sha();
[[nodiscard]] const char* build_compiler();
[[nodiscard]] const char* build_type();

}  // namespace cipnet::obs
