#pragma once

// Build provenance for perf-trajectory files: git SHA, compiler, build
// type. Captured at CMake configure time (see src/CMakeLists.txt) and
// compiled into the library, so every BENCH_META line — from the bench
// binaries and from `cipnet bench` — identifies the code and toolchain it
// measured. Values fall back to "unknown" outside a git checkout; the SHA
// refreshes on reconfigure, not on every commit.

namespace cipnet::obs {

[[nodiscard]] const char* build_git_sha();
[[nodiscard]] const char* build_compiler();
[[nodiscard]] const char* build_type();

/// Comma-separated compiled-in feature flags, stable order: "fault" when
/// CIPNET_FAULT sites are compiled in, "flight" for the always-on flight
/// recorder, "sampler" for the metrics time-series sampler. Reported by
/// `cipnet --version` and the serve `version` op so a trace or bug report
/// pins down exactly what the binary could observe or inject.
[[nodiscard]] const char* build_features();

/// Sanitizer the build was compiled under ("thread", "address") or "none".
[[nodiscard]] const char* build_sanitizer();

}  // namespace cipnet::obs
