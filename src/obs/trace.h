#pragma once

// RAII tracing spans forming a nested trace tree. A `Span` measures a
// steady-clock duration and the counter deltas that accrued while it was
// open; spans opened inside it become its children. When a root span (no
// open parent on this thread) closes, the completed tree is handed to every
// registered `Sink`.
//
// Span names follow the `module.operation` convention (`reach.explore`,
// `algebra.hide`, ...). Like the metrics, spans are inert unless
// instrumentation is enabled (see obs/metrics.h): a disabled `Span` is a
// single flag check in both constructor and destructor.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cipnet::obs {

/// One completed span. `start_ns` is relative to the tracer epoch (set when
/// tracing is reset), `counter_deltas` holds the counters that changed while
/// the span was open (including changes attributed to its children).
struct SpanRecord {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Owning service job (obs/trace_context.h), 0 outside any request.
  std::uint64_t job_id = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  std::vector<SpanRecord> children;
};

/// Receives each completed root span (with its nested children).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_span(const SpanRecord& root) = 0;
};

/// Process-wide sink registration and the trace epoch. Thread-safe; spans
/// themselves are tracked per-thread, so concurrent threads produce
/// separate trees.
class Tracer {
 public:
  static Tracer& instance();

  void add_sink(std::shared_ptr<Sink> sink);
  void remove_sink(const std::shared_ptr<Sink>& sink);
  void clear_sinks();

  /// Restart the epoch `start_ns` is measured from.
  void reset_epoch();

  /// Nanoseconds since the epoch (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Internal: dispatch a completed root span to every sink.
  void emit(const SpanRecord& root);

 private:
  Tracer();

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Sink>> sinks_;
  std::uint64_t epoch_ns_ = 0;  // steady-clock origin
};

/// RAII span. Construct to open, destroy to close. Inert when
/// instrumentation is disabled at construction time.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
};

}  // namespace cipnet::obs
