#pragma once

// Log-bucketed distribution storage for `obs::Histogram` (declared in
// obs/metrics.h next to Counter/Gauge): HDR-style power-of-two major
// buckets with 16 linear sub-buckets each, so relative quantization error
// stays under 1/16 across the whole 64-bit value range. Recording is a
// handful of relaxed atomic adds — lock-free and wait-free apart from the
// max-tracking CAS loop — so concurrent hot paths can record without
// coordination.
//
// This header is self-contained (no dependency on the registry) so the
// bucket math is directly testable; obs/metrics.h owns registration.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cipnet::obs {

/// Sub-bucket resolution: 2^4 linear sub-buckets per power-of-two range.
inline constexpr std::uint32_t kHistogramSubBucketBits = 4;
inline constexpr std::uint32_t kHistogramSubBuckets =
    1u << kHistogramSubBucketBits;

/// Bucket count covering all 64-bit values: 16 exact buckets for values
/// below 16, then 16 sub-buckets per remaining power of two (60 groups).
inline constexpr std::size_t kHistogramBuckets =
    kHistogramSubBuckets * (64 - kHistogramSubBucketBits + 1);

/// Bucket index of `value`. Values below 2^4 get exact buckets; larger
/// values land in the sub-bucket selected by the 4 bits after the MSB.
[[nodiscard]] std::size_t histogram_bucket_index(std::uint64_t value);

/// Representative (midpoint) value of a bucket — what percentiles report.
/// Exact for the first 16 buckets, within half a bucket width after that.
[[nodiscard]] std::uint64_t histogram_bucket_value(std::size_t index);

namespace detail {

/// The registry-owned cells behind one histogram. All relaxed atomics;
/// `count` is derived from the bucket sums at snapshot time.
struct HistogramCells {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> max{0};

  void record(std::uint64_t value);
  void reset();
};

}  // namespace detail

/// Point-in-time copy of one histogram: total count/sum/max plus the
/// nonzero buckets, from which any percentile can be computed.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  /// (bucket index, count) pairs, ascending by index, zero counts omitted.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  /// Value at percentile `p` in [0, 100]: the representative value of the
  /// bucket holding the ceil(p/100 * count)-th smallest recording. 0 when
  /// empty. `percentile(100)` reports the exact observed max.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  [[nodiscard]] std::uint64_t mean() const {
    return count == 0 ? 0 : sum / count;
  }
};

}  // namespace cipnet::obs
