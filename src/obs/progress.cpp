#include "obs/progress.h"

#include <algorithm>
#include <chrono>

#include "obs/memory.h"
#include "obs/trace_context.h"

namespace cipnet::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ProgressBus& ProgressBus::instance() {
  static ProgressBus bus;
  return bus;
}

int ProgressBus::add_listener(Listener listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = next_id_++;
  listeners_.emplace_back(id, std::move(listener));
  active_.store(true, std::memory_order_relaxed);
  return id;
}

void ProgressBus::remove_listener(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      listeners_.end());
  active_.store(!listeners_.empty(), std::memory_order_relaxed);
}

void ProgressBus::publish(const ProgressEvent& event) {
  std::vector<std::pair<int, Listener>> listeners;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    listeners = listeners_;
  }
  for (const auto& [id, listener] : listeners) listener(event);
}

ProgressReporter::ProgressReporter(std::string_view phase)
    : phase_(phase), start_ns_(steady_now_ns()), last_emit_ns_(start_ns_) {}

ProgressReporter::~ProgressReporter() {
  if (any_update_.load(std::memory_order_relaxed) &&
      ProgressBus::instance().active()) {
    publish(true);
  }
}

void ProgressReporter::update_throttled(std::uint64_t items,
                                        std::uint64_t frontier) {
  items_.store(items, std::memory_order_relaxed);
  frontier_.store(frontier, std::memory_order_relaxed);
  any_update_.store(true, std::memory_order_relaxed);
  const std::uint64_t now = steady_now_ns();
  const std::uint64_t interval_ns =
      ProgressBus::instance().interval_ms() * 1'000'000;
  // CAS gate: among racing workers, exactly one advances the emit clock
  // and publishes this interval's heartbeat; the rest return.
  std::uint64_t last = last_emit_ns_.load(std::memory_order_relaxed);
  if (now - last < interval_ns) return;
  if (!last_emit_ns_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    return;
  }
  publish(false);
}

void ProgressReporter::publish(bool final_event) {
  const std::uint64_t now = steady_now_ns();
  const std::uint64_t elapsed_ns = now > start_ns_ ? now - start_ns_ : 0;
  ProgressEvent event;
  event.phase = phase_;
  event.job_id = current_job_id();
  event.items = items_.load(std::memory_order_relaxed);
  event.frontier = frontier_.load(std::memory_order_relaxed);
  event.elapsed_ms = elapsed_ns / 1'000'000;
  event.items_per_sec =
      elapsed_ns == 0 ? 0.0
                      : static_cast<double>(event.items) * 1e9 /
                            static_cast<double>(elapsed_ns);
  event.peak_rss_bytes = peak_rss_bytes();
  event.target = target_.load(std::memory_order_relaxed);
  if (event.target > event.items && event.items_per_sec > 0.0) {
    event.eta_ms = static_cast<std::uint64_t>(
        static_cast<double>(event.target - event.items) * 1000.0 /
        event.items_per_sec);
  }
  if (shard_supplier_) event.shard_items = shard_supplier_();
  event.final_event = final_event;
  ProgressBus::instance().publish(event);
}

}  // namespace cipnet::obs
