#include "obs/progress.h"

#include <algorithm>
#include <chrono>

#include "obs/memory.h"
#include "obs/trace_context.h"

namespace cipnet::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ProgressBus& ProgressBus::instance() {
  static ProgressBus bus;
  return bus;
}

int ProgressBus::add_listener(Listener listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = next_id_++;
  listeners_.emplace_back(id, std::move(listener));
  active_.store(true, std::memory_order_relaxed);
  return id;
}

void ProgressBus::remove_listener(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  listeners_.erase(
      std::remove_if(listeners_.begin(), listeners_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      listeners_.end());
  active_.store(!listeners_.empty(), std::memory_order_relaxed);
}

void ProgressBus::publish(const ProgressEvent& event) {
  std::vector<std::pair<int, Listener>> listeners;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    listeners = listeners_;
  }
  for (const auto& [id, listener] : listeners) listener(event);
}

ProgressReporter::ProgressReporter(std::string_view phase)
    : phase_(phase), start_ns_(steady_now_ns()), last_emit_ns_(start_ns_) {}

ProgressReporter::~ProgressReporter() {
  if (any_update_ && ProgressBus::instance().active()) publish(true);
}

void ProgressReporter::update_throttled(std::uint64_t items,
                                        std::uint64_t frontier) {
  items_ = items;
  frontier_ = frontier;
  any_update_ = true;
  const std::uint64_t now = steady_now_ns();
  const std::uint64_t interval_ns =
      ProgressBus::instance().interval_ms() * 1'000'000;
  if (now - last_emit_ns_ < interval_ns) return;
  last_emit_ns_ = now;
  publish(false);
}

void ProgressReporter::publish(bool final_event) {
  const std::uint64_t now = steady_now_ns();
  const std::uint64_t elapsed_ns = now > start_ns_ ? now - start_ns_ : 0;
  ProgressEvent event;
  event.phase = phase_;
  event.job_id = current_job_id();
  event.items = items_;
  event.frontier = frontier_;
  event.elapsed_ms = elapsed_ns / 1'000'000;
  event.items_per_sec =
      elapsed_ns == 0 ? 0.0
                      : static_cast<double>(items_) * 1e9 /
                            static_cast<double>(elapsed_ns);
  event.peak_rss_bytes = peak_rss_bytes();
  event.final_event = final_event;
  ProgressBus::instance().publish(event);
}

}  // namespace cipnet::obs
