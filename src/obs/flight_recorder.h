#pragma once

// Always-on flight recorder: a fixed-size, lock-free ring buffer of the
// events that matter when the service misbehaves — job state transitions,
// fault fires, watchdog trips, shed/truncate decisions. Unlike the metric
// registry, recording is NOT gated on `obs::enabled()`: the whole point is
// that when a worker wedges or the process takes a fatal signal, the last
// few thousand events are already in memory and can be dumped as JSONL
// with no cooperation from the failing code.
//
// Design constraints, in order:
//   * recording must be cheap (events are per *job*, never per state — a
//     few dozen nanoseconds of relaxed atomics) and wait-free in the
//     common case;
//   * concurrent writers and a concurrent dump must be race-free under
//     TSan — every slot word is an atomic, and a per-slot sequence number
//     (seqlock discipline) lets the reader detect and skip torn slots;
//   * the dump must be meaningful after a wrap: slots carry the global
//     ticket, so events reassemble into their original total order and
//     the dump reports how many older events the wrap discarded.
//
// The ring holds `kFlightCapacity` events. Payload strings (the `detail`
// field) are truncated to `kFlightDetailBytes` — identifiers, not prose.
// `CIPNET_FLIGHT_DISABLE=1` in the environment turns the recorder into a
// no-op (checked once at startup); the bench-check harness uses this to
// prove the always-on overhead is below its ±2% bound.

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cipnet::obs {

inline constexpr std::size_t kFlightCapacity = 4096;
inline constexpr std::size_t kFlightDetailBytes = 48;

/// Event vocabulary. Stable names (see `flight_kind_name`) — they appear
/// in dumps, the `dump` service op, and docs/OBSERVABILITY.md.
enum class FlightKind : std::uint8_t {
  kJobSubmitted = 0,  ///< request accepted into the scheduler queue
  kJobStarted,        ///< a worker began executing the job
  kJobCompleted,      ///< job produced an ok response (a = cached 0/1)
  kJobErrored,        ///< job produced an error response (detail = code)
  kJobCancelled,      ///< deadline or watchdog cancellation surfaced
  kJobShed,           ///< rejected at the door by the RSS watermark
  kJobRejected,       ///< rejected by queue backpressure
  kWatchdogTrip,      ///< watchdog cancelled a stalled job (a = ran ms)
  kFaultFired,        ///< an injected fault surfaced (detail = site)
  kTruncated,         ///< an exploration degraded to a partial result
  kDump,              ///< a dump was produced (detail = reason)
  kCustom,            ///< free-form marker (detail says what)
};

[[nodiscard]] std::string_view flight_kind_name(FlightKind kind);

/// One decoded event, as returned by `snapshot()` / rendered by dumps.
struct FlightEvent {
  std::uint64_t ticket = 0;   ///< global sequence number (total order)
  std::uint64_t ns = 0;       ///< steady-clock nanoseconds (tracer epoch)
  std::uint64_t job_id = 0;   ///< owning job, 0 = none
  FlightKind kind = FlightKind::kCustom;
  std::uint64_t a = 0;        ///< kind-specific numeric payloads
  std::uint64_t b = 0;
  std::string detail;         ///< kind-specific short string
};

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Record one event. `job_id` 0 means "use the thread's current
  /// TraceContext job id" (obs/trace_context.h), so call sites deep in the
  /// library need not know who they are working for. Lock-free; never
  /// throws; a no-op when the recorder is disabled via environment.
  void record(FlightKind kind, std::uint64_t job_id = 0,
              std::string_view detail = {}, std::uint64_t a = 0,
              std::uint64_t b = 0);

  /// Decode the ring into events sorted by ticket (oldest surviving
  /// first). Torn slots (a writer mid-store) are skipped, so a snapshot
  /// taken during a write storm is consistent, just possibly one short.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// The dump: one JSON object per line, oldest first, preceded by a
  /// header line carrying the reason, total events recorded, and how many
  /// the ring wrap discarded.
  void dump(std::ostream& out, std::string_view reason) const;
  [[nodiscard]] std::string dump_string(std::string_view reason) const;

  /// Dump to the configured path (`set_dump_path`) or stderr when none.
  /// Called by the scheduler watchdog on a stall and by the fatal-signal
  /// handler; also records a `kDump` event so the dump itself is in the
  /// timeline.
  void auto_dump(std::string_view reason);

  /// Where `auto_dump` writes ("" = stderr). Truncates on first use per
  /// path, appends across repeated dumps of the same run.
  void set_dump_path(std::string path);
  [[nodiscard]] std::string dump_path() const;

  /// Total events ever recorded (monotonic) and how many the ring has
  /// discarded; `discarded = max(0, recorded - capacity)` modulo torn
  /// writes.
  [[nodiscard]] std::uint64_t recorded() const;

  /// Drop every event and reset the ticket counter (tests).
  void clear();

  /// False when `CIPNET_FLIGHT_DISABLE=1` was set at process start.
  [[nodiscard]] bool active() const { return active_; }

  /// Install SIGSEGV/SIGABRT/SIGBUS handlers that write a best-effort
  /// dump to the configured path (or stderr) before re-raising. Installed
  /// by the server and by every CLI command (the global `--flight-dump`
  /// flag routes the output); idempotent.
  void install_crash_handler();

 private:
  FlightRecorder();

  // One ring slot, fully atomic so concurrent write/decode is race-free.
  // `seq` follows seqlock discipline: 0 = never written, odd = writer in
  // the slot, even = 2 * (ticket + 1) of the stored event.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> job_id{0};
    std::atomic<std::uint64_t> kind{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::array<std::atomic<std::uint64_t>, kFlightDetailBytes / 8> detail{};
  };

  bool active_;
  std::atomic<std::uint64_t> next_{0};
  std::array<Slot, kFlightCapacity> slots_;

  mutable std::mutex path_mutex_;
  std::string dump_path_;
  bool path_truncated_ = false;
};

}  // namespace cipnet::obs
