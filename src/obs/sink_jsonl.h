#pragma once

// JSON-lines trace sink: one JSON object per line, one line per span
// (pre-order, parents before children), machine-consumable with any
// line-oriented JSON reader. See docs/OBSERVABILITY.md for the schema.

#include <ostream>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace cipnet::obs {

/// Writes every completed span tree to `out` as JSONL. The stream must
/// outlive the sink; writes are serialized with an internal mutex.
class JsonlSink : public Sink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}

  void on_span(const SpanRecord& root) override;

  /// Append one `{"event":"counters",...}` line with a full metric
  /// snapshot (counters, gauges, histogram percentiles) — the CLI writes
  /// this as the final line of a trace file.
  void write_counters(const Snapshot& snapshot);

  /// Append one `{"event":"progress",...}` heartbeat line.
  void write_progress(const ProgressEvent& event);

 private:
  void write_span(const SpanRecord& span, const std::string& parent_path,
                  int depth);

  std::mutex mutex_;
  std::ostream& out_;
};

/// Minimal JSON string escaping for metric/span names.
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace cipnet::obs
