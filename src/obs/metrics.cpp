#include "obs/metrics.h"

#include <algorithm>

namespace cipnet::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

std::atomic<std::uint64_t>* Registry::cell(std::deque<Cell>& cells,
                                           std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Cell& c : cells) {
    if (c.name == name) return &c.value;
  }
  // Few metrics, registered once per call site: linear scan is fine.
  cells.emplace_back();
  cells.back().name = std::string(name);
  return &cells.back().value;
}

std::atomic<std::uint64_t>* Registry::counter_cell(std::string_view name) {
  return cell(counters_, name);
}

std::atomic<std::uint64_t>* Registry::gauge_cell(std::string_view name) {
  return cell(gauges_, name);
}

detail::HistogramCells* Registry::histogram_cells(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (HistCell& h : histograms_) {
    if (h.name == name) return &h.cells;
  }
  histograms_.emplace_back();
  histograms_.back().name = std::string(name);
  return &histograms_.back().cells;
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Cell& c : counters_) {
      out.counters.emplace_back(c.name,
                                c.value.load(std::memory_order_relaxed));
    }
    for (const Cell& c : gauges_) {
      out.gauges.emplace_back(c.name, c.value.load(std::memory_order_relaxed));
    }
    for (const HistCell& h : histograms_) {
      HistogramSnapshot hs;
      hs.name = h.name;
      hs.sum = h.cells.sum.load(std::memory_order_relaxed);
      hs.max = h.cells.max.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        const std::uint64_t n =
            h.cells.buckets[i].load(std::memory_order_relaxed);
        if (n != 0) {
          hs.count += n;
          hs.buckets.emplace_back(static_cast<std::uint32_t>(i), n);
        }
      }
      out.histograms.push_back(std::move(hs));
    }
  }
  std::sort(out.counters.begin(), out.counters.end());
  std::sort(out.gauges.begin(), out.gauges.end());
  std::sort(out.histograms.begin(), out.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::counter_values(std::vector<std::uint64_t>& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out.clear();
  out.reserve(counters_.size());
  for (const Cell& c : counters_) {
    out.push_back(c.value.load(std::memory_order_relaxed));
  }
}

std::vector<std::string> Registry::counter_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const Cell& c : counters_) out.push_back(c.name);
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Cell& c : counters_) c.value.store(0, std::memory_order_relaxed);
  for (Cell& c : gauges_) c.value.store(0, std::memory_order_relaxed);
  for (HistCell& h : histograms_) h.cells.reset();
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::uint64_t Snapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* Snapshot::histogram(std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

ScopedEnable::ScopedEnable(bool reset) : previous_(enabled()) {
  if (reset) Registry::instance().reset();
  Registry::instance().set_enabled(true);
}

ScopedEnable::~ScopedEnable() {
  Registry::instance().set_enabled(previous_);
}

std::string render_text_report(const Snapshot& snapshot) {
  std::size_t width = 0;
  for (const auto& [n, v] : snapshot.counters) {
    if (v != 0) width = std::max(width, n.size());
  }
  for (const auto& [n, v] : snapshot.gauges) {
    if (v != 0) width = std::max(width, n.size());
  }
  std::string out = "cipnet stats\n";
  auto section = [&](const char* title, const auto& cells) {
    bool any = false;
    for (const auto& [n, v] : cells) any = any || v != 0;
    if (!any) return;
    out += "  ";
    out += title;
    out += ":\n";
    for (const auto& [n, v] : cells) {
      if (v == 0) continue;
      out += "    " + n + std::string(width - n.size() + 2, ' ') +
             std::to_string(v) + "\n";
    }
  };
  section("counters", snapshot.counters);
  section("gauges", snapshot.gauges);
  std::size_t hist_width = 0;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.count != 0) hist_width = std::max(hist_width, h.name.size());
  }
  if (hist_width != 0) {
    out += "  histograms:\n";
    for (const HistogramSnapshot& h : snapshot.histograms) {
      if (h.count == 0) continue;
      out += "    " + h.name + std::string(hist_width - h.name.size() + 2, ' ') +
             "count=" + std::to_string(h.count) +
             " p50=" + std::to_string(h.percentile(50)) +
             " p90=" + std::to_string(h.percentile(90)) +
             " p99=" + std::to_string(h.percentile(99)) +
             " max=" + std::to_string(h.max) + "\n";
    }
  }
  if (width == 0 && hist_width == 0) out += "  (all metrics zero)\n";
  return out;
}

}  // namespace cipnet::obs
