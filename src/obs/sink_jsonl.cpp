#include "obs/sink_jsonl.h"

#include <cstdio>

namespace cipnet::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_pairs(
    std::string& line,
    const std::vector<std::pair<std::string, std::uint64_t>>& pairs) {
  line += "{";
  bool first = true;
  for (const auto& [name, value] : pairs) {
    if (!first) line += ",";
    first = false;
    line += "\"" + json_escape(name) + "\":" + std::to_string(value);
  }
  line += "}";
}

}  // namespace

void JsonlSink::write_span(const SpanRecord& span,
                           const std::string& parent_path, int depth) {
  const std::string path =
      parent_path.empty() ? span.name : parent_path + "/" + span.name;
  std::string line = "{\"event\":\"span\",\"name\":\"" +
                     json_escape(span.name) + "\",\"path\":\"" +
                     json_escape(path) + "\",\"depth\":" +
                     std::to_string(depth) +
                     ",\"start_ns\":" + std::to_string(span.start_ns) +
                     ",\"dur_ns\":" + std::to_string(span.duration_ns) +
                     ",\"counters\":";
  append_pairs(line, span.counter_deltas);
  line += "}\n";
  out_ << line;
  for (const SpanRecord& child : span.children) {
    write_span(child, path, depth + 1);
  }
}

void JsonlSink::on_span(const SpanRecord& root) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_span(root, "", 0);
  out_.flush();
}

void JsonlSink::write_counters(const Snapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string line = "{\"event\":\"counters\",\"counters\":";
  append_pairs(line, snapshot.counters);
  line += ",\"gauges\":";
  append_pairs(line, snapshot.gauges);
  line += ",\"histograms\":{";
  bool first = true;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.count == 0) continue;
    if (!first) line += ",";
    first = false;
    line += "\"" + json_escape(h.name) +
            "\":{\"count\":" + std::to_string(h.count) +
            ",\"sum\":" + std::to_string(h.sum) +
            ",\"p50\":" + std::to_string(h.percentile(50)) +
            ",\"p90\":" + std::to_string(h.percentile(90)) +
            ",\"p99\":" + std::to_string(h.percentile(99)) +
            ",\"max\":" + std::to_string(h.max) + "}";
  }
  line += "}}\n";
  out_ << line;
  out_.flush();
}

void JsonlSink::write_progress(const ProgressEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f", event.items_per_sec);
  out_ << "{\"event\":\"progress\",\"phase\":\"" + json_escape(event.phase) +
              "\",\"items\":" + std::to_string(event.items) +
              ",\"frontier\":" + std::to_string(event.frontier) +
              ",\"items_per_sec\":" + rate +
              ",\"elapsed_ms\":" + std::to_string(event.elapsed_ms) +
              ",\"peak_rss_bytes\":" + std::to_string(event.peak_rss_bytes) +
              ",\"final\":" + (event.final_event ? "true" : "false") + "}\n";
  out_.flush();
}

}  // namespace cipnet::obs
