#include "obs/sink_jsonl.h"

#include <cstdio>

namespace cipnet::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_pairs(
    std::string& line,
    const std::vector<std::pair<std::string, std::uint64_t>>& pairs) {
  line += "{";
  bool first = true;
  for (const auto& [name, value] : pairs) {
    if (!first) line += ",";
    first = false;
    line += "\"" + json_escape(name) + "\":" + std::to_string(value);
  }
  line += "}";
}

}  // namespace

void JsonlSink::write_span(const SpanRecord& span,
                           const std::string& parent_path, int depth) {
  const std::string path =
      parent_path.empty() ? span.name : parent_path + "/" + span.name;
  std::string line = "{\"event\":\"span\",\"name\":\"" +
                     json_escape(span.name) + "\",\"path\":\"" +
                     json_escape(path) + "\",\"depth\":" +
                     std::to_string(depth) +
                     ",\"start_ns\":" + std::to_string(span.start_ns) +
                     ",\"dur_ns\":" + std::to_string(span.duration_ns) +
                     ",\"counters\":";
  append_pairs(line, span.counter_deltas);
  line += "}\n";
  out_ << line;
  for (const SpanRecord& child : span.children) {
    write_span(child, path, depth + 1);
  }
}

void JsonlSink::on_span(const SpanRecord& root) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_span(root, "", 0);
  out_.flush();
}

void JsonlSink::write_counters(const Snapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string line = "{\"event\":\"counters\",\"counters\":";
  append_pairs(line, snapshot.counters);
  line += ",\"gauges\":";
  append_pairs(line, snapshot.gauges);
  line += "}\n";
  out_ << line;
  out_.flush();
}

}  // namespace cipnet::obs
