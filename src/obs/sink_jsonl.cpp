#include "obs/sink_jsonl.h"

#include "util/json_writer.h"

namespace cipnet::obs {

std::string json_escape(const std::string& text) {
  // Kept as the historical obs-layer entry point; the implementation moved
  // to util/json_writer.h when the sinks switched to the shared writer.
  return json::escape(text);
}

namespace {

void write_pairs(
    json::Writer& w,
    const std::vector<std::pair<std::string, std::uint64_t>>& pairs) {
  w.begin_object();
  for (const auto& [name, value] : pairs) w.member(name, value);
  w.end_object();
}

}  // namespace

void JsonlSink::write_span(const SpanRecord& span,
                           const std::string& parent_path, int depth) {
  const std::string path =
      parent_path.empty() ? span.name : parent_path + "/" + span.name;
  json::Writer w;
  w.begin_object();
  w.member("event", "span");
  w.member("name", span.name);
  w.member("path", path);
  w.member("depth", depth);
  w.member("start_ns", span.start_ns);
  w.member("dur_ns", span.duration_ns);
  if (span.job_id != 0) w.member("job", span.job_id);
  w.key("counters");
  write_pairs(w, span.counter_deltas);
  w.end_object();
  out_ << w.str() << '\n';
  for (const SpanRecord& child : span.children) {
    write_span(child, path, depth + 1);
  }
}

void JsonlSink::on_span(const SpanRecord& root) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_span(root, "", 0);
  out_.flush();
}

void JsonlSink::write_counters(const Snapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Writer w;
  w.begin_object();
  w.member("event", "counters");
  w.key("counters");
  write_pairs(w, snapshot.counters);
  w.key("gauges");
  write_pairs(w, snapshot.gauges);
  w.key("histograms").begin_object();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.count == 0) continue;
    w.key(h.name).begin_object();
    w.member("count", h.count);
    w.member("sum", h.sum);
    w.member("p50", h.percentile(50));
    w.member("p90", h.percentile(90));
    w.member("p99", h.percentile(99));
    w.member("max", h.max);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  out_ << w.str() << '\n';
  out_.flush();
}

void JsonlSink::write_progress(const ProgressEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  json::Writer w;
  w.begin_object();
  w.member("event", "progress");
  w.member("phase", event.phase);
  if (event.job_id != 0) w.member("job", event.job_id);
  w.member("items", event.items);
  w.member("frontier", event.frontier);
  w.member("items_per_sec", event.items_per_sec);
  w.member("elapsed_ms", event.elapsed_ms);
  w.member("peak_rss_bytes", event.peak_rss_bytes);
  if (event.target != 0) {
    w.member("target", event.target);
    w.member("eta_ms", event.eta_ms);
  }
  if (!event.shard_items.empty()) {
    w.key("shards").begin_array();
    for (const std::uint64_t items : event.shard_items) w.value(items);
    w.end_array();
  }
  w.member("final", event.final_event);
  w.end_object();
  out_ << w.str() << '\n';
  out_.flush();
}

}  // namespace cipnet::obs
