#pragma once

// Perf-trajectory data model. Bench binaries print one `BENCH_META {...}`
// line plus one `BENCH_ROW {...}` line per measurement (possibly repeated
// over reps); this module turns that stream into a stable `BENCH_<name>.json`
// aggregate (median over reps, provenance metadata from obs/buildinfo) and
// diffs two aggregates to flag wall-time regressions. `tools/bench_report`
// is the CLI front-end; the `bench-check` CMake target wires the diff
// against a committed baseline.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cipnet::obs {

/// JSON payload for a `BENCH_META ` line: experiment/artifact plus the
/// build provenance (git SHA, compiler, build type) from obs/buildinfo.
[[nodiscard]] std::string bench_meta_json(std::string_view experiment,
                                          std::string_view artifact);

/// JSON payload for a `BENCH_ROW ` line.
[[nodiscard]] std::string bench_row_json(std::string_view name,
                                         std::uint64_t states, double wall_s);

/// One aggregated measurement: all reps of the same row name collapsed to
/// their median wall time.
struct BenchRow {
  std::string name;
  std::uint64_t states = 0;
  double wall_s_median = 0.0;
  int reps = 0;
};

/// One experiment's aggregated results plus its metadata key/value pairs
/// (string-valued members of the BENCH_META payload, e.g. artifact,
/// git_sha, compiler, build_type).
struct BenchAggregate {
  std::string experiment;
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<BenchRow> rows;

  [[nodiscard]] const BenchRow* row(std::string_view name) const;
};

/// Scan bench output for `BENCH_META` / `BENCH_ROW` lines (all other lines
/// ignored) and aggregate repeated row names to medians. `experiment`
/// overrides the name from BENCH_META when non-empty. Rows keep first-seen
/// order. Malformed JSON payloads throw `ParseError`.
[[nodiscard]] BenchAggregate aggregate_bench_output(std::istream& in,
                                                    std::string_view experiment = {});

/// Serialize / parse the `BENCH_<name>.json` trajectory format.
[[nodiscard]] std::string bench_to_json(const BenchAggregate& agg);
[[nodiscard]] BenchAggregate bench_from_json(std::string_view text);

/// Per-row comparison of two aggregates, matched by row name.
struct BenchRowDiff {
  std::string name;
  double base_wall_s = 0.0;     // 0 when missing from baseline
  double current_wall_s = 0.0;  // 0 when missing from current
  double ratio = 1.0;           // current / base, 1.0 when either is missing
  bool in_base = false;
  bool in_current = false;
};

struct BenchDiff {
  std::vector<BenchRowDiff> rows;

  /// True when any row present on both sides slowed down by more than
  /// `threshold` (0.10 = +10% median wall time).
  [[nodiscard]] bool regressed(double threshold) const;
};

/// Rows whose baseline median is at or below `min_wall_s` are treated as
/// timer noise: ratio pinned to 1.0, never regressed. The 1 ms default
/// suits regression tracking; overhead checks with tight thresholds raise
/// it to gate only rows big enough to resolve the band.
[[nodiscard]] BenchDiff bench_diff(const BenchAggregate& base,
                                   const BenchAggregate& current,
                                   double min_wall_s = 1e-3);

/// Human-readable diff table, flagging rows beyond `threshold`.
[[nodiscard]] std::string bench_diff_report(const BenchDiff& diff,
                                            double threshold);

}  // namespace cipnet::obs
