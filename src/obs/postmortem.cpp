#include "obs/postmortem.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.h"
#include "util/json.h"
#include "util/json_writer.h"

namespace cipnet::obs {

namespace {

std::uint64_t u64(const json::Value& doc, std::string_view key) {
  return static_cast<std::uint64_t>(doc.get_number(key, 0));
}

/// First non-whitespace character, or '\0' for blank text.
char first_char(const std::string& text) {
  for (char c : text) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return c;
  }
  return '\0';
}

std::string format_ms(double ms) {
  char buf[32];
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ms / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fms", ms);
  }
  return buf;
}

std::string format_mib(double bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fMiB", bytes / (1024.0 * 1024.0));
  return buf;
}

}  // namespace

std::size_t PostMortemBuilder::ingest(const std::string& name,
                                      const std::string& text) {
  (void)name;
  ++pm_.files;
  const std::size_t before = pm_.lines;
  // A Chrome trace is one whole-file JSON document with a `traceEvents`
  // array; everything else this tool accepts is line-oriented JSONL.
  if (first_char(text) == '{' &&
      text.find("\"traceEvents\"") != std::string::npos) {
    try {
      ingest_chrome(text);
      return pm_.lines - before;
    } catch (const ParseError&) {
      // Fall through: it was JSONL whose text merely mentions traceEvents.
    }
  }
  ingest_jsonl(text);
  return pm_.lines - before;
}

void PostMortemBuilder::ingest_chrome(const std::string& text) {
  const json::Value doc = json::parse(text);
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw ParseError("no traceEvents array");
  }
  for (const json::Value& ev : events->items()) {
    ++pm_.lines;
    if (!ev.is_object() || ev.get_string("ph") != "X") {
      ++pm_.skipped;  // metadata (M) and counter (C) tracks
      continue;
    }
    // Chrome timestamps are microseconds (possibly fractional).
    const auto start_ns =
        static_cast<std::uint64_t>(ev.get_number("ts", 0) * 1000.0);
    const auto dur_ns =
        static_cast<std::uint64_t>(ev.get_number("dur", 0) * 1000.0);
    add_span(ev.get_string("name"), ev.get_string("name"), start_ns, dur_ns,
             0);
  }
}

void PostMortemBuilder::ingest_jsonl(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++pm_.lines;
    json::Value doc;
    try {
      doc = json::parse(line);
    } catch (const ParseError&) {
      ++pm_.skipped;
      continue;
    }
    if (!doc.is_object()) {
      ++pm_.skipped;
      continue;
    }
    const std::string event = doc.get_string("event");
    if (event == "span") {
      add_span(doc.get_string("name"), doc.get_string("path"),
               u64(doc, "start_ns"), u64(doc, "dur_ns"), u64(doc, "job"));
    } else if (event == "progress") {
      pm_.saw_progress = true;
      PostMortem::RatePoint point;
      point.phase = doc.get_string("phase");
      point.elapsed_ms = u64(doc, "elapsed_ms");
      point.items = u64(doc, "items");
      point.items_per_sec = doc.get_number("items_per_sec", 0);
      point.rss_bytes = u64(doc, "peak_rss_bytes");
      pm_.progress.push_back(std::move(point));
      if (const json::Value* shards = doc.find("shards");
          shards != nullptr && shards->is_array() &&
          !shards->items().empty()) {
        pm_.shard_items.clear();
        for (const json::Value& item : shards->items()) {
          pm_.shard_items.push_back(
              static_cast<std::uint64_t>(item.as_number()));
        }
      }
    } else if (event == "sample") {
      pm_.saw_samples = true;
      PostMortem::SamplePoint point;
      point.seq = u64(doc, "seq");
      point.ns = u64(doc, "ns");
      point.rss_bytes = u64(doc, "rss_bytes");
      if (const json::Value* counters = doc.find("counters")) {
        point.states = static_cast<std::uint64_t>(
            counters->get_number("reach.states", 0));
      }
      pm_.samples.push_back(point);
    } else if (event == "counters") {
      if (const json::Value* counters = doc.find("counters")) {
        if (counters->is_object()) {
          pm_.final_counters.clear();
          for (const auto& [cname, value] : counters->members()) {
            const auto v = static_cast<std::uint64_t>(value.as_number());
            if (v != 0) pm_.final_counters.emplace_back(cname, v);
          }
        }
      }
    } else if (event == "flight_dump") {
      pm_.saw_flight = true;
      pm_.flight_recorded =
          std::max(pm_.flight_recorded, u64(doc, "recorded"));
      pm_.flight_discarded =
          std::max(pm_.flight_discarded, u64(doc, "discarded"));
    } else if (event.empty() && doc.find("kind") != nullptr &&
               doc.find("seq") != nullptr) {
      // Bare flight-recorder event line (the body of a dump).
      pm_.saw_flight = true;
      const std::string kind = doc.get_string("kind");
      auto it = std::find_if(
          pm_.flight_kinds.begin(), pm_.flight_kinds.end(),
          [&](const auto& entry) { return entry.first == kind; });
      if (it == pm_.flight_kinds.end()) {
        pm_.flight_kinds.emplace_back(kind, 1);
      } else {
        ++it->second;
      }
      if (kind == "fault_fired") {
        const std::string site = doc.get_string("detail");
        auto site_it = std::find_if(
            pm_.fault_sites.begin(), pm_.fault_sites.end(),
            [&](const PostMortem::FaultSite& f) { return f.site == site; });
        if (site_it == pm_.fault_sites.end()) {
          pm_.fault_sites.push_back(PostMortem::FaultSite{site, 1});
        } else {
          ++site_it->fired;
        }
      }
    } else {
      ++pm_.skipped;
    }
  }
}

void PostMortemBuilder::add_span(const std::string& name,
                                 const std::string& path,
                                 std::uint64_t start_ns, std::uint64_t dur_ns,
                                 std::uint64_t job) {
  pm_.saw_spans = true;
  auto it = std::find_if(
      pm_.phases.begin(), pm_.phases.end(),
      [&](const PostMortem::PhaseAgg& agg) { return agg.name == name; });
  if (it == pm_.phases.end()) {
    pm_.phases.push_back(PostMortem::PhaseAgg{name, 1, dur_ns, dur_ns});
  } else {
    ++it->count;
    it->total_ns += dur_ns;
    it->max_ns = std::max(it->max_ns, dur_ns);
  }
  pm_.top_spans.push_back(
      PostMortem::TopSpan{path.empty() ? name : path, start_ns, dur_ns, job});
}

PostMortem PostMortemBuilder::finish(std::size_t top_limit) {
  std::sort(pm_.phases.begin(), pm_.phases.end(),
            [](const PostMortem::PhaseAgg& a, const PostMortem::PhaseAgg& b) {
              return a.total_ns > b.total_ns;
            });
  std::sort(pm_.top_spans.begin(), pm_.top_spans.end(),
            [](const PostMortem::TopSpan& a, const PostMortem::TopSpan& b) {
              return a.dur_ns > b.dur_ns;
            });
  if (pm_.top_spans.size() > top_limit) pm_.top_spans.resize(top_limit);
  std::sort(pm_.samples.begin(), pm_.samples.end(),
            [](const PostMortem::SamplePoint& a,
               const PostMortem::SamplePoint& b) { return a.seq < b.seq; });
  std::sort(pm_.flight_kinds.begin(), pm_.flight_kinds.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::sort(pm_.fault_sites.begin(), pm_.fault_sites.end(),
            [](const PostMortem::FaultSite& a, const PostMortem::FaultSite& b) {
              return a.fired > b.fired;
            });
  return std::move(pm_);
}

namespace {

/// Shared shard statistics: max, mean, and max/mean imbalance.
struct ShardStats {
  std::uint64_t max = 0;
  double mean = 0.0;
  double imbalance = 0.0;
  std::size_t nonzero = 0;
};

ShardStats shard_stats(const std::vector<std::uint64_t>& shards) {
  ShardStats stats;
  if (shards.empty()) return stats;
  std::uint64_t total = 0;
  for (std::uint64_t items : shards) {
    stats.max = std::max(stats.max, items);
    total += items;
    if (items != 0) ++stats.nonzero;
  }
  stats.mean = static_cast<double>(total) / static_cast<double>(shards.size());
  if (stats.mean > 0.0) {
    stats.imbalance = static_cast<double>(stats.max) / stats.mean;
  }
  return stats;
}

/// Down-sample a curve to at most `limit` evenly spaced points (first and
/// last always kept) so huge sample streams stay readable.
template <typename T>
std::vector<const T*> thin_curve(const std::vector<T>& points,
                                 std::size_t limit) {
  std::vector<const T*> out;
  if (points.empty()) return out;
  if (points.size() <= limit) {
    for (const T& p : points) out.push_back(&p);
    return out;
  }
  for (std::size_t i = 0; i < limit; ++i) {
    const std::size_t idx = i * (points.size() - 1) / (limit - 1);
    if (!out.empty() && out.back() == &points[idx]) continue;
    out.push_back(&points[idx]);
  }
  return out;
}

void render_human(const PostMortem& pm, bool markdown, std::string& out) {
  const char* h2 = markdown ? "## " : "== ";
  const char* h2e = markdown ? "" : " ==";
  auto section = [&](const char* title) {
    out += h2;
    out += title;
    out += h2e;
    out += '\n';
  };
  char buf[256];

  if (markdown) out += "# Post-mortem report\n\n";
  std::snprintf(buf, sizeof(buf),
                "%singested %zu file(s): %zu line(s), %zu skipped\n\n",
                markdown ? "" : "post-mortem: ", pm.files, pm.lines,
                pm.skipped);
  out += buf;

  if (!pm.phases.empty()) {
    section("Phase breakdown");
    if (markdown) {
      out += "| phase | count | total | mean | max |\n";
      out += "|---|---:|---:|---:|---:|\n";
    }
    for (const PostMortem::PhaseAgg& agg : pm.phases) {
      const double total_ms = static_cast<double>(agg.total_ns) / 1e6;
      const double mean_ms =
          agg.count == 0 ? 0.0
                         : total_ms / static_cast<double>(agg.count);
      if (markdown) {
        std::snprintf(buf, sizeof(buf), "| %s | %llu | %s | %s | %s |\n",
                      agg.name.c_str(),
                      static_cast<unsigned long long>(agg.count),
                      format_ms(total_ms).c_str(), format_ms(mean_ms).c_str(),
                      format_ms(static_cast<double>(agg.max_ns) / 1e6)
                          .c_str());
      } else {
        std::snprintf(buf, sizeof(buf),
                      "  %-28s x%-6llu total %-10s mean %-10s max %s\n",
                      agg.name.c_str(),
                      static_cast<unsigned long long>(agg.count),
                      format_ms(total_ms).c_str(), format_ms(mean_ms).c_str(),
                      format_ms(static_cast<double>(agg.max_ns) / 1e6)
                          .c_str());
      }
      out += buf;
    }
    out += '\n';
  }

  if (!pm.top_spans.empty()) {
    section("Top spans");
    if (markdown) {
      out += "| span | duration | job |\n|---|---:|---:|\n";
    }
    for (const PostMortem::TopSpan& span : pm.top_spans) {
      const double ms = static_cast<double>(span.dur_ns) / 1e6;
      if (markdown) {
        std::snprintf(buf, sizeof(buf), "| %s | %s | %llu |\n",
                      span.path.c_str(), format_ms(ms).c_str(),
                      static_cast<unsigned long long>(span.job));
      } else {
        std::snprintf(buf, sizeof(buf), "  %-48s %-10s job %llu\n",
                      span.path.c_str(), format_ms(ms).c_str(),
                      static_cast<unsigned long long>(span.job));
      }
      out += buf;
    }
    out += '\n';
  }

  if (!pm.progress.empty()) {
    section("Throughput (progress heartbeats)");
    if (markdown) {
      out += "| t | phase | items | items/s | peak rss |\n";
      out += "|---:|---|---:|---:|---:|\n";
    }
    for (const PostMortem::RatePoint* p : thin_curve(pm.progress, 20)) {
      if (markdown) {
        std::snprintf(buf, sizeof(buf),
                      "| %s | %s | %llu | %.0f | %s |\n",
                      format_ms(static_cast<double>(p->elapsed_ms)).c_str(),
                      p->phase.c_str(),
                      static_cast<unsigned long long>(p->items),
                      p->items_per_sec,
                      format_mib(static_cast<double>(p->rss_bytes)).c_str());
      } else {
        std::snprintf(buf, sizeof(buf),
                      "  %-10s %-20s %-12llu %9.0f/s rss %s\n",
                      format_ms(static_cast<double>(p->elapsed_ms)).c_str(),
                      p->phase.c_str(),
                      static_cast<unsigned long long>(p->items),
                      p->items_per_sec,
                      format_mib(static_cast<double>(p->rss_bytes)).c_str());
      }
      out += buf;
    }
    out += '\n';
  }

  if (!pm.samples.empty()) {
    section("RSS curve (sampler)");
    std::uint64_t peak = 0;
    for (const PostMortem::SamplePoint& p : pm.samples) {
      peak = std::max(peak, p.rss_bytes);
    }
    if (markdown) {
      out += "| seq | t | rss | states |\n|---:|---:|---:|---:|\n";
    }
    const std::uint64_t t0 = pm.samples.front().ns;
    for (const PostMortem::SamplePoint* p : thin_curve(pm.samples, 20)) {
      const double t_ms = static_cast<double>(p->ns - t0) / 1e6;
      if (markdown) {
        std::snprintf(buf, sizeof(buf), "| %llu | %s | %s | %llu |\n",
                      static_cast<unsigned long long>(p->seq),
                      format_ms(t_ms).c_str(),
                      format_mib(static_cast<double>(p->rss_bytes)).c_str(),
                      static_cast<unsigned long long>(p->states));
      } else {
        std::snprintf(buf, sizeof(buf),
                      "  #%-6llu %-10s rss %-12s states %llu\n",
                      static_cast<unsigned long long>(p->seq),
                      format_ms(t_ms).c_str(),
                      format_mib(static_cast<double>(p->rss_bytes)).c_str(),
                      static_cast<unsigned long long>(p->states));
      }
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s%zu sample(s), peak rss %s\n\n",
                  markdown ? "\n" : "  ", pm.samples.size(),
                  format_mib(static_cast<double>(peak)).c_str());
    out += buf;
  }

  if (!pm.shard_items.empty()) {
    section("Shard balance");
    const ShardStats stats = shard_stats(pm.shard_items);
    std::snprintf(buf, sizeof(buf),
                  "%s%zu shards (%zu populated), max %llu, mean %.1f, "
                  "imbalance %.2fx\n",
                  markdown ? "" : "  ", pm.shard_items.size(), stats.nonzero,
                  static_cast<unsigned long long>(stats.max), stats.mean,
                  stats.imbalance);
    out += buf;
    out += '\n';
  }

  if (pm.saw_flight) {
    section("Flight recorder");
    std::snprintf(buf, sizeof(buf),
                  "%srecorded %llu event(s), %llu discarded by ring wrap\n",
                  markdown ? "" : "  ",
                  static_cast<unsigned long long>(pm.flight_recorded),
                  static_cast<unsigned long long>(pm.flight_discarded));
    out += buf;
    if (markdown && !pm.flight_kinds.empty()) {
      out += "\n| kind | count |\n|---|---:|\n";
    }
    for (const auto& [kind, count] : pm.flight_kinds) {
      if (markdown) {
        std::snprintf(buf, sizeof(buf), "| %s | %llu |\n", kind.c_str(),
                      static_cast<unsigned long long>(count));
      } else {
        std::snprintf(buf, sizeof(buf), "  %-20s %llu\n", kind.c_str(),
                      static_cast<unsigned long long>(count));
      }
      out += buf;
    }
    out += '\n';
  }

  if (!pm.final_counters.empty()) {
    section("Final counters");
    // Highlight the health-of-the-run counters — engine selection
    // (`reach.packed.*`), durability (`store.*`), cache effectiveness
    // (`svc.cache.*`) — and fold the rest into one summary line.
    auto highlighted = [](const std::string& name) {
      return name.rfind("reach.packed.", 0) == 0 ||
             name.rfind("store.", 0) == 0 || name.rfind("svc.cache.", 0) == 0;
    };
    if (markdown) out += "| counter | value |\n|---|---:|\n";
    for (const auto& [name, value] : pm.final_counters) {
      if (!highlighted(name)) continue;
      if (markdown) {
        std::snprintf(buf, sizeof(buf), "| %s | %llu |\n", name.c_str(),
                      static_cast<unsigned long long>(value));
      } else {
        std::snprintf(buf, sizeof(buf), "  %-28s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
      }
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s%zu nonzero counter(s) total (full set in the json "
                  "format)\n",
                  markdown ? "\n" : "  ", pm.final_counters.size());
    out += buf;
    out += '\n';
  }

  if (!pm.fault_sites.empty()) {
    section("Fault sites");
    if (markdown) out += "| site | fired |\n|---|---:|\n";
    for (const PostMortem::FaultSite& site : pm.fault_sites) {
      if (markdown) {
        std::snprintf(buf, sizeof(buf), "| %s | %llu |\n", site.site.c_str(),
                      static_cast<unsigned long long>(site.fired));
      } else {
        std::snprintf(buf, sizeof(buf), "  %-28s fired %llu\n",
                      site.site.c_str(),
                      static_cast<unsigned long long>(site.fired));
      }
      out += buf;
    }
    out += '\n';
  }
}

std::string render_json(const PostMortem& pm) {
  json::Writer w;
  w.begin_object();
  w.key("ingested").begin_object();
  w.member("files", static_cast<std::uint64_t>(pm.files));
  w.member("lines", static_cast<std::uint64_t>(pm.lines));
  w.member("skipped", static_cast<std::uint64_t>(pm.skipped));
  w.member("spans", pm.saw_spans);
  w.member("progress", pm.saw_progress);
  w.member("samples", pm.saw_samples);
  w.member("flight", pm.saw_flight);
  w.end_object();
  w.key("phases").begin_array();
  for (const PostMortem::PhaseAgg& agg : pm.phases) {
    w.begin_object();
    w.member("name", agg.name);
    w.member("count", agg.count);
    w.member("total_ns", agg.total_ns);
    w.member("max_ns", agg.max_ns);
    w.end_object();
  }
  w.end_array();
  w.key("top_spans").begin_array();
  for (const PostMortem::TopSpan& span : pm.top_spans) {
    w.begin_object();
    w.member("path", span.path);
    w.member("start_ns", span.start_ns);
    w.member("dur_ns", span.dur_ns);
    if (span.job != 0) w.member("job", span.job);
    w.end_object();
  }
  w.end_array();
  w.key("progress").begin_array();
  for (const PostMortem::RatePoint& p : pm.progress) {
    w.begin_object();
    w.member("phase", p.phase);
    w.member("elapsed_ms", p.elapsed_ms);
    w.member("items", p.items);
    w.member("items_per_sec", p.items_per_sec);
    w.member("rss_bytes", p.rss_bytes);
    w.end_object();
  }
  w.end_array();
  w.key("samples").begin_array();
  for (const PostMortem::SamplePoint& p : pm.samples) {
    w.begin_object();
    w.member("seq", p.seq);
    w.member("ns", p.ns);
    w.member("rss_bytes", p.rss_bytes);
    if (p.states != 0) w.member("states", p.states);
    w.end_object();
  }
  w.end_array();
  w.key("shards");
  if (pm.shard_items.empty()) {
    w.null();
  } else {
    const ShardStats stats = shard_stats(pm.shard_items);
    w.begin_object();
    w.member("count", static_cast<std::uint64_t>(pm.shard_items.size()));
    w.member("populated", static_cast<std::uint64_t>(stats.nonzero));
    w.member("max", stats.max);
    w.member("mean", stats.mean);
    w.member("imbalance", stats.imbalance);
    w.key("items").begin_array();
    for (std::uint64_t items : pm.shard_items) w.value(items);
    w.end_array();
    w.end_object();
  }
  w.key("flight").begin_object();
  w.member("recorded", pm.flight_recorded);
  w.member("discarded", pm.flight_discarded);
  w.key("kinds").begin_object();
  for (const auto& [kind, count] : pm.flight_kinds) w.member(kind, count);
  w.end_object();
  w.end_object();
  w.key("fault_sites").begin_array();
  for (const PostMortem::FaultSite& site : pm.fault_sites) {
    w.begin_object();
    w.member("site", site.site);
    w.member("fired", site.fired);
    w.end_object();
  }
  w.end_array();
  w.key("final_counters").begin_object();
  for (const auto& [name, value] : pm.final_counters) w.member(name, value);
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace

std::string render_postmortem(const PostMortem& pm, std::string_view format) {
  if (format == "json") return render_json(pm);
  std::string out;
  if (format == "text") {
    render_human(pm, /*markdown=*/false, out);
  } else if (format == "md" || format == "markdown") {
    render_human(pm, /*markdown=*/true, out);
  } else {
    throw Error("unknown report format: " + std::string(format) +
                " (expected text, md, or json)");
  }
  return out;
}

}  // namespace cipnet::obs
