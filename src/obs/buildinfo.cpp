#include "obs/buildinfo.h"

// The defines arrive via set_source_files_properties on this file only, so
// a SHA change recompiles one translation unit, not the library.
#ifndef CIPNET_GIT_SHA
#define CIPNET_GIT_SHA "unknown"
#endif
#ifndef CIPNET_COMPILER
#define CIPNET_COMPILER "unknown"
#endif
#ifndef CIPNET_BUILD_TYPE
#define CIPNET_BUILD_TYPE "unknown"
#endif
#ifndef CIPNET_SANITIZER
#define CIPNET_SANITIZER "none"
#endif

namespace cipnet::obs {

const char* build_git_sha() { return CIPNET_GIT_SHA; }
const char* build_compiler() { return CIPNET_COMPILER; }
const char* build_type() { return CIPNET_BUILD_TYPE; }

const char* build_features() {
#ifdef CIPNET_FAULT_ENABLED
  return "fault,flight,net,sampler";
#else
  return "flight,net,sampler";
#endif
}

const char* build_sanitizer() { return CIPNET_SANITIZER; }

}  // namespace cipnet::obs
