#include "obs/benchdata.h"

#include <algorithm>
#include <cstdio>
#include <istream>

#include "obs/buildinfo.h"
#include "util/error.h"
#include "util/json.h"
#include "util/json_writer.h"

namespace cipnet::obs {
namespace {

using json::escape;

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  return buf;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

}  // namespace

std::string bench_meta_json(std::string_view experiment,
                            std::string_view artifact) {
  json::Writer w;
  w.begin_object();
  w.member("experiment", experiment);
  w.member("artifact", artifact);
  w.member("git_sha", build_git_sha());
  w.member("compiler", build_compiler());
  w.member("build_type", build_type());
  w.end_object();
  return w.take();
}

std::string bench_row_json(std::string_view name, std::uint64_t states,
                           double wall_s) {
  json::Writer w;
  w.begin_object();
  w.member("name", name);
  w.member("states", states);
  w.key("wall_s").raw(format_double(wall_s));
  w.end_object();
  return w.take();
}

const BenchRow* BenchAggregate::row(std::string_view name) const {
  for (const BenchRow& r : rows) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

BenchAggregate aggregate_bench_output(std::istream& in,
                                      std::string_view experiment) {
  BenchAggregate agg;
  agg.experiment = experiment;
  // Row samples keyed by name, kept in first-seen order.
  std::vector<std::pair<std::string, std::vector<double>>> samples;
  std::vector<std::uint64_t> states;
  std::string line;
  while (std::getline(in, line)) {
    constexpr std::string_view kMeta = "BENCH_META ";
    constexpr std::string_view kRow = "BENCH_ROW ";
    if (line.starts_with(kMeta)) {
      const json::Value v = json::parse(line.substr(kMeta.size()));
      for (const auto& [key, member] : v.members()) {
        if (member.type() != json::Value::Type::kString) continue;
        if (key == "experiment") {
          if (agg.experiment.empty()) agg.experiment = member.as_string();
        } else if (std::none_of(agg.meta.begin(), agg.meta.end(),
                                [&key = key](const auto& m) {
                                  return m.first == key;
                                })) {
          // First file wins: reps repeated across files re-emit BENCH_META.
          agg.meta.emplace_back(key, member.as_string());
        }
      }
    } else if (line.starts_with(kRow)) {
      const json::Value v = json::parse(line.substr(kRow.size()));
      const std::string name = v.get_string("name");
      if (name.empty()) throw ParseError("BENCH_ROW without a name");
      auto it = std::find_if(samples.begin(), samples.end(),
                             [&](const auto& s) { return s.first == name; });
      if (it == samples.end()) {
        samples.emplace_back(name, std::vector<double>{});
        states.push_back(static_cast<std::uint64_t>(v.get_number("states")));
        it = std::prev(samples.end());
      }
      it->second.push_back(v.get_number("wall_s"));
    }
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    BenchRow row;
    row.name = samples[i].first;
    row.states = states[i];
    row.reps = static_cast<int>(samples[i].second.size());
    row.wall_s_median = median(std::move(samples[i].second));
    agg.rows.push_back(std::move(row));
  }
  return agg;
}

std::string bench_to_json(const BenchAggregate& agg) {
  std::string out = "{\n  \"experiment\": \"" + escape(agg.experiment) +
                    "\",\n  \"meta\": {";
  for (std::size_t i = 0; i < agg.meta.size(); ++i) {
    if (i != 0) out += ",";
    out += "\n    \"" + escape(agg.meta[i].first) + "\": \"" +
           escape(agg.meta[i].second) + "\"";
  }
  out += agg.meta.empty() ? "},\n" : "\n  },\n";
  out += "  \"rows\": [";
  for (std::size_t i = 0; i < agg.rows.size(); ++i) {
    const BenchRow& r = agg.rows[i];
    if (i != 0) out += ",";
    out += "\n    {\"name\": \"" + escape(r.name) +
           "\", \"states\": " + std::to_string(r.states) +
           ", \"wall_s_median\": " + format_double(r.wall_s_median) +
           ", \"reps\": " + std::to_string(r.reps) + "}";
  }
  out += agg.rows.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

BenchAggregate bench_from_json(std::string_view text) {
  const json::Value doc = json::parse(text);
  BenchAggregate agg;
  agg.experiment = doc.get_string("experiment");
  if (const json::Value* meta = doc.find("meta"); meta && meta->is_object()) {
    for (const auto& [key, member] : meta->members()) {
      if (member.type() == json::Value::Type::kString) {
        agg.meta.emplace_back(key, member.as_string());
      }
    }
  }
  if (const json::Value* rows = doc.find("rows"); rows && rows->is_array()) {
    for (const json::Value& item : rows->items()) {
      BenchRow row;
      row.name = item.get_string("name");
      row.states = static_cast<std::uint64_t>(item.get_number("states"));
      row.wall_s_median = item.get_number("wall_s_median");
      row.reps = static_cast<int>(item.get_number("reps"));
      agg.rows.push_back(std::move(row));
    }
  }
  return agg;
}

bool BenchDiff::regressed(double threshold) const {
  return std::any_of(rows.begin(), rows.end(), [&](const BenchRowDiff& r) {
    return r.in_base && r.in_current && r.ratio > 1.0 + threshold;
  });
}

BenchDiff bench_diff(const BenchAggregate& base, const BenchAggregate& current,
                     double min_wall_s) {
  BenchDiff diff;
  for (const BenchRow& b : base.rows) {
    BenchRowDiff row;
    row.name = b.name;
    row.base_wall_s = b.wall_s_median;
    row.in_base = true;
    if (const BenchRow* c = current.row(b.name)) {
      row.current_wall_s = c->wall_s_median;
      row.in_current = true;
      // Baselines at or below the floor are timer noise; treat as unchanged.
      row.ratio = b.wall_s_median > min_wall_s
                      ? c->wall_s_median / b.wall_s_median
                      : 1.0;
    }
    diff.rows.push_back(std::move(row));
  }
  for (const BenchRow& c : current.rows) {
    if (base.row(c.name) != nullptr) continue;
    BenchRowDiff row;
    row.name = c.name;
    row.current_wall_s = c.wall_s_median;
    row.in_current = true;
    diff.rows.push_back(std::move(row));
  }
  return diff;
}

std::string bench_diff_report(const BenchDiff& diff, double threshold) {
  std::string out;
  char buf[256];
  for (const BenchRowDiff& r : diff.rows) {
    if (!r.in_base) {
      std::snprintf(buf, sizeof(buf), "  NEW      %-40s  %10.6fs\n",
                    r.name.c_str(), r.current_wall_s);
    } else if (!r.in_current) {
      std::snprintf(buf, sizeof(buf), "  REMOVED  %-40s  %10.6fs\n",
                    r.name.c_str(), r.base_wall_s);
    } else {
      const bool slow = r.ratio > 1.0 + threshold;
      std::snprintf(buf, sizeof(buf),
                    "  %-8s %-40s  %10.6fs -> %10.6fs  (%+.1f%%)\n",
                    slow ? "REGRESS" : "ok", r.name.c_str(), r.base_wall_s,
                    r.current_wall_s, (r.ratio - 1.0) * 100.0);
    }
    out += buf;
  }
  if (diff.rows.empty()) out = "  (no rows)\n";
  return out;
}

}  // namespace cipnet::obs
