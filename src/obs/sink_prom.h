#pragma once

// Prometheus text-exposition rendering of a metrics `Snapshot`
// (obs/metrics.h). The `metrics` op of `cipnet serve` returns this with
// `format=prom`, so a scrape proxy (or a human with curl) can lift the
// live registry straight into a Prometheus/Grafana stack without a
// bespoke exporter.
//
// Mapping:
//   * metric names `module.metric` become `cipnet_module_metric`
//     (dots and any other non-[a-zA-Z0-9_] byte -> '_');
//   * counters render as `# TYPE ... counter` samples (suffix `_total`);
//   * gauges render as `# TYPE ... gauge`;
//   * histograms render as summaries: `{quantile="0.5|0.9|0.99"}` sample
//     lines plus `_sum`, `_count`, and a `_max` gauge (the exact observed
//     maximum, which Prometheus summaries lack).
//
// The format targets the Prometheus text exposition v0.0.4 line grammar;
// tests/test_prom.cpp holds a strict line validator that round-trips a
// snapshot through this renderer.

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace cipnet::obs {

/// `module.metric` -> `cipnet_module_metric` (prefix + sanitization).
[[nodiscard]] std::string prom_metric_name(std::string_view name);

/// One labeled sample line: `name{key="value"} 42`. `value` is escaped
/// per the exposition grammar (backslash, double-quote, newline).
[[nodiscard]] std::string prom_labeled_line(std::string_view name,
                                            std::string_view label_key,
                                            std::string_view label_value,
                                            std::uint64_t value);

/// Render the whole snapshot (zero-valued series included — a scraper
/// needs the series to exist before it can alert on it staying flat).
[[nodiscard]] std::string render_prometheus(const Snapshot& snapshot);

}  // namespace cipnet::obs
