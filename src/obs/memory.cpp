#include "obs/memory.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/metrics.h"

namespace cipnet::obs {

namespace {

// A flat-zero RSS curve is indistinguishable from "sampling broke"; this
// counter disambiguates (docs/OBSERVABILITY.md).
const Counter c_sample_errors("obs.memory.sample_errors");

/// Read a "VmXXX:  1234 kB" line from /proc/self/status; 0 if absent,
/// counting the failure in obs.memory.sample_errors.
std::uint64_t proc_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) {
    c_sample_errors.add();
    return 0;
  }
  const std::size_t key_len = std::strlen(key);
  char line[256];
  unsigned long long kb = 0;
  bool found = false;
  while (std::fgets(line, sizeof(line), f)) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      found = std::sscanf(line + key_len + 1, "%llu", &kb) == 1;
      break;
    }
  }
  std::fclose(f);
  if (!found) c_sample_errors.add();
  return kb;
}

}  // namespace

std::uint64_t peak_rss_bytes() {
  if (std::uint64_t kb = proc_status_kb("VmHWM")) return kb * 1024;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kB on Linux
#endif
  }
#endif
  return 0;
}

std::uint64_t current_rss_bytes() {
  return proc_status_kb("VmRSS") * 1024;
}

}  // namespace cipnet::obs
