#pragma once

// Process memory accounting: peak / current resident set size read from
// the OS (Linux /proc/self/status, getrusage fallback). Used by progress
// heartbeats and the CLI epilogue to attach real memory numbers to a run;
// byte-*estimate* gauges for in-process data structures live with those
// structures (e.g. `reach.graph_bytes` in reach/reachability.cpp).

#include <cstdint>

namespace cipnet::obs {

/// Peak resident set size of this process in bytes (VmHWM), or 0 when the
/// platform offers no way to read it.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS), or 0 when unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes();

}  // namespace cipnet::obs
