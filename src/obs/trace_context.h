#pragma once

// Request-scoped trace identity. The service (`cipnet serve`) mints one
// `TraceContext` per request at frame parse — job id, operation, canonical
// net hash, optional client tag — and installs it on whichever thread is
// executing that request with a `ScopedTraceContext`. Everything below the
// service that emits telemetry (spans in obs/trace.h, progress heartbeats
// in obs/progress.h, flight-recorder events in obs/flight_recorder.h)
// reads the thread's current context and stamps the owning job id, so a
// span tree, a heartbeat, or a crash dump is attributable to the request
// that caused it without threading an id through every call signature.
//
// Reading the current context is one thread-local pointer load; with no
// context installed every accessor returns the zero/empty defaults, so
// non-service callers (CLI subcommands, tests, benches) pay nothing.

#include <cstdint>
#include <string>

namespace cipnet::obs {

/// Identity of the request a thread is currently working for. `job_id` is
/// the service-assigned monotonic id (0 = no request context); `net_hash`
/// is the canonical net fingerprint once known (0 before the net parses).
struct TraceContext {
  std::uint64_t job_id = 0;
  std::string op;
  std::uint64_t net_hash = 0;
  std::string client;
};

/// The context installed on this thread, or nullptr outside any request.
[[nodiscard]] const TraceContext* current_trace_context();

/// Job id of the current context, 0 when none — the cheap accessor the
/// telemetry hot paths use.
[[nodiscard]] std::uint64_t current_job_id();

/// Mutable access to the innermost installed context (nullptr when none).
/// The service uses this to back-fill `net_hash` once the net text parses,
/// mid-request.
[[nodiscard]] TraceContext* mutable_current_trace_context();

/// RAII installation: makes `ctx` the thread's current context for the
/// scope, restoring the previous one (spans and heartbeats opened inside
/// inherit the innermost context). Copyable contexts nest — a worker
/// running job A that synchronously evaluates a sub-request B sees B while
/// B's scope is open, then A again.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  [[nodiscard]] TraceContext& context() { return ctx_; }

 private:
  TraceContext ctx_;
  TraceContext* prev_;
};

}  // namespace cipnet::obs
