#pragma once

// Process-wide observability metrics: named monotonic counters and peak
// gauges in a global `Registry`. Instrumentation is disabled by default and
// every hot-path operation compiles down to one relaxed atomic load plus a
// branch, so uninstrumented runs pay (nearly) nothing. Enable with
// `ScopedEnable` (tests, CLI) or `Registry::set_enabled`.
//
// Call sites hold a `Counter`/`Gauge` handle — a pointer to a stable atomic
// cell registered once by name — typically as a namespace-scope constant in
// the instrumented .cpp:
//
//   static const obs::Counter c_states("reach.states");
//   ...
//   c_states.add();            // no-op unless instrumentation is enabled
//
// Metric names follow the `module.metric` convention; the catalogue lives
// in docs/OBSERVABILITY.md.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace cipnet::obs {

namespace detail {
/// The single process-wide enable flag every instrumented call site checks.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when instrumentation is active. Relaxed: the flag only gates
/// best-effort accounting, never synchronizes data.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Point-in-time copy of every registered metric, sorted by name.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a counter/gauge, or 0 when the name was never registered.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] std::uint64_t gauge(std::string_view name) const;

  /// Histogram by name, or nullptr when never registered.
  [[nodiscard]] const HistogramSnapshot* histogram(std::string_view name) const;
};

/// The process-wide metric registry. Registration (first use of a name) and
/// snapshots take a mutex; increments are lock-free on the returned cells.
class Registry {
 public:
  static Registry& instance();

  /// Register-or-lookup by name. The returned cell address is stable for
  /// the process lifetime.
  std::atomic<std::uint64_t>* counter_cell(std::string_view name);
  std::atomic<std::uint64_t>* gauge_cell(std::string_view name);
  detail::HistogramCells* histogram_cells(std::string_view name);

  [[nodiscard]] Snapshot snapshot() const;

  /// Counter values in registration order (cheap, for span deltas). The
  /// matching names are returned by `counter_names`; both only ever grow.
  void counter_values(std::vector<std::uint64_t>& out) const;
  [[nodiscard]] std::vector<std::string> counter_names() const;

  /// Zero every registered cell (names stay registered).
  void reset();

  void set_enabled(bool on) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::string name;
    std::atomic<std::uint64_t> value{0};
  };
  struct HistCell {
    std::string name;
    detail::HistogramCells cells;
  };

  std::atomic<std::uint64_t>* cell(std::deque<Cell>& cells,
                                   std::string_view name);

  mutable std::mutex mutex_;
  // deque: stable addresses under growth.
  std::deque<Cell> counters_;
  std::deque<Cell> gauges_;
  std::deque<HistCell> histograms_;
};

/// A named monotonic counter handle. Cheap to copy; `add` is thread-safe.
class Counter {
 public:
  explicit Counter(std::string_view name)
      : cell_(Registry::instance().counter_cell(name)) {}

  void add(std::uint64_t delta = 1) const {
    if (enabled()) cell_->fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t>* cell_;
};

/// A named gauge handle. `set_max` keeps the running maximum (peak
/// tracking); `set` overwrites.
class Gauge {
 public:
  explicit Gauge(std::string_view name)
      : cell_(Registry::instance().gauge_cell(name)) {}

  void set(std::uint64_t value) const {
    if (enabled()) cell_->store(value, std::memory_order_relaxed);
  }

  void set_max(std::uint64_t value) const {
    if (!enabled()) return;
    std::uint64_t current = cell_->load(std::memory_order_relaxed);
    while (value > current &&
           !cell_->compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::uint64_t>* cell_;
};

/// A named distribution handle (frontier sizes, enabled-transition counts,
/// span durations, ...). `record` is lock-free and thread-safe; snapshots
/// expose p50/p90/p99/max (see obs/histogram.h for the bucketing).
class Histogram {
 public:
  explicit Histogram(std::string_view name)
      : cells_(Registry::instance().histogram_cells(name)) {}

  void record(std::uint64_t value) const {
    if (enabled()) cells_->record(value);
  }

 private:
  detail::HistogramCells* cells_;
};

/// RAII enable: switches instrumentation on (optionally resetting all
/// metrics first) and restores the previous enablement on destruction.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool reset = true);
  ~ScopedEnable();

  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

/// Human-readable metrics report (the `--stats` output): every nonzero
/// counter and gauge, aligned, sorted by name.
[[nodiscard]] std::string render_text_report(const Snapshot& snapshot);

}  // namespace cipnet::obs
