#pragma once

// Throttled progress heartbeats for long explorations. A `ProgressReporter`
// sits inside a search loop (`reach::explore`, `coverability`, hide
// contraction) and calls `update(items, frontier)` per step; at most once
// per `ProgressBus` interval it publishes a `ProgressEvent` (items, frontier
// size, rate, elapsed, peak RSS) to every registered listener. On
// destruction — including exception unwind, so aborted runs still report —
// it publishes one final event.
//
// Listener registration is independent of the metrics enable flag: the CLI
// `--progress` flag installs a stderr renderer, `--trace-out <file.jsonl>`
// mirrors events into the trace file. With no listeners, `update` is a
// single relaxed atomic load.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cipnet::obs {

/// One heartbeat. `items` is whatever the phase counts (states, tree nodes,
/// contractions); `final_event` marks the close-out published when the
/// reporter leaves scope (also on exception unwind).
struct ProgressEvent {
  std::string phase;
  /// Owning service job (obs/trace_context.h), 0 outside any request.
  std::uint64_t job_id = 0;
  std::uint64_t items = 0;
  std::uint64_t frontier = 0;
  double items_per_sec = 0.0;
  std::uint64_t elapsed_ms = 0;
  std::uint64_t peak_rss_bytes = 0;
  /// Item budget of the phase (`--max-states` for explorations), 0 when
  /// unbounded. When set, `eta_ms` extrapolates time-to-target from the
  /// current rate.
  std::uint64_t target = 0;
  std::uint64_t eta_ms = 0;
  /// Optional per-shard item counts (parallel exploration publishes the
  /// per-shard interned-state counts). Empty for single-shard phases.
  std::vector<std::uint64_t> shard_items;
  bool final_event = false;
};

/// Process-wide listener registry and heartbeat interval. Thread-safe;
/// `active()` is a relaxed atomic read so idle call sites stay free.
class ProgressBus {
 public:
  using Listener = std::function<void(const ProgressEvent&)>;

  static ProgressBus& instance();

  /// Returns an id for `remove_listener`.
  int add_listener(Listener listener);
  void remove_listener(int id);

  /// Minimum milliseconds between heartbeats per reporter (default 500).
  /// 0 publishes on every update.
  void set_interval_ms(std::uint64_t ms) {
    interval_ms_.store(ms, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t interval_ms() const {
    return interval_ms_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Dispatch to every listener (copied out of the lock).
  void publish(const ProgressEvent& event);

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<int, Listener>> listeners_;
  int next_id_ = 1;
  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> interval_ms_{500};
};

/// RAII heartbeat source for one phase. Construct around the loop, call
/// `update` per step; throttling and the final close-out are handled here.
///
/// Thread-safe: concurrent workers may call `update` on one reporter (the
/// parallel explorer's workers heartbeat directly). The state words are
/// relaxed atomics and the interval gate is a CAS on the last-emit time,
/// so exactly one racing worker publishes per interval; construction,
/// destruction, and the setters must still be single-threaded
/// (before/after the worker pool).
class ProgressReporter {
 public:
  explicit ProgressReporter(std::string_view phase);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Item budget for ETA extrapolation (0 = unbounded, no ETA).
  void set_target(std::uint64_t target) {
    target_.store(target, std::memory_order_relaxed);
  }

  /// Publish-time supplier of per-shard item counts. Called outside any
  /// reporter lock, possibly from a worker thread — must be thread-safe.
  void set_shard_supplier(std::function<std::vector<std::uint64_t>()> fn) {
    shard_supplier_ = std::move(fn);
  }

  void update(std::uint64_t items, std::uint64_t frontier = 0) {
    if (!ProgressBus::instance().active()) return;
    update_throttled(items, frontier);
  }

 private:
  void update_throttled(std::uint64_t items, std::uint64_t frontier);
  void publish(bool final_event);

  std::string phase_;
  std::uint64_t start_ns_ = 0;
  std::atomic<std::uint64_t> last_emit_ns_{0};
  std::atomic<std::uint64_t> items_{0};
  std::atomic<std::uint64_t> frontier_{0};
  std::atomic<std::uint64_t> target_{0};
  std::atomic<bool> any_update_{false};
  std::function<std::vector<std::uint64_t>()> shard_supplier_;
};

}  // namespace cipnet::obs
