#include "obs/sink_prom.h"

namespace cipnet::obs {

namespace {

bool prom_name_byte(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

void append_escaped_label(std::string& out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_sample(std::string& out, const std::string& name,
                   std::string_view labels, std::uint64_t value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string prom_metric_name(std::string_view name) {
  std::string out = "cipnet_";
  for (char c : name) out += prom_name_byte(c) ? c : '_';
  return out;
}

std::string prom_labeled_line(std::string_view name,
                              std::string_view label_key,
                              std::string_view label_value,
                              std::uint64_t value) {
  std::string out(name);
  out += '{';
  out += label_key;
  out += "=\"";
  append_escaped_label(out, label_value);
  out += "\"} ";
  out += std::to_string(value);
  return out;
}

std::string render_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prom_metric_name(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    append_sample(out, prom, "", value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prom_metric_name(name);
    out += "# TYPE " + prom + " gauge\n";
    append_sample(out, prom, "", value);
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string prom = prom_metric_name(h.name);
    out += "# TYPE " + prom + " summary\n";
    append_sample(out, prom, "quantile=\"0.5\"", h.percentile(50));
    append_sample(out, prom, "quantile=\"0.9\"", h.percentile(90));
    append_sample(out, prom, "quantile=\"0.99\"", h.percentile(99));
    append_sample(out, prom + "_sum", "", h.sum);
    append_sample(out, prom + "_count", "", h.count);
    out += "# TYPE " + prom + "_max gauge\n";
    append_sample(out, prom + "_max", "", h.max);
  }
  return out;
}

}  // namespace cipnet::obs
