#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/memory.h"
#include "obs/trace.h"
#include "util/json_writer.h"

namespace cipnet::obs {

namespace {

const Counter c_samples("obs.sampler.samples");
const Counter c_dropped("obs.sampler.dropped");

}  // namespace

TimeSeriesSampler& TimeSeriesSampler::instance() {
  static TimeSeriesSampler sampler;
  return sampler;
}

bool TimeSeriesSampler::start(const SamplerOptions& options) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (running_) return false;
  if (!options.jsonl_path.empty()) {
    out_.open(options.jsonl_path, std::ios::trunc);
    if (!out_) return false;
    export_open_ = true;
  }
  interval_ms_ = std::max<std::uint64_t>(options.interval_ms, 1);
  capacity_ = std::max<std::size_t>(options.capacity, 1);
  dropped_ = 0;
  stop_requested_ = false;
  running_ = true;
  lock.unlock();
  thread_ = std::thread([this] { run_loop(); });
  return true;
}

void TimeSeriesSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  sample_once();  // close-out sample so short runs never export empty
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
  interval_ms_ = 0;
  if (export_open_) {
    out_.close();
    export_open_ = false;
  }
}

bool TimeSeriesSampler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

std::uint64_t TimeSeriesSampler::interval_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return interval_ms_;
}

void TimeSeriesSampler::run_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                   [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    sample_once();
  }
}

void TimeSeriesSampler::sample_once() {
  TimeSample sample;
  sample.ns = Tracer::instance().now_ns();
  sample.rss_bytes = current_rss_bytes();
  sample.metrics = Registry::instance().snapshot();
  c_samples.add();
  push(std::move(sample));
}

void TimeSeriesSampler::push(TimeSample sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  sample.seq = ++next_seq_;
  if (export_open_) {
    json::Writer w;
    write_sample_json(w, sample);
    out_ << w.str() << '\n';
    out_.flush();
  }
  ring_.push_back(std::move(sample));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
    c_dropped.add();
  }
}

std::vector<TimeSample> TimeSeriesSampler::since(std::uint64_t cursor,
                                                 std::size_t max) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TimeSample> out;
  // Ring is ordered by seq; binary-search the first entry past the cursor.
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), cursor,
      [](std::uint64_t c, const TimeSample& s) { return c < s.seq; });
  for (; it != ring_.end(); ++it) {
    if (max != 0 && out.size() >= max) break;
    out.push_back(*it);
  }
  return out;
}

std::uint64_t TimeSeriesSampler::next_cursor() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t TimeSeriesSampler::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TimeSeriesSampler::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_seq_ = 0;
  dropped_ = 0;
}

void write_sample_json(json::Writer& w, const TimeSample& sample) {
  w.begin_object();
  w.member("event", "sample");
  w.member("seq", sample.seq);
  w.member("ns", sample.ns);
  w.member("rss_bytes", sample.rss_bytes);
  w.key("counters").begin_object();
  for (const auto& [name, value] : sample.metrics.counters) {
    if (value != 0) w.member(name, value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : sample.metrics.gauges) {
    if (value != 0) w.member(name, value);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const HistogramSnapshot& h : sample.metrics.histograms) {
    if (h.count == 0) continue;
    w.key(h.name).begin_object();
    w.member("count", h.count);
    w.member("sum", h.sum);
    w.member("p50", h.percentile(50));
    w.member("p90", h.percentile(90));
    w.member("p99", h.percentile(99));
    w.member("max", h.max);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

bool start_sampler_from_env() {
  const char* ms = std::getenv("CIPNET_SAMPLE_MS");
  if (ms == nullptr || ms[0] == '\0') return false;
  const long interval = std::strtol(ms, nullptr, 10);
  if (interval <= 0) return false;
  SamplerOptions options;
  options.interval_ms = static_cast<std::uint64_t>(interval);
  if (const char* path = std::getenv("CIPNET_SAMPLES_OUT")) {
    options.jsonl_path = path;
  }
  return TimeSeriesSampler::instance().start(options);
}

}  // namespace cipnet::obs
