#pragma once

// Human-readable trace sink: the span tree as an indented report with
// millisecond durations and the nonzero counter deltas per span.

#include <ostream>

#include "obs/trace.h"

namespace cipnet::obs {

/// Renders each completed span tree to `out`, indented two spaces per
/// nesting level. The stream must outlive the sink.
class TextSink : public Sink {
 public:
  explicit TextSink(std::ostream& out) : out_(out) {}

  void on_span(const SpanRecord& root) override;

 private:
  std::mutex mutex_;
  std::ostream& out_;
};

/// One span tree as the indented report string (also used by tests).
[[nodiscard]] std::string render_span_tree(const SpanRecord& root);

}  // namespace cipnet::obs
