#include "obs/sink_text.h"

#include <cstdio>

namespace cipnet::obs {

namespace {

void render(const SpanRecord& span, int depth, std::string& out) {
  char dur[32];
  std::snprintf(dur, sizeof(dur), "%.3fms",
                static_cast<double>(span.duration_ns) / 1e6);
  out += std::string(2 * (depth + 1), ' ') + span.name;
  const std::size_t pad_to = 40;
  const std::size_t used = 2 * (depth + 1) + span.name.size();
  out += std::string(used < pad_to ? pad_to - used : 1, ' ');
  out += dur;
  for (const auto& [name, delta] : span.counter_deltas) {
    out += "  " + name + "=" + std::to_string(delta);
  }
  out += "\n";
  for (const SpanRecord& child : span.children) {
    render(child, depth + 1, out);
  }
}

}  // namespace

std::string render_span_tree(const SpanRecord& root) {
  std::string out = "trace:\n";
  render(root, 0, out);
  return out;
}

void TextSink::on_span(const SpanRecord& root) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << render_span_tree(root);
  out_.flush();
}

}  // namespace cipnet::obs
