#include "sim/simulator.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cipnet {

namespace {
const obs::Counter c_steps("sim.steps");
const obs::Counter c_deadlocks("sim.deadlocks");
}  // namespace

WalkResult Simulator::random_walk(std::size_t max_steps) {
  obs::Span span("sim.walk");
  WalkResult result;
  Marking m = net_->initial_marking();
  for (std::size_t step = 0; step < max_steps; ++step) {
    auto enabled = net_->enabled_transitions(m);
    if (enabled.empty()) {
      result.deadlocked = true;
      c_deadlocks.add();
      break;
    }
    std::uniform_int_distribution<std::size_t> dist(0, enabled.size() - 1);
    TransitionId t = enabled[dist(rng_)];
    result.trace.push_back(net_->transition_label(t));
    net_->fire_in_place(m, t);
    c_steps.add();
  }
  result.final_marking = m;
  return result;
}

bool Simulator::replay(const Trace& trace, Marking& marking) const {
  marking = net_->initial_marking();
  for (const std::string& label : trace) {
    bool fired = false;
    for (TransitionId t : net_->enabled_transitions(marking)) {
      if (net_->transition_label(t) == label) {
        net_->fire_in_place(marking, t);
        fired = true;
        break;
      }
    }
    if (!fired) return false;
  }
  return true;
}

}  // namespace cipnet
