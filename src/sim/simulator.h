#pragma once

#include <cstdint>
#include <random>

#include "petri/net.h"
#include "reach/trace_enum.h"

namespace cipnet {

/// Result of one token-game walk.
struct WalkResult {
  Trace trace;
  Marking final_marking;
  bool deadlocked = false;
};

/// A seeded token-game simulator: fires uniformly random enabled transitions
/// until `max_steps` or deadlock. Used by examples (interactive exploration)
/// and by property tests (sampled traces of a derived net must lie in the
/// language predicted by the algebra's theorems).
class Simulator {
 public:
  explicit Simulator(const PetriNet& net, std::uint64_t seed = 1)
      : net_(&net), rng_(seed) {}

  [[nodiscard]] WalkResult random_walk(std::size_t max_steps);

  /// Fire a specific sequence of labels if possible (resolving label
  /// nondeterminism randomly); returns false when stuck before the end.
  [[nodiscard]] bool replay(const Trace& trace, Marking& marking) const;

 private:
  const PetriNet* net_;
  std::mt19937_64 rng_;
};

}  // namespace cipnet
