#pragma once

#include <cstdint>

#include "petri/net.h"

namespace cipnet {

/// Configuration for the seeded random net generator used by property tests
/// and benchmarks. Generated nets are small general Petri nets (not
/// necessarily safe, live or bounded); callers that need bounded state
/// spaces cap exploration and skip overflowing samples.
struct RandomNetConfig {
  std::size_t places = 6;
  std::size_t transitions = 6;
  /// Number of distinct action labels ("a0", "a1", ...). Reusing labels
  /// across transitions exercises the all-pairs joining of Definition 4.7
  /// and the successive contraction of Definition 4.10.
  std::size_t labels = 4;
  std::size_t max_preset = 2;
  std::size_t max_postset = 2;
  /// Places initially marked with one token each.
  std::size_t marked_places = 2;
  /// Prefix for place names / labels so two generated nets can coexist.
  std::string name_prefix = "";
  std::uint64_t seed = 1;
};

/// Deterministic for a given config (including seed).
[[nodiscard]] PetriNet random_net(const RandomNetConfig& config);

}  // namespace cipnet
