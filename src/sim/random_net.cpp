#include "sim/random_net.h"

#include <algorithm>
#include <random>

namespace cipnet {

PetriNet random_net(const RandomNetConfig& config) {
  std::mt19937_64 rng(config.seed);
  PetriNet net;
  std::vector<PlaceId> places;
  for (std::size_t i = 0; i < config.places; ++i) {
    places.push_back(
        net.add_place(config.name_prefix + "p" + std::to_string(i), 0));
  }
  // Mark a random subset of places.
  std::vector<std::size_t> order(config.places);
  for (std::size_t i = 0; i < config.places; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  for (std::size_t i = 0; i < std::min(config.marked_places, config.places);
       ++i) {
    net.set_initial_tokens(places[order[i]], 1);
  }

  auto pick_places = [&](std::size_t max_count) {
    std::uniform_int_distribution<std::size_t> count_dist(1, max_count);
    std::size_t count = std::min(count_dist(rng), config.places);
    std::vector<PlaceId> out;
    for (std::size_t i = 0; i < count; ++i) {
      std::uniform_int_distribution<std::size_t> place_dist(0,
                                                            config.places - 1);
      out.push_back(places[place_dist(rng)]);
    }
    return out;
  };

  std::uniform_int_distribution<std::size_t> label_dist(0, config.labels - 1);
  for (std::size_t i = 0; i < config.transitions; ++i) {
    net.add_transition(
        pick_places(config.max_preset),
        config.name_prefix + "a" + std::to_string(label_dist(rng)),
        pick_places(config.max_postset));
  }
  return net;
}

}  // namespace cipnet
