.model receiver
.inputs p0 p1 q0 q1
.outputs mute one r start zero
.graph
p0+ rc_vp0
p1+ rc_vp1
q0+ rc_vq0
q1+ rc_vq1
start~ rc_start_c
r+ rc_start_f1 rc_start_f2
p0- rc_start_g1
q0- rc_start_g2
r- rc_xa rc_xb
mute~ rc_mute_c
r+/1 rc_mute_f1 rc_mute_f2
p0-/1 rc_mute_g1
q1- rc_mute_g2
r-/1 rc_xa rc_xb
zero~ rc_zero_c
r+/2 rc_zero_f1 rc_zero_f2
p1- rc_zero_g1
q0-/1 rc_zero_g2
r-/2 rc_xa rc_xb
one~ rc_one_c
r+/3 rc_one_f1 rc_one_f2
p1-/1 rc_one_g1
q1-/1 rc_one_g2
r-/3 rc_xa rc_xb
rc_xa p0+ p1+
rc_xb q0+ q1+
rc_vp0 start~ mute~
rc_vp1 zero~ one~
rc_vq0 start~ zero~
rc_vq1 mute~ one~
rc_start_c r+
rc_start_f1 p0-
rc_start_f2 q0-
rc_start_g1 r-
rc_start_g2 r-
rc_mute_c r+/1
rc_mute_f1 p0-/1
rc_mute_f2 q1-
rc_mute_g1 r-/1
rc_mute_g2 r-/1
rc_zero_c r+/2
rc_zero_f1 p1-
rc_zero_f2 q0-/1
rc_zero_g1 r-/2
rc_zero_g2 r-/2
rc_one_c r+/3
rc_one_f1 p1-/1
rc_one_f2 q1-/1
rc_one_g1 r-/3
rc_one_g2 r-/3
.marking { rc_xa rc_xb }
.end
