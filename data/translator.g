.model translator
.inputs a0 a1 b0 b1 d r s
.outputs n p0 p1 q0 q1
.dummy eps eps/1 eps/2 eps/3 eps/4 eps/5 eps/6 eps/7
.graph
p0+ tr_init_v1
q0+ tr_init_v2
r+ tr_init_w1 tr_init_w2
p0- tr_init_x1
q0- tr_init_x2
r- tr_init_done
eps tr_ch
a0+ tr_va0
a1+ tr_va1
b0+ tr_vb0
b1+ tr_vb1
n+ tr_reset_ha tr_reset_hb
a0- tr_reset_ka
b1- tr_reset_kb
eps/1 tr_reset_ua tr_reset_ub
p0+/1 tr_reset_fw_v1
q0+/1 tr_reset_fw_v2
r+/1 tr_reset_fw_w1 tr_reset_fw_w2
p0-/1 tr_reset_fw_x1
q0-/1 tr_reset_fw_x2
r-/1 tr_reset_fw_done
n- tr_wa tr_wb tr_ch
n+/1 tr_send0_ha tr_send0_hb
a1- tr_send0_ka
b0- tr_send0_kb
eps/2 tr_send0_ua tr_send0_ub
p1+ tr_send0_fw_v1
q0+/2 tr_send0_fw_v2
r+/2 tr_send0_fw_w1 tr_send0_fw_w2
p1- tr_send0_fw_x1
q0-/2 tr_send0_fw_x2
r-/2 tr_send0_fw_done
n-/1 tr_wa tr_wb tr_ch
n+/2 tr_send1_ha tr_send1_hb
a1-/1 tr_send1_ka
b1-/1 tr_send1_kb
eps/3 tr_send1_ua tr_send1_ub
p1+/1 tr_send1_fw_v1
q1+ tr_send1_fw_v2
r+/3 tr_send1_fw_w1 tr_send1_fw_w2
p1-/1 tr_send1_fw_x1
q1- tr_send1_fw_x2
r-/3 tr_send1_fw_done
n-/2 tr_wa tr_wb tr_ch
n+/3 tr_rec_ha tr_rec_hb
a0-/1 tr_rec_ka
b0-/1 tr_rec_kb
d= tr_rec_st1
s= tr_rec_st2
eps/4 tr_rec_start_ua tr_rec_start_ub
p0+/2 tr_rec_start_v1
q0+/3 tr_rec_start_v2
r+/4 tr_rec_start_w1 tr_rec_start_w2
p0-/2 tr_rec_start_x1
q0-/3 tr_rec_start_x2
r-/4 tr_rec_start_done
d# tr_rec_start_rel1
s# tr_rec_start_rel2
n-/3 tr_wa tr_wb tr_ch
eps/5 tr_rec_mute_ua tr_rec_mute_ub
p0+/3 tr_rec_mute_v1
q1+/1 tr_rec_mute_v2
r+/5 tr_rec_mute_w1 tr_rec_mute_w2
p0-/3 tr_rec_mute_x1
q1-/1 tr_rec_mute_x2
r-/5 tr_rec_mute_done
d#/1 tr_rec_mute_rel1
s#/1 tr_rec_mute_rel2
n-/4 tr_wa tr_wb tr_ch
eps/6 tr_rec_zero_ua tr_rec_zero_ub
p1+/2 tr_rec_zero_v1
q0+/4 tr_rec_zero_v2
r+/6 tr_rec_zero_w1 tr_rec_zero_w2
p1-/2 tr_rec_zero_x1
q0-/4 tr_rec_zero_x2
r-/6 tr_rec_zero_done
d#/2 tr_rec_zero_rel1
s#/2 tr_rec_zero_rel2
n-/5 tr_wa tr_wb tr_ch
eps/7 tr_rec_one_ua tr_rec_one_ub
p1+/3 tr_rec_one_v1
q1+/2 tr_rec_one_v2
r+/7 tr_rec_one_w1 tr_rec_one_w2
p1-/3 tr_rec_one_x1
q1-/2 tr_rec_one_x2
r-/7 tr_rec_one_done
d#/3 tr_rec_one_rel1
s#/3 tr_rec_one_rel2
n-/6 tr_wa tr_wb tr_ch
tr_wa a0+ a1+
tr_wb b0+ b1+
tr_ch eps/1 eps/2 eps/3 eps/4 eps/5 eps/6 eps/7
tr_ia p0+
tr_ib q0+
tr_init_v1 r+
tr_init_v2 r+
tr_init_w1 p0-
tr_init_w2 q0-
tr_init_x1 r-
tr_init_x2 r-
tr_init_done eps
tr_va0 n+ n+/3
tr_va1 n+/1 n+/2
tr_vb0 n+/1 n+/3
tr_vb1 n+ n+/2
tr_reset_ha a0-
tr_reset_hb b1-
tr_reset_ka eps/1
tr_reset_kb eps/1
tr_reset_ua p0+/1
tr_reset_ub q0+/1
tr_reset_fw_v1 r+/1
tr_reset_fw_v2 r+/1
tr_reset_fw_w1 p0-/1
tr_reset_fw_w2 q0-/1
tr_reset_fw_x1 r-/1
tr_reset_fw_x2 r-/1
tr_reset_fw_done n-
tr_send0_ha a1-
tr_send0_hb b0-
tr_send0_ka eps/2
tr_send0_kb eps/2
tr_send0_ua p1+
tr_send0_ub q0+/2
tr_send0_fw_v1 r+/2
tr_send0_fw_v2 r+/2
tr_send0_fw_w1 p1-
tr_send0_fw_w2 q0-/2
tr_send0_fw_x1 r-/2
tr_send0_fw_x2 r-/2
tr_send0_fw_done n-/1
tr_send1_ha a1-/1
tr_send1_hb b1-/1
tr_send1_ka eps/3
tr_send1_kb eps/3
tr_send1_ua p1+/1
tr_send1_ub q1+
tr_send1_fw_v1 r+/3
tr_send1_fw_v2 r+/3
tr_send1_fw_w1 p1-/1
tr_send1_fw_w2 q1-
tr_send1_fw_x1 r-/3
tr_send1_fw_x2 r-/3
tr_send1_fw_done n-/2
tr_rec_ha a0-/1
tr_rec_hb b0-/1
tr_rec_ka d=
tr_rec_kb d=
tr_rec_st1 s=
tr_rec_st2 eps/4 eps/5 eps/6 eps/7
tr_rec_start_ua p0+/2
tr_rec_start_ub q0+/3
tr_rec_start_v1 r+/4
tr_rec_start_v2 r+/4
tr_rec_start_w1 p0-/2
tr_rec_start_w2 q0-/3
tr_rec_start_x1 r-/4
tr_rec_start_x2 r-/4
tr_rec_start_done d#
tr_rec_start_rel1 s#
tr_rec_start_rel2 n-/3
tr_rec_mute_ua p0+/3
tr_rec_mute_ub q1+/1
tr_rec_mute_v1 r+/5
tr_rec_mute_v2 r+/5
tr_rec_mute_w1 p0-/3
tr_rec_mute_w2 q1-/1
tr_rec_mute_x1 r-/5
tr_rec_mute_x2 r-/5
tr_rec_mute_done d#/1
tr_rec_mute_rel1 s#/1
tr_rec_mute_rel2 n-/4
tr_rec_zero_ua p1+/2
tr_rec_zero_ub q0+/4
tr_rec_zero_v1 r+/6
tr_rec_zero_v2 r+/6
tr_rec_zero_w1 p1-/2
tr_rec_zero_w2 q0-/4
tr_rec_zero_x1 r-/6
tr_rec_zero_x2 r-/6
tr_rec_zero_done d#/2
tr_rec_zero_rel1 s#/2
tr_rec_zero_rel2 n-/5
tr_rec_one_ua p1+/3
tr_rec_one_ub q1+/2
tr_rec_one_v1 r+/7
tr_rec_one_v2 r+/7
tr_rec_one_w1 p1-/3
tr_rec_one_w2 q1-/2
tr_rec_one_x1 r-/7
tr_rec_one_x2 r-/7
tr_rec_one_done d#/3
tr_rec_one_rel1 s#/3
tr_rec_one_rel2 n-/6
.marking { tr_wa tr_wb tr_ia tr_ib }
.end
