.model sender_restricted
.inputs n reset send0 send1
.outputs a0 a1 b0 b1
.graph
reset~ sn_reset_f1 sn_reset_f2
a0+ sn_reset_g1
b1+ sn_reset_g2
n+ sn_reset_h1 sn_reset_h2
a0- sn_reset_i1
b1- sn_reset_i2
n- sn_idle
send0~ sn_send0_f1 sn_send0_f2
a1+ sn_send0_g1
b0+ sn_send0_g2
n+/1 sn_send0_h1 sn_send0_h2
a1- sn_send0_i1
b0- sn_send0_i2
n-/1 sn_idle
send1~ sn_send1_f1 sn_send1_f2
a1+/1 sn_send1_g1
b1+/1 sn_send1_g2
n+/2 sn_send1_h1 sn_send1_h2
a1-/1 sn_send1_i1
b1-/1 sn_send1_i2
n-/2 sn_idle
sn_idle reset~ send0~ send1~
sn_reset_f1 a0+
sn_reset_f2 b1+
sn_reset_g1 n+
sn_reset_g2 n+
sn_reset_h1 a0-
sn_reset_h2 b1-
sn_reset_i1 n-
sn_reset_i2 n-
sn_send0_f1 a1+
sn_send0_f2 b0+
sn_send0_g1 n+/1
sn_send0_g2 n+/1
sn_send0_h1 a1-
sn_send0_h2 b0-
sn_send0_i1 n-/1
sn_send0_i2 n-/1
sn_send1_f1 a1+/1
sn_send1_f2 b1+/1
sn_send1_g1 n+/2
sn_send1_g2 n+/2
sn_send1_h1 a1-/1
sn_send1_h2 b1-/1
sn_send1_i1 n-/2
sn_send1_i2 n-/2
.marking { sn_idle }
.end
