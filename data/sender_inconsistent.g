.model sender_inconsistent
.inputs n rec reset send0 send1
.outputs a0 a1 b0 b1
.graph
rec~ sn_rec_f1 sn_rec_f2
a0+ sn_rec_g1
a0- sn_rec_h1
b0+ sn_rec_g2
b0- sn_rec_h2
n+ sn_rec_k
n- sn_idle
reset~ sn_reset_f1 sn_reset_f2
a0+/1 sn_reset_g1
a0-/1 sn_reset_h1
b1+ sn_reset_g2
b1- sn_reset_h2
n+/1 sn_reset_k
n-/1 sn_idle
send0~ sn_send0_f1 sn_send0_f2
a1+ sn_send0_g1
a1- sn_send0_h1
b0+/1 sn_send0_g2
b0-/1 sn_send0_h2
n+/2 sn_send0_k
n-/2 sn_idle
send1~ sn_send1_f1 sn_send1_f2
a1+/1 sn_send1_g1
a1-/1 sn_send1_h1
b1+/1 sn_send1_g2
b1-/1 sn_send1_h2
n+/3 sn_send1_k
n-/3 sn_idle
sn_idle rec~ reset~ send0~ send1~
sn_rec_f1 a0+
sn_rec_f2 b0+
sn_rec_g1 a0-
sn_rec_g2 b0-
sn_rec_h1 n+
sn_rec_h2 n+
sn_rec_k n-
sn_reset_f1 a0+/1
sn_reset_f2 b1+
sn_reset_g1 a0-/1
sn_reset_g2 b1-
sn_reset_h1 n+/1
sn_reset_h2 n+/1
sn_reset_k n-/1
sn_send0_f1 a1+
sn_send0_f2 b0+/1
sn_send0_g1 a1-
sn_send0_g2 b0-/1
sn_send0_h1 n+/2
sn_send0_h2 n+/2
sn_send0_k n-/2
sn_send1_f1 a1+/1
sn_send1_f2 b1+/1
sn_send1_g1 a1-/1
sn_send1_g2 b1-/1
sn_send1_h1 n+/3
sn_send1_h2 n+/3
sn_send1_k n-/3
.marking { sn_idle }
.end
