#include <gtest/gtest.h>

#include "helpers.h"
#include "lang/boolean.h"
#include "lang/ops.h"
#include "reach/trace_enum.h"
#include "stg/persistency.h"

namespace cipnet {
namespace {

using testutil::chain_net;

Stg handshake() {
  Stg stg;
  stg.add_signal("req", SignalKind::kInput);
  stg.add_signal("ack", SignalKind::kOutput);
  PlaceId p0 = stg.add_place("p0", 1);
  PlaceId p1 = stg.add_place("p1", 0);
  PlaceId p2 = stg.add_place("p2", 0);
  PlaceId p3 = stg.add_place("p3", 0);
  stg.add_edge_transition({p0}, "req", EdgeType::kRise, {p1});
  stg.add_edge_transition({p1}, "ack", EdgeType::kRise, {p2});
  stg.add_edge_transition({p2}, "req", EdgeType::kFall, {p3});
  stg.add_edge_transition({p3}, "ack", EdgeType::kFall, {p0});
  return stg;
}

TEST(Persistency, HandshakeOutputsArePersistent) {
  Stg stg = handshake();
  StateGraph sg = build_state_graph(
      stg, {{"req", Level::kLow}, {"ack", Level::kLow}});
  auto report = check_output_persistency(sg, {"ack"});
  EXPECT_TRUE(report.persistent());
}

TEST(Persistency, ConflictOnOutputDetected) {
  // Output y is excited but an input edge steals the token: classic
  // non-persistency (the choice place feeds both an input and an output
  // transition).
  Stg stg;
  stg.add_signal("a", SignalKind::kInput);
  stg.add_signal("y", SignalKind::kOutput);
  PlaceId p = stg.add_place("p", 1);
  PlaceId x1 = stg.add_place("x1", 0);
  PlaceId x2 = stg.add_place("x2", 0);
  stg.add_edge_transition({p}, "y", EdgeType::kRise, {x1});
  stg.add_edge_transition({p}, "a", EdgeType::kRise, {x2});
  StateGraph sg = build_state_graph(
      stg, {{"a", Level::kLow}, {"y", Level::kLow}});
  auto report = check_output_persistency(sg, {"y"});
  ASSERT_FALSE(report.persistent());
  EXPECT_EQ(report.violations[0].signal, "y");
}

TEST(Persistency, InputWithdrawalIsAllowed) {
  // Same net but the conflicting signals are both inputs: the environment
  // may withdraw an input, so no violation is reported for inputs.
  Stg stg;
  stg.add_signal("a", SignalKind::kInput);
  stg.add_signal("b", SignalKind::kInput);
  PlaceId p = stg.add_place("p", 1);
  PlaceId x1 = stg.add_place("x1", 0);
  PlaceId x2 = stg.add_place("x2", 0);
  stg.add_edge_transition({p}, "a", EdgeType::kRise, {x1});
  stg.add_edge_transition({p}, "b", EdgeType::kRise, {x2});
  StateGraph sg = build_state_graph(
      stg, {{"a", Level::kLow}, {"b", Level::kLow}});
  auto report = check_output_persistency(sg, {});
  EXPECT_TRUE(report.persistent());
}

Dfa word(const std::vector<std::string>& w) {
  Nfa nfa;
  int prev = nfa.add_state(w.empty());
  nfa.set_initial(prev);
  for (std::size_t i = 0; i < w.size(); ++i) {
    int next = nfa.add_state(i + 1 == w.size());
    nfa.add_edge(prev, w[i], next);
    prev = next;
  }
  return determinize(nfa);
}

TEST(Boolean, IntersectAndUnion) {
  // Prefix-closed languages of two chains.
  Dfa a = canonical_language(chain_net({"x", "y"}, false, "a"));
  Dfa b = canonical_language(chain_net({"x", "z"}, false, "b"));
  Dfa both = intersect(a, b);
  EXPECT_TRUE(both.accepts({"x"}));
  EXPECT_FALSE(both.accepts({"x", "y"}));
  Dfa either = union_dfa(a, b);
  EXPECT_TRUE(either.accepts({"x", "y"}));
  EXPECT_TRUE(either.accepts({"x", "z"}));
  EXPECT_FALSE(either.accepts({"y"}));
}

TEST(Boolean, ComplementOverAlphabet) {
  Dfa a = canonical_language(chain_net({"x"}, false));
  Dfa not_a = complement(a, {"x", "q"});
  EXPECT_FALSE(not_a.accepts({}));
  EXPECT_FALSE(not_a.accepts({"x"}));
  EXPECT_TRUE(not_a.accepts({"q"}));
  EXPECT_TRUE(not_a.accepts({"x", "x"}));
}

TEST(Boolean, EmptinessAndShortestWord) {
  Dfa a = canonical_language(chain_net({"x", "y"}, false));
  EXPECT_FALSE(is_empty(a));
  auto w = shortest_word(a);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->empty());  // prefix-closed: epsilon accepted
  // Intersection with a disjoint word is empty.
  EXPECT_TRUE(is_empty(intersect(word({"zz"}), a)));
}

TEST(Boolean, SafetyPropertyCheck) {
  // Property: the composition never does y before x. Bad pattern: a word
  // starting with y.
  PetriNet net = chain_net({"x", "y"}, /*cyclic=*/true);
  Dfa lang = canonical_language(net);
  Nfa bad_nfa;
  int s0 = bad_nfa.add_state(false);
  int s1 = bad_nfa.add_state(true);
  bad_nfa.set_initial(s0);
  bad_nfa.add_edge(s0, "y", s1);
  bad_nfa.add_edge(s1, "x", s1);
  bad_nfa.add_edge(s1, "y", s1);
  Dfa bad = determinize(bad_nfa);
  EXPECT_FALSE(find_violation(lang, bad).has_value());

  // A net that can start with y violates it, with a shortest witness.
  PetriNet loose = chain_net({"y", "x"}, /*cyclic=*/true, "l");
  auto witness = find_violation(canonical_language(loose), bad);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(trace_to_string(*witness), "y");
}

}  // namespace
}  // namespace cipnet
