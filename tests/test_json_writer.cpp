#include "util/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/json.h"

namespace cipnet {
namespace {

TEST(JsonWriter, EscapeBasics) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb"), "a\\nb");
  EXPECT_EQ(json::escape("a\tb"), "a\\tb");
  EXPECT_EQ(json::escape("a\rb"), "a\\rb");
  EXPECT_EQ(json::escape(std::string("a\x01z", 3)), "a\\u0001z");
  // UTF-8 multibyte passes through untouched.
  EXPECT_EQ(json::escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriter, StringsRoundTripThroughParser) {
  const std::vector<std::string> nasty = {
      "",
      "plain",
      "quote \" backslash \\ slash /",
      "newline\nand\ttab\rand\band\f",
      std::string("nul\x00mid", 7),
      std::string("ctl\x1f\x01", 5),
      "unicode caf\xc3\xa9 \xe2\x9c\x93",
  };
  for (const std::string& s : nasty) {
    json::Writer w;
    w.begin_object().member("s", s).end_object();
    const json::Value doc = json::parse(w.str());
    EXPECT_EQ(doc.get_string("s"), s) << "payload: " << json::escape(s);
  }
}

TEST(JsonWriter, NumbersRoundTrip) {
  const std::vector<double> values = {0.0,  1.0,    -1.0,       0.1,
                                      1e-9, 1e20,   3.14159265, -2.5e-7,
                                      42.0, 1e308,  123456789.123456789};
  for (double v : values) {
    const std::string text = json::number_to_string(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    json::Writer w;
    w.begin_object().member("n", v).end_object();
    EXPECT_EQ(json::parse(w.str()).get_number("n"), v);
  }
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(json::number_to_string(std::nan("")), "null");
  EXPECT_EQ(json::number_to_string(INFINITY), "null");
  json::Writer w;
  w.begin_object().member("n", -INFINITY).end_object();
  EXPECT_EQ(w.str(), "{\"n\":null}");
}

TEST(JsonWriter, IntegersKeepFullPrecision) {
  json::Writer w;
  w.begin_object();
  w.member("u", std::uint64_t{18446744073709551615ull});
  w.member("i", std::int64_t{-9223372036854775807ll});
  w.member("small", 7);
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"u\":18446744073709551615,\"i\":-9223372036854775807,"
            "\"small\":7}");
}

TEST(JsonWriter, NestedContainersParse) {
  json::Writer w;
  w.begin_object();
  w.member("name", "x\"y");
  w.member("flag", true);
  w.key("list").begin_array();
  w.value(1).value(2).null();
  w.begin_object().member("deep", false).end_object();
  w.end_array();
  w.key("empty_obj").begin_object().end_object();
  w.key("empty_arr").begin_array().end_array();
  w.end_object();

  const json::Value doc = json::parse(w.str());
  EXPECT_EQ(doc.get_string("name"), "x\"y");
  const json::Value* list = doc.find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->items().size(), 4u);
  EXPECT_EQ(list->items()[0].as_number(), 1.0);
  EXPECT_TRUE(list->items()[2].is_null());
  EXPECT_TRUE(doc.find("empty_obj")->is_object());
  EXPECT_TRUE(doc.find("empty_arr")->is_array());
}

TEST(JsonWriter, RawSplicesPreSerializedFragments) {
  json::Writer w;
  w.begin_object();
  w.key("payload").raw("{\"states\":4}");
  w.member("after", 1);
  w.end_object();
  EXPECT_EQ(w.str(), "{\"payload\":{\"states\":4},\"after\":1}");
  const json::Value doc = json::parse(w.str());
  EXPECT_EQ(doc.find("payload")->get_number("states"), 4.0);
}

TEST(JsonWriter, TakeMovesBufferOut) {
  json::Writer w;
  w.begin_array().value("a").end_array();
  EXPECT_EQ(w.take(), "[\"a\"]");
}

}  // namespace
}  // namespace cipnet
