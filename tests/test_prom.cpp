// Prometheus text-exposition sink (obs/sink_prom.h): name sanitization,
// label escaping, and a strict line-format validator that the rendered
// registry snapshot must pass in full — every line is either a `# TYPE`
// declaration or a sample whose name matches the declared family, with an
// unsigned integer value. This is the contract the `metrics` op's
// `format=prom` body is held to.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/sink_prom.h"

namespace cipnet {
namespace {

bool is_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool is_name_byte(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9');
}

/// Strict validation of one exposition document. Returns an empty string
/// when valid, else a description of the first offending line. Enforces:
///   * every line is `# TYPE <name> <counter|gauge|summary>` or
///     `<name>[{key="value"...}] <uint>`;
///   * sample names match the grammar `[a-zA-Z_:][a-zA-Z0-9_:]*`;
///   * every sample belongs to the most recently declared family — the
///     family name itself or family + `_sum`/`_count` for summaries;
///   * counter families end in `_total`;
///   * label values use only the `\\` `\"` `\n` escapes.
std::string validate_prometheus(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  std::string family;
  std::string family_type;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& why) {
    return "line " + std::to_string(line_no) + ": " + why + ": " + line;
  };
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) return fail("empty line");
    if (line[0] == '#') {
      std::istringstream parts(line);
      std::string hash, kw, name, type, extra;
      parts >> hash >> kw >> name >> type;
      if (hash != "#" || kw != "TYPE") return fail("unknown comment form");
      if (parts >> extra) return fail("trailing tokens after TYPE");
      if (name.empty() || !is_name_start(name[0])) return fail("bad name");
      for (char c : name) {
        if (!is_name_byte(c)) return fail("bad name byte");
      }
      if (type != "counter" && type != "gauge" && type != "summary") {
        return fail("unknown type '" + type + "'");
      }
      if (type == "counter" &&
          (name.size() < 6 ||
           name.compare(name.size() - 6, 6, "_total") != 0)) {
        return fail("counter family without _total suffix");
      }
      family = name;
      family_type = type;
      continue;
    }
    // Sample line: name [{labels}] SP value.
    std::size_t i = 0;
    if (i >= line.size() || !is_name_start(line[i])) {
      return fail("sample must start with a name");
    }
    while (i < line.size() && is_name_byte(line[i])) ++i;
    const std::string name = line.substr(0, i);
    if (family.empty()) return fail("sample before any TYPE");
    const bool family_match =
        name == family ||
        (family_type == "summary" &&
         (name == family + "_sum" || name == family + "_count"));
    if (!family_match) {
      return fail("sample '" + name + "' outside family '" + family + "'");
    }
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        // key="value" [, ...]
        if (!is_name_start(line[i])) return fail("bad label key");
        while (i < line.size() && is_name_byte(line[i])) ++i;
        if (i >= line.size() || line[i] != '=') return fail("label needs =");
        ++i;
        if (i >= line.size() || line[i] != '"') return fail("unquoted label");
        ++i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            ++i;
            if (i >= line.size() ||
                (line[i] != '\\' && line[i] != '"' && line[i] != 'n')) {
              return fail("bad label escape");
            }
          }
          ++i;
        }
        if (i >= line.size()) return fail("unterminated label value");
        ++i;  // closing quote
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size() || line[i] != '}') return fail("unclosed labels");
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') return fail("missing value");
    ++i;
    if (i >= line.size()) return fail("empty value");
    for (; i < line.size(); ++i) {
      if (line[i] < '0' || line[i] > '9') return fail("non-integer value");
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Name sanitization and labeled lines

TEST(Prom, MetricNameIsPrefixedAndSanitized) {
  EXPECT_EQ(obs::prom_metric_name("reach.states"), "cipnet_reach_states");
  EXPECT_EQ(obs::prom_metric_name("svc.phase.exec_us"),
            "cipnet_svc_phase_exec_us");
  EXPECT_EQ(obs::prom_metric_name("weird-name/0"), "cipnet_weird_name_0");
}

TEST(Prom, LabeledLineEscapesValue) {
  const std::string line = obs::prom_labeled_line(
      "cipnet_fault_site_hits_total", "site", "a\"b\\c\nd", 5);
  EXPECT_EQ(line,
            "cipnet_fault_site_hits_total{site=\"a\\\"b\\\\c\\nd\"} 5");
}

TEST(Prom, LabeledLinePassesValidator) {
  const std::string doc =
      "# TYPE cipnet_fault_site_hits_total counter\n" +
      obs::prom_labeled_line("cipnet_fault_site_hits_total", "site",
                             "svc.cache.insert", 3) +
      "\n";
  EXPECT_EQ(validate_prometheus(doc), "");
}

// ---------------------------------------------------------------------------
// Validator self-checks (it must actually reject malformed documents)

TEST(Prom, ValidatorRejectsMalformedLines) {
  EXPECT_NE(validate_prometheus("cipnet_x 1\n"), "");  // sample before TYPE
  EXPECT_NE(validate_prometheus("# TYPE cipnet_x counter\ncipnet_x 1\n"),
            "");  // counter family without _total
  EXPECT_NE(
      validate_prometheus("# TYPE cipnet_x_total counter\ncipnet_y_total 1\n"),
      "");  // sample outside family
  EXPECT_NE(validate_prometheus("# TYPE cipnet_x gauge\ncipnet_x 1.5\n"),
            "");  // non-integer value
  EXPECT_NE(validate_prometheus("# TYPE cipnet_x gauge\ncipnet_x  1\n"),
            "");  // double space
  EXPECT_NE(validate_prometheus("# TYPE cipnet_x oddtype\ncipnet_x 1\n"),
            "");  // unknown type
}

// ---------------------------------------------------------------------------
// Round trip: live registry -> exposition -> strict validation

TEST(Prom, RenderedSnapshotPassesStrictValidation) {
  obs::ScopedEnable enable;
  obs::Counter counter("promtest.requests");
  obs::Gauge gauge("promtest.depth");
  obs::Histogram histogram("promtest.latency_us");
  counter.add(41);
  counter.add();
  gauge.set(17);
  for (std::uint64_t v : {1u, 2u, 3u, 100u, 1000u}) histogram.record(v);

  const obs::Snapshot snapshot = obs::Registry::instance().snapshot();
  const std::string text = obs::render_prometheus(snapshot);
  EXPECT_EQ(validate_prometheus(text), "") << text;

  // Spot-check the three family shapes with exact sample lines.
  EXPECT_NE(text.find("# TYPE cipnet_promtest_requests_total counter\n"
                      "cipnet_promtest_requests_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cipnet_promtest_depth gauge\n"
                      "cipnet_promtest_depth 17\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cipnet_promtest_latency_us summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("cipnet_promtest_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cipnet_promtest_latency_us_sum 1106\n"),
            std::string::npos);
  EXPECT_NE(text.find("cipnet_promtest_latency_us_count 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cipnet_promtest_latency_us_max gauge\n"
                      "cipnet_promtest_latency_us_max 1000\n"),
            std::string::npos);
}

TEST(Prom, ZeroValuedSeriesAreStillExposed) {
  obs::ScopedEnable enable;  // resets all values to zero
  obs::Counter counter("promtest.zero");
  (void)counter;
  const std::string text =
      obs::render_prometheus(obs::Registry::instance().snapshot());
  EXPECT_EQ(validate_prometheus(text), "") << text;
  EXPECT_NE(text.find("cipnet_promtest_zero_total 0\n"), std::string::npos);
}

}  // namespace
}  // namespace cipnet
