#!/usr/bin/env bash
# Crash/resume smoke for checkpointed exploration (docs/RESILIENCE.md,
# "Durability & crash recovery").
#
# A 14-toggle net (2^14 = 16384 states) is explored three ways per
# engine × thread-count combination:
#
#   1. uninterrupted — the reference `digest:` line;
#   2. killed — `--crash-after-ckpts 2` raises SIGKILL right after the
#      second durable checkpoint write (exit 137, mid-exploration);
#   3. resumed — `--resume` seeds exploration from the surviving
#      checkpoint and must finish with the *identical* digest: resume
#      replays the exact BFS discovery order, so the graph is
#      bit-identical to the one the uninterrupted run built.
#
# A final case truncates the checkpoint file mid-byte: the resume run
# must quarantine it (a `.bad` twin appears), fall back to a cold start,
# and still produce the reference digest — corruption costs the resume,
# never the answer.
#
# usage: resume_smoke.sh <cipnet-binary>
set -u -o pipefail

CIPNET="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# 14 independent toggles: 2^14 reachable states, well past several
# checkpoints at --checkpoint-every 1000.
NET="$WORK/toggle.cpn"
{
  printf '.net toggle\n'
  for i in $(seq 0 13); do
    printf '.place a%d 1\n.place b%d\n' "$i" "$i"
    printf '.trans t%d : a%d -> b%d\n.trans u%d : b%d -> a%d\n' \
      "$i" "$i" "$i" "$i" "$i" "$i"
  done
  printf '.end\n'
} > "$NET"

digest_of() {
  sed -n 's/^digest: //p' "$1" | head -n1
}

for ENGINE in dense packed; do
  for THREADS in 1 4; do
    TAG="$ENGINE-t$THREADS"
    CKPT="$WORK/ck-$TAG.bin"

    # 1. Uninterrupted reference run.
    "$CIPNET" reach "$NET" "$ENGINE" --threads "$THREADS" \
      > "$WORK/ref-$TAG.out" 2>"$WORK/ref-$TAG.err" || {
      echo "reference run failed ($TAG):" >&2
      cat "$WORK/ref-$TAG.err" >&2
      exit 1
    }
    REF="$(digest_of "$WORK/ref-$TAG.out")"
    [ -n "$REF" ] || { echo "no digest in reference output ($TAG)" >&2; exit 1; }

    # 2. Crash mid-exploration: SIGKILL lands right after the second
    # checkpoint write, so the process dies with work in flight.
    "$CIPNET" reach "$NET" "$ENGINE" --threads "$THREADS" \
      --checkpoint "$CKPT" --checkpoint-every 1000 --crash-after-ckpts 2 \
      > "$WORK/crash-$TAG.out" 2>&1
    CRASH_EXIT=$?
    if [ "$CRASH_EXIT" -ne 137 ]; then
      echo "crash run exited $CRASH_EXIT, expected 137 (SIGKILL) ($TAG)" >&2
      cat "$WORK/crash-$TAG.out" >&2
      exit 1
    fi
    [ -f "$CKPT" ] || { echo "no checkpoint survived the kill ($TAG)" >&2; exit 1; }

    # 3. Resume from the surviving checkpoint and run to completion.
    "$CIPNET" reach "$NET" "$ENGINE" --threads "$THREADS" \
      --resume "$CKPT" > "$WORK/resume-$TAG.out" 2>"$WORK/resume-$TAG.err" || {
      echo "resume run failed ($TAG):" >&2
      cat "$WORK/resume-$TAG.err" >&2
      exit 1
    }
    RESUMED="$(digest_of "$WORK/resume-$TAG.out")"
    if [ "$RESUMED" != "$REF" ]; then
      echo "digest mismatch after resume ($TAG): ref=$REF resumed=$RESUMED" >&2
      exit 1
    fi
    echo "resume smoke: $TAG ok (digest $REF)" >&2
  done
done

# --- corrupted checkpoint: quarantined, cold start, same answer -------------
CKPT="$WORK/ck-corrupt.bin"
"$CIPNET" reach "$NET" dense \
  --checkpoint "$CKPT" --checkpoint-every 1000 --crash-after-ckpts 2 \
  > /dev/null 2>&1
[ $? -eq 137 ] || { echo "corruption-case crash run did not SIGKILL" >&2; exit 1; }
head -c 1000 "$CKPT" > "$CKPT.tmp" && mv "$CKPT.tmp" "$CKPT"

"$CIPNET" reach "$NET" dense --resume "$CKPT" \
  > "$WORK/corrupt.out" 2>"$WORK/corrupt.err" || {
  echo "resume from a corrupt checkpoint must not fail the run:" >&2
  cat "$WORK/corrupt.err" >&2
  exit 1
}
REF="$(digest_of "$WORK/ref-dense-t1.out")"
GOT="$(digest_of "$WORK/corrupt.out")"
if [ "$GOT" != "$REF" ]; then
  echo "cold-start digest mismatch after corruption: ref=$REF got=$GOT" >&2
  exit 1
fi
[ -f "$CKPT.bad" ] || {
  echo "corrupt checkpoint was not quarantined to .bad" >&2
  exit 1
}
echo "resume smoke: corrupted checkpoint quarantined, cold start ok" >&2
exit 0
